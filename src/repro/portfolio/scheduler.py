"""The racing scheduler: run N strategies on one instance, share bounds.

Two execution modes behind one result type:

* ``process`` (default) — one worker process per strategy (fork start
  method), connected by the bound bus of :mod:`repro.portfolio.bus`. The
  scheduler polls the message queue, folds published bounds into the
  incumbent, and signals the shared stop event as soon as the bounds
  close (``lb >= ub``) or the deadline passes. Workers wind down
  cooperatively (their SIGTERM handler routes into the same stop event)
  and flush a final result; stragglers are terminated after a grace
  period.

* ``inline`` — the same race run sequentially in-process, each strategy
  getting an equal slice of the remaining budget (heuristics first so
  the exact searches start with a tight incumbent to prune against).
  Deterministic, and what tests and the experiment runner use.

Checkpoint/resume: with a ``checkpoint_dir``, the race writes a manifest
(measure + strategy specs) and every worker persists throttled resume
snapshots. :func:`resume_portfolio` reconstructs the race from the
directory alone: the incumbent is seeded from the snapshots' best-so-far
bounds *before* any worker restarts — so a resumed race can only match
or improve the killed race's incumbent — and resumable solvers (GA,
SAIGA, SA, tabu) continue from their saved population/walk state.
"""

from __future__ import annotations

import queue as queue_module
import time
from dataclasses import dataclass, field

from repro import obs
from repro.obs.report import RunReport
from repro.portfolio.bus import (
    LB_SENTINEL,
    UB_SENTINEL,
    BoundMessage,
    Incumbent,
    InlineClient,
)
from repro.portfolio.checkpoint import (
    Checkpointer,
    list_worker_states,
    read_manifest,
    revive_vertices,
    write_manifest,
)
from repro.portfolio.results import PortfolioResult, WorkerResult
from repro.portfolio.strategies import StrategySpec, default_portfolio
from repro.portfolio.workers import (
    capture_worker_report,
    run_strategy,
    worker_main,
)

MODES = ("inline", "process")


@dataclass
class PortfolioSpec:
    """Configuration of one race."""

    measure: str = "tw"
    strategies: list[StrategySpec] = field(default_factory=list)
    """Empty means :func:`default_portfolio` for the measure."""

    time_limit: float | None = None
    mode: str = "process"
    seed: int = 0
    instance_name: str = "instance"
    checkpoint_dir: str | None = None
    checkpoint_interval: float = 1.0
    poll_interval: float = 0.02
    grace: float = 2.0
    """Seconds to wait for workers to wind down after the stop signal
    before escalating to SIGTERM (and, one grace later, SIGKILL)."""

    def validated(self) -> "PortfolioSpec":
        if self.measure not in ("tw", "ghw"):
            raise ValueError("measure must be 'tw' or 'ghw'")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {list(MODES)}")
        if not self.strategies:
            self.strategies = default_portfolio(self.measure, seed=self.seed)
        names = [spec.name for spec in self.strategies]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate strategy names: {names}")
        for spec in self.strategies:
            spec.validated(self.measure)
        return self


def run_portfolio(
    instance, spec: PortfolioSpec, resume: bool = False
) -> PortfolioResult:
    """Race ``spec.strategies`` on ``instance`` and fold their bounds.

    With ``resume=True`` (and a ``checkpoint_dir``), worker snapshots
    from an earlier race seed the incumbent and the resumable solvers'
    state. Use :func:`resume_portfolio` to also recover the strategy set
    from the manifest.
    """
    spec = spec.validated()
    incumbent = Incumbent()
    resume_states: dict[str, dict] = {}
    if resume:
        if not spec.checkpoint_dir:
            raise ValueError("resume needs a checkpoint_dir")
        resume_states = {
            worker: revive_vertices(state, instance.vertices())
            for worker, state in list_worker_states(spec.checkpoint_dir).items()
        }
        _seed_incumbent(incumbent, resume_states)
    if spec.checkpoint_dir:
        write_manifest(
            spec.checkpoint_dir,
            {
                "measure": spec.measure,
                "instance": spec.instance_name,
                "time_limit": spec.time_limit,
                "mode": spec.mode,
                "seed": spec.seed,
                "strategies": [s.to_dict() for s in spec.strategies],
            },
        )
    if spec.mode == "inline":
        return _run_inline(instance, spec, incumbent, resume_states)
    return _run_processes(instance, spec, incumbent, resume_states)


def resume_portfolio(
    instance,
    checkpoint_dir: str,
    time_limit: float | None = None,
    mode: str | None = None,
) -> PortfolioResult:
    """Resume a checkpointed race from its directory alone.

    The manifest restores the measure and strategy set; ``time_limit`` /
    ``mode`` override the original settings (a resumed race usually gets
    a fresh budget).
    """
    manifest = read_manifest(checkpoint_dir)
    if manifest is None:
        raise FileNotFoundError(f"no manifest in {checkpoint_dir!r}")
    spec = PortfolioSpec(
        measure=manifest["measure"],
        strategies=[
            StrategySpec.from_dict(s) for s in manifest.get("strategies", [])
        ],
        time_limit=(
            time_limit if time_limit is not None else manifest.get("time_limit")
        ),
        mode=mode if mode is not None else manifest.get("mode", "process"),
        seed=int(manifest.get("seed", 0)),
        instance_name=manifest.get("instance", "instance"),
        checkpoint_dir=checkpoint_dir,
    )
    return run_portfolio(instance, spec, resume=True)


def _seed_incumbent(incumbent: Incumbent, states: dict[str, dict]) -> None:
    """Pre-load the incumbent with every snapshot's best-so-far bounds."""
    for worker, state in states.items():
        best = state.get("best_fitness")
        if best is not None:
            incumbent.offer_upper(
                int(best), state.get("best_individual"), f"{worker}:checkpoint"
            )
        lower = state.get("lower_bound")
        if lower is not None:
            incumbent.offer_lower(int(lower), f"{worker}:checkpoint")


def _resumable(kind: str) -> bool:
    """Exact searches restart (seeded via the incumbent); the rest resume."""
    return kind not in ("bb", "astar")


def _finish(
    spec: PortfolioSpec,
    incumbent: Incumbent,
    workers: list[WorkerResult],
    worker_reports: list[dict],
    stop_reason: str,
    elapsed: float,
) -> PortfolioResult:
    metrics = obs.current().metrics
    if metrics.enabled:
        metrics.counter(
            "bound_improvements", solver="portfolio", side="upper"
        ).inc(incumbent.upper_improvements)
        metrics.counter(
            "bound_improvements", solver="portfolio", side="lower"
        ).inc(incumbent.lower_improvements)
        if incumbent.upper is not None:
            metrics.gauge("portfolio_upper_bound").set(incumbent.upper)
        if incumbent.lower is not None:
            metrics.gauge("portfolio_lower_bound").set(incumbent.lower)
    return PortfolioResult(
        measure=spec.measure,
        lower_bound=incumbent.lower,
        upper_bound=incumbent.upper,
        ordering=list(incumbent.ordering or []),
        stop_reason="closed" if incumbent.closed else stop_reason,
        elapsed=elapsed,
        workers=workers,
        upper_source=incumbent.upper_source,
        lower_source=incumbent.lower_source,
        worker_reports=worker_reports,
    )


# ----------------------------------------------------------------------
# inline mode
# ----------------------------------------------------------------------


def _run_inline(
    instance,
    spec: PortfolioSpec,
    incumbent: Incumbent,
    resume_states: dict[str, dict],
) -> PortfolioResult:
    started = time.monotonic()
    deadline = started + spec.time_limit if spec.time_limit else None
    ins = obs.current()
    # Heuristics run first so the exact searches inherit a tight
    # incumbent; relative order within each class is preserved.
    ordered = [s for s in spec.strategies if not s.exact] + [
        s for s in spec.strategies if s.exact
    ]
    workers: list[WorkerResult] = []
    worker_reports: list[dict] = []
    deadline_hit = False
    with ins.tracer.span(
        "portfolio", mode="inline", strategies=len(ordered)
    ):
        for index, strategy in enumerate(ordered):
            if incumbent.closed:
                workers.append(_stopped(strategy))
                continue
            now = time.monotonic()
            slice_limit: float | None = None
            if deadline is not None:
                remaining = deadline - now
                if remaining <= 0:
                    deadline_hit = True
                    workers.append(_stopped(strategy))
                    continue
                slice_limit = remaining / (len(ordered) - index)
            checkpointer = (
                Checkpointer(
                    spec.checkpoint_dir,
                    strategy.name,
                    interval_s=spec.checkpoint_interval,
                )
                if spec.checkpoint_dir
                else None
            )
            control = InlineClient(
                strategy.name,
                incumbent,
                deadline=now + slice_limit if slice_limit is not None else None,
                checkpointer=checkpointer,
            )
            resume_state = (
                resume_states.get(strategy.name)
                if _resumable(strategy.kind)
                else None
            )
            with obs.instrument() as worker_ins:
                try:
                    result = run_strategy(
                        strategy,
                        instance,
                        spec.measure,
                        time_limit=slice_limit,
                        control=control,
                        resume_state=resume_state,
                    )
                except Exception as error:
                    result = WorkerResult(
                        name=strategy.name,
                        kind=strategy.kind,
                        status="error",
                        error=f"{type(error).__name__}: {error}",
                    )
                report = capture_worker_report(
                    worker_ins,
                    strategy,
                    result,
                    spec.instance_name,
                    spec.measure,
                )
            if checkpointer is not None:
                checkpointer.flush()
            _fold_result(incumbent, result)
            workers.append(result)
            worker_reports.append(report.to_dict())
    elapsed = time.monotonic() - started
    if deadline is not None and time.monotonic() >= deadline:
        deadline_hit = True
    stop_reason = "deadline" if deadline_hit else "exhausted"
    return _finish(
        spec, incumbent, workers, worker_reports, stop_reason, elapsed
    )


def _stopped(strategy: StrategySpec) -> WorkerResult:
    return WorkerResult(
        name=strategy.name, kind=strategy.kind, status="stopped"
    )


def _fold_result(incumbent: Incumbent, result: WorkerResult) -> None:
    """Fold a worker's final bounds (belt and braces: the worker already
    published improvements through its control)."""
    if result.upper_bound is not None:
        incumbent.offer_upper(
            result.upper_bound, result.ordering or None, result.name
        )
    if result.lower_bound is not None:
        incumbent.offer_lower(result.lower_bound, result.name)


# ----------------------------------------------------------------------
# process mode
# ----------------------------------------------------------------------


def _run_processes(
    instance,
    spec: PortfolioSpec,
    incumbent: Incumbent,
    resume_states: dict[str, dict],
) -> PortfolioResult:
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    started = time.monotonic()
    deadline = started + spec.time_limit if spec.time_limit else None
    bus_queue = ctx.Queue()
    stop_event = ctx.Event()
    shared_upper = ctx.Value(
        "q", incumbent.upper if incumbent.upper is not None else UB_SENTINEL
    )
    shared_lower = ctx.Value(
        "q", incumbent.lower if incumbent.lower is not None else LB_SENTINEL
    )

    processes: dict[str, multiprocessing.Process] = {}
    for strategy in spec.strategies:
        resume_state = (
            resume_states.get(strategy.name)
            if _resumable(strategy.kind)
            else None
        )
        process = ctx.Process(
            target=worker_main,
            args=(
                strategy.to_dict(),
                instance,
                spec.instance_name,
                spec.measure,
                spec.time_limit,
                bus_queue,
                stop_event,
                shared_upper,
                shared_lower,
                spec.checkpoint_dir,
                spec.checkpoint_interval,
                resume_state,
            ),
            daemon=True,
            name=f"portfolio-{strategy.name}",
        )
        processes[strategy.name] = process

    results: dict[str, tuple[WorkerResult, dict]] = {}
    stop_reason = "exhausted"
    stop_at: float | None = None

    ins = obs.current()
    with ins.tracer.span(
        "portfolio", mode="process", strategies=len(spec.strategies)
    ):
        for process in processes.values():
            process.start()
        try:
            while len(results) < len(processes):
                message = _poll(bus_queue, spec.poll_interval)
                if message is not None:
                    _handle(message, incumbent, results)
                now = time.monotonic()
                if incumbent.closed and not stop_event.is_set():
                    stop_reason = "closed"
                    stop_event.set()
                    stop_at = now
                elif (
                    deadline is not None
                    and now >= deadline
                    and not stop_event.is_set()
                ):
                    stop_reason = "deadline"
                    stop_event.set()
                    stop_at = now
                if stop_at is not None and now - stop_at > spec.grace:
                    break  # stragglers get terminated below
                if message is None and all(
                    not p.is_alive() for p in processes.values()
                ):
                    # Everything exited; drain whatever is still queued.
                    while True:
                        message = _poll(bus_queue, 0.05)
                        if message is None:
                            break
                        _handle(message, incumbent, results)
                    break
        finally:
            stop_event.set()
            _reap(processes, bus_queue, incumbent, results, spec.grace)

    workers: list[WorkerResult] = []
    worker_reports: list[dict] = []
    for strategy in spec.strategies:
        if strategy.name in results:
            result, report = results[strategy.name]
            workers.append(result)
            worker_reports.append(report)
        else:
            workers.append(_stopped(strategy))
    for result, _report in results.values():
        _fold_result(incumbent, result)
    elapsed = time.monotonic() - started
    return _finish(
        spec, incumbent, workers, worker_reports, stop_reason, elapsed
    )


def _poll(bus_queue, timeout: float) -> BoundMessage | None:
    try:
        return bus_queue.get(timeout=timeout)
    except queue_module.Empty:
        return None


def _handle(
    message: BoundMessage,
    incumbent: Incumbent,
    results: dict[str, tuple[WorkerResult, dict]],
) -> None:
    if message.type == "upper" and message.value is not None:
        incumbent.offer_upper(message.value, message.ordering, message.worker)
    elif message.type == "lower" and message.value is not None:
        incumbent.offer_lower(message.value, message.worker)
    elif message.type == "result":
        results[message.worker] = (
            WorkerResult.from_dict(message.payload["result"]),
            message.payload["report"],
        )


def _reap(
    processes,
    bus_queue,
    incumbent: Incumbent,
    results: dict,
    grace: float,
) -> None:
    """Graceful teardown: join, escalate to terminate, then kill."""
    deadline = time.monotonic() + grace
    for process in processes.values():
        process.join(timeout=max(0.0, deadline - time.monotonic()))
    for process in processes.values():
        if process.is_alive():
            process.terminate()
    deadline = time.monotonic() + grace
    for process in processes.values():
        process.join(timeout=max(0.0, deadline - time.monotonic()))
        if process.is_alive():
            process.kill()
            process.join(timeout=1.0)
    # Final drain: results flushed during the grace window.
    while True:
        message = _poll(bus_queue, 0.05)
        if message is None:
            break
        _handle(message, incumbent, results)


def portfolio_report(
    ins,
    result: PortfolioResult,
    instance_name: str,
    meta: dict | None = None,
    certified: bool | None = None,
) -> RunReport:
    """The portfolio-level RunReport, nesting every worker's report.

    ``certified`` records whether the incumbent's witness ordering was
    re-validated (see :mod:`repro.verify.certify`); the scheduler itself
    never certifies — callers that do pass the flag through.
    """
    from repro.portfolio.results import portfolio_status

    status = portfolio_status(result)
    combined_meta = {
        "stop_reason": result.stop_reason,
        "upper_source": result.upper_source,
        "lower_source": result.lower_source,
    }
    combined_meta.update(meta or {})
    return RunReport.capture(
        ins,
        instance=instance_name,
        solver="portfolio",
        measure=result.measure,
        status=status,
        value=result.value,
        lower_bound=result.lower_bound,
        upper_bound=result.upper_bound,
        elapsed_s=result.elapsed,
        certified=certified,
        meta=combined_meta,
        workers=result.worker_reports,
    )
