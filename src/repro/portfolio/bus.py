"""The bound bus: how racing workers share bounds with the scheduler.

Three pieces:

* :class:`Incumbent` — the scheduler-side fold of every published bound:
  the least upper bound seen (with its witness ordering and source
  worker) and the greatest lower bound. ``closed`` is the portfolio's
  early-stop condition (``lb >= ub``).
* :class:`BusClient` — the :class:`~repro.obs.control.SolverControl`
  handed to a worker *process*. Publishing pushes a message onto the
  scheduler's queue **and** eagerly folds the value into a pair of
  shared integers (``multiprocessing.Value``), so sibling workers see a
  new incumbent on their very next poll instead of after a scheduler
  round trip. Reading bounds never blocks: it is one shared-memory load.
* :class:`InlineClient` — the same contract for the sequential inline
  scheduler, wired straight to the :class:`Incumbent` plus a wall-clock
  deadline (the worker's time slice).

Sentinels: the shared upper bound starts at ``UB_SENTINEL`` ("no bound
yet", larger than any real width) and the shared lower bound at
``LB_SENTINEL`` (-1, smaller than any real width).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.obs.control import SolverControl

UB_SENTINEL = 2**62
LB_SENTINEL = -1


@dataclass
class BoundMessage:
    """One bus message: a bound improvement or a worker's final result."""

    type: str
    """``"upper"``, ``"lower"`` or ``"result"``."""

    worker: str
    value: int | None = None
    ordering: list | None = None
    payload: dict = field(default_factory=dict)
    """For ``result`` messages: the WorkerResult dict plus the worker's
    RunReport dict."""


class Incumbent:
    """Scheduler-side fold of all published bounds."""

    def __init__(self) -> None:
        self.upper: int | None = None
        self.ordering: list | None = None
        self.upper_source: str | None = None
        self.lower: int | None = None
        self.lower_source: str | None = None
        self.upper_improvements = 0
        self.lower_improvements = 0

    def offer_upper(
        self, value: int, ordering: Sequence | None, source: str
    ) -> bool:
        """Fold in an upper bound; ``True`` iff it improved the incumbent."""
        if self.upper is not None and value >= self.upper:
            return False
        self.upper = value
        self.ordering = list(ordering) if ordering is not None else None
        self.upper_source = source
        self.upper_improvements += 1
        return True

    def offer_lower(self, value: int, source: str) -> bool:
        if self.lower is not None and value <= self.lower:
            return False
        self.lower = value
        self.lower_source = source
        self.lower_improvements += 1
        return True

    @property
    def closed(self) -> bool:
        """The bounds have met: the portfolio-wide answer is certified."""
        return (
            self.upper is not None
            and self.lower is not None
            and self.lower >= self.upper
        )


class BusClient(SolverControl):
    """Worker-process end of the bus.

    ``queue``/``stop_event``/``shared_upper``/``shared_lower`` are the
    ``multiprocessing`` primitives the scheduler created; ``checkpointer``
    (optional) persists resume snapshots in the worker process.
    """

    def __init__(
        self,
        name: str,
        queue,
        stop_event,
        shared_upper,
        shared_lower,
        checkpointer=None,
    ) -> None:
        self.name = name
        self.queue = queue
        self.stop_event = stop_event
        self.shared_upper = shared_upper
        self.shared_lower = shared_lower
        self.checkpointer = checkpointer

    def should_stop(self) -> bool:
        return self.stop_event.is_set()

    def shared_upper_bound(self) -> int | None:
        value = self.shared_upper.value
        return None if value >= UB_SENTINEL else value

    def shared_lower_bound(self) -> int | None:
        value = self.shared_lower.value
        return None if value <= LB_SENTINEL else value

    def publish_upper(self, value: int, ordering: Sequence | None = None) -> None:
        # Eager fold so siblings can prune before the scheduler's next
        # poll; the queue message carries the witness for the scheduler.
        with self.shared_upper.get_lock():
            if value < self.shared_upper.value:
                self.shared_upper.value = value
        self.queue.put(
            BoundMessage(
                type="upper",
                worker=self.name,
                value=int(value),
                ordering=list(ordering) if ordering is not None else None,
            )
        )

    def publish_lower(self, value: int) -> None:
        with self.shared_lower.get_lock():
            if value > self.shared_lower.value:
                self.shared_lower.value = value
        self.queue.put(
            BoundMessage(type="lower", worker=self.name, value=int(value))
        )

    def checkpoint(self, state: dict) -> None:
        if self.checkpointer is not None:
            self.checkpointer.offer(state)


class InlineClient(SolverControl):
    """In-process bus end for the sequential inline scheduler.

    The "shared" bounds are the live :class:`Incumbent` (earlier workers'
    results are visible to later ones); the stop signal is this worker's
    time-slice deadline. Publishing folds straight into the incumbent.
    """

    def __init__(
        self,
        name: str,
        incumbent: Incumbent,
        deadline: float | None = None,
        checkpointer=None,
        clock=time.monotonic,
    ) -> None:
        self.name = name
        self.incumbent = incumbent
        self.deadline = deadline
        self.checkpointer = checkpointer
        self.clock = clock

    def should_stop(self) -> bool:
        if self.incumbent.closed:
            return True
        return self.deadline is not None and self.clock() >= self.deadline

    def shared_upper_bound(self) -> int | None:
        return self.incumbent.upper

    def shared_lower_bound(self) -> int | None:
        return self.incumbent.lower

    def publish_upper(self, value: int, ordering: Sequence | None = None) -> None:
        self.incumbent.offer_upper(int(value), ordering, self.name)

    def publish_lower(self, value: int) -> None:
        self.incumbent.offer_lower(int(value), self.name)

    def checkpoint(self, state: dict) -> None:
        if self.checkpointer is not None:
            self.checkpointer.offer(state)
