"""Running one portfolio strategy — shared by both scheduler modes.

:func:`run_strategy` is the single dispatch point from a
:class:`~repro.portfolio.strategies.StrategySpec` to the library's solver
families, normalising their heterogeneous results (SearchResult,
GAResult, AnnealingResult, TabuResult) into one
:class:`~repro.portfolio.results.WorkerResult`.

:func:`worker_main` is the entry point of a worker *process*: it wires
the strategy to the bound bus, runs under its own ``repro.obs``
instrumentation, and — crucially — always flushes a final message
(result + RunReport + last checkpoint) before exiting, including on
SIGTERM-driven cancellation: the signal handler only sets the shared
stop event, the solver winds down cooperatively, and the normal
reporting path runs.
"""

from __future__ import annotations

import random
import signal
import time

from repro import obs
from repro.hypergraphs.hypergraph import Hypergraph
from repro.obs.control import SolverControl
from repro.obs.report import RunReport
from repro.portfolio.bus import BoundMessage, BusClient
from repro.portfolio.checkpoint import Checkpointer
from repro.portfolio.results import WorkerResult
from repro.portfolio.strategies import StrategySpec


def _primal(instance, measure: str):
    if measure == "tw" and isinstance(instance, Hypergraph):
        return instance.primal_graph()
    return instance


def _from_search(spec: StrategySpec, result) -> WorkerResult:
    return WorkerResult(
        name=spec.name,
        kind=spec.kind,
        status="optimal" if result.optimal else "interrupted",
        lower_bound=result.lower_bound,
        upper_bound=result.upper_bound,
        ordering=list(result.ordering),
        elapsed=result.elapsed,
        detail={"nodes": result.nodes_expanded},
    )


def _from_heuristic(spec: StrategySpec, result, extra: dict | None = None) -> WorkerResult:
    detail = {"evaluations": result.evaluations}
    detail.update(extra or {})
    return WorkerResult(
        name=spec.name,
        kind=spec.kind,
        status="heuristic",
        lower_bound=None,
        upper_bound=result.best_fitness,
        ordering=list(result.best_individual),
        elapsed=result.elapsed,
        detail=detail,
    )


def run_strategy(
    spec: StrategySpec,
    instance,
    measure: str,
    time_limit: float | None = None,
    control: SolverControl | None = None,
    resume_state: dict | None = None,
) -> WorkerResult:
    """Run one strategy to completion (or cooperative stop).

    The exact searches cannot resume mid-tree, so for them
    ``resume_state`` is ignored here — the scheduler instead seeds the
    shared incumbent from the checkpoint, which the restarted search
    prunes against from its first node.
    """
    options = dict(spec.options)
    if spec.kind == "bb":
        rng = random.Random(spec.seed)
        if measure == "tw":
            from repro.search.bb_tw import branch_and_bound_treewidth

            result = branch_and_bound_treewidth(
                _primal(instance, measure),
                time_limit=time_limit,
                rng=rng,
                control=control,
                **options,
            )
        else:
            from repro.search.bb_ghw import branch_and_bound_ghw

            result = branch_and_bound_ghw(
                instance,
                time_limit=time_limit,
                rng=rng,
                control=control,
                **options,
            )
        return _from_search(spec, result)
    if spec.kind == "astar":
        rng = random.Random(spec.seed)
        if measure == "tw":
            from repro.search.astar_tw import astar_treewidth

            result = astar_treewidth(
                _primal(instance, measure),
                time_limit=time_limit,
                rng=rng,
                control=control,
                **options,
            )
        else:
            from repro.search.astar_ghw import astar_ghw

            result = astar_ghw(
                instance,
                time_limit=time_limit,
                rng=rng,
                control=control,
                **options,
            )
        return _from_search(spec, result)
    if spec.kind == "ga":
        from repro.genetic.engine import GAParameters

        parameters = GAParameters(**options) if options else None
        if measure == "tw":
            from repro.genetic.ga_tw import ga_treewidth

            result = ga_treewidth(
                _primal(instance, measure),
                parameters=parameters,
                seed=spec.seed,
                time_limit=time_limit,
                backend=spec.backend,
                jobs=spec.jobs,
                control=control,
                resume_state=resume_state,
            )
        else:
            from repro.genetic.ga_ghw import ga_ghw

            result = ga_ghw(
                instance,
                parameters=parameters,
                seed=spec.seed,
                time_limit=time_limit,
                backend=spec.backend,
                jobs=spec.jobs,
                control=control,
                resume_state=resume_state,
            )
        return _from_heuristic(spec, result, {"generations": result.generations})
    if spec.kind == "saiga":
        from repro.genetic.saiga import saiga_ghw

        result = saiga_ghw(
            instance,
            seed=spec.seed,
            time_limit=time_limit,
            backend=spec.backend,
            jobs=spec.jobs,
            control=control,
            resume_state=resume_state,
            **options,
        )
        return _from_heuristic(spec, result, {"generations": result.generations})
    if spec.kind == "sa":
        from repro.localsearch.simulated_annealing import (
            AnnealingParameters,
            sa_ghw,
            sa_treewidth,
        )

        parameters = AnnealingParameters(**options) if options else None
        runner = sa_treewidth if measure == "tw" else sa_ghw
        result = runner(
            _primal(instance, measure) if measure == "tw" else instance,
            parameters=parameters,
            seed=spec.seed,
            time_limit=time_limit,
            backend=spec.backend,
            control=control,
            resume_state=resume_state,
        )
        return _from_heuristic(spec, result, {"accepted": result.accepted_moves})
    if spec.kind == "tabu":
        from repro.localsearch.tabu import TabuParameters, tabu_ghw, tabu_treewidth

        parameters = TabuParameters(**options) if options else None
        runner = tabu_treewidth if measure == "tw" else tabu_ghw
        result = runner(
            _primal(instance, measure) if measure == "tw" else instance,
            parameters=parameters,
            seed=spec.seed,
            time_limit=time_limit,
            backend=spec.backend,
            control=control,
            resume_state=resume_state,
        )
        return _from_heuristic(spec, result, {"iterations": result.iterations})
    raise ValueError(f"unknown strategy kind {spec.kind!r}")


def capture_worker_report(
    ins,
    spec: StrategySpec,
    result: WorkerResult,
    instance_name: str,
    measure: str,
) -> RunReport:
    """One nested RunReport for a finished worker."""
    status = result.status if result.status != "stopped" else "heuristic"
    return RunReport.capture(
        ins,
        instance=instance_name,
        solver=spec.name,
        measure=measure,
        status=status,
        value=result.upper_bound if result.status == "optimal" else None,
        lower_bound=result.lower_bound,
        upper_bound=result.upper_bound,
        elapsed_s=result.elapsed,
        meta={
            "kind": spec.kind,
            "seed": spec.seed,
            "backend": spec.backend,
            "jobs": spec.jobs,
        },
    )


def worker_main(
    spec_dict: dict,
    instance,
    instance_name: str,
    measure: str,
    time_limit: float | None,
    queue,
    stop_event,
    shared_upper,
    shared_lower,
    checkpoint_dir: str | None,
    checkpoint_interval: float,
    resume_state: dict | None,
) -> None:
    """Worker-process entry point (fork start method).

    SIGTERM is rerouted to the shared stop event, so an external
    cancellation takes the same graceful path as a scheduler stop: the
    solver loop notices ``should_stop()``, winds down, and the final
    result/report/checkpoint flush below still runs.
    """
    spec = StrategySpec.from_dict(spec_dict)
    signal.signal(signal.SIGTERM, lambda _signum, _frame: stop_event.set())
    checkpointer = (
        Checkpointer(checkpoint_dir, spec.name, interval_s=checkpoint_interval)
        if checkpoint_dir
        else None
    )
    control = BusClient(
        spec.name, queue, stop_event, shared_upper, shared_lower, checkpointer
    )
    started = time.monotonic()
    with obs.instrument() as ins:
        with ins.tracer.span("worker", worker=spec.name, kind=spec.kind):
            try:
                result = run_strategy(
                    spec,
                    instance,
                    measure,
                    time_limit=time_limit,
                    control=control,
                    resume_state=resume_state,
                )
            except Exception as error:  # report, don't crash the race
                result = WorkerResult(
                    name=spec.name,
                    kind=spec.kind,
                    status="error",
                    error=f"{type(error).__name__}: {error}",
                )
        if not result.elapsed:
            result.elapsed = time.monotonic() - started
        report = capture_worker_report(ins, spec, result, instance_name, measure)
    if checkpointer is not None:
        checkpointer.flush()
    queue.put(
        BoundMessage(
            type="result",
            worker=spec.name,
            payload={"result": result.to_dict(), "report": report.to_dict()},
        )
    )
    queue.close()
    queue.join_thread()
