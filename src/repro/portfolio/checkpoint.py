"""Checkpoint persistence for portfolio races.

Layout of a checkpoint directory::

    manifest.json        race-level metadata: measure, strategy specs
    worker-<name>.json   one resume snapshot per worker, atomically
                         replaced on every (throttled) write

Snapshots are whatever dict the solver offered through
``control.checkpoint`` — always carrying ``best_fitness`` /
``best_individual`` (so a resumed race can seed its incumbent before any
worker restarts) plus family-specific state: GA population and
fitnesses, SA temperature and current walk, tabu list, search node
counts. RNG state round-trips through JSON as a list and is decoded back
to the exact ``random.Random`` state tuple on load.

Writes are atomic (tmp file + ``os.replace``) so a race killed mid-write
never leaves a truncated snapshot behind.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

MANIFEST = "manifest.json"
_WORKER_PREFIX = "worker-"


def encode_rng_state(state) -> list:
    """``random.Random.getstate()`` -> JSON-safe nested lists."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def decode_rng_state(data) -> tuple:
    """JSON round-tripped state -> the tuple ``setstate`` requires."""
    version, internal, gauss_next = data
    return (version, tuple(int(word) for word in internal), gauss_next)


def _encode_state(state: dict) -> dict:
    encoded = dict(state)
    if encoded.get("rng_state") is not None:
        encoded["rng_state"] = encode_rng_state(encoded["rng_state"])
    return encoded


def _decode_state(state: dict) -> dict:
    decoded = dict(state)
    if decoded.get("rng_state") is not None:
        decoded["rng_state"] = decode_rng_state(decoded["rng_state"])
    return decoded


def _atomic_write(path: Path, payload: dict) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)


class Checkpointer:
    """Throttled, atomic snapshot writer for one worker.

    Solvers offer a snapshot every loop iteration; writing each one would
    dominate the run, so offers inside ``interval_s`` of the last write
    are only *kept* (in memory) and :meth:`flush` persists the freshest
    one — the final flush on worker shutdown is what a resumed race
    reads.
    """

    def __init__(
        self,
        directory: str | Path,
        worker: str,
        interval_s: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        self.directory = Path(directory)
        self.worker = worker
        self.interval_s = interval_s
        self.clock = clock
        self.path = self.directory / f"{_WORKER_PREFIX}{worker}.json"
        self.writes = 0
        self._pending: dict | None = None
        self._last_write: float | None = None

    def offer(self, state: dict) -> None:
        self._pending = state
        now = self.clock()
        if (
            self._last_write is not None
            and now - self._last_write < self.interval_s
        ):
            return
        self._write(state)
        self._last_write = now

    def flush(self) -> None:
        """Persist the freshest offered snapshot regardless of throttle."""
        if self._pending is not None:
            self._write(self._pending)
            self._last_write = self.clock()

    def _write(self, state: dict) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        _atomic_write(self.path, _encode_state(state))
        self.writes += 1
        self._pending = None


def load_worker_state(directory: str | Path, worker: str) -> dict | None:
    """The worker's last snapshot (rng state decoded), or ``None``."""
    path = Path(directory) / f"{_WORKER_PREFIX}{worker}.json"
    if not path.exists():
        return None
    with open(path, encoding="utf-8") as handle:
        return _decode_state(json.load(handle))


def list_worker_states(directory: str | Path) -> dict[str, dict]:
    """All worker snapshots in ``directory``, keyed by worker name."""
    states: dict[str, dict] = {}
    base = Path(directory)
    if not base.is_dir():
        return states
    for path in sorted(base.glob(f"{_WORKER_PREFIX}*.json")):
        worker = path.stem[len(_WORKER_PREFIX):]
        with open(path, encoding="utf-8") as handle:
            states[worker] = _decode_state(json.load(handle))
    return states


def revive_vertices(state: dict, vertices) -> dict:
    """Map JSON round-tripped vertex leaves back to real instance vertices.

    Tuple vertices (grid instances) come back from JSON as lists and
    would be unhashable inside a resumed solver. Every leaf whose JSON
    form matches a vertex of the instance is replaced by that vertex;
    everything else (fitnesses, parameters, tabu expiries) is untouched.
    ``rng_state`` is skipped wholesale — it is decoded separately and
    never contains vertices.
    """
    canon: dict[str, object] = {}
    for vertex in vertices:
        try:
            canon[json.dumps(vertex)] = vertex
        except TypeError:  # pragma: no cover - exotic vertex type
            pass
    return {
        key: value if key == "rng_state" else _revive(value, canon)
        for key, value in state.items()
    }


def _revive(value, canon: dict):
    if isinstance(value, dict):
        return {key: _revive(item, canon) for key, item in value.items()}
    try:
        key = json.dumps(value)
    except TypeError:
        return value
    if key in canon:
        return canon[key]
    if isinstance(value, list):
        return [_revive(item, canon) for item in value]
    return value


def write_manifest(directory: str | Path, manifest: dict) -> None:
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    _atomic_write(base / MANIFEST, manifest)


def read_manifest(directory: str | Path) -> dict | None:
    path = Path(directory) / MANIFEST
    if not path.exists():
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
