"""Strategy specifications for the anytime portfolio.

A :class:`StrategySpec` names one configured solver in a race: which
family to run (``kind``), its RNG seed, the fitness backend, and a bag of
family-specific options (GA parameters, annealing schedule, node limits).
Specs are plain data — JSON round-trippable so a checkpointed race can be
resumed with the exact strategy set it started with.

The solver families mirror the library: the two exact searches (``bb``,
``astar``) contribute lower bounds and certification, the four
heuristics (``ga``, ``saiga``, ``sa``, ``tabu``) contribute fast upper
bounds for the exact searches to prune against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

KINDS = ("bb", "astar", "ga", "saiga", "sa", "tabu")
EXACT_KINDS = ("bb", "astar")
HEURISTIC_KINDS = ("ga", "saiga", "sa", "tabu")
GHW_ONLY_KINDS = ("saiga",)


@dataclass
class StrategySpec:
    """One configured solver entry in a portfolio race."""

    name: str
    kind: str
    seed: int = 0
    backend: str = "python"
    jobs: int = 1
    options: dict = field(default_factory=dict)
    """Family-specific keyword options (e.g. GA ``population_size``,
    SA ``initial_temperature``, search ``node_limit``)."""

    def validated(self, measure: str) -> "StrategySpec":
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown strategy kind {self.kind!r}; choose from {list(KINDS)}"
            )
        if measure == "tw" and self.kind in GHW_ONLY_KINDS:
            raise ValueError(f"strategy {self.kind!r} only applies to ghw")
        if not self.name:
            raise ValueError("strategy needs a name")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        return self

    @property
    def exact(self) -> bool:
        return self.kind in EXACT_KINDS

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "seed": self.seed,
            "backend": self.backend,
            "jobs": self.jobs,
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StrategySpec":
        return cls(
            name=str(data["name"]),
            kind=str(data["kind"]),
            seed=int(data.get("seed", 0)),
            backend=str(data.get("backend", "python")),
            jobs=int(data.get("jobs", 1)),
            options=dict(data.get("options", {})),
        )


def default_portfolio(measure: str, seed: int = 0) -> list[StrategySpec]:
    """The standard 4-strategy race: one exact search + three heuristics.

    BB (rather than A*) is the default exact member because its anytime
    incumbent improves continuously and it prunes directly against the
    heuristics' published upper bounds.
    """
    kinds = ["bb", "ga", "sa", "tabu"]
    return parse_strategies(",".join(kinds), measure, seed=seed)


def parse_strategies(
    text: str, measure: str, seed: int = 0
) -> list[StrategySpec]:
    """Parse a CLI strategy list like ``"bb,ga,sa,tabu"``.

    Duplicate kinds are allowed (e.g. ``"ga,ga,ga"`` races three GA
    seeds); each occurrence gets a distinct name and a distinct seed
    (``seed + position``) so the runs diverge.
    """
    kinds = [token.strip() for token in text.split(",") if token.strip()]
    if not kinds:
        raise ValueError("strategy list is empty")
    counts: dict[str, int] = {}
    specs: list[StrategySpec] = []
    for index, kind in enumerate(kinds):
        counts[kind] = counts.get(kind, 0) + 1
        name = kind if kinds.count(kind) == 1 else f"{kind}-{counts[kind]}"
        specs.append(
            StrategySpec(name=name, kind=kind, seed=seed + index).validated(
                measure
            )
        )
    return specs
