"""Result records for portfolio races.

A race produces one :class:`WorkerResult` per strategy plus a combined
:class:`PortfolioResult` carrying the portfolio-wide incumbent: the best
upper bound any worker found (with its witness ordering) and the best
lower bound any worker proved. The portfolio certifies optimality when
the two meet — even when no single worker did, e.g. a GA found the
optimal ordering and BB exhausted while pruning against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Why the race ended.
STOP_REASONS = ("closed", "deadline", "exhausted", "stopped")


@dataclass
class WorkerResult:
    """Outcome of one strategy in the race."""

    name: str
    kind: str
    status: str
    """``optimal`` / ``interrupted`` (exact), ``heuristic``, ``stopped``
    (cancelled before reporting), or ``error``."""

    lower_bound: int | None = None
    upper_bound: int | None = None
    ordering: list = field(default_factory=list)
    elapsed: float = 0.0
    detail: dict = field(default_factory=dict)
    """Family-specific extras: nodes expanded, evaluations, generations."""

    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "lower_bound": self.lower_bound,
            "upper_bound": self.upper_bound,
            "ordering": list(self.ordering),
            "elapsed": self.elapsed,
            "detail": dict(self.detail),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkerResult":
        return cls(
            name=data["name"],
            kind=data["kind"],
            status=data["status"],
            lower_bound=data.get("lower_bound"),
            upper_bound=data.get("upper_bound"),
            ordering=list(data.get("ordering", [])),
            elapsed=float(data.get("elapsed", 0.0)),
            detail=dict(data.get("detail", {})),
            error=data.get("error"),
        )


@dataclass
class PortfolioResult:
    """Combined outcome of a race on one instance."""

    measure: str
    lower_bound: int | None
    upper_bound: int | None
    ordering: list = field(default_factory=list)
    """Witness ordering achieving ``upper_bound`` (portfolio-best)."""

    stop_reason: str = "exhausted"
    elapsed: float = 0.0
    workers: list[WorkerResult] = field(default_factory=list)
    upper_source: str | None = None
    """Name of the worker that produced the incumbent upper bound."""

    lower_source: str | None = None

    worker_reports: list = field(default_factory=list)
    """Per-worker :class:`~repro.obs.report.RunReport` dicts, in worker
    order, for nesting under a portfolio-level report."""

    @property
    def optimal(self) -> bool:
        return (
            self.lower_bound is not None
            and self.upper_bound is not None
            and self.lower_bound >= self.upper_bound
        )

    @property
    def value(self) -> int | None:
        return self.upper_bound if self.optimal else None

    @property
    def early_stopped(self) -> bool:
        """The race halted because the bounds met, not because time ran out."""
        return self.stop_reason == "closed"

    @property
    def gap(self) -> int | None:
        if self.lower_bound is None or self.upper_bound is None:
            return None
        return self.upper_bound - self.lower_bound

    def summary(self) -> str:
        if self.optimal:
            shown = f"width={self.upper_bound} (optimal)"
        elif self.upper_bound is not None:
            lb = "?" if self.lower_bound is None else self.lower_bound
            shown = f"width in [{lb}, {self.upper_bound}]"
        else:
            shown = "no bounds"
        return (
            f"portfolio[{self.measure}]: {shown}, "
            f"stop={self.stop_reason}, workers={len(self.workers)}, "
            f"time={self.elapsed:.2f}s"
        )


def portfolio_status(result: PortfolioResult) -> str:
    """The RunReport status of a portfolio outcome."""
    if result.optimal:
        return "optimal"
    if result.lower_bound is not None:
        return "interrupted"
    return "heuristic"
