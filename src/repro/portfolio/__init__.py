"""Anytime solver portfolio: race strategies, share bounds, stop early.

The portfolio runs several configured solver strategies on one instance
concurrently (worker processes) or sequentially time-sliced (inline).
Workers publish improved upper bounds — with witness orderings — and
proven lower bounds onto a bound bus; the scheduler folds them into a
portfolio-wide incumbent, which exact searches prune against, and halts
the whole race as soon as the bounds meet. Races checkpoint themselves
and can be resumed after a kill.

Entry points: :func:`run_portfolio` / :func:`resume_portfolio`, or the
``repro portfolio`` CLI subcommand.
"""

from repro.portfolio.bus import BoundMessage, BusClient, Incumbent, InlineClient
from repro.portfolio.checkpoint import (
    Checkpointer,
    list_worker_states,
    load_worker_state,
    read_manifest,
    write_manifest,
)
from repro.portfolio.results import PortfolioResult, WorkerResult
from repro.portfolio.scheduler import (
    PortfolioSpec,
    portfolio_report,
    resume_portfolio,
    run_portfolio,
)
from repro.portfolio.strategies import (
    StrategySpec,
    default_portfolio,
    parse_strategies,
)
from repro.portfolio.workers import run_strategy

__all__ = [
    "BoundMessage",
    "BusClient",
    "Checkpointer",
    "Incumbent",
    "InlineClient",
    "PortfolioResult",
    "PortfolioSpec",
    "StrategySpec",
    "WorkerResult",
    "default_portfolio",
    "list_worker_states",
    "load_worker_state",
    "parse_strategies",
    "portfolio_report",
    "read_manifest",
    "resume_portfolio",
    "run_portfolio",
    "run_strategy",
    "write_manifest",
]
