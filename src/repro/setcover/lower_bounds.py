"""Lower bounds for the k-set-cover problem (Section 8.1.1).

The thesis's ghw lower bound ``tw-ksc-width`` needs, for a number ``k``, a
lower bound on *how many hyperedges any k-element vertex set can require*.
Because the adversarial k-set is unknown, a valid bound must hold for
every possible k-subset of vertices; this module provides two such
bounds plus their maximum:

``size_profile_lower_bound``
    The best imaginable cover uses the largest edges disjointly, so the
    smallest ``m`` with ``|h_1| + ... + |h_m| >= k`` (edge sizes sorted
    descending) edges are always necessary. Cheap and surprisingly
    effective on uniform hypergraphs.

``ceiling_lower_bound``
    ``ceil(k / max edge size)`` — the textbook bound, dominated by the
    profile bound but kept for reference and testing.

Both are monotone in ``k``, which the branch-and-bound relies on.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from math import ceil

from repro.hypergraphs.graph import Vertex
from repro.hypergraphs.hypergraph import EdgeName


def ceiling_lower_bound(k: int, edge_sizes: Iterable[int]) -> int:
    """``ceil(k / max size)``; 0 when ``k <= 0``; inf-like when no edges."""
    if k <= 0:
        return 0
    largest = max(edge_sizes, default=0)
    if largest == 0:
        raise ValueError("cannot cover vertices without hyperedges")
    return ceil(k / largest)


def size_profile_lower_bound(k: int, edge_sizes: Iterable[int]) -> int:
    """Smallest ``m`` such that the ``m`` largest edges total >= k vertices.

    Any cover of a k-element set touches at least k vertex slots, and the
    ``m`` chosen edges cannot jointly offer more slots than the ``m``
    largest edges do — so fewer than the returned ``m`` edges can never
    suffice, whichever k vertices the adversary picks.
    """
    if k <= 0:
        return 0
    sizes = sorted(edge_sizes, reverse=True)
    total = 0
    for m, size in enumerate(sizes, start=1):
        total += size
        if total >= k:
            return m
    raise ValueError(
        f"hyperedges cover only {total} vertex slots; cannot cover {k}"
    )


def k_set_cover_lower_bound(
    k: int, edges: Mapping[EdgeName, frozenset[Vertex]]
) -> int:
    """The strongest available bound: max of the individual bounds.

    ``size_profile_lower_bound`` dominates ``ceiling_lower_bound``
    mathematically; the max is taken anyway so future bounds can slot in
    without touching callers.
    """
    sizes = [len(edge) for edge in edges.values()]
    return max(
        ceiling_lower_bound(k, sizes),
        size_profile_lower_bound(k, sizes),
    )
