"""Fractional set covers and fractional hypertree width (extension).

The thesis closes by pointing at relaxations of generalized hypertree
width; the natural one is the *fractional* cover: allow each hyperedge a
weight in [0, 1] and cover every bag vertex with total weight >= 1. The
optimal value per bag is an LP, and its maximum over the bags of an
elimination ordering is the ordering's fractional width. Minimised over
orderings this is Grohe-Marx's fractional hypertree width, with

    fhw(H) <= ghw(H) <= hw(H),

so the library's ghw machinery brackets it from above while this module
computes the per-ordering value exactly (via scipy's LP solver).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro import obs
from repro.hypergraphs.graph import Vertex
from repro.hypergraphs.hypergraph import EdgeName, Hypergraph
from repro.setcover.greedy import UncoverableError


def fractional_cover_value(
    target: Iterable[Vertex],
    edges: Mapping[EdgeName, frozenset[Vertex]],
) -> float:
    """The optimal fractional cover weight of ``target``.

    Solves ``min sum(x)`` subject to ``sum(x_e : v in e) >= 1`` for every
    target vertex and ``x >= 0``. Returns 0.0 for an empty target.
    """
    from scipy.optimize import linprog

    vertices = sorted(set(target), key=repr)
    if not vertices:
        return 0.0
    names = sorted(edges, key=repr)
    useful = [name for name in names if edges[name] & set(vertices)]
    if not useful:
        raise UncoverableError(
            f"vertices {list(map(repr, vertices))} appear in no hyperedge"
        )
    coverable = set()
    for name in useful:
        coverable |= edges[name]
    missing = [v for v in vertices if v not in coverable]
    if missing:
        raise UncoverableError(
            f"vertices {sorted(map(repr, missing))} appear in no hyperedge"
        )
    metrics = obs.current().metrics
    if metrics.enabled:
        metrics.counter("setcover", algo="fractional", event="lp_call").inc()
    # A_ub x <= b_ub with the >= constraints negated.
    a_ub = [
        [-1.0 if vertex in edges[name] else 0.0 for name in useful]
        for vertex in vertices
    ]
    b_ub = [-1.0] * len(vertices)
    result = linprog(
        c=[1.0] * len(useful),
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(0.0, None)] * len(useful),
        method="highs",
    )
    if not result.success:  # pragma: no cover - LP is always feasible here
        raise RuntimeError(f"fractional cover LP failed: {result.message}")
    return float(result.fun)


def ordering_fractional_width(
    hypergraph: Hypergraph, ordering: Sequence[Vertex]
) -> float:
    """Max fractional cover value over the ordering's elimination bags.

    The minimum over all orderings upper-bounds fhw(H) the same way
    chapter 3 shows the integral version realises ghw(H); on every
    ordering the fractional value never exceeds the exact integral one
    (property-tested).
    """
    from repro.decompositions.elimination import elimination_bags

    bags = elimination_bags(hypergraph.primal_graph(), ordering)
    edges = hypergraph.edges()
    return max(
        (fractional_cover_value(bag, edges) for bag in bags.values()),
        default=0.0,
    )
