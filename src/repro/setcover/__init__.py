"""Set cover: greedy heuristic, exact solver, k-set-cover lower bounds."""

from repro.setcover.exact import (
    ExactSetCoverSolver,
    exact_cover_size,
    exact_set_cover,
)
from repro.setcover.fractional import (
    fractional_cover_value,
    ordering_fractional_width,
)
from repro.setcover.greedy import (
    UncoverableError,
    greedy_cover_size,
    greedy_set_cover,
)
from repro.setcover.lower_bounds import (
    ceiling_lower_bound,
    k_set_cover_lower_bound,
    size_profile_lower_bound,
)

__all__ = [
    "ExactSetCoverSolver",
    "UncoverableError",
    "ceiling_lower_bound",
    "exact_cover_size",
    "exact_set_cover",
    "fractional_cover_value",
    "ordering_fractional_width",
    "greedy_cover_size",
    "greedy_set_cover",
    "k_set_cover_lower_bound",
    "size_profile_lower_bound",
]
