"""The greedy set-cover heuristic (Figure 7.2, after Chvatal [11]).

Covering a bag with as few hyperedges as possible is the set-cover
subproblem at the heart of every ghw computation in the thesis. The
greedy heuristic repeatedly takes the hyperedge covering the most
still-uncovered vertices; ties are broken randomly (as in the thesis) or
deterministically by edge name, depending on whether a random source is
supplied. The greedy cover size is within ``H(n)`` (harmonic) of optimal,
which in practice is close-to-optimal for the instances considered.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping

from repro import obs
from repro.hypergraphs.graph import Vertex
from repro.hypergraphs.hypergraph import EdgeName


class UncoverableError(ValueError):
    """Raised when the target vertices cannot be covered by the edges."""


def greedy_set_cover(
    target: Iterable[Vertex],
    edges: Mapping[EdgeName, frozenset[Vertex]],
    rng: random.Random | None = None,
) -> list[EdgeName]:
    """Cover ``target`` with edges from ``edges``; return the chosen names.

    Parameters
    ----------
    target:
        The vertices to cover (a chi-label during bucket elimination).
    edges:
        All available hyperedges, by name.
    rng:
        Optional random source for tie-breaking. Without it ties break on
        the stable sort order of edge names, which keeps evaluation
        deterministic for exact algorithms and tests.

    Raises
    ------
    UncoverableError
        If some target vertex appears in no edge at all.
    """
    metrics = obs.current().metrics
    if metrics.enabled:
        metrics.counter("setcover", algo="greedy", event="call").inc()
    uncovered = set(target)
    if not uncovered:
        return []
    chosen: list[EdgeName] = []
    names = list(edges)
    while uncovered:
        best_gain = 0
        best_names: list[EdgeName] = []
        for name in names:
            gain = len(edges[name] & uncovered)
            if gain > best_gain:
                best_gain = gain
                best_names = [name]
            elif gain == best_gain and gain > 0:
                best_names.append(name)
        if not best_names:
            raise UncoverableError(
                f"vertices {sorted(map(repr, uncovered))} appear in no hyperedge"
            )
        if rng is None:
            pick = min(best_names, key=repr)
        else:
            pick = rng.choice(best_names)
        chosen.append(pick)
        uncovered -= edges[pick]
    return chosen


def greedy_cover_size(
    target: Iterable[Vertex],
    edges: Mapping[EdgeName, frozenset[Vertex]],
    rng: random.Random | None = None,
) -> int:
    """``len(greedy_set_cover(...))`` — the quantity GA-ghw maximises against."""
    return len(greedy_set_cover(target, edges, rng=rng))
