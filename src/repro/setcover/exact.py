"""Exact minimum set cover via branch and bound.

The thesis solves the per-bag set-cover problems exactly with an IP solver
when proving optimal generalized hypertree widths (Section 2.5.2). No IP
solver is available offline, so this module provides a self-contained
branch-and-bound solver with the classic ingredients:

* greedy upper bound to start,
* branching on a hardest (least-covered) uncovered element, trying only
  the edges that contain it (this keeps the branching factor small and is
  complete: *some* chosen edge must contain that element),
* lower bound ``ceil(|uncovered| / max_gain)`` for pruning,
* dominance preprocessing (edges that are subsets of other edges are
  dropped), and
* memoisation in the process-wide cover cache
  (:mod:`repro.kernels.cache`) keyed on the frozen uncovered set, which
  pays off across the thousands of highly-similar bags a BB-ghw run
  evaluates — and across *solvers*: every solver built over the same
  edge family (all candidates of a run, and the bitset kernel's exact
  covers of the same hypergraph) shares one memo table.

For the bag sizes arising from elimination orderings (tens of vertices)
this is exact and fast.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from math import ceil

from repro import obs
from repro.hypergraphs.graph import Vertex
from repro.hypergraphs.hypergraph import EdgeName
from repro.kernels.cache import cover_cache, edges_token
from repro.setcover.greedy import UncoverableError, greedy_set_cover


def _prune_dominated(
    edges: Mapping[EdgeName, frozenset[Vertex]], universe: set[Vertex]
) -> dict[EdgeName, frozenset[Vertex]]:
    """Restrict edges to the universe and drop dominated (subset) edges."""
    restricted: dict[EdgeName, frozenset[Vertex]] = {}
    for name, edge in edges.items():
        useful = edge & universe
        if useful:
            restricted[name] = frozenset(useful)
    names = sorted(restricted, key=lambda n: (-len(restricted[n]), repr(n)))
    kept: dict[EdgeName, frozenset[Vertex]] = {}
    for name in names:
        edge = restricted[name]
        if not any(edge <= other for other in kept.values()):
            kept[name] = edge
    return kept


class ExactSetCoverSolver:
    """Reusable exact solver; caches optimal covers across calls.

    Optimal covers are memoised in the process-wide
    :func:`~repro.kernels.cache.cover_cache` keyed by this solver's edge
    family and the uncovered vertex set, so the memo outlives any single
    solver: every candidate ordering of a run — and any other solver
    built over the same hyperedges — reuses earlier results.
    """

    def __init__(self, edges: Mapping[EdgeName, frozenset[Vertex]]) -> None:
        self._edges = {name: frozenset(edge) for name, edge in edges.items()}
        self._token = edges_token(self._edges)
        self._cache = cover_cache()
        self._nodes = 0

    def cover(self, target: Iterable[Vertex]) -> list[EdgeName]:
        """An optimal cover of ``target``; raises if uncoverable."""
        universe = set(target)
        if not universe:
            return []
        metrics = obs.current().metrics
        key = frozenset(universe)
        cached = self._cache.get(self._token, "exact", key)
        if cached is not None:
            if metrics.enabled:
                metrics.counter("setcover_cache", event="hit").inc()
            return list(cached)
        if metrics.enabled:
            metrics.counter("setcover_cache", event="miss").inc()
        edges = _prune_dominated(self._edges, universe)
        coverable: set[Vertex] = set()
        for edge in edges.values():
            coverable |= edge
        if not universe <= coverable:
            missing = universe - coverable
            raise UncoverableError(
                f"vertices {sorted(map(repr, missing))} appear in no hyperedge"
            )
        best = greedy_set_cover(universe, edges)
        best_tuple = tuple(best)
        nodes_before = self._nodes
        result = self._search(frozenset(universe), edges, (), len(best))
        if result is not None:
            best_tuple = result
        if metrics.enabled:
            metrics.counter("setcover_nodes").inc(self._nodes - nodes_before)
        self._cache.put(self._token, "exact", key, best_tuple)
        return list(best_tuple)

    def cover_size(self, target: Iterable[Vertex]) -> int:
        return len(self.cover(target))

    def _search(
        self,
        uncovered: frozenset[Vertex],
        edges: dict[EdgeName, frozenset[Vertex]],
        chosen: tuple[EdgeName, ...],
        budget: int,
    ) -> tuple[EdgeName, ...] | None:
        """Find a cover strictly smaller than ``budget`` if one exists."""
        self._nodes += 1
        if not uncovered:
            return chosen if len(chosen) < budget else None
        max_gain = max(len(edge & uncovered) for edge in edges.values())
        if max_gain == 0:
            return None
        if len(chosen) + ceil(len(uncovered) / max_gain) >= budget:
            return None
        # Branch on the element contained in the fewest edges: it
        # minimises the branching factor and must be covered by one of
        # its containing edges in any solution.
        counts: dict[Vertex, int] = {vertex: 0 for vertex in uncovered}
        for edge in edges.values():
            for vertex in edge & uncovered:
                counts[vertex] += 1
        pivot = min(uncovered, key=lambda v: (counts[v], repr(v)))
        candidates = sorted(
            (name for name, edge in edges.items() if pivot in edge),
            key=lambda n: (-len(edges[n] & uncovered), repr(n)),
        )
        best: tuple[EdgeName, ...] | None = None
        for name in candidates:
            found = self._search(
                uncovered - edges[name], edges, chosen + (name,), budget
            )
            if found is not None:
                best = found
                budget = len(found)
                if budget <= len(chosen) + 1:
                    break
        return best


def exact_set_cover(
    target: Iterable[Vertex],
    edges: Mapping[EdgeName, frozenset[Vertex]],
) -> list[EdgeName]:
    """One-shot exact cover (builds a throwaway solver)."""
    return ExactSetCoverSolver(edges).cover(target)


def exact_cover_size(
    target: Iterable[Vertex],
    edges: Mapping[EdgeName, frozenset[Vertex]],
) -> int:
    return len(exact_set_cover(target, edges))
