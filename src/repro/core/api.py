"""The high-level public API.

Most users want one of four things; each is one call here:

* :func:`treewidth` — the exact treewidth of a graph (A* or BB), with
  graceful degradation to bounds under a budget;
* :func:`treewidth_bounds` — fast heuristic bounds (no search);
* :func:`generalized_hypertree_width` — exact ghw of a hypergraph;
* :func:`decompose` — an actual decomposition object: a
  :class:`TreeDecomposition` for graphs, a (complete, validated)
  :class:`GeneralizedHypertreeDecomposition` for hypergraphs, built from
  the best ordering the selected method finds.

Everything accepts either exact algorithms (``"astar"``/``"bb"``) or
heuristics (``"ga"``, ``"saiga"``, ``"min-fill"``, ...).
"""

from __future__ import annotations

import random

from repro.bounds.ghw_lower import tw_ksc_width
from repro.bounds.lower import treewidth_lower_bound
from repro.bounds.upper import upper_bound_ordering
from repro.decompositions.elimination import (
    ordering_to_ghd,
    ordering_to_tree_decomposition,
)
from repro.decompositions.ghd import (
    GeneralizedHypertreeDecomposition,
    make_complete,
)
from repro.decompositions.tree_decomposition import TreeDecomposition
from repro.genetic.engine import GAParameters
from repro.genetic.ga_ghw import ga_ghw
from repro.genetic.ga_tw import ga_treewidth
from repro.genetic.saiga import saiga_ghw
from repro.hypergraphs.graph import Graph, Vertex
from repro.hypergraphs.hypergraph import Hypergraph
from repro.search.astar_ghw import astar_ghw
from repro.search.astar_tw import astar_treewidth
from repro.search.bb_ghw import branch_and_bound_ghw
from repro.search.bb_tw import branch_and_bound_treewidth
from repro.search.common import SearchResult


def _as_graph(instance: Graph | Hypergraph) -> Graph:
    if isinstance(instance, Hypergraph):
        return instance.primal_graph()
    return instance


def validate_hypergraph(hypergraph: Hypergraph) -> None:
    """Reject instances whose ghw is undefined (uncovered vertices)."""
    covered: set[Vertex] = set()
    for edge in hypergraph.edge_sets():
        covered |= edge
    isolated = hypergraph.vertices() - covered
    if isolated:
        raise ValueError(
            "ghw is undefined: vertices appear in no hyperedge: "
            f"{sorted(map(repr, isolated))}"
        )


def treewidth(
    instance: Graph | Hypergraph,
    algorithm: str = "astar",
    time_limit: float | None = None,
    node_limit: int | None = None,
    seed: int = 0,
    by_components: bool = False,
) -> SearchResult:
    """Exact treewidth via ``"astar"`` (A*-tw) or ``"bb"`` (BB-tw).

    ``by_components=True`` searches each connected component separately
    (the treewidth of a graph is the maximum over its components), which
    is strictly cheaper on disconnected instances.
    """
    graph = _as_graph(instance)
    rng = random.Random(seed)
    if algorithm == "astar":
        solver = astar_treewidth
    elif algorithm == "bb":
        solver = branch_and_bound_treewidth
    else:
        raise ValueError(f"unknown treewidth algorithm {algorithm!r}")
    if by_components:
        from repro.search.components import treewidth_by_components

        return treewidth_by_components(
            graph,
            solver,
            time_limit=time_limit,
            node_limit=node_limit,
            rng=rng,
        )
    return solver(
        graph, time_limit=time_limit, node_limit=node_limit, rng=rng
    )


def is_treewidth_at_most(
    instance: Graph | Hypergraph,
    k: int,
    time_limit: float | None = None,
    node_limit: int | None = None,
    seed: int = 0,
) -> bool | None:
    """Decide ``tw(instance) <= k``; ``None`` if the budget runs out."""
    result = treewidth(
        instance,
        time_limit=time_limit,
        node_limit=node_limit,
        seed=seed,
        by_components=True,
    )
    if result.upper_bound <= k:
        return True
    if result.lower_bound > k:
        return False
    return None if not result.optimal else result.value <= k


def treewidth_bounds(
    instance: Graph | Hypergraph, seed: int = 0
) -> tuple[int, int]:
    """Fast heuristic ``(lower, upper)`` treewidth bounds (no search)."""
    graph = _as_graph(instance)
    rng = random.Random(seed)
    lower = treewidth_lower_bound(graph, rng=rng)
    upper, _ordering = upper_bound_ordering(graph, "min-fill", rng)
    return lower, upper


def treewidth_upper_bound(
    instance: Graph | Hypergraph,
    method: str = "ga",
    parameters: GAParameters | None = None,
    seed: int = 0,
    time_limit: float | None = None,
    backend: str = "python",
    jobs: int = 1,
) -> int:
    """Heuristic treewidth upper bound: ``"ga"`` (GA-tw) or an ordering
    heuristic name (``"min-fill"``, ``"min-degree"``, ...).

    ``backend``/``jobs`` select the GA's fitness kernel and parallelism
    (see :mod:`repro.kernels`); ordering heuristics ignore them.
    """
    graph = _as_graph(instance)
    if method == "ga":
        return ga_treewidth(
            graph,
            parameters=parameters,
            seed=seed,
            time_limit=time_limit,
            backend=backend,
            jobs=jobs,
        ).best_fitness
    width, _ordering = upper_bound_ordering(
        graph, method, random.Random(seed)
    )
    return width


def generalized_hypertree_width(
    hypergraph: Hypergraph,
    algorithm: str = "bb",
    time_limit: float | None = None,
    node_limit: int | None = None,
    seed: int = 0,
    by_components: bool = False,
) -> SearchResult:
    """Exact ghw via ``"bb"`` (BB-ghw) or ``"astar"`` (A*-ghw).

    ``by_components=True`` splits the hypergraph at its primal-graph
    components before searching.
    """
    validate_hypergraph(hypergraph)
    rng = random.Random(seed)
    if algorithm == "bb":
        solver = branch_and_bound_ghw
    elif algorithm == "astar":
        solver = astar_ghw
    else:
        raise ValueError(f"unknown ghw algorithm {algorithm!r}")
    if by_components:
        from repro.search.components import ghw_by_components

        return ghw_by_components(
            hypergraph,
            solver,
            time_limit=time_limit,
            node_limit=node_limit,
            rng=rng,
        )
    return solver(
        hypergraph, time_limit=time_limit, node_limit=node_limit, rng=rng
    )


def is_ghw_at_most(
    hypergraph: Hypergraph,
    k: int,
    time_limit: float | None = None,
    node_limit: int | None = None,
    seed: int = 0,
) -> bool | None:
    """Decide ``ghw(hypergraph) <= k``; ``None`` if the budget runs out."""
    result = generalized_hypertree_width(
        hypergraph,
        time_limit=time_limit,
        node_limit=node_limit,
        seed=seed,
        by_components=True,
    )
    if result.upper_bound <= k:
        return True
    if result.lower_bound > k:
        return False
    return None if not result.optimal else result.value <= k


def ghw_bounds(hypergraph: Hypergraph, seed: int = 0) -> tuple[int, int]:
    """Fast heuristic ``(lower, upper)`` ghw bounds (no search)."""
    validate_hypergraph(hypergraph)
    rng = random.Random(seed)
    lower = tw_ksc_width(hypergraph, rng=rng)
    _width, ordering = upper_bound_ordering(
        hypergraph.primal_graph(), "min-fill", rng
    )
    from repro.decompositions.elimination import ordering_ghw

    upper = ordering_ghw(hypergraph, ordering, cover="greedy")
    return lower, upper


def ghw_upper_bound(
    hypergraph: Hypergraph,
    method: str = "ga",
    parameters: GAParameters | None = None,
    seed: int = 0,
    time_limit: float | None = None,
    backend: str = "python",
    jobs: int = 1,
) -> int:
    """Heuristic ghw upper bound: ``"ga"`` (GA-ghw) or ``"saiga"``.

    ``backend``/``jobs`` select the fitness kernel and parallelism
    (see :mod:`repro.kernels`).
    """
    validate_hypergraph(hypergraph)
    if method == "ga":
        return ga_ghw(
            hypergraph,
            parameters=parameters,
            seed=seed,
            time_limit=time_limit,
            backend=backend,
            jobs=jobs,
        ).best_fitness
    if method == "saiga":
        return saiga_ghw(
            hypergraph,
            seed=seed,
            time_limit=time_limit,
            backend=backend,
            jobs=jobs,
        ).best_fitness
    raise ValueError(f"unknown ghw upper-bound method {method!r}")


def decompose_graph(
    graph: Graph,
    algorithm: str = "astar",
    time_limit: float | None = None,
    node_limit: int | None = None,
    seed: int = 0,
    backend: str = "python",
    jobs: int = 1,
) -> TreeDecomposition:
    """A validated tree decomposition of ``graph``.

    Exact algorithms produce optimal width when they finish; under a
    budget the best ordering found so far is materialised.
    ``backend``/``jobs`` apply to the ``"ga"`` path only.
    """
    if graph.num_vertices() == 0:
        raise ValueError("cannot decompose the empty graph")
    if algorithm in ("astar", "bb"):
        result = treewidth(
            graph,
            algorithm=algorithm,
            time_limit=time_limit,
            node_limit=node_limit,
            seed=seed,
        )
        ordering = result.ordering
    elif algorithm == "ga":
        ordering = ga_treewidth(
            graph, seed=seed, time_limit=time_limit, backend=backend, jobs=jobs
        ).best_individual
    else:
        _width, ordering = upper_bound_ordering(
            graph, algorithm, random.Random(seed)
        )
    decomposition = ordering_to_tree_decomposition(graph, ordering)
    decomposition.validate(graph)
    return decomposition


def decompose(
    hypergraph: Hypergraph,
    algorithm: str = "bb",
    cover: str = "exact",
    time_limit: float | None = None,
    node_limit: int | None = None,
    seed: int = 0,
    complete: bool = True,
    backend: str = "python",
    jobs: int = 1,
) -> GeneralizedHypertreeDecomposition:
    """A validated (complete) GHD of ``hypergraph``.

    ``algorithm`` selects how the ordering is found (``"bb"``,
    ``"astar"``, ``"ga"``, ``"saiga"`` or an ordering heuristic name);
    ``cover`` selects how bags are covered (``"exact"`` or ``"greedy"``);
    ``backend``/``jobs`` apply to the ``"ga"``/``"saiga"`` paths.
    """
    validate_hypergraph(hypergraph)
    if hypergraph.num_vertices() == 0:
        raise ValueError("cannot decompose the empty hypergraph")
    if algorithm in ("bb", "astar"):
        result = generalized_hypertree_width(
            hypergraph,
            algorithm=algorithm,
            time_limit=time_limit,
            node_limit=node_limit,
            seed=seed,
        )
        ordering = result.ordering
    elif algorithm == "ga":
        ordering = ga_ghw(
            hypergraph,
            seed=seed,
            time_limit=time_limit,
            backend=backend,
            jobs=jobs,
        ).best_individual
    elif algorithm == "saiga":
        ordering = saiga_ghw(
            hypergraph,
            seed=seed,
            time_limit=time_limit,
            backend=backend,
            jobs=jobs,
        ).best_individual
    else:
        _width, ordering = upper_bound_ordering(
            hypergraph.primal_graph(), algorithm, random.Random(seed)
        )
    ghd = ordering_to_ghd(hypergraph, ordering, cover=cover)
    if complete:
        ghd = make_complete(ghd, hypergraph)
    ghd.validate(hypergraph)
    return ghd


def run_portfolio(
    instance: Graph | Hypergraph,
    measure: str = "tw",
    strategies: str | list | None = None,
    time_limit: float | None = None,
    mode: str = "process",
    seed: int = 0,
    checkpoint_dir: str | None = None,
    instance_name: str = "instance",
):
    """Race a portfolio of strategies on ``instance`` and fold bounds.

    ``strategies`` is a comma-separated kind list (``"bb,ga,sa,tabu"``),
    a list of :class:`~repro.portfolio.strategies.StrategySpec`, or
    ``None`` for the default 4-strategy race. Returns a
    :class:`~repro.portfolio.results.PortfolioResult`; the race certifies
    optimality when any worker's lower bound meets any worker's upper
    bound, even if no single worker certified on its own.
    """
    from repro.portfolio import PortfolioSpec, parse_strategies
    from repro.portfolio import run_portfolio as race

    if isinstance(strategies, str):
        strategies = parse_strategies(strategies, measure, seed=seed)
    spec = PortfolioSpec(
        measure=measure,
        strategies=list(strategies or []),
        time_limit=time_limit,
        mode=mode,
        seed=seed,
        instance_name=instance_name,
        checkpoint_dir=checkpoint_dir,
    )
    return race(instance, spec)


def resume_portfolio(
    instance: Graph | Hypergraph,
    checkpoint_dir: str,
    time_limit: float | None = None,
    mode: str | None = None,
):
    """Resume a checkpointed portfolio race (see the portfolio docs)."""
    from repro.portfolio import resume_portfolio as resume

    return resume(instance, checkpoint_dir, time_limit=time_limit, mode=mode)
