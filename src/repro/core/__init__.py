"""High-level public API."""

from repro.core.api import (
    decompose,
    decompose_graph,
    generalized_hypertree_width,
    ghw_bounds,
    ghw_upper_bound,
    is_ghw_at_most,
    is_treewidth_at_most,
    treewidth,
    treewidth_bounds,
    treewidth_upper_bound,
    validate_hypergraph,
)

__all__ = [
    "decompose",
    "decompose_graph",
    "generalized_hypertree_width",
    "ghw_bounds",
    "ghw_upper_bound",
    "is_ghw_at_most",
    "is_treewidth_at_most",
    "treewidth",
    "treewidth_bounds",
    "treewidth_upper_bound",
    "validate_hypergraph",
]
