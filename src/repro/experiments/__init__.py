"""Programmable thesis-style experiments (instances x algorithms)."""

from repro.experiments.runner import (
    ExperimentSpec,
    ExperimentTable,
    run_experiment,
)

__all__ = ["ExperimentSpec", "ExperimentTable", "run_experiment"]
