"""A programmable experiment runner.

The thesis's evaluation consists of tables: instances down the rows,
algorithms/bounds across the columns. This module makes that pattern a
library feature so downstream users can stage their own comparisons
without copying the benchmark harness:

    spec = ExperimentSpec(
        instances=["queen5_5", "myciel4"],
        measure="tw",
        algorithms=["astar", "ga", "sa", "min-fill"],
        time_limit=5.0,
    )
    table = run_experiment(spec)
    print(table.to_text())

Algorithms are addressed by the same names the CLI uses; exact
algorithms report ``value`` or ``lb*[ub]`` brackets, heuristics report
their upper bound. Results are plain data (list of dicts), so they feed
into any further analysis.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro import obs
from repro.genetic.engine import GAParameters
from repro.hypergraphs.graph import Graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.instances.registry import instance as registry_instance
from repro.obs.report import RunReport, append_jsonl

EXACT_TW = ("astar", "bb")
EXACT_GHW = ("astar", "bb")
HEURISTIC_TW = ("ga", "sa", "tabu", "min-fill", "min-degree", "min-width", "mcs")
HEURISTIC_GHW = ("ga", "saiga", "sa", "tabu")
#: The anytime racing portfolio (inline mode): certifies when any
#: worker's lower bound meets any worker's upper bound.
PORTFOLIO = "portfolio"


@dataclass
class ExperimentSpec:
    """What to run: instances x algorithms for one width measure."""

    instances: list[str]
    measure: str = "tw"
    algorithms: list[str] = field(default_factory=lambda: ["astar"])
    time_limit: float | None = None
    node_limit: int | None = None
    seed: int = 0
    ga_parameters: GAParameters | None = None
    backend: str = "python"
    """Fitness kernel for the heuristics: ``"python"`` or ``"bitset"``."""
    jobs: int = 1
    """Process-pool width for GA/SAIGA population evaluation (1 = serial)."""

    def validated(self) -> "ExperimentSpec":
        if self.measure not in ("tw", "ghw"):
            raise ValueError("measure must be 'tw' or 'ghw'")
        from repro.kernels.evaluators import check_backend

        check_backend(self.backend)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        known = (
            set(EXACT_TW) | set(HEURISTIC_TW)
            if self.measure == "tw"
            else set(EXACT_GHW) | set(HEURISTIC_GHW)
        )
        known.add(PORTFOLIO)
        unknown = [a for a in self.algorithms if a not in known]
        if unknown:
            raise ValueError(
                f"unknown algorithms for {self.measure}: {unknown}; "
                f"choose from {sorted(known)}"
            )
        if not self.instances:
            raise ValueError("need at least one instance")
        return self


@dataclass
class ExperimentTable:
    """Results: one dict per instance, one key per algorithm."""

    measure: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)

    reports: list[RunReport] = field(default_factory=list)
    """One telemetry report per (instance, algorithm) cell, when enabled."""

    def to_text(self) -> str:
        headers = ["instance", "V", "size"] + self.columns
        grid = [headers]
        for row in self.rows:
            grid.append([str(row.get(h, "")) for h in headers])
        widths = [
            max(len(line[i]) for line in grid) for i in range(len(headers))
        ]
        lines = [
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
            for line in grid
        ]
        return "\n".join(lines)

    def column(self, name: str) -> list:
        return [row[name] for row in self.rows]


def _exact_fields(result) -> tuple[str | int, dict]:
    """Cell text plus structured outcome for an exact SearchResult."""
    if result.optimal:
        cell: str | int = result.value
        fields = {
            "status": "optimal",
            "value": result.value,
            "lower_bound": result.lower_bound,
            "upper_bound": result.upper_bound,
        }
    else:
        cell = f"{result.lower_bound}*[{result.upper_bound}]"
        fields = {
            "status": "interrupted",
            "value": None,
            "lower_bound": result.lower_bound,
            "upper_bound": result.upper_bound,
        }
    return cell, fields


def _heuristic_fields(best_fitness: int) -> tuple[int, dict]:
    """Heuristics certify only an upper bound."""
    return best_fitness, {
        "status": "heuristic",
        "value": None,
        "lower_bound": None,
        "upper_bound": best_fitness,
    }


def _run_portfolio(instance, spec) -> tuple[str | int, dict]:
    """One inline-mode race as a table cell; worker reports ride along."""
    from repro.core.api import run_portfolio
    from repro.portfolio.results import portfolio_status

    result = run_portfolio(
        instance,
        measure=spec.measure,
        time_limit=spec.time_limit,
        mode="inline",
        seed=spec.seed,
    )
    if result.optimal:
        cell: str | int = result.value
    elif result.upper_bound is not None:
        lb = "?" if result.lower_bound is None else result.lower_bound
        cell = f"{lb}*[{result.upper_bound}]"
    else:
        cell = "-"
    return cell, {
        "status": portfolio_status(result),
        "value": result.value,
        "lower_bound": result.lower_bound,
        "upper_bound": result.upper_bound,
        "workers": result.worker_reports,
    }


def _run_tw_algorithm(name, graph, spec) -> tuple[str | int, dict]:
    from repro.core.api import treewidth, treewidth_upper_bound
    from repro.localsearch import sa_treewidth, tabu_treewidth

    if name == PORTFOLIO:
        return _run_portfolio(graph, spec)
    if name in EXACT_TW:
        result = treewidth(
            graph,
            algorithm=name,
            time_limit=spec.time_limit,
            node_limit=spec.node_limit,
            seed=spec.seed,
        )
        return _exact_fields(result)
    if name == "sa":
        result = sa_treewidth(
            graph,
            seed=spec.seed,
            time_limit=spec.time_limit,
            backend=spec.backend,
        )
        return _heuristic_fields(result.best_fitness)
    if name == "tabu":
        result = tabu_treewidth(
            graph,
            seed=spec.seed,
            time_limit=spec.time_limit,
            backend=spec.backend,
        )
        return _heuristic_fields(result.best_fitness)
    if name == "ga":
        from repro.genetic.ga_tw import ga_treewidth

        result = ga_treewidth(
            graph,
            parameters=spec.ga_parameters,
            seed=spec.seed,
            time_limit=spec.time_limit,
            backend=spec.backend,
            jobs=spec.jobs,
        )
        return _heuristic_fields(result.best_fitness)
    return _heuristic_fields(
        treewidth_upper_bound(graph, method=name, seed=spec.seed)
    )


def _run_ghw_algorithm(name, hypergraph, spec) -> tuple[str | int, dict]:
    from repro.core.api import generalized_hypertree_width
    from repro.localsearch import sa_ghw, tabu_ghw

    if name == PORTFOLIO:
        return _run_portfolio(hypergraph, spec)
    if name in EXACT_GHW:
        result = generalized_hypertree_width(
            hypergraph,
            algorithm=name,
            time_limit=spec.time_limit,
            node_limit=spec.node_limit,
            seed=spec.seed,
        )
        return _exact_fields(result)
    if name == "sa":
        result = sa_ghw(
            hypergraph,
            seed=spec.seed,
            time_limit=spec.time_limit,
            backend=spec.backend,
        )
        return _heuristic_fields(result.best_fitness)
    if name == "tabu":
        result = tabu_ghw(
            hypergraph,
            seed=spec.seed,
            time_limit=spec.time_limit,
            backend=spec.backend,
        )
        return _heuristic_fields(result.best_fitness)
    if name == "saiga":
        from repro.genetic.saiga import saiga_ghw

        result = saiga_ghw(
            hypergraph,
            seed=spec.seed,
            time_limit=spec.time_limit,
            backend=spec.backend,
            jobs=spec.jobs,
        )
        return _heuristic_fields(result.best_fitness)
    from repro.genetic.ga_ghw import ga_ghw

    result = ga_ghw(
        hypergraph,
        parameters=spec.ga_parameters,
        seed=spec.seed,
        time_limit=spec.time_limit,
        backend=spec.backend,
        jobs=spec.jobs,
    )
    return _heuristic_fields(result.best_fitness)


def run_experiment(
    spec: ExperimentSpec,
    telemetry_out: str | None = None,
    collect_reports: bool = False,
) -> ExperimentTable:
    """Execute the spec and return the filled table.

    With ``telemetry_out`` (a ``.jsonl`` path) or ``collect_reports``,
    every (instance, algorithm) cell runs under ``repro.obs``
    instrumentation and yields one :class:`RunReport`; reports land in
    ``table.reports`` and, if a path was given, are appended to the file
    as JSON lines.
    """
    spec = spec.validated()
    telemetry = telemetry_out is not None or collect_reports
    table = ExperimentTable(measure=spec.measure, columns=list(spec.algorithms))
    for name in spec.instances:
        loaded = registry_instance(name)
        if spec.measure == "ghw" and isinstance(loaded, Graph):
            raise ValueError(f"instance {name!r} is a graph; ghw needs a hypergraph")
        row: dict = {"instance": name, "V": _num_vertices(loaded), "size": _size(loaded)}
        for algorithm in spec.algorithms:
            started = time.monotonic()
            with obs.instrument() if telemetry else _noop_context() as ins:
                if spec.measure == "tw":
                    cell, fields = _run_tw_algorithm(algorithm, loaded, spec)
                else:
                    cell, fields = _run_ghw_algorithm(algorithm, loaded, spec)
            elapsed = time.monotonic() - started
            row[algorithm] = cell
            row[f"{algorithm}_s"] = round(elapsed, 2)
            if telemetry:
                table.reports.append(
                    RunReport.capture(
                        ins,
                        instance=name,
                        solver=algorithm,
                        measure=spec.measure,
                        elapsed_s=elapsed,
                        meta={
                            "seed": spec.seed,
                            "backend": spec.backend,
                            "jobs": spec.jobs,
                        },
                        **fields,
                    )
                )
        table.rows.append(row)
    if telemetry_out is not None:
        for report in table.reports:
            append_jsonl(telemetry_out, report)
    return table


@contextmanager
def _noop_context():
    """Stand-in for ``obs.instrument()`` when telemetry is off."""
    yield obs.DISABLED


def _num_vertices(instance: Graph | Hypergraph) -> int:
    return instance.num_vertices()


def _size(instance: Graph | Hypergraph) -> str:
    if isinstance(instance, Hypergraph):
        return f"|H|={instance.num_edges()}"
    return f"|E|={instance.num_edges()}"
