"""A programmable experiment runner.

The thesis's evaluation consists of tables: instances down the rows,
algorithms/bounds across the columns. This module makes that pattern a
library feature so downstream users can stage their own comparisons
without copying the benchmark harness:

    spec = ExperimentSpec(
        instances=["queen5_5", "myciel4"],
        measure="tw",
        algorithms=["astar", "ga", "sa", "min-fill"],
        time_limit=5.0,
    )
    table = run_experiment(spec)
    print(table.to_text())

Algorithms are addressed by the same names the CLI uses; exact
algorithms report ``value`` or ``lb*[ub]`` brackets, heuristics report
their upper bound. Results are plain data (list of dicts), so they feed
into any further analysis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.genetic.engine import GAParameters
from repro.hypergraphs.graph import Graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.instances.registry import instance as registry_instance

EXACT_TW = ("astar", "bb")
EXACT_GHW = ("astar", "bb")
HEURISTIC_TW = ("ga", "sa", "tabu", "min-fill", "min-degree", "min-width", "mcs")
HEURISTIC_GHW = ("ga", "saiga", "sa", "tabu")


@dataclass
class ExperimentSpec:
    """What to run: instances x algorithms for one width measure."""

    instances: list[str]
    measure: str = "tw"
    algorithms: list[str] = field(default_factory=lambda: ["astar"])
    time_limit: float | None = None
    node_limit: int | None = None
    seed: int = 0
    ga_parameters: GAParameters | None = None

    def validated(self) -> "ExperimentSpec":
        if self.measure not in ("tw", "ghw"):
            raise ValueError("measure must be 'tw' or 'ghw'")
        known = (
            set(EXACT_TW) | set(HEURISTIC_TW)
            if self.measure == "tw"
            else set(EXACT_GHW) | set(HEURISTIC_GHW)
        )
        unknown = [a for a in self.algorithms if a not in known]
        if unknown:
            raise ValueError(
                f"unknown algorithms for {self.measure}: {unknown}; "
                f"choose from {sorted(known)}"
            )
        if not self.instances:
            raise ValueError("need at least one instance")
        return self


@dataclass
class ExperimentTable:
    """Results: one dict per instance, one key per algorithm."""

    measure: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)

    def to_text(self) -> str:
        headers = ["instance", "V", "size"] + self.columns
        grid = [headers]
        for row in self.rows:
            grid.append([str(row.get(h, "")) for h in headers])
        widths = [
            max(len(line[i]) for line in grid) for i in range(len(headers))
        ]
        lines = [
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
            for line in grid
        ]
        return "\n".join(lines)

    def column(self, name: str) -> list:
        return [row[name] for row in self.rows]


def _run_tw_algorithm(name, graph, spec):
    from repro.core.api import treewidth, treewidth_upper_bound
    from repro.localsearch import sa_treewidth, tabu_treewidth

    if name in EXACT_TW:
        result = treewidth(
            graph,
            algorithm=name,
            time_limit=spec.time_limit,
            node_limit=spec.node_limit,
            seed=spec.seed,
        )
        if result.optimal:
            return result.value
        return f"{result.lower_bound}*[{result.upper_bound}]"
    if name == "sa":
        return sa_treewidth(
            graph, seed=spec.seed, time_limit=spec.time_limit
        ).best_fitness
    if name == "tabu":
        return tabu_treewidth(
            graph, seed=spec.seed, time_limit=spec.time_limit
        ).best_fitness
    if name == "ga":
        from repro.genetic.ga_tw import ga_treewidth

        return ga_treewidth(
            graph,
            parameters=spec.ga_parameters,
            seed=spec.seed,
            time_limit=spec.time_limit,
        ).best_fitness
    return treewidth_upper_bound(graph, method=name, seed=spec.seed)


def _run_ghw_algorithm(name, hypergraph, spec):
    from repro.core.api import generalized_hypertree_width
    from repro.localsearch import sa_ghw, tabu_ghw

    if name in EXACT_GHW:
        result = generalized_hypertree_width(
            hypergraph,
            algorithm=name,
            time_limit=spec.time_limit,
            node_limit=spec.node_limit,
            seed=spec.seed,
        )
        if result.optimal:
            return result.value
        return f"{result.lower_bound}*[{result.upper_bound}]"
    if name == "sa":
        return sa_ghw(
            hypergraph, seed=spec.seed, time_limit=spec.time_limit
        ).best_fitness
    if name == "tabu":
        return tabu_ghw(
            hypergraph, seed=spec.seed, time_limit=spec.time_limit
        ).best_fitness
    if name == "saiga":
        from repro.genetic.saiga import saiga_ghw

        return saiga_ghw(
            hypergraph, seed=spec.seed, time_limit=spec.time_limit
        ).best_fitness
    from repro.genetic.ga_ghw import ga_ghw

    return ga_ghw(
        hypergraph,
        parameters=spec.ga_parameters,
        seed=spec.seed,
        time_limit=spec.time_limit,
    ).best_fitness


def run_experiment(spec: ExperimentSpec) -> ExperimentTable:
    """Execute the spec and return the filled table."""
    spec = spec.validated()
    table = ExperimentTable(measure=spec.measure, columns=list(spec.algorithms))
    for name in spec.instances:
        loaded = registry_instance(name)
        if spec.measure == "ghw" and isinstance(loaded, Graph):
            raise ValueError(f"instance {name!r} is a graph; ghw needs a hypergraph")
        row: dict = {"instance": name, "V": _num_vertices(loaded), "size": _size(loaded)}
        for algorithm in spec.algorithms:
            started = time.monotonic()
            if spec.measure == "tw":
                row[algorithm] = _run_tw_algorithm(algorithm, loaded, spec)
            else:
                row[algorithm] = _run_ghw_algorithm(algorithm, loaded, spec)
            row[f"{algorithm}_s"] = round(time.monotonic() - started, 2)
        table.rows.append(row)
    return table


def _num_vertices(instance: Graph | Hypergraph) -> int:
    return instance.num_vertices()


def _size(instance: Graph | Hypergraph) -> str:
    if isinstance(instance, Hypergraph):
        return f"|H|={instance.num_edges()}"
    return f"|E|={instance.num_edges()}"
