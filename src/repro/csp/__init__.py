"""Constraint satisfaction: problems, relations, acyclic + decomposition solving."""

from repro.csp.adaptive_consistency import adaptive_consistency
from repro.csp.enumerate import (
    count_solutions_with_ghd,
    enumerate_with_ghd,
    enumerate_with_tree_decomposition,
)
from repro.csp.acyclic import (
    NotAcyclicError,
    acyclic_solve,
    gyo_join_tree,
    is_acyclic,
    solve_relation_tree,
)
from repro.csp.backtracking import (
    backtracking_solve,
    count_solutions,
    iterate_solutions,
)
from repro.csp.builders import (
    acyclic_chain_csp,
    australia_map_coloring,
    example_5_csp,
    graph_coloring_csp,
    n_queens_csp,
    random_binary_csp,
    sat_csp,
)
from repro.csp.problem import CSP, Constraint, make_csp
from repro.csp.relations import Relation, join_all
from repro.csp.solve import solve_with_ghd, solve_with_tree_decomposition

__all__ = [
    "CSP",
    "adaptive_consistency",
    "Constraint",
    "NotAcyclicError",
    "Relation",
    "acyclic_chain_csp",
    "acyclic_solve",
    "australia_map_coloring",
    "backtracking_solve",
    "count_solutions",
    "count_solutions_with_ghd",
    "enumerate_with_ghd",
    "enumerate_with_tree_decomposition",
    "example_5_csp",
    "graph_coloring_csp",
    "gyo_join_tree",
    "is_acyclic",
    "iterate_solutions",
    "join_all",
    "make_csp",
    "n_queens_csp",
    "random_binary_csp",
    "sat_csp",
    "solve_relation_tree",
    "solve_with_ghd",
    "solve_with_tree_decomposition",
]
