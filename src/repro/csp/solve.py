"""Solving CSPs from decompositions (Section 2.4, Figures 2.8-2.9).

Two pipelines, both ending in Acyclic Solving on a relation-labelled
tree:

* **Tree decomposition** (Join-Tree Clustering, Figure 2.8): place every
  constraint at a node whose bag contains its scope; each node's
  subproblem relation is the join of its constraints extended over the
  bag's unconstrained variables (time O(n * d^(k+1)) for width k).
* **Generalized hypertree decomposition** (Figure 2.9): complete the GHD
  (Lemma 2), then each node's relation is the projection onto the bag of
  the join of its lambda-constraints — polynomial in |instance|^k with
  *no* domain-exponential blowup, which is the whole point of ghw.

Both return one solution or ``None``; they are cross-validated against
the backtracking baseline in the test suite.
"""

from __future__ import annotations

from repro import obs
from repro.csp.acyclic import solve_relation_tree
from repro.csp.problem import CSP
from repro.csp.relations import Relation, Value, VariableName, join_all
from repro.decompositions.ghd import (
    GeneralizedHypertreeDecomposition,
    make_complete,
)
from repro.decompositions.tree_decomposition import (
    DecompositionError,
    TreeDecomposition,
)


def _tree_parent_map(tree: TreeDecomposition) -> dict[int, int | None]:
    parents = tree.parent_map()
    if len(parents) != tree.num_nodes():
        raise DecompositionError("decomposition tree is not connected")
    return parents


def _finalise(
    csp: CSP, assignment: dict[VariableName, Value] | None
) -> dict[VariableName, Value] | None:
    """Give unmentioned variables an arbitrary domain value."""
    if assignment is None:
        return None
    for variable, domain in csp.domains.items():
        if variable not in assignment:
            if not domain:
                return None
            assignment[variable] = min(domain, key=repr)
    return assignment


def solve_with_tree_decomposition(
    csp: CSP, decomposition: TreeDecomposition
) -> dict[VariableName, Value] | None:
    """Join-Tree Clustering: solve ``csp`` from a tree decomposition.

    The decomposition must be valid for the CSP's constraint hypergraph
    (checked; a :class:`DecompositionError` is raised otherwise).
    """
    ins = obs.current()
    metrics = ins.metrics
    with ins.tracer.span("jtc", nodes=decomposition.num_nodes()):
        hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
        decomposition.validate(hypergraph)

        # Step 1: place each constraint at one node containing its scope.
        placement: dict[int, list] = {
            node: [] for node in decomposition.nodes()
        }
        for constraint in csp.constraints:
            scope = set(constraint.scope)
            host = next(
                node
                for node in decomposition.nodes()
                if scope <= decomposition.bags[node]
            )
            placement[host].append(constraint)

        # Step 2: solve each subproblem — join the placed constraints, then
        # extend over the bag's remaining variables with their full domains.
        relations: dict[int, Relation] = {}
        with ins.tracer.span("build_relations"):
            for node in decomposition.nodes():
                bag = decomposition.bags[node]
                relation = join_all(
                    [constraint.relation for constraint in placement[node]]
                )
                for variable in sorted(bag - set(relation.schema), key=repr):
                    relation = relation.join(
                        Relation.full(variable, csp.domains[variable])
                    )
                relations[node] = relation.project(sorted(bag, key=repr))
                if relations[node].is_empty() and bag:
                    return None
        if metrics.enabled:
            metrics.counter("csp_relations", pipeline="jtc").inc(
                len(relations)
            )
            metrics.counter("csp_tuples", pipeline="jtc").inc(
                sum(len(r.tuples) for r in relations.values())
            )

        # Step 3: Acyclic Solving over the resulting join tree.
        parents = _tree_parent_map(decomposition)
        with ins.tracer.span("acyclic_solving"):
            assignment = solve_relation_tree(relations, parents)
        return _finalise(csp, assignment)


def solve_with_ghd(
    csp: CSP, ghd: GeneralizedHypertreeDecomposition
) -> dict[VariableName, Value] | None:
    """Solve ``csp`` from a generalized hypertree decomposition.

    The GHD's lambda-labels must name the CSP's constraints (which they
    do when the GHD was built from ``csp.constraint_hypergraph()``). The
    GHD is completed first (Lemma 2) so every constraint is enforced.
    """
    ins = obs.current()
    metrics = ins.metrics
    with ins.tracer.span("ghd_solve", nodes=ghd.tree.num_nodes()):
        hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
        ghd.validate(hypergraph)
        with ins.tracer.span("complete_ghd"):
            complete = make_complete(ghd, hypergraph)

        constraint_relation = {
            constraint.name: constraint.relation
            for constraint in csp.constraints
        }
        relations: dict[int, Relation] = {}
        with ins.tracer.span("build_relations"):
            for node in complete.nodes():
                bag = complete.bag(node)
                joined = join_all(
                    [
                        constraint_relation[name]
                        for name in sorted(complete.cover(node), key=repr)
                    ]
                )
                relations[node] = joined.project(
                    [v for v in sorted(joined.schema, key=repr) if v in bag]
                )
                if relations[node].is_empty() and bag:
                    return None
        if metrics.enabled:
            metrics.counter("csp_relations", pipeline="ghd").inc(
                len(relations)
            )
            metrics.counter("csp_tuples", pipeline="ghd").inc(
                sum(len(r.tuples) for r in relations.values())
            )

        parents = _tree_parent_map(complete.tree)
        with ins.tracer.span("acyclic_solving"):
            assignment = solve_relation_tree(relations, parents)
        return _finalise(csp, assignment)


def solutions_equal_modulo_free_variables(
    csp: CSP,
    first: dict[VariableName, Value] | None,
    second: dict[VariableName, Value] | None,
) -> bool:
    """Do two solver outputs agree on satisfiability and validity?

    Decomposition solvers may return *different* solutions than the
    baseline; equality is judged as "both None" or "both are actual
    solutions of the CSP".
    """
    if first is None or second is None:
        return first is None and second is None
    return csp.is_solution(first) and csp.is_solution(second)
