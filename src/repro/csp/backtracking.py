"""A baseline backtracking CSP solver (ground truth for everything else).

The decomposition-based solvers of :mod:`repro.csp.solve` are verified
against this direct search in the test suite. It is deliberately simple —
chronological backtracking with the minimum-remaining-values variable
order and forward checking — because its role is correctness, not speed.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.csp.problem import CSP, Constraint
from repro.csp.relations import Value, VariableName


def _consistent(
    constraint: Constraint, assignment: dict[VariableName, Value]
) -> bool:
    """Check a constraint against a *partial* assignment.

    Unassigned scope variables make the constraint satisfiable iff some
    allowed tuple agrees with the assigned part.
    """
    scope = constraint.scope
    assigned = [
        (i, assignment[variable])
        for i, variable in enumerate(scope)
        if variable in assignment
    ]
    if len(assigned) < len(scope):
        return any(
            all(row[i] == value for i, value in assigned)
            for row in constraint.relation.tuples
        )
    row = tuple(assignment[variable] for variable in scope)
    return row in constraint.relation.tuples


def iterate_solutions(csp: CSP) -> Iterator[dict[VariableName, Value]]:
    """Yield every complete consistent assignment (Definition 6)."""
    variables = list(csp.domains)
    watching: dict[VariableName, list[Constraint]] = {
        variable: [] for variable in variables
    }
    for constraint in csp.constraints:
        for variable in constraint.scope:
            watching[variable].append(constraint)

    assignment: dict[VariableName, Value] = {}

    def extend() -> Iterator[dict[VariableName, Value]]:
        if len(assignment) == len(variables):
            yield dict(assignment)
            return
        # MRV on the static domain sizes; simple but effective enough.
        variable = min(
            (v for v in variables if v not in assignment),
            key=lambda v: (len(csp.domains[v]), repr(v)),
        )
        for value in sorted(csp.domains[variable], key=repr):
            assignment[variable] = value
            if all(
                _consistent(constraint, assignment)
                for constraint in watching[variable]
            ):
                yield from extend()
            del assignment[variable]

    yield from extend()


def backtracking_solve(csp: CSP) -> dict[VariableName, Value] | None:
    """First solution, or ``None``."""
    return next(iterate_solutions(csp), None)


def count_solutions(csp: CSP, limit: int | None = None) -> int:
    """Number of solutions (optionally capped at ``limit``)."""
    count = 0
    for _solution in iterate_solutions(csp):
        count += 1
        if limit is not None and count >= limit:
            break
    return count
