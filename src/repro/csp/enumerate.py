"""Enumerating *all* solutions from decompositions.

The thesis's Section 2.2.2 cares about "all complete consistent
assignments", and the payoff of a complete GHD of width k is that the
full solution set is computable in *output-polynomial* time: after the
bottom-up semijoin sweep every remaining tuple participates in at least
one solution, so a top-down backtrack-free sweep enumerates them without
dead ends.

:func:`enumerate_relation_tree` is the generic engine (the all-solutions
sibling of :func:`repro.csp.acyclic.solve_relation_tree`);
:func:`enumerate_with_ghd` / :func:`enumerate_with_tree_decomposition`
wire it to CSPs. Free variables multiply the stream by their domains.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from itertools import product

from repro.csp.acyclic import _children_map
from repro.csp.problem import CSP
from repro.csp.relations import Relation, Value, VariableName
from repro.decompositions.ghd import (
    GeneralizedHypertreeDecomposition,
    make_complete,
)
from repro.decompositions.tree_decomposition import TreeDecomposition
from repro.hypergraphs.hypergraph import EdgeName


def enumerate_relation_tree(
    relations: dict[EdgeName, Relation],
    parent: Mapping[EdgeName, EdgeName | None],
) -> Iterator[dict[VariableName, Value]]:
    """Yield every assignment consistent with a relation-labelled forest.

    Performs the full bottom-up semijoin reduction first; afterwards the
    top-down enumeration never backtracks past a node (every surviving
    tuple extends to a solution of its subtree).
    """
    roots, children = _children_map(parent)
    if not roots and relations:
        raise ValueError("parent map has a cycle (no root)")
    working = dict(relations)

    order: list[EdgeName] = []
    stack = list(roots)
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(children[node])
    for node in reversed(order):
        up = parent[node]
        if up is None:
            continue
        working[up] = working[up].semijoin(working[node])
        if working[up].is_empty():
            return
    if any(working[root].is_empty() for root in roots):
        return

    def extend(
        index: int, assignment: dict[VariableName, Value]
    ) -> Iterator[dict[VariableName, Value]]:
        if index == len(order):
            yield dict(assignment)
            return
        node = order[index]
        relation = working[node].select(assignment)
        for row in sorted(relation.tuples, key=repr):
            added = [
                (variable, value)
                for variable, value in zip(relation.schema, row)
                if variable not in assignment
            ]
            for variable, value in added:
                assignment[variable] = value
            yield from extend(index + 1, assignment)
            for variable, _value in added:
                del assignment[variable]

    yield from extend(0, {})


def _with_free_variables(
    csp: CSP, partials: Iterator[dict[VariableName, Value]]
) -> Iterator[dict[VariableName, Value]]:
    """Extend partial assignments over the CSP's free variables."""
    free = [
        variable
        for variable in csp.domains
        if not any(
            variable in constraint.scope for constraint in csp.constraints
        )
    ]
    free_domains = [sorted(csp.domains[v], key=repr) for v in free]
    for partial in partials:
        if free:
            for values in product(*free_domains):
                combined = dict(partial)
                combined.update(zip(free, values))
                yield combined
        else:
            yield partial


def enumerate_with_tree_decomposition(
    csp: CSP, decomposition: TreeDecomposition
) -> Iterator[dict[VariableName, Value]]:
    """All solutions of ``csp`` via Join-Tree Clustering."""
    from repro.csp.relations import join_all

    hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
    decomposition.validate(hypergraph)
    placement: dict[int, list] = {node: [] for node in decomposition.nodes()}
    for constraint in csp.constraints:
        scope = set(constraint.scope)
        host = next(
            node
            for node in decomposition.nodes()
            if scope <= decomposition.bags[node]
        )
        placement[host].append(constraint)
    relations: dict[int, Relation] = {}
    for node in decomposition.nodes():
        bag = decomposition.bags[node]
        relation = join_all(
            [constraint.relation for constraint in placement[node]]
        )
        for variable in sorted(bag - set(relation.schema), key=repr):
            relation = relation.join(
                Relation.full(variable, csp.domains[variable])
            )
        relations[node] = relation.project(sorted(bag, key=repr))
    parents = decomposition.parent_map()
    yield from _with_free_variables(
        csp, enumerate_relation_tree(relations, parents)
    )


def enumerate_with_ghd(
    csp: CSP, ghd: GeneralizedHypertreeDecomposition
) -> Iterator[dict[VariableName, Value]]:
    """All solutions of ``csp`` via a (completed) GHD — the
    output-polynomial enumeration the thesis's Section 2.3.2 promises."""
    from repro.csp.relations import join_all

    hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
    ghd.validate(hypergraph)
    complete = make_complete(ghd, hypergraph)
    constraint_relation = {
        constraint.name: constraint.relation for constraint in csp.constraints
    }
    relations: dict[int, Relation] = {}
    for node in complete.nodes():
        bag = complete.bag(node)
        joined = join_all(
            [
                constraint_relation[name]
                for name in sorted(complete.cover(node), key=repr)
            ]
        )
        relations[node] = joined.project(
            [v for v in sorted(joined.schema, key=repr) if v in bag]
        )
    parents = complete.tree.parent_map()
    yield from _with_free_variables(
        csp, enumerate_relation_tree(relations, parents)
    )


def count_solutions_with_ghd(
    csp: CSP, ghd: GeneralizedHypertreeDecomposition
) -> int:
    """Convenience: the number of solutions via the GHD pipeline."""
    return sum(1 for _solution in enumerate_with_ghd(csp, ghd))
