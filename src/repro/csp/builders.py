"""Ready-made CSP instances (Examples 1, 2 and 5 of the thesis, plus
generic workload builders used by tests, examples and benches)."""

from __future__ import annotations

import random
from collections.abc import Sequence
from itertools import product

from repro.csp.problem import CSP, Constraint, make_csp
from repro.csp.relations import Relation
from repro.hypergraphs.graph import Graph


def australia_map_coloring() -> CSP:
    """Example 1: 3-colour the states and territories of Australia."""
    colors = ("r", "g", "b")
    regions = ("WA", "NT", "Q", "SA", "NSW", "V", "TAS")
    borders = [
        ("NT", "WA"),
        ("SA", "WA"),
        ("NT", "Q"),
        ("NT", "SA"),
        ("Q", "SA"),
        ("NSW", "Q"),
        ("NSW", "V"),
        ("NSW", "SA"),
        ("SA", "V"),
    ]
    distinct = [(a, b) for a in colors for b in colors if a != b]
    constraints = [
        Constraint.make(f"C{i + 1}", pair, distinct)
        for i, pair in enumerate(borders)
    ]
    return make_csp({region: colors for region in regions}, constraints)


def graph_coloring_csp(graph: Graph, colors: int) -> CSP:
    """k-colouring of an arbitrary graph as a binary CSP."""
    palette = tuple(range(colors))
    distinct = [(a, b) for a in palette for b in palette if a != b]
    constraints = []
    for i, edge in enumerate(sorted(graph.edges(), key=repr)):
        u, v = sorted(edge, key=repr)
        constraints.append(Constraint.make(f"edge{i}", (u, v), distinct))
    return make_csp(
        {vertex: palette for vertex in graph.vertices()}, constraints
    )


def sat_csp(
    clauses: Sequence[Sequence[int]], variables: int | None = None
) -> CSP:
    """Example 2: CNF SAT as a CSP (one constraint per clause).

    Clauses use DIMACS conventions: nonzero ints, negative = negated.
    """
    mentioned = {abs(literal) for clause in clauses for literal in clause}
    if not mentioned and not variables:
        raise ValueError("empty formula with no declared variables")
    count = variables if variables is not None else max(mentioned)
    domains = {f"x{i}": (True, False) for i in range(1, count + 1)}
    constraints = []
    for index, clause in enumerate(clauses):
        scope = tuple(f"x{abs(literal)}" for literal in clause)
        if len(set(scope)) != len(scope):
            raise ValueError(
                f"clause {clause} mentions a variable twice; simplify first"
            )
        allowed = [
            row
            for row in product((True, False), repeat=len(clause))
            if any(
                value == (literal > 0)
                for value, literal in zip(row, clause)
            )
        ]
        constraints.append(Constraint.make(f"clause{index}", scope, allowed))
    return make_csp(domains, constraints)


def example_5_csp() -> CSP:
    """The running Example 5: three ternary constraints on six variables."""
    domains = {
        "x1": ("a", "b"),
        "x2": ("b", "c"),
        "x3": ("b", "c"),
        "x4": ("b", "c"),
        "x5": ("b", "c"),
        "x6": ("b", "c"),
    }
    constraints = [
        Constraint.make(
            "C1",
            ("x1", "x2", "x3"),
            [("a", "b", "c"), ("a", "c", "b"), ("b", "b", "c")],
        ),
        Constraint.make(
            "C2", ("x1", "x5", "x6"), [("a", "b", "c"), ("a", "c", "b")]
        ),
        Constraint.make(
            "C3", ("x3", "x4", "x5"), [("c", "b", "c"), ("c", "c", "b")]
        ),
    ]
    return make_csp(domains, constraints)


def n_queens_csp(n: int) -> CSP:
    """The n-queens problem: one variable per column, values are rows."""
    if n < 1:
        raise ValueError("need at least one queen")
    rows = tuple(range(n))
    constraints = []
    for i in range(n):
        for j in range(i + 1, n):
            allowed = [
                (ri, rj)
                for ri in rows
                for rj in rows
                if ri != rj and abs(ri - rj) != j - i
            ]
            constraints.append(
                Constraint.make(f"q{i}_{j}", (f"q{i}", f"q{j}"), allowed)
            )
    return make_csp({f"q{i}": rows for i in range(n)}, constraints)


def random_binary_csp(
    variables: int,
    domain_size: int,
    density: float,
    tightness: float,
    seed: int = 0,
) -> CSP:
    """The classic random binary CSP model B.

    ``density`` is the fraction of variable pairs constrained;
    ``tightness`` the fraction of value pairs *forbidden* per constraint.
    """
    if not 0 <= density <= 1 or not 0 <= tightness <= 1:
        raise ValueError("density and tightness must be in [0, 1]")
    rng = random.Random(seed)
    names = [f"v{i}" for i in range(variables)]
    values = tuple(range(domain_size))
    all_pairs = [(a, b) for a in values for b in values]
    constraints = []
    index = 0
    for i in range(variables):
        for j in range(i + 1, variables):
            if rng.random() >= density:
                continue
            forbidden_count = int(round(tightness * len(all_pairs)))
            forbidden = set(
                rng.sample(range(len(all_pairs)), forbidden_count)
            )
            allowed = [
                pair
                for k, pair in enumerate(all_pairs)
                if k not in forbidden
            ]
            constraints.append(
                Constraint.make(
                    f"r{index}", (names[i], names[j]), allowed
                )
            )
            index += 1
    return make_csp({name: values for name in names}, constraints)


def acyclic_chain_csp(length: int, domain_size: int = 3) -> CSP:
    """An acyclic chain of overlapping ternary constraints.

    Useful for exercising the join-tree pipeline: the constraint
    hypergraph is trivially alpha-acyclic and has ghw 1.
    """
    if length < 1:
        raise ValueError("chain needs at least one constraint")
    values = tuple(range(domain_size))
    constraints = []
    for i in range(length):
        scope = (f"y{i}", f"y{i + 1}", f"y{i + 2}")
        allowed = [
            (a, b, c)
            for a in values
            for b in values
            for c in values
            if (a + b + c) % 2 == 0
        ]
        constraints.append(Constraint.make(f"link{i}", scope, allowed))
    domains = {f"y{i}": values for i in range(length + 2)}
    return make_csp(domains, constraints)


def relation_of(csp: CSP, name: str) -> Relation:
    """The relation of constraint ``name`` (test helper)."""
    return csp.constraint(name).relation
