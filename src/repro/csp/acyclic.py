"""Acyclic CSPs: join trees, the GYO test and Acyclic Solving (Sec. 2.2.3).

A CSP is *acyclic* when its constraint hypergraph has a join tree
(Definitions 8-9): a tree over the constraints such that, for every
variable, the constraints containing it form a connected subtree. Acyclic
CSPs are solvable in polynomial time by Algorithm *Acyclic Solving*
(Figure 2.4): a bottom-up semijoin sweep removes tuples with no partner,
then a top-down sweep reads off one consistent assignment.

The same machinery, run over arbitrary relation-labelled trees, is what
solves *any* CSP from a tree decomposition or a complete GHD
(Section 2.4) — :func:`solve_relation_tree` is that generic engine and
:mod:`repro.csp.solve` feeds it.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.csp.problem import CSP
from repro.csp.relations import Relation, Value, VariableName
from repro.hypergraphs.hypergraph import EdgeName, Hypergraph


class NotAcyclicError(ValueError):
    """Raised when a join tree is requested for a cyclic hypergraph."""


def gyo_join_tree(hypergraph: Hypergraph) -> dict[EdgeName, EdgeName | None]:
    """GYO reduction: a join tree as a parent map, or raise.

    Repeatedly removes *ears*: an edge whose vertices, apart from those
    private to it, all lie inside some other remaining edge. The witness
    becomes the ear's parent. If ears run out before edges do, the
    hypergraph is cyclic (:class:`NotAcyclicError`).

    The returned map sends each edge name to its parent (``None`` for the
    final root). Disconnected hypergraphs yield parents ``None`` for one
    edge per component; callers stitch components together (bags sharing
    no variables may be linked arbitrarily).
    """
    remaining: dict[EdgeName, frozenset] = dict(hypergraph.edges())
    parent: dict[EdgeName, EdgeName | None] = {}
    while len(remaining) > 1:
        progressed = False
        occurrences: dict = {}
        for name, edge in remaining.items():
            for vertex in edge:
                occurrences[vertex] = occurrences.get(vertex, 0) + 1
        for name in sorted(remaining, key=repr):
            edge = remaining[name]
            shared = {v for v in edge if occurrences[v] > 1}
            witness = next(
                (
                    other
                    for other in sorted(remaining, key=repr)
                    if other != name and shared <= remaining[other]
                ),
                None,
            )
            if witness is not None:
                parent[name] = witness
                del remaining[name]
                progressed = True
                break
        if not progressed:
            raise NotAcyclicError(
                "hypergraph is cyclic: GYO reduction got stuck with edges "
                f"{sorted(map(repr, remaining))}"
            )
    for name in remaining:
        parent[name] = None
    return parent


def is_acyclic(hypergraph: Hypergraph) -> bool:
    """``True`` iff the hypergraph is alpha-acyclic (has a join tree)."""
    if hypergraph.num_edges() == 0:
        return True
    try:
        gyo_join_tree(hypergraph)
    except NotAcyclicError:
        return False
    return True


def _children_map(
    parent: Mapping[EdgeName, EdgeName | None],
) -> tuple[list[EdgeName], dict[EdgeName, list[EdgeName]]]:
    """Roots and children lists of a parent map."""
    children: dict[EdgeName, list[EdgeName]] = {name: [] for name in parent}
    roots: list[EdgeName] = []
    for name, up in parent.items():
        if up is None:
            roots.append(name)
        else:
            children[up].append(name)
    return roots, children


def solve_relation_tree(
    relations: dict[EdgeName, Relation],
    parent: Mapping[EdgeName, EdgeName | None],
) -> dict[VariableName, Value] | None:
    """Acyclic Solving over an arbitrary relation-labelled forest.

    Implements both phases of Figure 2.4. Multiple roots (a forest) are
    fine: components share no variables when the parent map comes from a
    valid decomposition, so they solve independently.

    Returns one combined assignment, or ``None`` if any relation empties
    during the bottom-up sweep.
    """
    roots, children = _children_map(parent)
    if not roots and relations:
        raise ValueError("parent map has a cycle (no root)")
    working = dict(relations)

    # Bottom-up: process nodes children-before-parents.
    order: list[EdgeName] = []
    stack = list(roots)
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(children[node])
    for node in reversed(order):
        up = parent[node]
        if up is None:
            continue
        working[up] = working[up].semijoin(working[node])
        if working[up].is_empty():
            return None
    for root in roots:
        if working[root].is_empty():
            return None

    # Top-down: extend a consistent assignment parents-before-children.
    assignment: dict[VariableName, Value] = {}
    for node in order:
        relation = working[node].select(assignment)
        if relation.is_empty():
            # Cannot happen after a successful bottom-up sweep on a valid
            # join tree; guards against malformed input.
            return None
        row = min(relation.tuples, key=repr)
        assignment.update(zip(relation.schema, row))
    return assignment


def acyclic_solve(csp: CSP) -> dict[VariableName, Value] | None:
    """Solve an acyclic CSP via its GYO join tree (Figure 2.4).

    Variables not mentioned by any constraint get an arbitrary domain
    value. Raises :class:`NotAcyclicError` for cyclic CSPs — decompose
    those first (:mod:`repro.csp.solve`).
    """
    hypergraph = csp.constraint_hypergraph()
    if csp.constraints:
        parent = gyo_join_tree(hypergraph)
        relations = {
            constraint.name: constraint.relation
            for constraint in csp.constraints
        }
        assignment = solve_relation_tree(relations, parent)
        if assignment is None:
            return None
    else:
        assignment = {}
    for variable, domain in csp.domains.items():
        if variable not in assignment:
            if not domain:
                return None
            assignment[variable] = min(domain, key=repr)
    return assignment
