"""Adaptive Consistency: solving a CSP by bucket elimination (Sec. 2.5).

The thesis introduces bucket elimination as the bridge between
elimination orderings and decompositions; its original use (Dechter's
*Adaptive Consistency*) solves the CSP directly along the ordering:

* each constraint is placed in the bucket of its **earliest-eliminated**
  scope variable;
* processing bucket ``v`` joins the bucket's relations, projects ``v``
  out, and forwards the result to the bucket of the earliest-eliminated
  variable remaining in its scope — deriving an empty relation proves
  unsatisfiability;
* afterwards, values are assigned in **reverse** elimination order, each
  bucket's relations acting as the constraints on its variable.

The work per bucket is bounded by the induced width of the ordering —
the very quantity GA-tw/A*-tw minimise — so this module is the "why we
care" demonstration for the whole width machinery, and the test suite
cross-validates it against backtracking.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.csp.problem import CSP
from repro.csp.relations import Relation, Value, VariableName, join_all


class _Buckets:
    """Relations grouped by their earliest-eliminated scope variable."""

    def __init__(self, ordering: Sequence[VariableName]) -> None:
        self._position = {v: i for i, v in enumerate(ordering)}
        self._buckets: dict[VariableName, list[Relation]] = {
            v: [] for v in ordering
        }

    def place(self, relation: Relation) -> None:
        """File ``relation`` under its earliest-eliminated variable."""
        owner = min(relation.schema, key=self._position.__getitem__)
        self._buckets[owner].append(relation)

    def bucket(self, variable: VariableName) -> list[Relation]:
        return self._buckets[variable]


def adaptive_consistency(
    csp: CSP, ordering: Sequence[VariableName] | None = None
) -> dict[VariableName, Value] | None:
    """Solve ``csp`` by bucket elimination along ``ordering``.

    ``ordering`` lists the variables in elimination order (first element
    eliminated first); by default the min-fill ordering of the primal
    graph is used, as the heuristics of chapter 4 recommend. Returns one
    solution, or ``None`` if the CSP is unsatisfiable.
    """
    variables = list(csp.domains)
    if ordering is None:
        from repro.bounds.upper import min_fill_ordering

        hypergraph = csp.constraint_hypergraph()
        primal = hypergraph.primal_graph()
        ordering = min_fill_ordering(primal, None)
    if sorted(ordering, key=repr) != sorted(variables, key=repr):
        raise ValueError("ordering must permute the CSP's variables")

    buckets = _Buckets(ordering)
    for constraint in csp.constraints:
        buckets.place(constraint.relation)

    # Forward phase: eliminate variables, propagating join-projections.
    for variable in ordering:
        bucket = buckets.bucket(variable)
        # The variable's domain always constrains it.
        domain_relation = Relation.full(variable, csp.domains[variable])
        joined = join_all([domain_relation] + bucket)
        if joined.is_empty():
            return None
        remaining = [name for name in joined.schema if name != variable]
        if remaining:
            buckets.place(joined.project(remaining))

    # Backward phase: assign in reverse elimination order.
    assignment: dict[VariableName, Value] = {}
    for variable in reversed(list(ordering)):
        domain_relation = Relation.full(variable, csp.domains[variable])
        candidates = join_all(
            [domain_relation]
            + [
                relation.select(assignment)
                for relation in buckets.bucket(variable)
            ]
        ).select(assignment)
        if candidates.is_empty():
            # Cannot happen after a successful forward phase; guards
            # against inconsistent manual bucket manipulation.
            return None
        index = candidates.schema.index(variable)
        row = min(candidates.tuples, key=repr)
        assignment[variable] = row[index]
    return assignment
