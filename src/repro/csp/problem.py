"""Constraint satisfaction problems (Definitions 5-7).

A CSP is variables + finite domains + constraints; each constraint is a
scope (tuple of variables) plus a relation of allowed value combinations
(Definition 5). :meth:`CSP.constraint_hypergraph` derives the structure
the decomposition methods work on: one vertex per variable, one hyperedge
per constraint scope (Definition 7), with hyperedge names matching the
constraint names so lambda-labels point straight back at constraints.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.csp.relations import Relation, Value, VariableName
from repro.hypergraphs.hypergraph import Hypergraph


@dataclass(frozen=True)
class Constraint:
    """A named constraint: a scope and its allowed tuples."""

    name: str
    relation: Relation

    @property
    def scope(self) -> tuple[VariableName, ...]:
        return self.relation.schema

    @staticmethod
    def make(
        name: str,
        scope: Sequence[VariableName],
        allowed: Iterable[Sequence[Value]],
    ) -> "Constraint":
        return Constraint(name=name, relation=Relation.make(scope, allowed))

    def satisfied_by(self, assignment: Mapping[VariableName, Value]) -> bool:
        """Does a (complete-on-scope) assignment satisfy this constraint?"""
        row = tuple(assignment[variable] for variable in self.scope)
        return row in self.relation.tuples


@dataclass
class CSP:
    """A constraint satisfaction problem instance."""

    domains: dict[VariableName, frozenset[Value]]
    constraints: list[Constraint] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [constraint.name for constraint in self.constraints]
        if len(set(names)) != len(names):
            raise ValueError("constraint names must be unique")
        for constraint in self.constraints:
            for variable in constraint.scope:
                if variable not in self.domains:
                    raise ValueError(
                        f"constraint {constraint.name!r} mentions unknown "
                        f"variable {variable!r}"
                    )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @property
    def variables(self) -> list[VariableName]:
        return list(self.domains)

    def constraint(self, name: str) -> Constraint:
        for candidate in self.constraints:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no constraint named {name!r}")

    def constraint_hypergraph(
        self, include_unconstrained: bool = True
    ) -> Hypergraph:
        """Definition 7: one hyperedge (named as the constraint) per scope.

        With ``include_unconstrained=False``, variables appearing in no
        constraint are dropped — decomposition widths are only defined
        over constrained variables, and free variables can take any
        domain value independently.
        """
        if include_unconstrained:
            hypergraph = Hypergraph(vertices=self.domains.keys())
        else:
            hypergraph = Hypergraph()
        for constraint in self.constraints:
            hypergraph.add_edge(constraint.name, constraint.scope)
        return hypergraph

    def max_domain_size(self) -> int:
        return max((len(d) for d in self.domains.values()), default=0)

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------

    def is_solution(self, assignment: Mapping[VariableName, Value]) -> bool:
        """Complete + consistent (Definition 6)."""
        for variable, domain in self.domains.items():
            if variable not in assignment:
                return False
            if assignment[variable] not in domain:
                return False
        return all(
            constraint.satisfied_by(assignment)
            for constraint in self.constraints
        )

    def __repr__(self) -> str:
        return (
            f"CSP(variables={len(self.domains)}, "
            f"constraints={len(self.constraints)})"
        )


def make_csp(
    domains: Mapping[VariableName, Iterable[Value]],
    constraints: Iterable[Constraint],
) -> CSP:
    """Convenience constructor with domain freezing."""
    return CSP(
        domains={
            variable: frozenset(values) for variable, values in domains.items()
        },
        constraints=list(constraints),
    )
