"""A tiny relational algebra for CSP solving (Chapter 2 substrate).

Constraint relations are finite relations over named variables. Acyclic
Solving (Figure 2.4) needs the semijoin; Join-Tree Clustering and GHD
solving (Section 2.4) need natural join and projection. Relations are
immutable: every operator returns a new :class:`Relation`.

Tuples are stored as plain Python tuples aligned with the relation's
schema (a tuple of variable names). Joins hash on the shared columns,
so a join of relations with t1 and t2 tuples costs O(t1 + t2 + output).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass

Value = Hashable
VariableName = Hashable


@dataclass(frozen=True)
class Relation:
    """A named-column relation: a schema plus a set of aligned tuples."""

    schema: tuple[VariableName, ...]
    tuples: frozenset[tuple[Value, ...]]

    def __post_init__(self) -> None:
        if len(set(self.schema)) != len(self.schema):
            raise ValueError(f"duplicate variables in schema {self.schema}")
        for row in self.tuples:
            if len(row) != len(self.schema):
                raise ValueError(
                    f"tuple {row} does not match schema {self.schema}"
                )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @staticmethod
    def make(
        schema: Sequence[VariableName],
        rows: Iterable[Sequence[Value]],
    ) -> "Relation":
        return Relation(
            schema=tuple(schema),
            tuples=frozenset(tuple(row) for row in rows),
        )

    @staticmethod
    def full(
        variable: VariableName, domain: Iterable[Value]
    ) -> "Relation":
        """The unary relation allowing every domain value."""
        return Relation.make((variable,), ((value,) for value in domain))

    @staticmethod
    def empty(schema: Sequence[VariableName]) -> "Relation":
        return Relation.make(schema, ())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def arity(self) -> int:
        return len(self.schema)

    def is_empty(self) -> bool:
        return not self.tuples

    def as_dicts(self) -> list[dict[VariableName, Value]]:
        """Rows as variable -> value mappings (handy for reporting)."""
        return [dict(zip(self.schema, row)) for row in sorted(self.tuples, key=repr)]

    def __len__(self) -> int:
        return len(self.tuples)

    def __contains__(self, row: object) -> bool:
        return row in self.tuples

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------

    def _key_indices(
        self, variables: Sequence[VariableName]
    ) -> list[int]:
        index = {name: i for i, name in enumerate(self.schema)}
        return [index[name] for name in variables]

    def project(self, variables: Sequence[VariableName]) -> "Relation":
        """Projection pi_variables (duplicates collapse)."""
        missing = [v for v in variables if v not in self.schema]
        if missing:
            raise KeyError(f"cannot project on absent variables {missing}")
        indices = self._key_indices(variables)
        return Relation.make(
            tuple(variables),
            (tuple(row[i] for i in indices) for row in self.tuples),
        )

    def select(
        self, assignment: dict[VariableName, Value]
    ) -> "Relation":
        """Rows agreeing with ``assignment`` on its (present) variables."""
        checks = [
            (i, assignment[name])
            for i, name in enumerate(self.schema)
            if name in assignment
        ]
        return Relation(
            schema=self.schema,
            tuples=frozenset(
                row
                for row in self.tuples
                if all(row[i] == value for i, value in checks)
            ),
        )

    def join(self, other: "Relation") -> "Relation":
        """Natural join on the shared variables (cartesian if none)."""
        shared = [name for name in self.schema if name in other.schema]
        extra = [name for name in other.schema if name not in self.schema]
        left_keys = self._key_indices(shared)
        right_keys = other._key_indices(shared)
        extra_indices = other._key_indices(extra)

        buckets: dict[tuple[Value, ...], list[tuple[Value, ...]]] = {}
        for row in other.tuples:
            key = tuple(row[i] for i in right_keys)
            buckets.setdefault(key, []).append(row)

        schema = self.schema + tuple(extra)
        rows: list[tuple[Value, ...]] = []
        for row in self.tuples:
            key = tuple(row[i] for i in left_keys)
            for match in buckets.get(key, ()):
                rows.append(row + tuple(match[i] for i in extra_indices))
        return Relation.make(schema, rows)

    def semijoin(self, other: "Relation") -> "Relation":
        """Semijoin: keep rows with at least one join partner in other.

        This is the bottom-up step of Acyclic Solving (``R_j := R_j |x R_i``
        in Figure 2.4, where ``|x`` denotes the semijoin).
        """
        shared = [name for name in self.schema if name in other.schema]
        if not shared:
            return self if not other.is_empty() else Relation.empty(self.schema)
        left_keys = self._key_indices(shared)
        right_keys = other._key_indices(shared)
        allowed = {
            tuple(row[i] for i in right_keys) for row in other.tuples
        }
        return Relation(
            schema=self.schema,
            tuples=frozenset(
                row
                for row in self.tuples
                if tuple(row[i] for i in left_keys) in allowed
            ),
        )

    def rename(
        self, mapping: dict[VariableName, VariableName]
    ) -> "Relation":
        return Relation(
            schema=tuple(mapping.get(name, name) for name in self.schema),
            tuples=self.tuples,
        )

    def __repr__(self) -> str:
        return f"Relation(schema={self.schema}, rows={len(self.tuples)})"


def join_all(relations: Sequence[Relation]) -> Relation:
    """Left-fold natural join; the empty sequence yields the 0-ary TRUE."""
    if not relations:
        return Relation.make((), [()])
    result = relations[0]
    for relation in relations[1:]:
        result = result.join(relation)
    return result
