"""Command-line interface: ``repro-decompose``.

Examples
--------
Exact treewidth of a generated instance::

    repro-decompose --instance queen5_5 --measure tw --algorithm astar

ghw upper bound of a hypergraph file with the genetic algorithm::

    repro-decompose --file instance.hg --measure ghw --algorithm ga

The tool prints the result line the thesis tables use: instance, |V|,
|E| or |H|, lb, ub, value, nodes, time.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.api import (
    decompose,
    decompose_graph,
    generalized_hypertree_width,
    ghw_upper_bound,
    treewidth,
    treewidth_upper_bound,
)
from repro.decompositions.hypertree import hypertree_width
from repro.decompositions.io import write_ghd, write_tree_decomposition
from repro.hypergraphs.graph import Graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.io import read_dimacs, read_hypergraph
from repro.instances.registry import instance as registry_instance


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-decompose",
        description=(
            "Tree and generalized hypertree decomposition widths "
            "(exact and heuristic)."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--instance",
        help="named generated instance (queen5_5, myciel4, adder_10, ...)",
    )
    source.add_argument(
        "--file", help="path to a DIMACS .col graph or a hypergraph edge list"
    )
    parser.add_argument(
        "--measure",
        choices=("tw", "ghw", "hw"),
        default="tw",
        help="treewidth, generalized hypertree width or hypertree width",
    )
    parser.add_argument(
        "--algorithm",
        default="astar",
        help=(
            "astar | bb (exact); ga | saiga | sa | tabu "
            "(heuristic upper bound)"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "write the decomposition here (.td format for tw, the ghd "
            "format for ghw/hw)"
        ),
    )
    parser.add_argument(
        "--time-limit", type=float, default=None, help="seconds"
    )
    parser.add_argument(
        "--node-limit", type=int, default=None, help="search node budget"
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser


def _load(args: argparse.Namespace) -> Graph | Hypergraph:
    if args.instance:
        return registry_instance(args.instance)
    text = open(args.file).readline()
    if text.startswith(("c", "p")):
        return read_dimacs(args.file)
    return read_hypergraph(args.file)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        loaded = _load(args)
    except (KeyError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    label = args.instance or args.file
    if isinstance(loaded, Hypergraph):
        size = f"|V|={loaded.num_vertices()} |H|={loaded.num_edges()}"
    else:
        size = f"|V|={loaded.num_vertices()} |E|={loaded.num_edges()}"

    if args.measure == "tw":
        if args.algorithm in ("astar", "bb"):
            result = treewidth(
                loaded,
                algorithm=args.algorithm,
                time_limit=args.time_limit,
                node_limit=args.node_limit,
                seed=args.seed,
            )
            print(f"{label}  {size}  {result.summary()}")
        elif args.algorithm in ("sa", "tabu"):
            from repro.localsearch import sa_treewidth, tabu_treewidth

            run = sa_treewidth if args.algorithm == "sa" else tabu_treewidth
            bound = run(
                loaded, seed=args.seed, time_limit=args.time_limit
            ).best_fitness
            print(f"{label}  {size}  tw <= {bound} ({args.algorithm})")
        else:
            bound = treewidth_upper_bound(
                loaded,
                method=args.algorithm,
                seed=args.seed,
                time_limit=args.time_limit,
            )
            print(f"{label}  {size}  tw <= {bound} ({args.algorithm})")
        if args.output:
            graph = (
                loaded.primal_graph()
                if isinstance(loaded, Hypergraph)
                else loaded
            )
            decomposition = decompose_graph(
                graph,
                algorithm=args.algorithm
                if args.algorithm in ("astar", "bb", "ga", "min-fill")
                else "min-fill",
                time_limit=args.time_limit,
                node_limit=args.node_limit,
                seed=args.seed,
            )
            write_tree_decomposition(decomposition, args.output)
            print(f"wrote {args.output}")
    elif args.measure == "hw":
        if not isinstance(loaded, Hypergraph):
            print("error: hw needs a hypergraph instance", file=sys.stderr)
            return 2
        k, decomposition = hypertree_width(loaded)
        print(f"{label}  {size}  hw = {k}")
        if args.output:
            write_ghd(decomposition.ghd, args.output)
            print(f"wrote {args.output}")
    else:
        if not isinstance(loaded, Hypergraph):
            print(
                "error: ghw needs a hypergraph instance", file=sys.stderr
            )
            return 2
        if args.algorithm in ("astar", "bb"):
            result = generalized_hypertree_width(
                loaded,
                algorithm=args.algorithm,
                time_limit=args.time_limit,
                node_limit=args.node_limit,
                seed=args.seed,
            )
            print(f"{label}  {size}  {result.summary()}")
        elif args.algorithm in ("sa", "tabu"):
            from repro.localsearch import sa_ghw, tabu_ghw

            run = sa_ghw if args.algorithm == "sa" else tabu_ghw
            bound = run(
                loaded, seed=args.seed, time_limit=args.time_limit
            ).best_fitness
            print(f"{label}  {size}  ghw <= {bound} ({args.algorithm})")
        else:
            bound = ghw_upper_bound(
                loaded,
                method=args.algorithm,
                seed=args.seed,
                time_limit=args.time_limit,
            )
            print(f"{label}  {size}  ghw <= {bound} ({args.algorithm})")
        if args.output:
            ghd = decompose(
                loaded,
                algorithm=args.algorithm
                if args.algorithm in ("astar", "bb", "ga", "saiga")
                else "bb",
                time_limit=args.time_limit,
                node_limit=args.node_limit,
                seed=args.seed,
            )
            write_ghd(ghd, args.output)
            print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
