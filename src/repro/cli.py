"""Command-line interface: ``repro-decompose``.

Examples
--------
Exact treewidth of a generated instance::

    repro-decompose --instance queen5_5 --measure tw --algorithm astar

ghw upper bound of a hypergraph file with the genetic algorithm::

    repro-decompose --file instance.hg --measure ghw --algorithm ga

Race the anytime portfolio (shared bounds, early stop on lb == ub)::

    repro-decompose portfolio --instance cycle_6 --measure ghw \\
        --strategies bb,ga,sa,tabu --time-limit 10

Differentially test the whole solver matrix on seeded random instances,
certifying every claimed width against a validated witness::

    repro-decompose verify --seeds 50

The tool prints the result line the thesis tables use: instance, |V|,
|E| or |H|, lb, ub, value, nodes, time.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import contextmanager

from repro import obs
from repro.core.api import (
    decompose,
    decompose_graph,
    generalized_hypertree_width,
    ghw_upper_bound,
    treewidth,
    treewidth_upper_bound,
)
from repro.decompositions.hypertree import hypertree_width
from repro.decompositions.io import write_ghd, write_tree_decomposition
from repro.hypergraphs.graph import Graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.io import read_dimacs, read_hypergraph
from repro.instances.registry import instance as registry_instance
from repro.obs.render import render_metrics, render_spans
from repro.obs.report import RunReport, append_jsonl


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-decompose",
        description=(
            "Tree and generalized hypertree decomposition widths "
            "(exact and heuristic)."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--instance",
        help="named generated instance (queen5_5, myciel4, adder_10, ...)",
    )
    source.add_argument(
        "--file", help="path to a DIMACS .col graph or a hypergraph edge list"
    )
    parser.add_argument(
        "--measure",
        choices=("tw", "ghw", "hw"),
        default="tw",
        help="treewidth, generalized hypertree width or hypertree width",
    )
    parser.add_argument(
        "--algorithm",
        default="astar",
        help=(
            "astar | bb (exact); ga | saiga | sa | tabu "
            "(heuristic upper bound)"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "write the decomposition here (.td format for tw, the ghd "
            "format for ghw/hw)"
        ),
    )
    parser.add_argument(
        "--time-limit", type=float, default=None, help="seconds"
    )
    parser.add_argument(
        "--node-limit", type=int, default=None, help="search node budget"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend",
        choices=("python", "bitset"),
        default="python",
        help=(
            "fitness kernel for the heuristics: pure-Python reference or "
            "the bitset kernel with the shared cover cache"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="evaluate GA/SAIGA populations on N worker processes",
    )
    parser.add_argument(
        "--cover-cache-size",
        type=int,
        default=None,
        metavar="M",
        help="resize the process-wide bag-cover cache to M entries",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's metric counters to stderr",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the run's span tree (phase timings) to stderr",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="FILE.jsonl",
        help="append a structured RunReport for this run as a JSON line",
    )
    return parser


def build_portfolio_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-decompose portfolio",
        description=(
            "Race several strategies on one instance with shared bounds, "
            "a deadline, and checkpoint/resume."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--instance",
        help="named generated instance (queen5_5, myciel4, adder_10, ...)",
    )
    source.add_argument(
        "--file",
        help="path to a DIMACS .col graph, a HyperBench .hg file, or a "
        "hypergraph edge list",
    )
    parser.add_argument(
        "--measure", choices=("tw", "ghw"), default="tw",
        help="width measure the portfolio races on",
    )
    parser.add_argument(
        "--strategies",
        default=None,
        metavar="KINDS",
        help=(
            "comma-separated strategy kinds (bb, astar, ga, saiga, sa, "
            "tabu); repeats allowed and get distinct seeds. Default: "
            "bb,ga,sa,tabu"
        ),
    )
    parser.add_argument(
        "--time-limit", type=float, default=None, help="shared deadline in seconds"
    )
    parser.add_argument(
        "--mode",
        choices=("process", "inline"),
        default="process",
        help="worker processes (true race) or sequential time slices",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend",
        choices=("python", "bitset"),
        default="python",
        help="fitness kernel for the heuristic strategies",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="population-evaluation processes per GA/SAIGA worker",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="periodically snapshot worker state here (enables --resume)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=1.0,
        metavar="S",
        help="minimum seconds between checkpoint writes per worker",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume a previous race from --checkpoint-dir",
    )
    parser.add_argument(
        "--cover-cache-size",
        type=int,
        default=None,
        metavar="M",
        help="resize the process-wide bag-cover cache to M entries",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the scheduler's metric counters to stderr",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the scheduler's span tree to stderr",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="FILE.jsonl",
        help="append the portfolio RunReport (nested worker reports) as JSON",
    )
    return parser


def main_portfolio(argv: list[str]) -> int:
    """The ``portfolio`` subcommand: race strategies with shared bounds."""
    from repro.portfolio import (
        PortfolioSpec,
        parse_strategies,
        portfolio_report,
        resume_portfolio,
        run_portfolio,
    )

    args = build_portfolio_parser().parse_args(argv)
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("error: --resume needs --checkpoint-dir", file=sys.stderr)
        return 2
    if args.cover_cache_size is not None:
        from repro.kernels.cache import configure_cover_cache

        try:
            configure_cover_cache(args.cover_cache_size)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        loaded = _load(args)
    except (KeyError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    label = args.instance or args.file
    if args.measure == "ghw" and not isinstance(loaded, Hypergraph):
        print("error: ghw needs a hypergraph instance", file=sys.stderr)
        return 2
    if isinstance(loaded, Hypergraph):
        size = f"|V|={loaded.num_vertices()} |H|={loaded.num_edges()}"
    else:
        size = f"|V|={loaded.num_vertices()} |E|={loaded.num_edges()}"

    telemetry = args.metrics or args.trace or args.telemetry_out is not None
    context = obs.instrument() if telemetry else _plain_context()
    try:
        with context as ins:
            if args.resume:
                result = resume_portfolio(
                    loaded,
                    args.checkpoint_dir,
                    time_limit=args.time_limit,
                    mode=args.mode,
                )
            else:
                strategies = parse_strategies(
                    args.strategies or "bb,ga,sa,tabu",
                    args.measure,
                    seed=args.seed,
                )
                for strategy in strategies:
                    strategy.backend = args.backend
                    strategy.jobs = args.jobs
                spec = PortfolioSpec(
                    measure=args.measure,
                    strategies=strategies,
                    time_limit=args.time_limit,
                    mode=args.mode,
                    seed=args.seed,
                    instance_name=label,
                    checkpoint_dir=args.checkpoint_dir,
                    checkpoint_interval=args.checkpoint_interval,
                )
                result = run_portfolio(loaded, spec)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"{label}  {size}  {result.summary()}")
    for worker in result.workers:
        lb = "-" if worker.lower_bound is None else worker.lower_bound
        ub = "-" if worker.upper_bound is None else worker.upper_bound
        line = (
            f"  {worker.name:<10} {worker.status:<12} "
            f"lb={lb} ub={ub} {worker.elapsed:.2f}s"
        )
        if worker.error:
            line += f"  ({worker.error})"
        print(line)

    if telemetry:
        report = portfolio_report(
            ins,
            result,
            instance_name=label,
            certified=_certify_claim(
                loaded,
                args.measure,
                result.ordering,
                result.upper_bound,
                strict=args.measure == "tw",
            ),
            meta={
                "seed": args.seed,
                "backend": args.backend,
                "jobs": args.jobs,
                "mode": args.mode,
            },
        )
        if args.metrics:
            print("-- metrics --", file=sys.stderr)
            print(render_metrics(ins.metrics.snapshot()), file=sys.stderr)
        if args.trace:
            print("-- trace --", file=sys.stderr)
            print(render_spans(ins.tracer.tree()), file=sys.stderr)
        if args.telemetry_out:
            try:
                append_jsonl(args.telemetry_out, report)
            except OSError as exc:
                print(f"error: cannot write telemetry: {exc}", file=sys.stderr)
                return 2
    return 0


def _load(args: argparse.Namespace) -> Graph | Hypergraph:
    if args.instance:
        return registry_instance(args.instance)
    if args.file.endswith(".hg"):
        from repro.instances.hyperbench import read_hg

        return read_hg(args.file)
    text = open(args.file).readline()
    if text.startswith(("c", "p")):
        return read_dimacs(args.file)
    return read_hypergraph(args.file)


def _search_fields(result) -> dict:
    """Structured outcome of an exact SearchResult for telemetry."""
    if result.optimal:
        return {
            "status": "optimal",
            "value": result.value,
            "lower_bound": result.lower_bound,
            "upper_bound": result.upper_bound,
        }
    return {
        "status": "interrupted",
        "value": None,
        "lower_bound": result.lower_bound,
        "upper_bound": result.upper_bound,
    }


def _bound_fields(bound: int) -> dict:
    """Structured outcome of a heuristic upper bound for telemetry."""
    return {
        "status": "heuristic",
        "value": None,
        "lower_bound": None,
        "upper_bound": bound,
    }


def _certify_claim(
    loaded: Graph | Hypergraph,
    measure: str,
    ordering,
    upper: int | None,
    strict: bool,
) -> bool | None:
    """``certified`` flag for telemetry: rebuild the witness decomposition
    behind an upper-bound claim and validate it (``None`` when the solver
    surfaced no witness ordering to check)."""
    if upper is None or not ordering:
        return None
    from repro.verify.certify import certify_ghw_witness, certify_tw_witness

    if measure == "tw":
        graph = (
            loaded.primal_graph() if isinstance(loaded, Hypergraph) else loaded
        )
        return certify_tw_witness(
            graph, list(ordering), upper, strict=strict
        ).ok
    return certify_ghw_witness(
        loaded, list(ordering), upper, strict=strict
    ).ok


@contextmanager
def _plain_context():
    """Stand-in for ``obs.instrument()`` when telemetry flags are off."""
    yield obs.DISABLED


def _run_measure(
    args: argparse.Namespace,
    loaded: Graph | Hypergraph,
    label: str,
    size: str,
) -> tuple[int, dict]:
    """Run the requested width computation; return (exit code, fields)."""
    fields: dict = {}
    if args.measure == "tw":
        if args.algorithm in ("astar", "bb"):
            result = treewidth(
                loaded,
                algorithm=args.algorithm,
                time_limit=args.time_limit,
                node_limit=args.node_limit,
                seed=args.seed,
            )
            print(f"{label}  {size}  {result.summary()}")
            fields = _search_fields(result)
            fields["certified"] = _certify_claim(
                loaded, "tw", result.ordering, result.upper_bound, strict=True
            )
        elif args.algorithm in ("sa", "tabu"):
            from repro.localsearch import sa_treewidth, tabu_treewidth

            run = sa_treewidth if args.algorithm == "sa" else tabu_treewidth
            local = run(
                loaded,
                seed=args.seed,
                time_limit=args.time_limit,
                backend=args.backend,
            )
            bound = local.best_fitness
            print(f"{label}  {size}  tw <= {bound} ({args.algorithm})")
            fields = _bound_fields(bound)
            fields["certified"] = _certify_claim(
                loaded, "tw", local.best_individual, bound, strict=True
            )
        else:
            bound = treewidth_upper_bound(
                loaded,
                method=args.algorithm,
                seed=args.seed,
                time_limit=args.time_limit,
                backend=args.backend,
                jobs=args.jobs,
            )
            print(f"{label}  {size}  tw <= {bound} ({args.algorithm})")
            fields = _bound_fields(bound)
        if args.output:
            graph = (
                loaded.primal_graph()
                if isinstance(loaded, Hypergraph)
                else loaded
            )
            decomposition = decompose_graph(
                graph,
                algorithm=args.algorithm
                if args.algorithm in ("astar", "bb", "ga", "min-fill")
                else "min-fill",
                time_limit=args.time_limit,
                node_limit=args.node_limit,
                seed=args.seed,
                backend=args.backend,
                jobs=args.jobs,
            )
            write_tree_decomposition(decomposition, args.output)
            print(f"wrote {args.output}")
    elif args.measure == "hw":
        if not isinstance(loaded, Hypergraph):
            print("error: hw needs a hypergraph instance", file=sys.stderr)
            return 2, fields
        k, decomposition = hypertree_width(loaded)
        print(f"{label}  {size}  hw = {k}")
        fields = {
            "status": "optimal",
            "value": k,
            "lower_bound": k,
            "upper_bound": k,
        }
        if args.output:
            write_ghd(decomposition.ghd, args.output)
            print(f"wrote {args.output}")
    else:
        if not isinstance(loaded, Hypergraph):
            print(
                "error: ghw needs a hypergraph instance", file=sys.stderr
            )
            return 2, fields
        if args.algorithm in ("astar", "bb"):
            result = generalized_hypertree_width(
                loaded,
                algorithm=args.algorithm,
                time_limit=args.time_limit,
                node_limit=args.node_limit,
                seed=args.seed,
            )
            print(f"{label}  {size}  {result.summary()}")
            fields = _search_fields(result)
            fields["certified"] = _certify_claim(
                loaded, "ghw", result.ordering, result.upper_bound, strict=True
            )
        elif args.algorithm in ("sa", "tabu"):
            from repro.localsearch import sa_ghw, tabu_ghw

            run = sa_ghw if args.algorithm == "sa" else tabu_ghw
            local = run(
                loaded,
                seed=args.seed,
                time_limit=args.time_limit,
                backend=args.backend,
            )
            bound = local.best_fitness
            print(f"{label}  {size}  ghw <= {bound} ({args.algorithm})")
            fields = _bound_fields(bound)
            fields["certified"] = _certify_claim(
                loaded, "ghw", local.best_individual, bound, strict=False
            )
        else:
            bound = ghw_upper_bound(
                loaded,
                method=args.algorithm,
                seed=args.seed,
                time_limit=args.time_limit,
                backend=args.backend,
                jobs=args.jobs,
            )
            print(f"{label}  {size}  ghw <= {bound} ({args.algorithm})")
            fields = _bound_fields(bound)
        if args.output:
            ghd = decompose(
                loaded,
                algorithm=args.algorithm
                if args.algorithm in ("astar", "bb", "ga", "saiga")
                else "bb",
                time_limit=args.time_limit,
                node_limit=args.node_limit,
                seed=args.seed,
                backend=args.backend,
                jobs=args.jobs,
            )
            write_ghd(ghd, args.output)
            print(f"wrote {args.output}")
    return 0, fields


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "portfolio":
        return main_portfolio(argv[1:])
    if argv and argv[0] == "verify":
        from repro.verify.cli import main_verify

        return main_verify(argv[1:])
    args = build_parser().parse_args(argv)
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.cover_cache_size is not None:
        from repro.kernels.cache import configure_cover_cache

        try:
            configure_cover_cache(args.cover_cache_size)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        loaded = _load(args)
    except (KeyError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    label = args.instance or args.file
    if isinstance(loaded, Hypergraph):
        size = f"|V|={loaded.num_vertices()} |H|={loaded.num_edges()}"
    else:
        size = f"|V|={loaded.num_vertices()} |E|={loaded.num_edges()}"

    telemetry = args.metrics or args.trace or args.telemetry_out is not None
    context = obs.instrument() if telemetry else _plain_context()
    started = time.monotonic()
    with context as ins:
        code, fields = _run_measure(args, loaded, label, size)
    if code != 0:
        return code

    if telemetry:
        from repro.kernels.cache import cover_cache

        cache = cover_cache()
        report = RunReport.capture(
            ins,
            instance=label,
            solver=args.algorithm if args.measure != "hw" else "hw",
            measure=args.measure,
            elapsed_s=time.monotonic() - started,
            meta={
                "seed": args.seed,
                "backend": args.backend,
                "jobs": args.jobs,
                "cover_cache_size": cache.maxsize,
                "cover_cache": cache.stats(),
            },
            **fields,
        )
        if args.metrics:
            print("-- metrics --", file=sys.stderr)
            print(render_metrics(ins.metrics.snapshot()), file=sys.stderr)
        if args.trace:
            print("-- trace --", file=sys.stderr)
            print(render_spans(ins.tracer.tree()), file=sys.stderr)
        if args.telemetry_out:
            try:
                append_jsonl(args.telemetry_out, report)
            except OSError as exc:
                print(f"error: cannot write telemetry: {exc}", file=sys.stderr)
                return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
