"""A graph supporting vertex elimination with exact undo (Section 5.2.1).

The A* and branch-and-bound searches visit search states in an order that
jumps around the elimination tree. Rebuilding "the graph after eliminating
this state's prefix" from scratch for every state would dominate the run
time, so the thesis maintains a *single* graph object that can be
transformed between states by eliminating and restoring vertices.

The thesis realises this with three matrices (``A``, ``E``, ``T``); in
Python the equivalent and far clearer structure is an **undo stack**: for
every elimination we remember the vertex, its neighbourhood at elimination
time, and the set of fill-in edges the elimination inserted. Restoring the
last eliminated vertex removes those fill-in edges, re-adds the vertex and
reconnects its former neighbourhood — byte-for-byte the inverse operation.

:meth:`EliminationGraph.switch_to` transforms the graph between two
elimination prefixes sharing a common ancestor, undoing only the
non-shared suffix, exactly the optimisation described at the end of
Section 5.2.1.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.hypergraphs.graph import Graph, Vertex


@dataclass
class _EliminationRecord:
    """Everything needed to undo one elimination."""

    vertex: Vertex
    neighbours: set[Vertex]
    fill_edges: list[tuple[Vertex, Vertex]] = field(default_factory=list)


class EliminationGraph:
    """A :class:`Graph` wrapper with an elimination/restore stack."""

    def __init__(self, graph: Graph) -> None:
        self._graph = graph.copy()
        self._stack: list[_EliminationRecord] = []

    # ------------------------------------------------------------------
    # elimination and restoration
    # ------------------------------------------------------------------

    def eliminate(self, vertex: Vertex) -> set[Vertex]:
        """Eliminate ``vertex`` and push an undo record.

        Returns the neighbourhood of ``vertex`` at elimination time; the
        bag produced by this elimination step is that set plus ``vertex``
        itself.
        """
        neighbours = self._graph.neighbours(vertex)
        record = _EliminationRecord(vertex=vertex, neighbours=neighbours)
        neighbour_list = list(neighbours)
        for i, u in enumerate(neighbour_list):
            for v in neighbour_list[i + 1 :]:
                if not self._graph.has_edge(u, v):
                    self._graph.add_edge(u, v)
                    record.fill_edges.append((u, v))
        self._graph.remove_vertex(vertex)
        self._stack.append(record)
        return neighbours

    def restore(self) -> Vertex:
        """Undo the most recent elimination; return the restored vertex."""
        if not self._stack:
            raise IndexError("no elimination to restore")
        record = self._stack.pop()
        for u, v in record.fill_edges:
            self._graph.remove_edge(u, v)
        self._graph.add_vertex(record.vertex)
        for neighbour in record.neighbours:
            self._graph.add_edge(record.vertex, neighbour)
        return record.vertex

    def restore_all(self) -> None:
        """Undo every elimination, returning to the original graph."""
        while self._stack:
            self.restore()

    def switch_to(self, prefix: Sequence[Vertex]) -> None:
        """Transform the graph to the state after eliminating ``prefix``.

        Restores eliminated vertices until the current elimination history
        is a prefix of ``prefix``, then eliminates the missing tail. When
        consecutive search states share a long common prefix this touches
        only the differing suffix.
        """
        current = self.eliminated()
        shared = 0
        for done, wanted in zip(current, prefix):
            if done != wanted:
                break
            shared += 1
        while len(self._stack) > shared:
            self.restore()
        for vertex in prefix[shared:]:
            self.eliminate(vertex)

    # ------------------------------------------------------------------
    # queries (delegated to the live graph)
    # ------------------------------------------------------------------

    def eliminated(self) -> list[Vertex]:
        """The elimination prefix applied so far, in order."""
        return [record.vertex for record in self._stack]

    def graph(self) -> Graph:
        """The live graph. Treat as read-only; mutate via eliminate()."""
        return self._graph

    def vertices(self) -> set[Vertex]:
        return self._graph.vertices()

    def neighbours(self, vertex: Vertex) -> set[Vertex]:
        return self._graph.neighbours(vertex)

    def degree(self, vertex: Vertex) -> int:
        return self._graph.degree(vertex)

    def num_vertices(self) -> int:
        return self._graph.num_vertices()

    def snapshot(self) -> Graph:
        """An independent copy of the live graph."""
        return self._graph.copy()

    def __len__(self) -> int:
        return self._graph.num_vertices()


def eliminate_sequence(graph: Graph, ordering: Iterable[Vertex]) -> list[set[Vertex]]:
    """Eliminate ``ordering`` from a copy of ``graph``; return the bags.

    The i-th returned set is ``{v_i} | N(v_i)`` at elimination time — the
    chi-label of the bucket for ``v_i`` (Figure 2.12). The thesis
    eliminates from the *end* of an ordering; callers are expected to pass
    the ordering in elimination order (i.e. already reversed if needed).
    """
    working = EliminationGraph(graph)
    bags: list[set[Vertex]] = []
    for vertex in ordering:
        neighbours = working.eliminate(vertex)
        bags.append({vertex} | neighbours)
    return bags
