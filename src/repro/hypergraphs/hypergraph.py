"""Hypergraphs, primal (Gaifman) graphs and dual graphs (Definitions 2-4).

A :class:`Hypergraph` is a finite vertex set together with a family of
hyperedges (subsets of the vertex set). Hyperedges are *named* so that a
CSP's constraints map one-to-one onto them and so that set covers can
report which constraints realise a lambda-label.

The thesis works with three derived structures, all provided here:

* the **primal graph** ``G*(H)`` — two vertices adjacent iff they co-occur
  in some hyperedge (Definition 3); tree decompositions of ``H`` and of
  ``G*(H)`` coincide (Lemma 1),
* the **dual graph** — one vertex per hyperedge, adjacent iff the
  hyperedges intersect (Definition 4); join trees live inside it,
* the **hypergraph sequence of Definition 16** — eliminating a vertex
  merges all hyperedges containing it, which :meth:`Hypergraph.eliminate`
  implements for the chapter-3 theory and its tests.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from typing import Any

from repro.hypergraphs.graph import Graph, Vertex

EdgeName = Hashable


class Hypergraph:
    """A hypergraph with named hyperedges.

    Parameters
    ----------
    edges:
        Either a mapping ``name -> iterable of vertices`` or an iterable of
        vertex-iterables (auto-named ``e0, e1, ...``).
    vertices:
        Optional extra vertices (isolated vertices are allowed; they simply
        never constrain anything).
    """

    def __init__(
        self,
        edges: Mapping[EdgeName, Iterable[Vertex]] | Iterable[Iterable[Vertex]] = (),
        vertices: Iterable[Vertex] = (),
    ) -> None:
        self._edges: dict[EdgeName, frozenset[Vertex]] = {}
        self._vertices: set[Vertex] = set(vertices)
        if isinstance(edges, Mapping):
            named = edges.items()
        else:
            named = ((f"e{i}", edge) for i, edge in enumerate(edges))
        for name, edge in named:
            self.add_edge(name, edge)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_vertex(self, vertex: Vertex) -> None:
        self._vertices.add(vertex)

    def add_edge(self, name: EdgeName, edge: Iterable[Vertex]) -> None:
        """Add hyperedge ``name`` over ``edge``'s vertices.

        Empty hyperedges are rejected — they would make every set-cover
        instance and the primal graph ill-defined.
        """
        members = frozenset(edge)
        if not members:
            raise ValueError(f"hyperedge {name!r} is empty")
        if name in self._edges:
            raise ValueError(f"duplicate hyperedge name {name!r}")
        self._edges[name] = members
        self._vertices |= members

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def vertices(self) -> set[Vertex]:
        return set(self._vertices)

    def edge_names(self) -> list[EdgeName]:
        return list(self._edges)

    def edge(self, name: EdgeName) -> frozenset[Vertex]:
        return self._edges[name]

    def edges(self) -> dict[EdgeName, frozenset[Vertex]]:
        """A fresh name -> vertex-set mapping of all hyperedges."""
        return dict(self._edges)

    def edge_sets(self) -> list[frozenset[Vertex]]:
        """The hyperedges as plain vertex sets (names dropped)."""
        return list(self._edges.values())

    def num_vertices(self) -> int:
        return len(self._vertices)

    def num_edges(self) -> int:
        return len(self._edges)

    def edges_containing(self, vertex: Vertex) -> list[EdgeName]:
        """Names of all hyperedges containing ``vertex``."""
        return [name for name, edge in self._edges.items() if vertex in edge]

    def incidence(self) -> dict[Vertex, set[EdgeName]]:
        """``vertex -> set of edge names containing it`` for all vertices."""
        table: dict[Vertex, set[EdgeName]] = {v: set() for v in self._vertices}
        for name, edge in self._edges.items():
            for vertex in edge:
                table[vertex].add(name)
        return table

    def max_edge_size(self) -> int:
        """Cardinality of the largest hyperedge (0 for an edgeless graph)."""
        return max((len(edge) for edge in self._edges.values()), default=0)

    # ------------------------------------------------------------------
    # derived structures
    # ------------------------------------------------------------------

    def primal_graph(self) -> Graph:
        """The Gaifman/primal graph ``G*(H)`` (Definition 3)."""
        graph = Graph(vertices=self._vertices)
        for edge in self._edges.values():
            graph.add_clique(edge)
        return graph

    def dual_graph(self) -> Graph:
        """The dual graph: edge names adjacent iff hyperedges intersect."""
        graph = Graph(vertices=self._edges.keys())
        names = list(self._edges)
        for i, first in enumerate(names):
            for second in names[i + 1 :]:
                if self._edges[first] & self._edges[second]:
                    graph.add_edge(first, second)
        return graph

    def eliminate(self, vertex: Vertex) -> "Hypergraph":
        """The next hypergraph of Definition 16.

        All hyperedges containing ``vertex`` are merged into a single
        hyperedge, then ``vertex`` is removed. Edges that become empty or
        duplicate the merged edge's content keep their own identity only
        if they still contain some vertex; this mirrors the adjacency
        bookkeeping of vertex elimination on the primal graph.
        """
        if vertex not in self._vertices:
            raise KeyError(f"vertex {vertex!r} not in hypergraph")
        merged: set[Vertex] = set()
        survivors: dict[EdgeName, frozenset[Vertex]] = {}
        merged_names: list[EdgeName] = []
        for name, edge in self._edges.items():
            if vertex in edge:
                merged |= edge
                merged_names.append(name)
            else:
                survivors[name] = edge
        result = Hypergraph(vertices=self._vertices - {vertex})
        for name, edge in survivors.items():
            result.add_edge(name, edge)
        merged.discard(vertex)
        if merged:
            merged_name = ("merged",) + tuple(merged_names)
            result.add_edge(merged_name, merged)
        return result

    def restrict(self, vertices: Iterable[Vertex]) -> "Hypergraph":
        """Restrict every hyperedge to ``vertices``; drop emptied edges.

        Used by the ghw lower bound when reasoning about the remaining
        (not yet eliminated) part of an instance.
        """
        keep = set(vertices)
        result = Hypergraph(vertices=keep & self._vertices)
        for name, edge in self._edges.items():
            restricted = edge & keep
            if restricted:
                result.add_edge(name, restricted)
        return result

    def is_connected(self) -> bool:
        """``True`` iff the primal graph is connected (and non-empty)."""
        if not self._vertices:
            return False
        components = self.primal_graph().connected_components()
        return len(components) == 1

    def copy(self) -> "Hypergraph":
        result = Hypergraph(vertices=self._vertices)
        for name, edge in self._edges.items():
            result.add_edge(name, edge)
        return result

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._vertices

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._vertices == other._vertices and self._edges == other._edges

    def __repr__(self) -> str:
        return (
            f"Hypergraph(|V|={self.num_vertices()}, |H|={self.num_edges()})"
        )


def from_graph(graph: Graph) -> Hypergraph:
    """View a regular graph as a hypergraph with 2-element hyperedges.

    Every graph may be regarded as a hypergraph whose hyperedges connect
    exactly two vertices (Definition 2).
    """
    hypergraph = Hypergraph(vertices=graph.vertices())
    for i, edge in enumerate(sorted(graph.edges(), key=_edge_sort_key)):
        hypergraph.add_edge(f"e{i}", edge)
    return hypergraph


def _edge_sort_key(edge: frozenset[Vertex]) -> tuple[str, ...]:
    return tuple(sorted(repr(v) for v in edge))
