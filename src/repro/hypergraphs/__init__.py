"""Graph and hypergraph substrates."""

from repro.hypergraphs.chordal import (
    fill_in_graph,
    is_chordal,
    is_perfect_elimination_ordering,
    maximum_clique_of_chordal,
    treewidth_of_chordal,
)
from repro.hypergraphs.elimination_graph import (
    EliminationGraph,
    eliminate_sequence,
)
from repro.hypergraphs.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
)
from repro.hypergraphs.hypergraph import Hypergraph, from_graph

__all__ = [
    "EliminationGraph",
    "Graph",
    "Hypergraph",
    "complete_graph",
    "cycle_graph",
    "eliminate_sequence",
    "fill_in_graph",
    "is_chordal",
    "is_perfect_elimination_ordering",
    "maximum_clique_of_chordal",
    "treewidth_of_chordal",
    "from_graph",
    "path_graph",
]
