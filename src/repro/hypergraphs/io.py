"""File formats: DIMACS ``.col`` graphs and hypergraph edge lists.

Two formats cover the thesis's benchmark universes:

* **DIMACS .col** (graph colouring): ``p edge N M`` header, ``e u v``
  edge lines, ``c`` comments. Vertices are 1-based ints.
* **Hypergraph edge lists** in the CSP-hypergraph-library style: one
  hyperedge per line, ``name(v1,v2,...)`` with optional trailing comma
  or period; blank lines and ``%``/``#`` comments ignored. A bare
  ``v1 v2 v3`` line is also accepted (auto-named).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.hypergraphs.graph import Graph
from repro.hypergraphs.hypergraph import Hypergraph


class FormatError(ValueError):
    """Raised for malformed input files."""


# ----------------------------------------------------------------------
# DIMACS .col
# ----------------------------------------------------------------------

def parse_dimacs(text: str) -> Graph:
    """Parse DIMACS graph-colouring format into a :class:`Graph`."""
    graph = Graph()
    declared: int | None = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        fields = line.split()
        if fields[0] == "p":
            if len(fields) != 4 or fields[1] not in ("edge", "edges", "col"):
                raise FormatError(
                    f"line {line_number}: bad problem line {line!r}"
                )
            declared = int(fields[2])
            for vertex in range(1, declared + 1):
                graph.add_vertex(vertex)
        elif fields[0] == "e":
            if len(fields) != 3:
                raise FormatError(f"line {line_number}: bad edge {line!r}")
            u, v = int(fields[1]), int(fields[2])
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v)
        elif fields[0] == "n":
            continue  # optional node lines carry colouring data we ignore
        else:
            raise FormatError(
                f"line {line_number}: unknown record {fields[0]!r}"
            )
    if declared is not None and graph.num_vertices() != declared:
        raise FormatError(
            f"header declared {declared} vertices, found {graph.num_vertices()}"
        )
    return graph


def read_dimacs(path: str | Path) -> Graph:
    return parse_dimacs(Path(path).read_text())


def write_dimacs(graph: Graph, path: str | Path) -> None:
    """Write a graph whose vertices are 1-based ints (or relabel first)."""
    vertices = sorted(graph.vertices(), key=repr)
    index = {vertex: i + 1 for i, vertex in enumerate(vertices)}
    lines = [f"p edge {graph.num_vertices()} {graph.num_edges()}"]
    for edge in sorted(
        graph.edges(), key=lambda e: tuple(sorted(index[v] for v in e))
    ):
        u, v = sorted((index[w] for w in edge))
        lines.append(f"e {u} {v}")
    Path(path).write_text("\n".join(lines) + "\n")


# ----------------------------------------------------------------------
# Hypergraph edge lists
# ----------------------------------------------------------------------

_EDGE_LINE = re.compile(
    r"^\s*(?P<name>[A-Za-z0-9_.\-]+)\s*\(\s*(?P<body>[^()]*?)\s*\)\s*[,.;]?\s*$"
)


def parse_hypergraph(text: str) -> Hypergraph:
    """Parse a hypergraph edge list into a :class:`Hypergraph`."""
    hypergraph = Hypergraph()
    auto = 0
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(("%", "#", "//")):
            continue
        match = _EDGE_LINE.match(line)
        if match:
            name = match.group("name")
            body = match.group("body")
            members = [token.strip() for token in body.split(",") if token.strip()]
        else:
            name = f"e{auto}"
            auto += 1
            members = line.replace(",", " ").split()
        if not members:
            raise FormatError(f"line {line_number}: empty hyperedge {line!r}")
        try:
            hypergraph.add_edge(name, members)
        except ValueError as exc:
            raise FormatError(f"line {line_number}: {exc}") from exc
    return hypergraph


def read_hypergraph(path: str | Path) -> Hypergraph:
    return parse_hypergraph(Path(path).read_text())


def write_hypergraph(hypergraph: Hypergraph, path: str | Path) -> None:
    lines = []
    for name, edge in sorted(hypergraph.edges().items(), key=lambda kv: repr(kv[0])):
        members = ",".join(sorted(str(v) for v in edge))
        lines.append(f"{name}({members})")
    Path(path).write_text("\n".join(lines) + "\n")
