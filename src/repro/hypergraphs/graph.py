"""Mutable undirected graphs with the operations the thesis relies on.

The search algorithms of Schafhauser's thesis (A*-tw, BB-ghw, ...) act on
*regular graphs* — usually the primal graph of a hypergraph — and repeatedly
perform three operations:

* **vertex elimination**: connect all neighbours of a vertex into a clique,
  then remove the vertex (Section 2.5.3),
* **edge contraction**: merge a vertex into a neighbour (used by the
  minor-min-width and minor-gamma_R lower bounds, Figures 4.7 and 4.8),
* **neighbourhood queries**: degrees, adjacency tests, simplicial checks.

:class:`Graph` keeps adjacency as ``dict[vertex, set[vertex]]`` which makes
all of those O(degree). Vertices may be any hashable objects; instance
generators use ints or short strings.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from itertools import combinations
from typing import Any

Vertex = Hashable


def vertex_sort_key(vertex: Vertex) -> tuple:
    """The library-wide canonical sort key for vertices.

    Every deterministic vertex tie-break — the simplicial reduction
    rules, the bitset kernels' interning, witness-ordering fallbacks —
    must sort with this one key so the pure-Python and bitset paths pick
    identical vertices. Real numbers order by value (``2`` before
    ``10``), everything else by ``repr``; numbers sort before
    non-numbers so mixed vertex families still have one total order.
    ``bool`` is excluded from the numeric branch because ``True == 1``
    would collide with an integer vertex ``1``.
    """
    if isinstance(vertex, (int, float)) and not isinstance(vertex, bool):
        return (0, vertex, "")
    return (1, 0, repr(vertex))


class Graph:
    """A simple undirected graph (no loops, no parallel edges)."""

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[tuple[Vertex, Vertex]] = (),
    ) -> None:
        self._adj: dict[Vertex, set[Vertex]] = {}
        for vertex in vertices:
            self.add_vertex(vertex)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction and mutation
    # ------------------------------------------------------------------

    def add_vertex(self, vertex: Vertex) -> None:
        """Add ``vertex`` if not already present."""
        self._adj.setdefault(vertex, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Self-loops are rejected: the decomposition algorithms assume simple
        graphs and a silent loop would corrupt degree-based heuristics.
        """
        if u == v:
            raise ValueError(f"self-loop on {u!r} is not allowed")
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``; raise :class:`KeyError` if absent."""
        try:
            self._adj[u].remove(v)
            self._adj[v].remove(u)
        except KeyError as exc:
            raise KeyError(f"edge {{{u!r}, {v!r}}} not in graph") from exc

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and all incident edges."""
        for neighbour in self._adj.pop(vertex):
            self._adj[neighbour].discard(vertex)

    def add_clique(self, vertices: Iterable[Vertex]) -> None:
        """Pairwise connect ``vertices`` (used when eliminating a vertex)."""
        vertex_list = list(vertices)
        for vertex in vertex_list:
            self.add_vertex(vertex)
        for u, v in combinations(vertex_list, 2):
            self.add_edge(u, v)

    def eliminate(self, vertex: Vertex) -> set[Vertex]:
        """Eliminate ``vertex``: clique its neighbourhood, then remove it.

        Returns the neighbourhood that was turned into a clique, i.e. the
        bag ``chi(B_v) - {v}`` that vertex elimination (Figure 2.12)
        associates with ``vertex``.
        """
        neighbours = set(self._adj[vertex])
        self.add_clique(neighbours)
        self.remove_vertex(vertex)
        return neighbours

    def contract(self, u: Vertex, v: Vertex) -> None:
        """Contract edge ``{u, v}`` by merging ``v`` into ``u``.

        Every neighbour of ``v`` (except ``u``) becomes a neighbour of
        ``u``; ``v`` disappears. This is the minor operation used by the
        lower-bound heuristics of Section 4.4.2.
        """
        if v not in self._adj[u]:
            raise KeyError(f"cannot contract non-edge {{{u!r}, {v!r}}}")
        for neighbour in self._adj[v]:
            if neighbour != u:
                self.add_edge(u, neighbour)
        self.remove_vertex(v)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def vertices(self) -> set[Vertex]:
        """A fresh set of all vertices."""
        return set(self._adj)

    def edges(self) -> set[frozenset[Vertex]]:
        """All edges as 2-element frozensets."""
        seen: set[frozenset[Vertex]] = set()
        for u, neighbours in self._adj.items():
            for v in neighbours:
                seen.add(frozenset((u, v)))
        return seen

    def neighbours(self, vertex: Vertex) -> set[Vertex]:
        """A fresh copy of the neighbourhood of ``vertex``."""
        return set(self._adj[vertex])

    def degree(self, vertex: Vertex) -> int:
        return len(self._adj[vertex])

    def has_vertex(self, vertex: Vertex) -> bool:
        return vertex in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    def num_vertices(self) -> int:
        return len(self._adj)

    def num_edges(self) -> int:
        return sum(len(neighbours) for neighbours in self._adj.values()) // 2

    def is_clique(self, vertices: Iterable[Vertex]) -> bool:
        """``True`` iff ``vertices`` are pairwise adjacent."""
        vertex_list = list(vertices)
        return all(
            self.has_edge(u, v) for u, v in combinations(vertex_list, 2)
        )

    def is_simplicial(self, vertex: Vertex) -> bool:
        """A vertex is simplicial if its neighbourhood induces a clique."""
        return self.is_clique(self._adj[vertex])

    def is_almost_simplicial(self, vertex: Vertex) -> bool:
        """All but (at most) one neighbour induce a clique (Definition 23).

        A simplicial vertex is in particular almost simplicial.
        """
        neighbours = list(self._adj[vertex])
        if self.is_clique(neighbours):
            return True
        return any(
            self.is_clique(neighbours[:i] + neighbours[i + 1 :])
            for i in range(len(neighbours))
        )

    def connected_components(self) -> list[set[Vertex]]:
        """Connected components via iterative DFS."""
        remaining = set(self._adj)
        components: list[set[Vertex]] = []
        while remaining:
            root = next(iter(remaining))
            component = {root}
            stack = [root]
            while stack:
                current = stack.pop()
                for neighbour in self._adj[current]:
                    if neighbour not in component:
                        component.add(neighbour)
                        stack.append(neighbour)
            remaining -= component
            components.append(component)
        return components

    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """The subgraph induced by ``vertices``."""
        keep = set(vertices)
        missing = keep - set(self._adj)
        if missing:
            raise KeyError(f"vertices not in graph: {sorted(map(repr, missing))}")
        result = Graph(vertices=keep)
        for vertex in keep:
            for neighbour in self._adj[vertex] & keep:
                result.add_edge(vertex, neighbour)
        return result

    def copy(self) -> "Graph":
        """A deep, independent copy."""
        result = Graph()
        result._adj = {vertex: set(adj) for vertex, adj in self._adj.items()}
        return result

    def fill_in(self, vertex: Vertex) -> int:
        """Number of edges that eliminating ``vertex`` would insert.

        This is the quantity minimised by the min-fill heuristic
        (Section 4.4.2).
        """
        neighbours = list(self._adj[vertex])
        missing = 0
        for u, v in combinations(neighbours, 2):
            if v not in self._adj[u]:
                missing += 1
        return missing

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._adj

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return (
            f"Graph(|V|={self.num_vertices()}, |E|={self.num_edges()})"
        )


def complete_graph(n: int) -> Graph:
    """The complete graph K_n on vertices ``0..n-1``."""
    graph = Graph(vertices=range(n))
    graph.add_clique(range(n))
    return graph


def path_graph(n: int) -> Graph:
    """The path P_n on vertices ``0..n-1``."""
    graph = Graph(vertices=range(n))
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def cycle_graph(n: int) -> Graph:
    """The cycle C_n on vertices ``0..n-1`` (``n >= 3``)."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    graph = path_graph(n)
    graph.add_edge(n - 1, 0)
    return graph
