"""Chordal graphs and perfect elimination orderings.

The width machinery leans on chordality in two places the thesis makes
explicit: the fast GA evaluation (Figure 6.2) is a modification of the
classic linear-time *perfect elimination ordering* test (Golumbic [25]),
and an ordering is width-optimal exactly when the fill-in it produces
triangulates the graph no worse than necessary. This module provides
the classical toolkit:

* :func:`is_perfect_elimination_ordering` — does an ordering produce no
  fill at all?
* :func:`is_chordal` — via maximum cardinality search + the PEO test;
* :func:`fill_in_graph` — the triangulation an ordering induces;
* :func:`maximum_clique_of_chordal` — read the clique number (hence the
  treewidth + 1) off a perfect elimination ordering.

On chordal graphs every ordering-based algorithm in the library should
return ``clique number - 1`` exactly; the tests enforce that.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bounds.upper import max_cardinality_ordering
from repro.hypergraphs.graph import Graph, Vertex


def is_perfect_elimination_ordering(
    graph: Graph, ordering: Sequence[Vertex]
) -> bool:
    """True iff eliminating along ``ordering`` adds no fill edge.

    Golumbic's O(|V| + |E|) test: for each vertex, its later neighbours
    must all be adjacent to the *first* of them (checking against the
    first suffices — transitivity does the rest).
    """
    position = {vertex: i for i, vertex in enumerate(ordering)}
    if len(position) != graph.num_vertices() or set(position) != graph.vertices():
        raise ValueError("ordering is not a permutation of the vertices")
    for vertex in ordering:
        later = [
            neighbour
            for neighbour in graph.neighbours(vertex)
            if position[neighbour] > position[vertex]
        ]
        if not later:
            continue
        anchor = min(later, key=position.__getitem__)
        for other in later:
            if other != anchor and not graph.has_edge(anchor, other):
                return False
    return True


def is_chordal(graph: Graph) -> bool:
    """Chordality test: MCS yields a PEO iff the graph is chordal."""
    if graph.num_vertices() == 0:
        return True
    ordering = max_cardinality_ordering(graph, None)
    return is_perfect_elimination_ordering(graph, ordering)


def fill_in_graph(graph: Graph, ordering: Sequence[Vertex]) -> Graph:
    """The triangulation of ``graph`` induced by ``ordering``.

    Returns a chordal supergraph: the original edges plus every fill
    edge elimination inserts. ``ordering`` is a perfect elimination
    ordering of the result.
    """
    from repro.hypergraphs.elimination_graph import EliminationGraph

    working = EliminationGraph(graph)
    filled = graph.copy()
    for vertex in ordering:
        neighbours = working.eliminate(vertex)
        filled.add_clique(neighbours)
    return filled


def maximum_clique_of_chordal(graph: Graph) -> set[Vertex]:
    """A maximum clique of a chordal graph (raises on non-chordal input).

    Along a perfect elimination ordering each vertex's closed later
    neighbourhood is a clique, and some such set is maximum.
    """
    if graph.num_vertices() == 0:
        return set()
    ordering = max_cardinality_ordering(graph, None)
    if not is_perfect_elimination_ordering(graph, ordering):
        raise ValueError("graph is not chordal")
    position = {vertex: i for i, vertex in enumerate(ordering)}
    best: set[Vertex] = set()
    for vertex in ordering:
        candidate = {vertex} | {
            neighbour
            for neighbour in graph.neighbours(vertex)
            if position[neighbour] > position[vertex]
        }
        if len(candidate) > len(best):
            best = candidate
    return best


def treewidth_of_chordal(graph: Graph) -> int:
    """``clique number - 1``: the exact treewidth of a chordal graph."""
    if graph.num_vertices() == 0:
        return 0
    return len(maximum_clique_of_chordal(graph)) - 1
