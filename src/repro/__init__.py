"""repro — tree decompositions and generalized hypertree decompositions.

A production reproduction of Schafhauser's "New Heuristic Methods for
Tree Decompositions and Generalized Hypertree Decompositions" (TU Wien,
2006; the constructive companion of the PODS-2007 line on generalized
hypertree width). The package provides:

* graph/hypergraph substrates with vertex elimination,
* tree decompositions and generalized hypertree decompositions (GHDs),
* the chapter-3 theory (leaf normal form; elimination orderings as a
  complete ghw search space),
* exact algorithms: A*-tw, BB-tw, BB-ghw, A*-ghw,
* heuristics: GA-tw, GA-ghw, SAIGA-ghw, ordering heuristics, treewidth
  and ghw lower bounds,
* a CSP layer that actually *solves* constraint problems from the
  decompositions (Acyclic Solving / Join-Tree Clustering),
* benchmark instance generators for the thesis's tables.

Quickstart::

    from repro import Hypergraph, decompose, generalized_hypertree_width

    h = Hypergraph({"C1": {"x1", "x2", "x3"},
                    "C2": {"x1", "x5", "x6"},
                    "C3": {"x3", "x4", "x5"}})
    print(generalized_hypertree_width(h).value)   # 2
    ghd = decompose(h)                            # complete, validated GHD
"""

from repro.core.api import (
    decompose,
    decompose_graph,
    generalized_hypertree_width,
    ghw_bounds,
    ghw_upper_bound,
    is_ghw_at_most,
    is_treewidth_at_most,
    treewidth,
    treewidth_bounds,
    treewidth_upper_bound,
    validate_hypergraph,
)
from repro.decompositions.elimination import (
    ordering_ghw,
    ordering_to_ghd,
    ordering_to_tree_decomposition,
    ordering_width,
)
from repro.decompositions.ghd import (
    GeneralizedHypertreeDecomposition,
    make_complete,
)
from repro.decompositions.tree_decomposition import (
    DecompositionError,
    TreeDecomposition,
)
from repro.hypergraphs.graph import Graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.search.common import SearchResult

__version__ = "1.0.0"

__all__ = [
    "DecompositionError",
    "GeneralizedHypertreeDecomposition",
    "Graph",
    "Hypergraph",
    "SearchResult",
    "TreeDecomposition",
    "decompose",
    "decompose_graph",
    "generalized_hypertree_width",
    "ghw_bounds",
    "ghw_upper_bound",
    "is_ghw_at_most",
    "is_treewidth_at_most",
    "make_complete",
    "ordering_ghw",
    "ordering_to_ghd",
    "ordering_to_tree_decomposition",
    "ordering_width",
    "treewidth",
    "treewidth_bounds",
    "treewidth_upper_bound",
    "validate_hypergraph",
    "__version__",
]
