"""Genetic algorithms: GA-tw, GA-ghw, SAIGA-ghw and their operators."""

from repro.genetic.crossover import CROSSOVER_OPERATORS, get_crossover
from repro.genetic.engine import GAParameters, GAResult, run_ga
from repro.genetic.ga_ghw import ga_ghw, ga_ghw_upper_bound
from repro.genetic.ga_tw import ga_treewidth, ga_treewidth_upper_bound
from repro.genetic.mutation import MUTATION_OPERATORS, get_mutation
from repro.genetic.saiga import ParameterVector, SAIGAResult, saiga_ghw
from repro.genetic.selection import best_individual, tournament_selection
from repro.genetic.weighted import (
    ga_weighted_triangulation,
    triangulation_weight,
)

__all__ = [
    "CROSSOVER_OPERATORS",
    "GAParameters",
    "GAResult",
    "MUTATION_OPERATORS",
    "ParameterVector",
    "SAIGAResult",
    "best_individual",
    "ga_ghw",
    "ga_ghw_upper_bound",
    "ga_treewidth",
    "ga_treewidth_upper_bound",
    "ga_weighted_triangulation",
    "triangulation_weight",
    "get_crossover",
    "get_mutation",
    "run_ga",
    "saiga_ghw",
    "tournament_selection",
]
