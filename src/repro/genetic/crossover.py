"""Crossover operators for permutations (Section 4.3.2, after [36]).

All six operators the thesis compares in Table 6.1 are implemented. Each
takes two parent permutations (of the same elements) plus a random source
and returns two offspring permutations. Offspring are always valid
permutations of the same elements — property tests enforce this.

Operator summary (thesis ranking on Table 6.1: POS best):

========  ============================================================
PMX       exchange a random segment; repair conflicts via the mapping
CX        first cycle from parent 1, rest from parent 2
OX1       keep a segment, fill the rest in the other parent's order
OX2       reorder coin-selected genes to the other parent's order
POS       plant the other parent's genes at coin-selected positions
AP        alternate genes from both parents, skipping duplicates
========  ============================================================
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence

from repro.hypergraphs.graph import Vertex

Permutation = list[Vertex]
CrossoverOperator = Callable[
    [Sequence[Vertex], Sequence[Vertex], random.Random],
    tuple[Permutation, Permutation],
]


def _segment(n: int, rng: random.Random) -> tuple[int, int]:
    """A random non-empty segment ``[lo, hi)`` of ``range(n)``."""
    lo, hi = sorted(rng.sample(range(n + 1), 2))
    if lo == hi:  # cannot happen with sample, kept for clarity
        hi += 1
    return lo, hi


def _coin_positions(n: int, rng: random.Random) -> list[int]:
    """Toss a coin per position; guarantee at least one selected and one
    unselected so the operator actually mixes (for n >= 2)."""
    positions = [i for i in range(n) if rng.random() < 0.5]
    if not positions:
        positions = [rng.randrange(n)]
    if len(positions) == n and n >= 2:
        positions.remove(rng.choice(positions))
    return positions


def _pmx_child(
    donor: Sequence[Vertex],
    receiver: Sequence[Vertex],
    lo: int,
    hi: int,
) -> Permutation:
    """One PMX offspring: the donor's segment inside the receiver."""
    n = len(donor)
    segment = list(donor[lo:hi])
    in_segment = set(segment)
    mapping = {donor[i]: receiver[i] for i in range(lo, hi)}
    child: Permutation = [None] * n  # type: ignore[list-item]
    child[lo:hi] = segment
    for i in list(range(0, lo)) + list(range(hi, n)):
        gene = receiver[i]
        while gene in in_segment:
            gene = mapping[gene]
        child[i] = gene
    return child


def pmx(
    parent1: Sequence[Vertex], parent2: Sequence[Vertex], rng: random.Random
) -> tuple[Permutation, Permutation]:
    """Partially-mapped crossover."""
    n = len(parent1)
    if n < 2:
        return list(parent1), list(parent2)
    lo, hi = _segment(n, rng)
    return (
        _pmx_child(parent2, parent1, lo, hi),
        _pmx_child(parent1, parent2, lo, hi),
    )


def cx(
    parent1: Sequence[Vertex], parent2: Sequence[Vertex], rng: random.Random
) -> tuple[Permutation, Permutation]:
    """Cycle crossover: the first cycle keeps its parent's positions."""
    n = len(parent1)
    if n < 2:
        return list(parent1), list(parent2)
    index_in_1 = {gene: i for i, gene in enumerate(parent1)}
    cycle = {0}
    position = index_in_1[parent2[0]]
    while position != 0:
        cycle.add(position)
        position = index_in_1[parent2[position]]
    child1 = [
        parent1[i] if i in cycle else parent2[i] for i in range(n)
    ]
    child2 = [
        parent2[i] if i in cycle else parent1[i] for i in range(n)
    ]
    return child1, child2


def _ox1_child(
    keeper: Sequence[Vertex],
    filler: Sequence[Vertex],
    lo: int,
    hi: int,
) -> Permutation:
    n = len(keeper)
    kept = set(keeper[lo:hi])
    child: Permutation = [None] * n  # type: ignore[list-item]
    child[lo:hi] = list(keeper[lo:hi])
    # Fill remaining slots starting after the segment, taking the filler's
    # genes in the order they appear starting from the segment end.
    source = [filler[(hi + k) % n] for k in range(n)]
    write_positions = [(hi + k) % n for k in range(n) if (hi + k) % n not in range(lo, hi)]
    values = [gene for gene in source if gene not in kept]
    for position, gene in zip(write_positions, values):
        child[position] = gene
    return child


def ox1(
    parent1: Sequence[Vertex], parent2: Sequence[Vertex], rng: random.Random
) -> tuple[Permutation, Permutation]:
    """Order crossover."""
    n = len(parent1)
    if n < 2:
        return list(parent1), list(parent2)
    lo, hi = _segment(n, rng)
    return (
        _ox1_child(parent1, parent2, lo, hi),
        _ox1_child(parent2, parent1, lo, hi),
    )


def _ox2_child(
    base: Sequence[Vertex],
    other: Sequence[Vertex],
    positions: list[int],
) -> Permutation:
    """Reorder ``other``'s selected genes inside ``base``."""
    selected = [other[i] for i in positions]
    selected_set = set(selected)
    child = list(base)
    slots = [i for i, gene in enumerate(base) if gene in selected_set]
    for slot, gene in zip(slots, selected):
        child[slot] = gene
    return child


def ox2(
    parent1: Sequence[Vertex], parent2: Sequence[Vertex], rng: random.Random
) -> tuple[Permutation, Permutation]:
    """Order-based crossover."""
    n = len(parent1)
    if n < 2:
        return list(parent1), list(parent2)
    positions = _coin_positions(n, rng)
    return (
        _ox2_child(parent1, parent2, positions),
        _ox2_child(parent2, parent1, positions),
    )


def _pos_child(
    planter: Sequence[Vertex],
    base: Sequence[Vertex],
    positions: list[int],
) -> Permutation:
    """Plant ``planter``'s genes at ``positions``; fill with ``base``."""
    n = len(base)
    child: Permutation = [None] * n  # type: ignore[list-item]
    planted = set()
    for i in positions:
        child[i] = planter[i]
        planted.add(planter[i])
    fill = iter(gene for gene in base if gene not in planted)
    for i in range(n):
        if child[i] is None:
            child[i] = next(fill)
    return child


def pos(
    parent1: Sequence[Vertex], parent2: Sequence[Vertex], rng: random.Random
) -> tuple[Permutation, Permutation]:
    """Position-based crossover (the thesis's operator of choice)."""
    n = len(parent1)
    if n < 2:
        return list(parent1), list(parent2)
    positions = _coin_positions(n, rng)
    return (
        _pos_child(parent2, parent1, positions),
        _pos_child(parent1, parent2, positions),
    )


def _ap_child(
    first: Sequence[Vertex], second: Sequence[Vertex]
) -> Permutation:
    n = len(first)
    child: Permutation = []
    seen: set[Vertex] = set()
    iters = (iter(first), iter(second))
    turn = 0
    while len(child) < n:
        for gene in iters[turn]:
            if gene not in seen:
                child.append(gene)
                seen.add(gene)
                break
        turn = 1 - turn
    return child


def ap(
    parent1: Sequence[Vertex], parent2: Sequence[Vertex], rng: random.Random
) -> tuple[Permutation, Permutation]:
    """Alternating-position crossover."""
    if len(parent1) < 2:
        return list(parent1), list(parent2)
    return _ap_child(parent1, parent2), _ap_child(parent2, parent1)


CROSSOVER_OPERATORS: dict[str, CrossoverOperator] = {
    "PMX": pmx,
    "CX": cx,
    "OX1": ox1,
    "OX2": ox2,
    "POS": pos,
    "AP": ap,
}


def get_crossover(name: str) -> CrossoverOperator:
    try:
        return CROSSOVER_OPERATORS[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown crossover {name!r}; choose from {sorted(CROSSOVER_OPERATORS)}"
        ) from None
