"""GA-ghw: genetic algorithm for ghw upper bounds (Chapter 7, Section 7.1).

Identical to GA-tw except for the fitness function: an ordering's fitness
is the largest *greedy set-cover* size over its elimination bags
(Figure 7.1 + Figure 7.2). The greedy cover makes every fitness value an
upper bound on the exact cover width, so the best fitness found is a
valid ghw upper bound.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.bounds.upper import min_degree_ordering, min_fill_ordering
from repro.decompositions.elimination import elimination_bags
from repro.genetic.engine import GAParameters, GAResult, run_ga
from repro.hypergraphs.graph import Vertex
from repro.hypergraphs.hypergraph import Hypergraph
from repro.obs.control import SolverControl
from repro.setcover.greedy import greedy_set_cover


def make_ghw_evaluator(
    hypergraph: Hypergraph,
    rng: random.Random | None = None,
):
    """The Figure 7.1 evaluation closure for ``hypergraph``.

    Bags come from bucket propagation on the primal graph; each bag is
    covered greedily (random tie-breaks when ``rng`` is given, matching
    the thesis; deterministic otherwise).
    """
    primal = hypergraph.primal_graph()
    edges = hypergraph.edges()

    def evaluate(ordering: Sequence[Vertex]) -> int:
        bags = elimination_bags(primal, list(ordering))
        return max(
            (
                len(greedy_set_cover(bag, edges, rng=rng))
                for bag in bags.values()
            ),
            default=0,
        )

    return evaluate


def ga_ghw(
    hypergraph: Hypergraph,
    parameters: GAParameters | None = None,
    seed: int | random.Random = 0,
    seed_heuristics: bool = True,
    time_limit: float | None = None,
    target: int | None = None,
    backend: str = "python",
    jobs: int = 1,
    control: SolverControl | None = None,
    resume_state: dict | None = None,
) -> GAResult:
    """Run GA-ghw on ``hypergraph``; best fitness is a ghw upper bound.

    ``backend="bitset"`` evaluates fitness on the
    :mod:`repro.kernels` bitmask kernel with the shared cover cache
    (deterministic greedy tie-breaks instead of the thesis's randomised
    ones); ``jobs > 1`` additionally fans each population out over a
    process pool. The default ``("python", 1)`` is the seed behaviour,
    bit-identical to earlier releases.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    parameters = parameters or GAParameters()

    vertices: Sequence[Vertex] = sorted(hypergraph.vertices(), key=repr)
    if len(vertices) <= 1 or hypergraph.num_edges() == 0:
        return run_ga(
            vertices,
            lambda _ordering: 0 if hypergraph.num_edges() == 0 else 1,
            GAParameters(population_size=2, max_iterations=0),
            rng,
        )

    primal = hypergraph.primal_graph()
    seeds: list[list[Vertex]] = []
    if seed_heuristics:
        seeds = [
            min_fill_ordering(primal, rng),
            min_degree_ordering(primal, rng),
        ]

    evaluate, batch_evaluate, closer = _make_evaluators(
        hypergraph, backend, jobs, rng
    )
    try:
        return run_ga(
            vertices,
            evaluate,
            parameters,
            rng,
            seeds=seeds,
            time_limit=time_limit,
            target=target,
            batch_evaluate=batch_evaluate,
            control=control,
            resume_state=resume_state,
        )
    finally:
        if closer is not None:
            closer()


def _make_evaluators(
    hypergraph: Hypergraph,
    backend: str,
    jobs: int,
    rng: random.Random,
):
    """(per-individual, per-population, close) evaluators for a backend."""
    from repro.kernels.evaluators import check_backend

    check_backend(backend)
    if jobs > 1:
        from repro.kernels.parallel import ParallelEvaluator

        evaluator = ParallelEvaluator(
            hypergraph, measure="ghw", jobs=jobs, backend=backend
        )
        return evaluator, evaluator.evaluate_population, evaluator.close
    if backend == "bitset":
        from repro.kernels.evaluators import make_bit_ghw_evaluator

        return make_bit_ghw_evaluator(hypergraph), None, None
    return make_ghw_evaluator(hypergraph, rng=rng), None, None


def ga_ghw_upper_bound(
    hypergraph: Hypergraph,
    parameters: GAParameters | None = None,
    seed: int = 0,
    runs: int = 1,
    time_limit: float | None = None,
) -> int:
    """Best ghw upper bound over ``runs`` independent GA-ghw runs."""
    best: int | None = None
    for run in range(max(1, runs)):
        result = ga_ghw(
            hypergraph,
            parameters=parameters,
            seed=seed + run,
            time_limit=time_limit,
        )
        if best is None or result.best_fitness < best:
            best = result.best_fitness
    assert best is not None
    return best
