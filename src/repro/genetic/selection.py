"""Selection schemes for the genetic algorithms (Section 4.3 / 6.1).

The thesis uses **tournament selection** throughout: to select one
individual, draw a random group of ``s`` individuals and take the fittest
(smallest width — these are minimisation problems). Table 6.5 compares
group sizes; ``s = 3`` is the thesis's final choice.

Elitism is provided as an optional helper because the engine preserves
the best-ever individual across generations (the thesis records the best
fitness found during the whole run, which amounts to the same guarantee
on reported results).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.hypergraphs.graph import Vertex

Permutation = list[Vertex]


def tournament_selection(
    population: Sequence[Permutation],
    fitnesses: Sequence[int],
    group_size: int,
    count: int,
    rng: random.Random,
) -> list[Permutation]:
    """Select ``count`` individuals by repeated s-way tournaments.

    Smaller fitness wins (widths are minimised). Selected individuals are
    *copies*, so later crossover/mutation cannot alias population members.
    """
    if len(population) != len(fitnesses):
        raise ValueError("population and fitnesses must align")
    if not population:
        raise ValueError("cannot select from an empty population")
    if group_size < 1:
        raise ValueError("tournament group size must be >= 1")
    indices = range(len(population))
    selected: list[Permutation] = []
    for _ in range(count):
        group = rng.sample(indices, min(group_size, len(population)))
        winner = min(group, key=lambda i: (fitnesses[i], i))
        selected.append(list(population[winner]))
    return selected


def best_individual(
    population: Sequence[Permutation], fitnesses: Sequence[int]
) -> tuple[Permutation, int]:
    """The fittest individual and its fitness (ties break on index)."""
    index = min(range(len(population)), key=lambda i: (fitnesses[i], i))
    return list(population[index]), fitnesses[index]
