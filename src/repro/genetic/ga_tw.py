"""GA-tw: genetic algorithm for treewidth upper bounds (Chapter 6).

An individual is an elimination ordering of the graph's vertices; its
fitness is the width of the tree decomposition that bucket/vertex
elimination builds from it (Figure 6.2's fast evaluation). Applied to the
primal graph of a hypergraph, the same algorithm upper-bounds the
hypergraph's treewidth (Lemma 1).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.bounds.upper import min_degree_ordering, min_fill_ordering
from repro.genetic.engine import GAParameters, GAResult, run_ga
from repro.hypergraphs.graph import Graph, Vertex
from repro.hypergraphs.hypergraph import Hypergraph
from repro.obs.control import SolverControl


def ga_treewidth(
    graph: Graph | Hypergraph,
    parameters: GAParameters | None = None,
    seed: int | random.Random = 0,
    seed_heuristics: bool = True,
    time_limit: float | None = None,
    target: int | None = None,
    backend: str = "python",
    jobs: int = 1,
    control: SolverControl | None = None,
    resume_state: dict | None = None,
) -> GAResult:
    """Run GA-tw on ``graph`` (a hypergraph is replaced by its primal graph).

    Parameters
    ----------
    graph:
        The instance; hypergraphs are decomposed via their primal graph.
    parameters:
        GA control parameters; defaults to the thesis's tuned values
        (POS crossover, ISM mutation, p_c = 1.0, p_m = 0.3, s = 3).
    seed:
        Either an int seed or a ready :class:`random.Random`.
    seed_heuristics:
        Inject min-fill and min-degree orderings into the initial
        population (off reproduces the thesis's purely random start).
    time_limit, target:
        Optional early-stop conditions forwarded to the engine.
    backend, jobs:
        ``backend="bitset"`` evaluates widths on the bitmask kernel
        (identical fitness values); ``jobs > 1`` fans each population
        out over a process pool.
    control, resume_state:
        Portfolio hooks forwarded to :func:`~repro.genetic.engine.run_ga`.
    """
    if isinstance(graph, Hypergraph):
        graph = graph.primal_graph()
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    parameters = parameters or GAParameters()

    vertices: Sequence[Vertex] = sorted(graph.vertices(), key=repr)
    if len(vertices) <= 1:
        return run_ga(
            vertices,
            lambda _ordering: 0,
            GAParameters(
                population_size=2, max_iterations=0
            ),
            rng,
        )

    seeds: list[list[Vertex]] = []
    if seed_heuristics:
        seeds = [min_fill_ordering(graph, rng), min_degree_ordering(graph, rng)]

    from repro.kernels.evaluators import make_tw_evaluator

    batch_evaluate = None
    closer = None
    if jobs > 1:
        from repro.kernels.parallel import ParallelEvaluator

        evaluator = ParallelEvaluator(
            graph, measure="tw", jobs=jobs, backend=backend
        )
        evaluate = evaluator
        batch_evaluate = evaluator.evaluate_population
        closer = evaluator.close
    else:
        evaluate = make_tw_evaluator(graph, backend=backend)
    try:
        return run_ga(
            vertices,
            evaluate,
            parameters,
            rng,
            seeds=seeds,
            time_limit=time_limit,
            target=target,
            batch_evaluate=batch_evaluate,
            control=control,
            resume_state=resume_state,
        )
    finally:
        if closer is not None:
            closer()


def ga_treewidth_upper_bound(
    graph: Graph | Hypergraph,
    parameters: GAParameters | None = None,
    seed: int = 0,
    runs: int = 1,
    time_limit: float | None = None,
) -> int:
    """Best width over ``runs`` independent GA-tw runs (thesis reports
    min/max/avg of ten runs; benches use this helper)."""
    best: int | None = None
    for run in range(max(1, runs)):
        result = ga_treewidth(
            graph, parameters=parameters, seed=seed + run, time_limit=time_limit
        )
        if best is None or result.best_fitness < best:
            best = result.best_fitness
    assert best is not None
    return best
