"""SAIGA-ghw: self-adaptive island GA for ghw upper bounds (Section 7.2).

GA-ghw's control parameters (crossover rate, mutation rate, tournament
group size) had to be tuned by hand in Chapter 6; SAIGA removes the
tuning experiments by evolving the parameters *with* the populations:

* the population is split into islands arranged on a ring (Figure 7.3),
* each island carries its own **parameter vector** (Section 7.2.2) and
  runs the plain GA-ghw loop with it for one epoch,
* after each epoch the islands' best individuals **migrate** to the next
  island on the ring (replacing its worst individual),
* each parameter vector is **mutated** with log-normal/Gaussian noise
  (Section 7.2.4, Figure 7.4), and
* **neighbour orientation** (Section 7.2.5) pulls an island's parameters
  toward the ring neighbour that improved more in the last epoch, so
  good settings spread without global coordination.

The returned best fitness is a valid ghw upper bound for exactly the same
reason as GA-ghw's (greedy covers only overestimate).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import obs
from repro.genetic.crossover import CROSSOVER_OPERATORS, get_crossover
from repro.genetic.engine import GAParameters, GAResult
from repro.genetic.mutation import MUTATION_OPERATORS, get_mutation
from repro.genetic.selection import best_individual, tournament_selection
from repro.hypergraphs.graph import Vertex
from repro.hypergraphs.hypergraph import Hypergraph
from repro.obs.budget import Budget
from repro.obs.control import SolverControl

Permutation = list[Vertex]


@dataclass
class ParameterVector:
    """An island's evolvable control parameters (Section 7.2.2).

    Rates live in [0.05, 1.0]; the group size in [2, 6]; operator choices
    are categorical genes over the chapter-4 operator sets.
    """

    crossover_rate: float
    mutation_rate: float
    group_size: int
    crossover: str
    mutation: str

    RATE_MIN = 0.05
    RATE_MAX = 1.0
    GROUP_MIN = 2
    GROUP_MAX = 6

    @classmethod
    def random(cls, rng: random.Random) -> "ParameterVector":
        """Section 7.2.3: parameters start uniformly over their ranges."""
        return cls(
            crossover_rate=rng.uniform(cls.RATE_MIN, cls.RATE_MAX),
            mutation_rate=rng.uniform(cls.RATE_MIN, cls.RATE_MAX),
            group_size=rng.randint(cls.GROUP_MIN, cls.GROUP_MAX),
            crossover=rng.choice(sorted(CROSSOVER_OPERATORS)),
            mutation=rng.choice(sorted(MUTATION_OPERATORS)),
        )

    def mutated(self, rng: random.Random, strength: float = 0.15) -> "ParameterVector":
        """Figure 7.4: Gaussian-perturb rates, jitter the discrete genes."""
        def clamp(value: float) -> float:
            return min(self.RATE_MAX, max(self.RATE_MIN, value))

        group = self.group_size
        if rng.random() < strength:
            group = min(
                self.GROUP_MAX,
                max(self.GROUP_MIN, group + rng.choice((-1, 1))),
            )
        crossover = self.crossover
        if rng.random() < strength:
            crossover = rng.choice(sorted(CROSSOVER_OPERATORS))
        mutation = self.mutation
        if rng.random() < strength:
            mutation = rng.choice(sorted(MUTATION_OPERATORS))
        return ParameterVector(
            crossover_rate=clamp(self.crossover_rate + rng.gauss(0, strength)),
            mutation_rate=clamp(self.mutation_rate + rng.gauss(0, strength)),
            group_size=group,
            crossover=crossover,
            mutation=mutation,
        )

    def oriented_toward(
        self, other: "ParameterVector", rng: random.Random, pull: float = 0.5
    ) -> "ParameterVector":
        """Section 7.2.5: move this vector toward a better neighbour's."""
        return ParameterVector(
            crossover_rate=self.crossover_rate
            + pull * (other.crossover_rate - self.crossover_rate),
            mutation_rate=self.mutation_rate
            + pull * (other.mutation_rate - self.mutation_rate),
            group_size=other.group_size if rng.random() < pull else self.group_size,
            crossover=other.crossover if rng.random() < pull else self.crossover,
            mutation=other.mutation if rng.random() < pull else self.mutation,
        )

    def to_dict(self) -> dict:
        return {
            "crossover_rate": self.crossover_rate,
            "mutation_rate": self.mutation_rate,
            "group_size": self.group_size,
            "crossover": self.crossover,
            "mutation": self.mutation,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ParameterVector":
        return cls(
            crossover_rate=float(data["crossover_rate"]),
            mutation_rate=float(data["mutation_rate"]),
            group_size=int(data["group_size"]),
            crossover=str(data["crossover"]),
            mutation=str(data["mutation"]),
        )

    def as_ga_parameters(
        self, population_size: int, epoch_generations: int
    ) -> GAParameters:
        return GAParameters(
            population_size=population_size,
            crossover_rate=self.crossover_rate,
            mutation_rate=self.mutation_rate,
            group_size=self.group_size,
            max_iterations=epoch_generations,
            crossover=self.crossover,
            mutation=self.mutation,
        )


@dataclass
class _Island:
    population: list[Permutation]
    fitnesses: list[int]
    parameters: ParameterVector
    previous_best: int
    improvement: int = 0


@dataclass
class SAIGAResult(GAResult):
    """GA result plus the per-island parameter trajectories."""

    final_parameters: list[ParameterVector] = field(default_factory=list)


def saiga_ghw(
    hypergraph: Hypergraph,
    islands: int = 4,
    island_population: int = 20,
    epochs: int = 10,
    epoch_generations: int = 10,
    seed: int | random.Random = 0,
    time_limit: float | None = None,
    target: int | None = None,
    backend: str = "python",
    jobs: int = 1,
    control: SolverControl | None = None,
    resume_state: dict | None = None,
) -> SAIGAResult:
    """Run SAIGA-ghw; the best fitness found is a ghw upper bound.

    ``backend="bitset"`` evaluates island populations on the
    :mod:`repro.kernels` bitmask kernel with the shared cover cache;
    ``jobs > 1`` fans each island's population evaluation out over a
    process pool. Defaults reproduce the seed behaviour exactly.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    budget = Budget(time_limit=time_limit)
    ins = obs.current()
    metrics = ins.metrics
    epochs_total = metrics.counter("epochs", solver="saiga")
    generations_total = metrics.counter("generations", solver="saiga")
    evaluations_total = metrics.counter("evaluations", solver="saiga")
    migrations_total = metrics.counter("migrations", solver="saiga")
    vertices = sorted(hypergraph.vertices(), key=repr)

    if len(vertices) <= 1 or hypergraph.num_edges() == 0:
        fitness = 0 if hypergraph.num_edges() == 0 else 1
        return SAIGAResult(
            best_fitness=fitness,
            best_individual=list(vertices),
            generations=0,
            evaluations=0,
            history=[fitness],
        )

    from repro.genetic.ga_ghw import _make_evaluators

    evaluate, batch_evaluate, closer = _make_evaluators(
        hypergraph, backend, jobs, rng
    )

    def evaluate_population(population: list[Permutation]) -> list[int]:
        if batch_evaluate is not None:
            return list(batch_evaluate(population))
        return [evaluate(individual) for individual in population]

    def random_population() -> list[Permutation]:
        population = []
        for _ in range(island_population):
            individual = vertices[:]
            rng.shuffle(individual)
            population.append(individual)
        return population

    try:
        return _saiga_loop(
            hypergraph=hypergraph,
            islands=islands,
            island_population=island_population,
            epochs=epochs,
            epoch_generations=epoch_generations,
            rng=rng,
            budget=budget,
            target=target,
            ins=ins,
            metrics=metrics,
            counters=(
                epochs_total,
                generations_total,
                evaluations_total,
                migrations_total,
            ),
            evaluate_population=evaluate_population,
            random_population=random_population,
            control=control,
            resume_state=resume_state,
        )
    finally:
        if closer is not None:
            closer()


def _saiga_loop(
    *,
    hypergraph: Hypergraph,
    islands: int,
    island_population: int,
    epochs: int,
    epoch_generations: int,
    rng: random.Random,
    budget: Budget,
    target: int | None,
    ins,
    metrics,
    counters,
    evaluate_population,
    random_population,
    control: SolverControl | None = None,
    resume_state: dict | None = None,
) -> SAIGAResult:
    """The Figure 7.3 epoch/migration loop, split out of :func:`saiga_ghw`
    so the evaluator's ``try/finally`` cleanup wraps the whole run."""
    epochs_total, generations_total, evaluations_total, migrations_total = (
        counters
    )
    with ins.tracer.span(
        "saiga", islands=max(1, islands), island_population=island_population
    ):
        ring: list[_Island] = []
        evaluations = 0
        if resume_state is None:
            with ins.tracer.span("init_islands"):
                for _ in range(max(1, islands)):
                    population = random_population()
                    fitnesses = evaluate_population(population)
                    evaluations += len(population)
                    ring.append(
                        _Island(
                            population=population,
                            fitnesses=fitnesses,
                            parameters=ParameterVector.random(rng),
                            previous_best=min(fitnesses),
                        )
                    )
            evaluations_total.inc(evaluations)

            champion, champion_fitness = best_individual(
                [ind for island in ring for ind in island.population],
                [fit for island in ring for fit in island.fitnesses],
            )
            history = [champion_fitness]
            generations = 0
            epoch = 0
        else:
            if resume_state.get("rng_state") is not None:
                rng.setstate(resume_state["rng_state"])
            for saved in resume_state["islands"]:
                ring.append(
                    _Island(
                        population=[list(ind) for ind in saved["population"]],
                        fitnesses=list(saved["fitnesses"]),
                        parameters=ParameterVector.from_dict(saved["parameters"]),
                        previous_best=int(saved["previous_best"]),
                        improvement=int(saved.get("improvement", 0)),
                    )
                )
            champion = list(resume_state["best_individual"])
            champion_fitness = int(resume_state["best_fitness"])
            history = list(resume_state.get("history", [champion_fitness]))
            generations = int(resume_state.get("generations", 0))
            evaluations = int(resume_state.get("evaluations", 0))
            epoch = int(resume_state.get("epoch", 0))
        if control is not None:
            control.publish_upper(champion_fitness, champion)

        def snapshot() -> dict:
            return {
                "best_fitness": champion_fitness,
                "best_individual": list(champion),
                "islands": [
                    {
                        "population": [list(ind) for ind in island.population],
                        "fitnesses": list(island.fitnesses),
                        "parameters": island.parameters.to_dict(),
                        "previous_best": island.previous_best,
                        "improvement": island.improvement,
                    }
                    for island in ring
                ],
                "history": list(history),
                "generations": generations,
                "evaluations": evaluations,
                "epoch": epoch,
                "rng_state": rng.getstate(),
            }

        if control is not None:
            control.checkpoint(snapshot())
        while epoch < epochs:
            if target is not None and champion_fitness <= target:
                break
            if budget.exhausted():
                break
            if control is not None:
                if control.should_stop():
                    break
                shared_lb = control.shared_lower_bound()
                if shared_lb is not None and champion_fitness <= shared_lb:
                    break
            epoch += 1
            epochs_total.inc()
            for island in ring:
                crossover = get_crossover(island.parameters.crossover)
                mutate = get_mutation(island.parameters.mutation)
                for _generation in range(epoch_generations):
                    island.population = tournament_selection(
                        island.population,
                        island.fitnesses,
                        island.parameters.group_size,
                        island_population,
                        rng,
                    )
                    pair_count = (
                        int(island.parameters.crossover_rate * island_population)
                        // 2
                    )
                    if pair_count:
                        indices = rng.sample(
                            range(island_population), 2 * pair_count
                        )
                        for k in range(pair_count):
                            i, j = indices[2 * k], indices[2 * k + 1]
                            child1, child2 = crossover(
                                island.population[i], island.population[j], rng
                            )
                            island.population[i] = child1
                            island.population[j] = child2
                    for i in range(island_population):
                        if rng.random() < island.parameters.mutation_rate:
                            island.population[i] = mutate(
                                island.population[i], rng
                            )
                    island.fitnesses = evaluate_population(island.population)
                    evaluations += island_population
                    evaluations_total.inc(island_population)
                    generations += 1
                    generations_total.inc()
                epoch_best = min(island.fitnesses)
                island.improvement = island.previous_best - epoch_best
                island.previous_best = epoch_best
                if epoch_best < champion_fitness:
                    champion, champion_fitness = best_individual(
                        island.population, island.fitnesses
                    )
                    if control is not None:
                        control.publish_upper(champion_fitness, champion)
            history.append(champion_fitness)

            # Migration: each island's best replaces the next island's worst.
            bests = [
                best_individual(island.population, island.fitnesses)
                for island in ring
            ]
            for index, island in enumerate(ring):
                migrant, migrant_fitness = bests[index - 1]
                worst = max(
                    range(island_population),
                    key=lambda i: (island.fitnesses[i], i),
                )
                island.population[worst] = migrant
                island.fitnesses[worst] = migrant_fitness
                migrations_total.inc()

            # Self-adaptation: mutate parameters, then orient toward the
            # better-improving ring neighbour (Sections 7.2.4-7.2.5).
            new_parameters: list[ParameterVector] = []
            for index, island in enumerate(ring):
                vector = island.parameters.mutated(rng)
                neighbours = (ring[index - 1], ring[(index + 1) % len(ring)])
                better = max(neighbours, key=lambda isl: isl.improvement)
                if better.improvement > island.improvement:
                    vector = vector.oriented_toward(better.parameters, rng)
                new_parameters.append(vector)
            for island, vector in zip(ring, new_parameters):
                island.parameters = vector
            if control is not None:
                control.checkpoint(snapshot())

    if metrics.enabled:
        metrics.gauge("best_fitness", solver="saiga").set(champion_fitness)
    return SAIGAResult(
        best_fitness=champion_fitness,
        best_individual=champion,
        generations=generations,
        evaluations=evaluations,
        history=history,
        elapsed=budget.elapsed(),
        metrics=metrics.snapshot() if metrics.enabled else {},
        final_parameters=[island.parameters for island in ring],
    )
