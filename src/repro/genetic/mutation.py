"""Mutation operators for permutations (Section 4.3.3, after [36]).

The six operators compared in Table 6.2. Each takes a permutation and a
random source and returns a *new* mutated permutation (inputs are never
modified in place). Thesis ranking: ISM best overall, EM a close second.

========  ===========================================================
DM        move a random substring to a random position
EM        exchange two random elements
ISM       move a single random element to a random position
SIM       reverse the substring between two random cutpoints
IVM       move a random substring, reversed, to a random position
SM        shuffle a random substring in place
========  ===========================================================
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence

from repro.hypergraphs.graph import Vertex

Permutation = list[Vertex]
MutationOperator = Callable[[Sequence[Vertex], random.Random], Permutation]


def _cutpoints(n: int, rng: random.Random) -> tuple[int, int]:
    lo, hi = sorted(rng.sample(range(n + 1), 2))
    return lo, hi


def displacement(
    individual: Sequence[Vertex], rng: random.Random
) -> Permutation:
    """DM: displace a random substring."""
    n = len(individual)
    if n < 2:
        return list(individual)
    lo, hi = _cutpoints(n, rng)
    piece = list(individual[lo:hi])
    rest = list(individual[:lo]) + list(individual[hi:])
    insert_at = rng.randint(0, len(rest))
    return rest[:insert_at] + piece + rest[insert_at:]


def exchange(individual: Sequence[Vertex], rng: random.Random) -> Permutation:
    """EM: swap two random elements."""
    n = len(individual)
    result = list(individual)
    if n < 2:
        return result
    i, j = rng.sample(range(n), 2)
    result[i], result[j] = result[j], result[i]
    return result


def insertion(individual: Sequence[Vertex], rng: random.Random) -> Permutation:
    """ISM: move one random element to a random position."""
    n = len(individual)
    result = list(individual)
    if n < 2:
        return result
    i = rng.randrange(n)
    gene = result.pop(i)
    result.insert(rng.randint(0, n - 1), gene)
    return result


def simple_inversion(
    individual: Sequence[Vertex], rng: random.Random
) -> Permutation:
    """SIM: reverse a random substring in place."""
    n = len(individual)
    result = list(individual)
    if n < 2:
        return result
    lo, hi = _cutpoints(n, rng)
    result[lo:hi] = result[lo:hi][::-1]
    return result


def inversion(individual: Sequence[Vertex], rng: random.Random) -> Permutation:
    """IVM: displace a random substring in reversed order."""
    n = len(individual)
    if n < 2:
        return list(individual)
    lo, hi = _cutpoints(n, rng)
    piece = list(individual[lo:hi])[::-1]
    rest = list(individual[:lo]) + list(individual[hi:])
    insert_at = rng.randint(0, len(rest))
    return rest[:insert_at] + piece + rest[insert_at:]


def scramble(individual: Sequence[Vertex], rng: random.Random) -> Permutation:
    """SM: shuffle a random substring."""
    n = len(individual)
    result = list(individual)
    if n < 2:
        return result
    lo, hi = _cutpoints(n, rng)
    piece = result[lo:hi]
    rng.shuffle(piece)
    result[lo:hi] = piece
    return result


MUTATION_OPERATORS: dict[str, MutationOperator] = {
    "DM": displacement,
    "EM": exchange,
    "ISM": insertion,
    "SIM": simple_inversion,
    "IVM": inversion,
    "SM": scramble,
}


def get_mutation(name: str) -> MutationOperator:
    try:
        return MUTATION_OPERATORS[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; choose from {sorted(MUTATION_OPERATORS)}"
        ) from None
