"""The generic permutation GA engine behind GA-tw and GA-ghw (Figure 6.1).

Both thesis GAs share every moving part except the fitness function: an
elimination ordering's *width* for GA-tw (Figure 6.2), its greedy *cover
width* for GA-ghw (Figure 7.1). The engine therefore takes the evaluation
as a callable and implements the Figure 6.1 loop verbatim:

  initialise -> evaluate -> [select -> recombine -> mutate -> evaluate]*

Control parameters mirror the thesis: population size ``n``, crossover
rate ``p_c`` (fraction of the population recombined each generation),
mutation rate ``p_m`` (per-individual mutation probability), tournament
group size ``s``, and the iteration budget. The engine also supports a
wall-clock budget and a known-optimum early stop so tests stay fast.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro import obs
from repro.genetic.crossover import CrossoverOperator, get_crossover
from repro.genetic.mutation import MutationOperator, get_mutation
from repro.genetic.selection import best_individual, tournament_selection
from repro.hypergraphs.graph import Vertex
from repro.obs.budget import Budget
from repro.obs.control import SolverControl

Permutation = list[Vertex]
Evaluator = Callable[[Sequence[Vertex]], int]
PopulationEvaluator = Callable[[Sequence[Sequence[Vertex]]], list[int]]


@dataclass
class GAParameters:
    """Control parameters of Figure 6.1 (thesis defaults from Ch. 6.3)."""

    population_size: int = 50
    crossover_rate: float = 1.0
    mutation_rate: float = 0.3
    group_size: int = 3
    max_iterations: int = 200
    crossover: str = "POS"
    mutation: str = "ISM"

    def validated(self) -> "GAParameters":
        if self.population_size < 2:
            raise ValueError("population size must be >= 2")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation rate must be in [0, 1]")
        if self.group_size < 1:
            raise ValueError("group size must be >= 1")
        if self.max_iterations < 0:
            raise ValueError("iteration budget must be >= 0")
        get_crossover(self.crossover)
        get_mutation(self.mutation)
        return self


@dataclass
class GAResult:
    """Outcome of a GA run."""

    best_fitness: int
    best_individual: Permutation
    generations: int
    evaluations: int
    history: list[int] = field(default_factory=list)
    """Best-so-far fitness after each generation (generation 0 included)."""

    elapsed: float = 0.0

    metrics: dict = field(default_factory=dict)
    """``repro.obs`` snapshot at run end (empty when uninstrumented)."""


def _initial_population(
    elements: Sequence[Vertex],
    size: int,
    rng: random.Random,
    seeds: Sequence[Sequence[Vertex]] = (),
) -> list[Permutation]:
    """Random permutations, optionally seeded with heuristic orderings."""
    population: list[Permutation] = [list(seed) for seed in seeds[:size]]
    base = list(elements)
    while len(population) < size:
        individual = base[:]
        rng.shuffle(individual)
        population.append(individual)
    return population


def run_ga(
    elements: Sequence[Vertex],
    evaluate: Evaluator,
    parameters: GAParameters,
    rng: random.Random,
    seeds: Sequence[Sequence[Vertex]] = (),
    time_limit: float | None = None,
    target: int | None = None,
    batch_evaluate: PopulationEvaluator | None = None,
    control: SolverControl | None = None,
    resume_state: dict | None = None,
) -> GAResult:
    """Run the Figure 6.1 loop and return the best ordering found.

    Parameters
    ----------
    elements:
        The vertices to permute.
    evaluate:
        Fitness of an ordering (smaller is better).
    parameters:
        Control parameters (validated on entry).
    rng:
        Random source — the run is deterministic given the seed.
    seeds:
        Optional heuristic orderings injected into the initial population.
    time_limit:
        Optional wall-clock cutoff checked once per generation.
    target:
        Optional known optimum; the run stops as soon as it is reached.
    batch_evaluate:
        Optional whole-population evaluator (e.g. a
        :class:`~repro.kernels.parallel.ParallelEvaluator`); when given
        it replaces the per-individual ``evaluate`` loop each generation.
    control:
        Optional portfolio control: the loop stops cooperatively, stops
        early when the champion reaches the portfolio-wide lower bound,
        publishes champion improvements, and offers a resume snapshot
        after every generation.
    resume_state:
        A snapshot previously offered through ``control.checkpoint`` (with
        ``rng_state`` already decoded to a ``random.Random`` state tuple);
        the run continues from that population and generation instead of
        initialising a fresh one.
    """
    parameters = parameters.validated()
    crossover: CrossoverOperator = get_crossover(parameters.crossover)
    mutation: MutationOperator = get_mutation(parameters.mutation)

    def evaluate_population(population: list[Permutation]) -> list[int]:
        if batch_evaluate is not None:
            return list(batch_evaluate(population))
        return [evaluate(individual) for individual in population]

    budget = Budget(time_limit=time_limit)
    ins = obs.current()
    metrics = ins.metrics
    generations_total = metrics.counter("generations", solver="ga")
    evaluations_total = metrics.counter("evaluations", solver="ga")
    generation_seconds = metrics.histogram("generation_seconds", solver="ga")

    with ins.tracer.span(
        "ga",
        population=parameters.population_size,
        crossover=parameters.crossover,
        mutation=parameters.mutation,
    ):
        if resume_state is None:
            with ins.tracer.span("init_population"):
                population = _initial_population(
                    elements, parameters.population_size, rng, seeds
                )
                fitnesses = evaluate_population(population)
            evaluations = len(population)
            evaluations_total.inc(evaluations)
            champion, champion_fitness = best_individual(population, fitnesses)
            history = [champion_fitness]
            generation = 0
        else:
            if resume_state.get("rng_state") is not None:
                rng.setstate(resume_state["rng_state"])
            population = [list(ind) for ind in resume_state["population"]]
            fitnesses = list(resume_state["fitnesses"])
            champion = list(resume_state["best_individual"])
            champion_fitness = int(resume_state["best_fitness"])
            history = list(resume_state.get("history", [champion_fitness]))
            generation = int(resume_state.get("generation", 0))
            evaluations = int(resume_state.get("evaluations", len(population)))
        if control is not None:
            control.publish_upper(champion_fitness, champion)

        def snapshot() -> dict:
            return {
                "best_fitness": champion_fitness,
                "best_individual": list(champion),
                "population": [list(ind) for ind in population],
                "fitnesses": list(fitnesses),
                "history": list(history),
                "generation": generation,
                "evaluations": evaluations,
                "rng_state": rng.getstate(),
            }

        if control is not None:
            control.checkpoint(snapshot())
        with ins.tracer.span("evolve"):
            while generation < parameters.max_iterations:
                if target is not None and champion_fitness <= target:
                    break
                if budget.exhausted():
                    break
                if control is not None:
                    if control.should_stop():
                        break
                    shared_lb = control.shared_lower_bound()
                    if shared_lb is not None and champion_fitness <= shared_lb:
                        break
                generation += 1
                generation_started = budget.elapsed()

                population = tournament_selection(
                    population,
                    fitnesses,
                    parameters.group_size,
                    parameters.population_size,
                    rng,
                )

                # Recombination: pair up a p_c fraction of the population.
                pair_count = int(parameters.crossover_rate * len(population)) // 2
                if pair_count:
                    indices = rng.sample(range(len(population)), 2 * pair_count)
                    for k in range(pair_count):
                        i, j = indices[2 * k], indices[2 * k + 1]
                        child1, child2 = crossover(population[i], population[j], rng)
                        population[i], population[j] = child1, child2

                # Mutation: each individual mutates with probability p_m.
                for i in range(len(population)):
                    if rng.random() < parameters.mutation_rate:
                        population[i] = mutation(population[i], rng)

                fitnesses = evaluate_population(population)
                evaluations += len(population)
                generations_total.inc()
                evaluations_total.inc(len(population))
                if metrics.enabled:
                    generation_seconds.observe(
                        budget.elapsed() - generation_started
                    )
                generation_best, generation_fitness = best_individual(
                    population, fitnesses
                )
                if generation_fitness < champion_fitness:
                    champion, champion_fitness = generation_best, generation_fitness
                    if control is not None:
                        control.publish_upper(champion_fitness, champion)
                history.append(champion_fitness)
                if control is not None:
                    control.checkpoint(snapshot())

    if metrics.enabled:
        metrics.gauge("best_fitness", solver="ga").set(champion_fitness)
    return GAResult(
        best_fitness=champion_fitness,
        best_individual=champion,
        generations=generation,
        evaluations=evaluations,
        history=history,
        elapsed=budget.elapsed(),
        metrics=metrics.snapshot() if metrics.enabled else {},
    )
