"""Weighted triangulation: the Larrañaga objective (Section 4.5).

The GA the thesis builds on (Larrañaga et al.) does not minimise width
but the *weight* of the triangulation of a Bayesian network's moral
graph,

    w(TD) = log2( sum over bags of the product of the state counts of
                  the bag's variables ),

i.e. the log of the total clique-table size — the true cost of exact
inference. This module provides that objective and a GA wrapper, so the
library covers the thesis's chapter-4.5 lineage as well as its own
width-based chapters. With uniform state counts ``n_i = d`` the
objective orders orderings (asymptotically) like width does, which the
tests exercise.
"""

from __future__ import annotations

import math
import random
from collections.abc import Mapping, Sequence

from repro.bounds.upper import min_degree_ordering, min_fill_ordering
from repro.decompositions.elimination import elimination_bags
from repro.genetic.engine import GAParameters, GAResult, run_ga
from repro.hypergraphs.graph import Graph, Vertex


def triangulation_weight(
    graph: Graph,
    ordering: Sequence[Vertex],
    states: Mapping[Vertex, int],
) -> float:
    """``log2 sum_bags prod_{v in bag} states[v]`` for the ordering's
    bucket-elimination bags."""
    bags = elimination_bags(graph, ordering)
    total = 0.0
    for bag in bags.values():
        table = 1.0
        for vertex in bag:
            count = states[vertex]
            if count < 1:
                raise ValueError(f"state count of {vertex!r} must be >= 1")
            table *= count
        total += table
    return math.log2(total) if total > 0 else 0.0


def ga_weighted_triangulation(
    graph: Graph,
    states: Mapping[Vertex, int],
    parameters: GAParameters | None = None,
    seed: int | random.Random = 0,
    time_limit: float | None = None,
) -> GAResult:
    """Minimise the Larrañaga weight over elimination orderings.

    The engine works on integer fitnesses; weights are scaled by 1000
    and rounded, which preserves the ordering of solutions to three
    decimal places of log2 table size.
    """
    missing = graph.vertices() - set(states)
    if missing:
        raise ValueError(
            f"missing state counts for {sorted(map(repr, missing))}"
        )
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    parameters = parameters or GAParameters()

    vertices = sorted(graph.vertices(), key=repr)
    if len(vertices) <= 1:
        return run_ga(
            vertices,
            lambda _ordering: 0,
            GAParameters(population_size=2, max_iterations=0),
            rng,
        )

    def evaluate(ordering: Sequence[Vertex]) -> int:
        return round(
            1000 * triangulation_weight(graph, list(ordering), states)
        )

    seeds = [min_fill_ordering(graph, rng), min_degree_ordering(graph, rng)]
    return run_ga(
        vertices,
        evaluate,
        parameters,
        rng,
        seeds=seeds,
        time_limit=time_limit,
    )
