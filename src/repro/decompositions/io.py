"""Serialisation for decompositions: the PACE ``.td`` format and a GHD
extension of it.

The PACE challenge format is the de-facto interchange format for tree
decompositions::

    c any number of comment lines
    s td <num_bags> <max_bag_size> <num_vertices>
    b <bag_id> <vertex> <vertex> ...
    <bag_id> <bag_id>              (tree edges)

Vertices must be positive integers in PACE proper; this writer relabels
arbitrary vertices and records the mapping in comments, and the reader
accepts both ints and labels. For generalized hypertree decompositions
the same skeleton gains ``l <bag_id> <edge_name> ...`` lambda lines — a
small, documented extension (``s ghd`` header) since no standard exists.
"""

from __future__ import annotations

from pathlib import Path

from repro.decompositions.ghd import GeneralizedHypertreeDecomposition
from repro.decompositions.tree_decomposition import TreeDecomposition
from repro.hypergraphs.io import FormatError


def format_tree_decomposition(decomposition: TreeDecomposition) -> str:
    """Render a tree decomposition in PACE ``.td`` format."""
    vertices = sorted(
        {v for bag in decomposition.bags.values() for v in bag}, key=repr
    )
    vertex_id = {vertex: i + 1 for i, vertex in enumerate(vertices)}
    bag_ids = {node: i + 1 for i, node in enumerate(sorted(decomposition.bags))}
    lines = ["c produced by repro"]
    for vertex, number in vertex_id.items():
        if str(vertex) != str(number):
            lines.append(f"c vertex {number} = {vertex}")
    max_bag = max((len(bag) for bag in decomposition.bags.values()), default=0)
    lines.append(
        f"s td {len(decomposition.bags)} {max_bag} {len(vertices)}"
    )
    for node in sorted(decomposition.bags):
        members = " ".join(
            str(vertex_id[v]) for v in sorted(decomposition.bags[node], key=repr)
        )
        lines.append(f"b {bag_ids[node]} {members}".rstrip())
    for a, b in sorted(decomposition.tree_edges()):
        lines.append(f"{bag_ids[a]} {bag_ids[b]}")
    return "\n".join(lines) + "\n"


def parse_tree_decomposition(text: str) -> TreeDecomposition:
    """Parse PACE ``.td`` text (vertices come back as ints)."""
    decomposition = TreeDecomposition()
    declared_bags: int | None = None
    seen_solution_line = False
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        fields = line.split()
        if fields[0] == "s":
            if len(fields) != 5 or fields[1] != "td":
                raise FormatError(
                    f"line {line_number}: bad solution line {line!r}"
                )
            try:
                declared_bags = int(fields[2])
            except ValueError as exc:
                raise FormatError(f"line {line_number}: {exc}") from exc
            seen_solution_line = True
        elif fields[0] == "b":
            if not seen_solution_line:
                raise FormatError(
                    f"line {line_number}: bag before solution line"
                )
            if len(fields) < 2:
                raise FormatError(f"line {line_number}: bad bag {line!r}")
            try:
                node = int(fields[1])
                members = {int(v) for v in fields[2:]}
            except ValueError as exc:
                raise FormatError(f"line {line_number}: {exc}") from exc
            try:
                decomposition.add_node(members, node=node)
            except ValueError as exc:
                raise FormatError(f"line {line_number}: {exc}") from exc
        else:
            if len(fields) != 2:
                raise FormatError(
                    f"line {line_number}: bad tree edge {line!r}"
                )
            try:
                a, b = int(fields[0]), int(fields[1])
            except ValueError as exc:
                raise FormatError(f"line {line_number}: {exc}") from exc
            try:
                decomposition.add_edge(a, b)
            except KeyError as exc:
                raise FormatError(f"line {line_number}: {exc}") from exc
    if declared_bags is not None and declared_bags != decomposition.num_nodes():
        raise FormatError(
            f"header declared {declared_bags} bags, found "
            f"{decomposition.num_nodes()}"
        )
    return decomposition


def write_tree_decomposition(
    decomposition: TreeDecomposition, path: str | Path
) -> None:
    Path(path).write_text(format_tree_decomposition(decomposition))


def read_tree_decomposition(path: str | Path) -> TreeDecomposition:
    return parse_tree_decomposition(Path(path).read_text())


# ----------------------------------------------------------------------
# GHD extension
# ----------------------------------------------------------------------

def format_ghd(ghd: GeneralizedHypertreeDecomposition) -> str:
    """Render a GHD: the .td skeleton plus ``l`` lambda lines.

    Vertices and hyperedge names are emitted verbatim (strings), since
    lambda labels are names, not numbers.
    """
    bag_ids = {node: i + 1 for i, node in enumerate(sorted(ghd.tree.bags))}
    vertices = sorted(
        {v for bag in ghd.tree.bags.values() for v in bag}, key=repr
    )
    max_bag = max((len(bag) for bag in ghd.tree.bags.values()), default=0)
    lines = [
        "c produced by repro",
        f"s ghd {len(ghd.tree.bags)} {max_bag} {len(vertices)} {ghd.width()}",
    ]
    for node in sorted(ghd.tree.bags):
        members = " ".join(
            str(v) for v in sorted(ghd.tree.bags[node], key=repr)
        )
        lines.append(f"b {bag_ids[node]} {members}".rstrip())
        cover = " ".join(str(name) for name in sorted(ghd.covers[node], key=repr))
        lines.append(f"l {bag_ids[node]} {cover}".rstrip())
    for a, b in sorted(ghd.tree.tree_edges()):
        lines.append(f"{bag_ids[a]} {bag_ids[b]}")
    return "\n".join(lines) + "\n"


def parse_ghd(text: str) -> GeneralizedHypertreeDecomposition:
    """Parse the ``s ghd`` format back (vertices/names come back as str)."""
    ghd = GeneralizedHypertreeDecomposition()
    seen_solution_line = False
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        fields = line.split()
        if fields[0] == "s":
            if len(fields) < 3 or fields[1] != "ghd":
                raise FormatError(
                    f"line {line_number}: bad solution line {line!r}"
                )
            seen_solution_line = True
        elif fields[0] == "b":
            if not seen_solution_line:
                raise FormatError(
                    f"line {line_number}: bag before solution line"
                )
            if len(fields) < 2:
                raise FormatError(f"line {line_number}: bad bag {line!r}")
            try:
                ghd.tree.add_node(set(fields[2:]), node=int(fields[1]))
            except ValueError as exc:
                raise FormatError(f"line {line_number}: {exc}") from exc
        elif fields[0] == "l":
            if len(fields) < 2:
                raise FormatError(
                    f"line {line_number}: bad lambda line {line!r}"
                )
            try:
                ghd.covers[int(fields[1])] = set(fields[2:])
            except ValueError as exc:
                raise FormatError(f"line {line_number}: {exc}") from exc
        else:
            if len(fields) != 2:
                raise FormatError(
                    f"line {line_number}: bad tree edge {line!r}"
                )
            try:
                ghd.tree.add_edge(int(fields[0]), int(fields[1]))
            except (ValueError, KeyError) as exc:
                raise FormatError(f"line {line_number}: {exc}") from exc
    missing = set(ghd.tree.bags) - set(ghd.covers)
    if missing:
        raise FormatError(f"bags without lambda lines: {sorted(missing)}")
    return ghd


def write_ghd(
    ghd: GeneralizedHypertreeDecomposition, path: str | Path
) -> None:
    Path(path).write_text(format_ghd(ghd))


def read_ghd(path: str | Path) -> GeneralizedHypertreeDecomposition:
    return parse_ghd(Path(path).read_text())
