"""Tree decompositions, GHDs and elimination-ordering machinery."""

from repro.decompositions.elimination import (
    cliques_of_ordering,
    elimination_bags,
    ordering_ghw,
    ordering_to_ghd,
    ordering_to_tree_decomposition,
    ordering_width,
)
from repro.decompositions.ghd import (
    GeneralizedHypertreeDecomposition,
    exact_cover_width,
    make_complete,
)
from repro.decompositions.hypertree import (
    HypertreeDecomposition,
    det_k_decomp,
    hypertree_width,
)
from repro.decompositions.io import (
    read_ghd,
    read_tree_decomposition,
    write_ghd,
    write_tree_decomposition,
)
from repro.decompositions.leaf_normal_form import (
    extract_ordering,
    ordering_from_leaf_normal_form,
    transform_leaf_normal_form,
)
from repro.decompositions.tree_decomposition import (
    DecompositionError,
    TreeDecomposition,
    trivial_decomposition,
)

__all__ = [
    "DecompositionError",
    "GeneralizedHypertreeDecomposition",
    "HypertreeDecomposition",
    "TreeDecomposition",
    "cliques_of_ordering",
    "det_k_decomp",
    "elimination_bags",
    "exact_cover_width",
    "extract_ordering",
    "hypertree_width",
    "make_complete",
    "ordering_from_leaf_normal_form",
    "ordering_ghw",
    "ordering_to_ghd",
    "ordering_to_tree_decomposition",
    "ordering_width",
    "read_ghd",
    "read_tree_decomposition",
    "write_ghd",
    "write_tree_decomposition",
    "transform_leaf_normal_form",
    "trivial_decomposition",
]
