"""Tree decompositions of hypergraphs (Definition 11).

A tree decomposition of a hypergraph ``H = (V, H)`` is a tree whose nodes
carry vertex sets (*bags*, the chi-labels) such that

1. every hyperedge is contained in some bag, and
2. for every vertex the bags containing it form a connected subtree
   (the *connectedness condition*).

Its width is ``max |bag| - 1``; the minimum over all tree decompositions
is the *treewidth*. By Lemma 1 the tree decompositions of a hypergraph and
of its primal graph coincide, which is why every algorithm in this library
operates on the primal graph and why :meth:`TreeDecomposition.validate`
accepts either.

Tree nodes are integer ids; the tree itself is stored as an undirected
adjacency structure plus an optional root (chapters 3 and 9 need rooted
trees; everything else ignores the root).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.hypergraphs.graph import Graph, Vertex
from repro.hypergraphs.hypergraph import Hypergraph


class DecompositionError(ValueError):
    """Raised when a decomposition violates one of its defining conditions."""


@dataclass
class TreeDecomposition:
    """A tree of bags. Mutable while being built, validated on demand."""

    bags: dict[int, set[Vertex]] = field(default_factory=dict)
    _adj: dict[int, set[int]] = field(default_factory=dict)
    root: int | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_node(self, bag: Iterable[Vertex], node: int | None = None) -> int:
        """Add a node with the given bag; return its id."""
        if node is None:
            node = max(self.bags, default=-1) + 1
        if node in self.bags:
            raise ValueError(f"node {node} already exists")
        self.bags[node] = set(bag)
        self._adj[node] = set()
        if self.root is None:
            self.root = node
        return node

    def add_edge(self, a: int, b: int) -> None:
        if a not in self.bags or b not in self.bags:
            raise KeyError(f"tree edge ({a}, {b}) references unknown node")
        self._adj[a].add(b)
        self._adj[b].add(a)

    def remove_node(self, node: int) -> None:
        """Remove a node and its incident tree edges.

        The caller is responsible for keeping the tree connected (the
        leaf-normal-form transformation only ever removes leaves).
        """
        for neighbour in self._adj.pop(node):
            self._adj[neighbour].discard(node)
        del self.bags[node]
        if self.root == node:
            self.root = next(iter(self.bags), None)

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------

    def nodes(self) -> list[int]:
        return list(self.bags)

    def tree_neighbours(self, node: int) -> set[int]:
        return set(self._adj[node])

    def tree_edges(self) -> list[tuple[int, int]]:
        seen = []
        for a, neighbours in self._adj.items():
            for b in neighbours:
                if a < b:
                    seen.append((a, b))
        return seen

    def leaves(self) -> list[int]:
        """Degree-<=1 nodes (a single-node tree's node is a leaf)."""
        return [node for node in self.bags if len(self._adj[node]) <= 1]

    def num_nodes(self) -> int:
        return len(self.bags)

    def width(self) -> int:
        """``max |bag| - 1`` (the empty decomposition has width -1)."""
        return max((len(bag) for bag in self.bags.values()), default=0) - 1

    def parent_map(self) -> dict[int, int | None]:
        """Parents under the stored root (BFS orientation)."""
        if self.root is None:
            return {}
        parents: dict[int, int | None] = {self.root: None}
        frontier = [self.root]
        while frontier:
            current = frontier.pop()
            for child in self._adj[current]:
                if child not in parents:
                    parents[child] = current
                    frontier.append(child)
        return parents

    def depths(self) -> dict[int, int]:
        """Distance of each node from the root."""
        parents = self.parent_map()
        depth: dict[int, int] = {}
        for node in parents:
            d = 0
            current = node
            while parents[current] is not None:
                current = parents[current]  # type: ignore[assignment]
                d += 1
            depth[node] = d
        return depth

    def path_between(self, a: int, b: int) -> list[int]:
        """The unique tree path from ``a`` to ``b`` (inclusive)."""
        parents = {a: None}
        frontier = [a]
        while frontier and b not in parents:
            current = frontier.pop()
            for neighbour in self._adj[current]:
                if neighbour not in parents:
                    parents[neighbour] = current
                    frontier.append(neighbour)
        if b not in parents:
            raise KeyError(f"no path between {a} and {b}")
        path = [b]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path

    def nodes_containing(self, vertex: Vertex) -> list[int]:
        """All nodes whose bag contains ``vertex`` (the set ``T_Y``)."""
        return [node for node, bag in self.bags.items() if vertex in bag]

    def copy(self) -> "TreeDecomposition":
        result = TreeDecomposition(root=self.root)
        result.bags = {node: set(bag) for node, bag in self.bags.items()}
        result._adj = {node: set(adj) for node, adj in self._adj.items()}
        return result

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def is_tree(self) -> bool:
        """Connected and acyclic (|E| = |N| - 1 plus connectivity)."""
        if not self.bags:
            return False
        edge_count = sum(len(adj) for adj in self._adj.values()) // 2
        if edge_count != len(self.bags) - 1:
            return False
        seen = {next(iter(self.bags))}
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for neighbour in self._adj[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self.bags)

    def satisfies_edge_cover(self, hypergraph: Hypergraph) -> bool:
        """Condition 1: every hyperedge fits inside some bag."""
        bags = list(self.bags.values())
        return all(
            any(edge <= bag for bag in bags)
            for edge in hypergraph.edge_sets()
        )

    def covers_graph(self, graph: Graph) -> bool:
        """Condition 1 for a regular graph: every edge inside some bag."""
        bags = list(self.bags.values())
        return all(
            any(edge <= bag for bag in bags) for edge in graph.edges()
        )

    def satisfies_connectedness(self) -> bool:
        """Condition 2: per-vertex bags induce connected subtrees."""
        all_vertices: set[Vertex] = set()
        for bag in self.bags.values():
            all_vertices |= bag
        for vertex in all_vertices:
            containing = set(self.nodes_containing(vertex))
            start = next(iter(containing))
            seen = {start}
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for neighbour in self._adj[current]:
                    if neighbour in containing and neighbour not in seen:
                        seen.add(neighbour)
                        frontier.append(neighbour)
            if seen != containing:
                return False
        return True

    def covers_all_vertices(self, vertices: Iterable[Vertex]) -> bool:
        """Every listed vertex appears in at least one bag."""
        covered: set[Vertex] = set()
        for bag in self.bags.values():
            covered |= bag
        return set(vertices) <= covered

    def validate(self, instance: Hypergraph | Graph) -> None:
        """Raise :class:`DecompositionError` unless this is a valid
        tree decomposition of ``instance``."""
        if not self.is_tree():
            raise DecompositionError("decomposition is not a tree")
        if isinstance(instance, Hypergraph):
            if not self.covers_all_vertices(instance.vertices()):
                raise DecompositionError("some vertex appears in no bag")
            if not self.satisfies_edge_cover(instance):
                raise DecompositionError("some hyperedge fits in no bag")
        else:
            if not self.covers_all_vertices(instance.vertices()):
                raise DecompositionError("some vertex appears in no bag")
            if not self.covers_graph(instance):
                raise DecompositionError("some edge fits in no bag")
        if not self.satisfies_connectedness():
            raise DecompositionError("connectedness condition violated")

    def __repr__(self) -> str:
        return (
            f"TreeDecomposition(nodes={self.num_nodes()}, "
            f"width={self.width()})"
        )


def trivial_decomposition(instance: Hypergraph | Graph) -> TreeDecomposition:
    """The one-bag decomposition containing every vertex.

    Useful as a worst-case baseline (its width is ``|V| - 1``) and as a
    seed for transformation algorithms.
    """
    decomposition = TreeDecomposition()
    decomposition.add_node(instance.vertices())
    return decomposition
