"""Hypertree decompositions and det-k-decomp (Section 2.3.2).

Generalized hypertree decompositions drop one condition of Gottlob,
Leone and Scarcello's *hypertree decompositions*; this module supplies
the original notion, completing the width hierarchy the thesis works in:

    ghw(H)  <=  hw(H)  <=  tw(H) + 1.

A hypertree decomposition is a *rooted* GHD that additionally satisfies
the **descendant condition** (condition 4 of the original definition):

    for each node p:  var(lambda(p)) ∩ chi(T_p)  ⊆  chi(p),

i.e. a vertex of a covering hyperedge that occurs anywhere in p's
subtree must already be in p's bag. Unlike ghw (NP-complete even for
fixed k), deciding ``hw(H) <= k`` is polynomial for fixed k; the
decision procedure implemented here is the det-k-decomp scheme of
Gottlob and Samer: recursively split the hypergraph's edge set into
components below candidate lambda-separators of at most k edges,
memoising failed (component, connector) subproblems.

The construction fixes ``chi(p) = var(lambda(p)) ∩ (V(component) ∪
connector)``, which makes the descendant condition hold automatically;
completeness for that chi-choice follows from the hypertree normal form
of Gottlob, Leone and Scarcello. The validator checks all four
conditions independently, and tests cross-check ``ghw <= hw`` against
BB-ghw plus known closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.decompositions.ghd import GeneralizedHypertreeDecomposition
from repro.decompositions.tree_decomposition import DecompositionError
from repro.hypergraphs.graph import Vertex
from repro.hypergraphs.hypergraph import EdgeName, Hypergraph


@dataclass
class HypertreeDecomposition:
    """A rooted GHD satisfying the descendant condition."""

    ghd: GeneralizedHypertreeDecomposition = field(
        default_factory=GeneralizedHypertreeDecomposition
    )

    @property
    def root(self) -> int | None:
        return self.ghd.tree.root

    def width(self) -> int:
        return self.ghd.width()

    def nodes(self) -> list[int]:
        return self.ghd.nodes()

    def bag(self, node: int) -> set[Vertex]:
        return self.ghd.bag(node)

    def cover(self, node: int) -> set[EdgeName]:
        return self.ghd.cover(node)

    def subtree_vertices(self, node: int) -> set[Vertex]:
        """``chi(T_node)``: all bag vertices in the subtree under node."""
        parents = self.ghd.tree.parent_map()
        children: dict[int, list[int]] = {n: [] for n in parents}
        for child, parent in parents.items():
            if parent is not None:
                children[parent].append(child)
        gathered: set[Vertex] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            gathered |= self.ghd.tree.bags[current]
            stack.extend(children[current])
        return gathered

    def validate(self, hypergraph: Hypergraph) -> None:
        """All four conditions of a hypertree decomposition."""
        self.ghd.validate(hypergraph)
        edges = hypergraph.edges()
        for node in self.ghd.nodes():
            lambda_vars: set[Vertex] = set()
            for name in self.ghd.covers[node]:
                lambda_vars |= edges[name]
            subtree = self.subtree_vertices(node)
            if not (lambda_vars & subtree) <= self.ghd.tree.bags[node]:
                raise DecompositionError(
                    f"descendant condition violated at node {node}"
                )

    def __repr__(self) -> str:
        return f"HypertreeDecomposition(width={self.width()})"


class _DetKDecomp:
    """One det-k-decomp run for a fixed ``k``."""

    def __init__(self, hypergraph: Hypergraph, k: int) -> None:
        self.hypergraph = hypergraph
        self.k = k
        self.edges = hypergraph.edges()
        self.edge_names = sorted(self.edges, key=repr)
        self.failures: set[
            tuple[frozenset[EdgeName], frozenset[Vertex]]
        ] = set()
        self.result = GeneralizedHypertreeDecomposition()

    # ------------------------------------------------------------------

    def run(self) -> HypertreeDecomposition | None:
        all_edges = frozenset(self.edge_names)
        if not all_edges:
            self.result.add_node(self.hypergraph.vertices(), set())
            return HypertreeDecomposition(ghd=self.result)
        root = self._decompose(all_edges, frozenset())
        if root is None:
            return None
        self.result.tree.root = root
        return HypertreeDecomposition(ghd=self.result)

    # ------------------------------------------------------------------

    def _vertices_of(self, component: frozenset[EdgeName]) -> set[Vertex]:
        gathered: set[Vertex] = set()
        for name in component:
            gathered |= self.edges[name]
        return gathered

    def _components(
        self, component: frozenset[EdgeName], chi: set[Vertex]
    ) -> list[frozenset[EdgeName]]:
        """Split ``component`` by connectivity outside ``chi``.

        Edges entirely inside ``chi`` are absorbed (covered at the
        current node); the rest are grouped by reachability through
        vertices not in ``chi``.
        """
        remaining = [
            name for name in component if not self.edges[name] <= chi
        ]
        unassigned = set(remaining)
        groups: list[frozenset[EdgeName]] = []
        while unassigned:
            seed = unassigned.pop()
            group = {seed}
            frontier_vertices = self.edges[seed] - chi
            changed = True
            while changed:
                changed = False
                for name in list(unassigned):
                    if self.edges[name] & frontier_vertices:
                        group.add(name)
                        unassigned.discard(name)
                        frontier_vertices |= self.edges[name] - chi
                        changed = True
            groups.append(frozenset(group))
        return groups

    def _candidate_separators(
        self,
        component: frozenset[EdgeName],
        connector: frozenset[Vertex],
    ):
        """All lambda candidates: <= k edges covering the connector, at
        least one of them touching the component."""
        component_vertices = self._vertices_of(component)
        relevant = [
            name
            for name in self.edge_names
            if self.edges[name] & (component_vertices | connector)
        ]
        for size in range(1, self.k + 1):
            for subset in combinations(relevant, size):
                lambda_vars: set[Vertex] = set()
                for name in subset:
                    lambda_vars |= self.edges[name]
                if not connector <= lambda_vars:
                    continue
                if not any(
                    self.edges[name] & component_vertices for name in subset
                ):
                    continue
                yield frozenset(subset), lambda_vars

    def _decompose(
        self,
        component: frozenset[EdgeName],
        connector: frozenset[Vertex],
    ) -> int | None:
        """Decompose ``component`` under ``connector``; return the root
        node id of the constructed subtree, or None."""
        key = (component, connector)
        if key in self.failures:
            return None

        component_vertices = self._vertices_of(component)

        # Base case: the whole component fits one lambda-label.
        if len(component) <= self.k:
            lambda_vars = component_vertices
            if connector <= lambda_vars:
                return self.result.add_node(
                    lambda_vars | connector, set(component)
                )

        for separator, lambda_vars in self._candidate_separators(
            component, connector
        ):
            chi = lambda_vars & (component_vertices | connector)
            if not chi & component_vertices:
                continue  # no progress into the component
            children = self._components(component, chi)
            if any(child == component for child in children):
                continue  # separator did not split anything
            child_nodes: list[int] = []
            ok = True
            for child in children:
                child_connector = frozenset(
                    self._vertices_of(child) & chi
                )
                node = self._decompose(child, child_connector)
                if node is None:
                    ok = False
                    break
                child_nodes.append(node)
            if not ok:
                continue
            parent = self.result.add_node(chi, set(separator))
            for node in child_nodes:
                self.result.add_edge(parent, node)
            return parent

        self.failures.add(key)
        return None


def det_k_decomp(
    hypergraph: Hypergraph, k: int
) -> HypertreeDecomposition | None:
    """Decide ``hw(hypergraph) <= k`` constructively.

    Returns a validated hypertree decomposition of width at most ``k``,
    or ``None`` if none exists.
    """
    if k < 1:
        raise ValueError("width bound k must be >= 1")
    decomposition = _DetKDecomp(hypergraph, k).run()
    if decomposition is not None:
        decomposition.validate(hypergraph)
    return decomposition


def hypertree_width(
    hypergraph: Hypergraph, max_k: int | None = None
) -> tuple[int, HypertreeDecomposition]:
    """The hypertree width ``hw(hypergraph)`` with a witness.

    Tries ``k = 1, 2, ...`` until det-k-decomp succeeds (bounded by
    ``max_k`` or the number of hyperedges, which always suffices: a
    single node labelled with every hyperedge is a hypertree
    decomposition).
    """
    if hypergraph.num_edges() == 0:
        empty = GeneralizedHypertreeDecomposition()
        empty.add_node(hypergraph.vertices(), set())
        return 0, HypertreeDecomposition(ghd=empty)
    ceiling = max_k if max_k is not None else hypergraph.num_edges()
    for k in range(1, ceiling + 1):
        decomposition = det_k_decomp(hypergraph, k)
        if decomposition is not None:
            return k, decomposition
    raise ValueError(
        f"hw exceeds the search ceiling {ceiling}; raise max_k"
    )
