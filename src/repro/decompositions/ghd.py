"""Generalized hypertree decompositions (Definitions 12-14, Lemma 2).

A generalized hypertree decomposition (GHD) of a hypergraph ``H`` is a
tree decomposition whose every bag ``chi(p)`` is additionally *covered* by
a set ``lambda(p)`` of hyperedges of ``H`` (``chi(p) <= var(lambda(p))``).
Its width is ``max |lambda(p)|`` — the number of constraints per
subproblem, which measures CSP subproblem complexity more faithfully than
bag size. The minimum width over all GHDs is the *generalized hypertree
width* ``ghw(H)``, and ``ghw(H) <= hw(H) <= tw(H) + 1``-style inequalities
make it the strongest of the three measures.

A GHD is *complete* if every hyperedge ``h`` has a node with
``h <= chi(p)`` and ``h in lambda(p)``; completeness is what lets the CSP
solver place every constraint (Definition 14). :func:`make_complete`
implements the logspace transformation of Lemma 2 by grafting one leaf
per uncovered hyperedge.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.decompositions.tree_decomposition import (
    DecompositionError,
    TreeDecomposition,
)
from repro.hypergraphs.hypergraph import EdgeName, Hypergraph
from repro.hypergraphs.graph import Vertex


@dataclass
class GeneralizedHypertreeDecomposition:
    """A tree decomposition plus lambda-labels (hyperedge covers)."""

    tree: TreeDecomposition = field(default_factory=TreeDecomposition)
    covers: dict[int, set[EdgeName]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_node(
        self,
        bag: Iterable[Vertex],
        cover: Iterable[EdgeName],
        node: int | None = None,
    ) -> int:
        node = self.tree.add_node(bag, node=node)
        self.covers[node] = set(cover)
        return node

    def add_edge(self, a: int, b: int) -> None:
        self.tree.add_edge(a, b)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def nodes(self) -> list[int]:
        return self.tree.nodes()

    def bag(self, node: int) -> set[Vertex]:
        return self.tree.bags[node]

    def cover(self, node: int) -> set[EdgeName]:
        return self.covers[node]

    def width(self) -> int:
        """``max |lambda(p)|`` over all nodes (0 for the empty GHD)."""
        return max((len(cover) for cover in self.covers.values()), default=0)

    def copy(self) -> "GeneralizedHypertreeDecomposition":
        return GeneralizedHypertreeDecomposition(
            tree=self.tree.copy(),
            covers={node: set(cov) for node, cov in self.covers.items()},
        )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self, hypergraph: Hypergraph) -> None:
        """Raise :class:`DecompositionError` unless all three conditions of
        Definition 13 hold."""
        self.tree.validate(hypergraph)
        if set(self.covers) != set(self.tree.bags):
            raise DecompositionError("lambda labels out of sync with tree")
        edges = hypergraph.edges()
        for node, cover in self.covers.items():
            unknown = [name for name in cover if name not in edges]
            if unknown:
                raise DecompositionError(
                    f"node {node} covers with unknown hyperedges {unknown}"
                )
            covered: set[Vertex] = set()
            for name in cover:
                covered |= edges[name]
            if not self.tree.bags[node] <= covered:
                raise DecompositionError(
                    f"chi({node}) not contained in var(lambda({node}))"
                )

    def realised_edges(self, hypergraph: Hypergraph) -> set[EdgeName]:
        """Hyperedges realised at some node: ``h in lambda(p)`` and
        ``h <= chi(p)`` (the Definition 14 condition, per edge).

        Raises :class:`DecompositionError` when the lambda-labels are out
        of sync with the tree, naming the offending nodes, instead of
        surfacing a bare ``KeyError`` from the cover lookup.
        """
        out_of_sync = set(self.covers) ^ set(self.tree.bags)
        if out_of_sync:
            raise DecompositionError(
                "lambda labels out of sync with tree at nodes "
                f"{sorted(out_of_sync)}: every tree node needs exactly "
                "one cover"
            )
        edges = hypergraph.edges()
        realised: set[EdgeName] = set()
        for node, cover in self.covers.items():
            bag = self.tree.bags[node]
            for name in cover:
                if name in realised:
                    continue
                edge = edges.get(name)
                if edge is not None and edge <= bag:
                    realised.add(name)
        return realised

    def is_complete(self, hypergraph: Hypergraph) -> bool:
        """Definition 14: every hyperedge realised at some node."""
        return self.realised_edges(hypergraph) == set(hypergraph.edges())

    def __repr__(self) -> str:
        return (
            f"GHD(nodes={self.tree.num_nodes()}, width={self.width()})"
        )


def make_complete(
    ghd: GeneralizedHypertreeDecomposition, hypergraph: Hypergraph
) -> GeneralizedHypertreeDecomposition:
    """Lemma 2: turn a GHD into a *complete* GHD of the same width.

    For every hyperedge ``h`` not yet realised, a fresh leaf with
    ``chi = h`` and ``lambda = {h}`` is attached to a node whose bag
    contains ``h`` (such a node exists by condition 1). The new leaves
    have ``|lambda| = 1``, so the width is unchanged (every hypergraph
    with at least one edge has ghw >= 1).
    """
    result = ghd.copy()
    edges = hypergraph.edges()
    realised = result.realised_edges(hypergraph)
    for name, edge in edges.items():
        if name in realised:
            continue
        host = next(
            (
                node
                for node in result.tree.nodes()
                if edge <= result.tree.bags[node]
            ),
            None,
        )
        if host is None:
            raise DecompositionError(
                f"hyperedge {name!r} fits in no bag; GHD is invalid"
            )
        leaf = result.add_node(edge, {name})
        result.add_edge(host, leaf)
    return result


def exact_cover_width(
    ghd: GeneralizedHypertreeDecomposition, hypergraph: Hypergraph
) -> int:
    """Recompute the width with exact minimum covers per bag.

    A GHD built with greedy covers may label bags with more hyperedges
    than necessary; this utility reports the width the same tree would
    have under optimal lambda-labels. Import is deferred to avoid a
    package cycle (setcover depends on hypergraphs only).
    """
    from repro.setcover.exact import exact_set_cover

    edges = hypergraph.edges()
    width = 0
    for node in ghd.tree.nodes():
        cover = exact_set_cover(ghd.tree.bags[node], edges)
        width = max(width, len(cover))
    return width
