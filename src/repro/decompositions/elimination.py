"""Bucket/vertex elimination: from orderings to decompositions (Section 2.5).

An *elimination ordering* is a permutation of the vertices. Throughout
this library orderings are written in **elimination order**: the first
element is eliminated first. (The thesis writes orderings so that the
*last* element is eliminated first and processes buckets ``n`` down to
``1``; reverse a thesis ordering to obtain ours.)

Given a hypergraph and an ordering, bucket elimination (Figure 2.10) and
vertex elimination (Figure 2.12) produce the same tree decomposition; we
implement the vertex-elimination formulation because the search algorithms
already maintain elimination graphs. Covering each bag with hyperedges
(greedy — Figure 7.2 — or exact) upgrades the tree decomposition to a
generalized hypertree decomposition, which by Theorems 2 and 3 of the
thesis is an *optimal-width-complete* construction: some ordering yields a
GHD of width exactly ``ghw(H)`` when covers are exact.

Fast width evaluation (Figures 6.2 and 7.1) avoids building any graph
objects in the GA inner loop; it is the O(|V| + |E'|) bucket-propagation
scheme of Golumbic's perfect-elimination test.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.decompositions.ghd import GeneralizedHypertreeDecomposition
from repro.decompositions.tree_decomposition import TreeDecomposition
from repro.hypergraphs.graph import Graph, Vertex
from repro.hypergraphs.hypergraph import Hypergraph
from repro.setcover.exact import ExactSetCoverSolver
from repro.setcover.greedy import greedy_set_cover


def _check_ordering(vertices: set[Vertex], ordering: Sequence[Vertex]) -> None:
    if len(ordering) != len(set(ordering)) or set(ordering) != vertices:
        raise ValueError("ordering is not a permutation of the vertices")


def elimination_bags(
    graph: Graph, ordering: Sequence[Vertex]
) -> dict[Vertex, set[Vertex]]:
    """The bag ``{v} | N(v)`` produced when each vertex is eliminated.

    Runs the bucket-propagation scheme of Figure 6.2: instead of mutating
    a graph, the not-yet-eliminated part of each clique is pushed forward
    to the next vertex scheduled for elimination.
    """
    _check_ordering(graph.vertices(), ordering)
    position = {vertex: i for i, vertex in enumerate(ordering)}
    forward: dict[Vertex, set[Vertex]] = {
        vertex: {
            neighbour
            for neighbour in graph.neighbours(vertex)
            if position[neighbour] > position[vertex]
        }
        for vertex in ordering
    }
    bags: dict[Vertex, set[Vertex]] = {}
    for vertex in ordering:
        clique = forward[vertex]
        bags[vertex] = {vertex} | clique
        if clique:
            successor = min(clique, key=position.__getitem__)
            forward[successor] |= clique - {successor}
    return bags


def ordering_width(graph: Graph, ordering: Sequence[Vertex]) -> int:
    """Width of the tree decomposition induced by ``ordering``.

    Equals ``max |bag| - 1``. Includes the early exit of Figure 6.2: once
    the running width reaches the number of remaining vertices minus one,
    no later bag can exceed it.
    """
    _check_ordering(graph.vertices(), ordering)
    position = {vertex: i for i, vertex in enumerate(ordering)}
    forward: dict[Vertex, set[Vertex]] = {
        vertex: {
            neighbour
            for neighbour in graph.neighbours(vertex)
            if position[neighbour] > position[vertex]
        }
        for vertex in ordering
    }
    width = 0
    total = len(ordering)
    for index, vertex in enumerate(ordering):
        remaining = total - index - 1
        if width >= remaining:
            break
        clique = forward[vertex]
        width = max(width, len(clique))
        if clique:
            successor = min(clique, key=position.__getitem__)
            forward[successor] |= clique - {successor}
    return width


def ordering_ghw(
    hypergraph: Hypergraph,
    ordering: Sequence[Vertex],
    cover: str = "greedy",
    rng: random.Random | None = None,
    solver: ExactSetCoverSolver | None = None,
) -> int:
    """Cover width of ``ordering``: ``width(sigma, H)`` of Definition 17.

    Every elimination bag is covered with hyperedges of ``hypergraph``;
    the maximum cover size over all bags is returned. With
    ``cover="exact"`` this is the exact quantity whose minimum over all
    orderings equals ``ghw(H)`` (Theorem 3); with ``cover="greedy"`` it is
    the upper bound GA-ghw optimises (Figure 7.1).
    """
    bags = elimination_bags(hypergraph.primal_graph(), ordering)
    edges = hypergraph.edges()
    if cover == "exact":
        active_solver = solver or ExactSetCoverSolver(edges)
        return max(
            (active_solver.cover_size(bag) for bag in bags.values()), default=0
        )
    if cover != "greedy":
        raise ValueError(f"unknown cover mode {cover!r}")
    return max(
        (len(greedy_set_cover(bag, edges, rng=rng)) for bag in bags.values()),
        default=0,
    )


def ordering_to_tree_decomposition(
    graph: Graph, ordering: Sequence[Vertex]
) -> TreeDecomposition:
    """Build the full bucket-elimination tree decomposition (Figure 2.10).

    One node per vertex, labelled by its elimination bag; each bucket is
    connected to the bucket of the next-to-be-eliminated vertex in its
    bag. Buckets whose bag contains no later vertex start a new component;
    they are linked to the immediately following bucket so the result is a
    single tree (their bags share no vertices, so connectedness is safe).
    """
    _check_ordering(graph.vertices(), ordering)
    bags = elimination_bags(graph, ordering)
    position = {vertex: i for i, vertex in enumerate(ordering)}
    decomposition = TreeDecomposition()
    node_of: dict[Vertex, int] = {}
    for vertex in ordering:
        node_of[vertex] = decomposition.add_node(bags[vertex])
    for index, vertex in enumerate(ordering):
        later = bags[vertex] - {vertex}
        if later:
            successor = min(later, key=position.__getitem__)
            decomposition.add_edge(node_of[vertex], node_of[successor])
        elif index + 1 < len(ordering):
            decomposition.add_edge(node_of[vertex], node_of[ordering[index + 1]])
    decomposition.root = node_of[ordering[-1]]
    return decomposition


def ordering_to_ghd(
    hypergraph: Hypergraph,
    ordering: Sequence[Vertex],
    cover: str = "greedy",
    rng: random.Random | None = None,
    solver: ExactSetCoverSolver | None = None,
) -> GeneralizedHypertreeDecomposition:
    """Build the GHD McMahan-style: tree decomposition + per-bag covers.

    The chi-labels come from bucket elimination on the primal graph; each
    lambda-label is a set cover of the bag (greedy or exact). The width of
    the result equals :func:`ordering_ghw` for the same cover mode.
    """
    tree = ordering_to_tree_decomposition(hypergraph.primal_graph(), ordering)
    edges = hypergraph.edges()
    ghd = GeneralizedHypertreeDecomposition(tree=tree)
    if cover == "exact":
        active_solver = solver or ExactSetCoverSolver(edges)
        for node in tree.nodes():
            ghd.covers[node] = set(active_solver.cover(tree.bags[node]))
    elif cover == "greedy":
        for node in tree.nodes():
            ghd.covers[node] = set(
                greedy_set_cover(tree.bags[node], edges, rng=rng)
            )
    else:
        raise ValueError(f"unknown cover mode {cover!r}")
    return ghd


def cliques_of_ordering(
    hypergraph: Hypergraph, ordering: Sequence[Vertex]
) -> list[set[Vertex]]:
    """``cliques(sigma, H)`` of Definition 16, in elimination order.

    Computed on the primal graph — the thesis notes the Definition-16
    hypergraph-merging process produces exactly the vertex-elimination
    adjacencies, and this equality is property-tested against
    :meth:`Hypergraph.eliminate`.
    """
    bags = elimination_bags(hypergraph.primal_graph(), ordering)
    return [bags[vertex] for vertex in ordering]


def width_of_cliques(
    hypergraph: Hypergraph, ordering: Sequence[Vertex]
) -> int:
    """``width(sigma, H)`` of Definition 17 with exact covers."""
    return ordering_ghw(hypergraph, ordering, cover="exact")
