"""Bucket/vertex elimination: from orderings to decompositions (Section 2.5).

An *elimination ordering* is a permutation of the vertices. Throughout
this library orderings are written in **elimination order**: the first
element is eliminated first. (The thesis writes orderings so that the
*last* element is eliminated first and processes buckets ``n`` down to
``1``; reverse a thesis ordering to obtain ours.)

Given a hypergraph and an ordering, bucket elimination (Figure 2.10) and
vertex elimination (Figure 2.12) produce the same tree decomposition; we
implement the vertex-elimination formulation because the search algorithms
already maintain elimination graphs. Covering each bag with hyperedges
(greedy — Figure 7.2 — or exact) upgrades the tree decomposition to a
generalized hypertree decomposition, which by Theorems 2 and 3 of the
thesis is an *optimal-width-complete* construction: some ordering yields a
GHD of width exactly ``ghw(H)`` when covers are exact.

Fast width evaluation (Figures 6.2 and 7.1) avoids building any graph
objects in the GA inner loop; it is the O(|V| + |E'|) bucket-propagation
scheme of Golumbic's perfect-elimination test. ``backend="bitset"``
switches :func:`ordering_width` and :func:`ordering_ghw` to the
:mod:`repro.kernels` bitmask kernel, which returns identical widths on
all deterministic paths (property-tested); hot loops should build a
kernel evaluator once via :mod:`repro.kernels.evaluators` instead of
paying the per-call interning here.

Set covers — greedy deterministic and exact — are memoised in the
process-wide :func:`~repro.kernels.cache.cover_cache`, so
:func:`ordering_to_ghd` reuses the covers :func:`ordering_ghw` already
computed for the same bags rather than solving them again.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence

from repro.decompositions.ghd import GeneralizedHypertreeDecomposition
from repro.decompositions.tree_decomposition import TreeDecomposition
from repro.hypergraphs.graph import Graph, Vertex
from repro.hypergraphs.hypergraph import EdgeName, Hypergraph
from repro.kernels.cache import cover_cache, edges_token
from repro.setcover.exact import ExactSetCoverSolver
from repro.setcover.greedy import greedy_set_cover


def _check_ordering(vertices: set[Vertex], ordering: Sequence[Vertex]) -> None:
    """Reject orderings that are not permutations of ``vertices``.

    One pass over the ordering; the error names the offending vertex so
    callers can see *which* duplicate/unknown/missing vertex broke it.
    """
    seen: set[Vertex] = set()
    for vertex in ordering:
        if vertex in seen:
            raise ValueError(
                "ordering is not a permutation of the vertices: "
                f"duplicate vertex {vertex!r}"
            )
        if vertex not in vertices:
            raise ValueError(
                "ordering is not a permutation of the vertices: "
                f"unknown vertex {vertex!r}"
            )
        seen.add(vertex)
    if len(seen) != len(vertices):
        missing = min(vertices - seen, key=repr)
        raise ValueError(
            "ordering is not a permutation of the vertices: "
            f"missing vertex {missing!r}"
        )


def _cached_greedy_cover(
    bag: set[Vertex],
    edges: Mapping[EdgeName, frozenset[Vertex]],
    rng: random.Random | None,
    token: int | None,
) -> list[EdgeName]:
    """Greedy cover of ``bag``, via the shared cache when deterministic.

    With an ``rng`` the thesis's randomised tie-breaking applies and the
    result is intentionally never cached (re-randomisation is part of
    the semantics); without one the deterministic greedy cover is
    memoised process-wide, so :func:`ordering_ghw` and
    :func:`ordering_to_ghd` each solve any given bag at most once.
    """
    if rng is not None or token is None:
        return greedy_set_cover(bag, edges, rng=rng)
    cache = cover_cache()
    key = frozenset(bag)
    cached = cache.get(token, "greedy", key)
    if cached is not None:
        return list(cached)
    cover = greedy_set_cover(bag, edges)
    cache.put(token, "greedy", key, tuple(cover))
    return cover


def elimination_bags(
    graph: Graph, ordering: Sequence[Vertex]
) -> dict[Vertex, set[Vertex]]:
    """The bag ``{v} | N(v)`` produced when each vertex is eliminated.

    Runs the bucket-propagation scheme of Figure 6.2: instead of mutating
    a graph, the not-yet-eliminated part of each clique is pushed forward
    to the next vertex scheduled for elimination.
    """
    _check_ordering(graph.vertices(), ordering)
    position = {vertex: i for i, vertex in enumerate(ordering)}
    forward: dict[Vertex, set[Vertex]] = {
        vertex: {
            neighbour
            for neighbour in graph.neighbours(vertex)
            if position[neighbour] > position[vertex]
        }
        for vertex in ordering
    }
    bags: dict[Vertex, set[Vertex]] = {}
    for vertex in ordering:
        clique = forward[vertex]
        bags[vertex] = {vertex} | clique
        if clique:
            successor = min(clique, key=position.__getitem__)
            forward[successor] |= clique - {successor}
    return bags


def ordering_width(
    graph: Graph, ordering: Sequence[Vertex], backend: str = "python"
) -> int:
    """Width of the tree decomposition induced by ``ordering``.

    Equals ``max |bag| - 1``. Includes the early exit of Figure 6.2: once
    the running width reaches the number of remaining vertices minus one,
    no later bag can exceed it. ``backend="bitset"`` evaluates on the
    bitmask kernel instead (identical result).
    """
    if backend != "python":
        from repro.kernels.bithypergraph import BitGraph
        from repro.kernels.elimination import bit_ordering_width
        from repro.kernels.evaluators import check_backend

        check_backend(backend)
        bg = BitGraph.from_graph(graph)
        return bit_ordering_width(bg, bg.order_of(ordering))
    _check_ordering(graph.vertices(), ordering)
    position = {vertex: i for i, vertex in enumerate(ordering)}
    forward: dict[Vertex, set[Vertex]] = {
        vertex: {
            neighbour
            for neighbour in graph.neighbours(vertex)
            if position[neighbour] > position[vertex]
        }
        for vertex in ordering
    }
    width = 0
    total = len(ordering)
    for index, vertex in enumerate(ordering):
        remaining = total - index - 1
        if width >= remaining:
            break
        clique = forward[vertex]
        width = max(width, len(clique))
        if clique:
            successor = min(clique, key=position.__getitem__)
            forward[successor] |= clique - {successor}
    return width


def ordering_ghw(
    hypergraph: Hypergraph,
    ordering: Sequence[Vertex],
    cover: str = "greedy",
    rng: random.Random | None = None,
    solver: ExactSetCoverSolver | None = None,
    backend: str = "python",
) -> int:
    """Cover width of ``ordering``: ``width(sigma, H)`` of Definition 17.

    Every elimination bag is covered with hyperedges of ``hypergraph``;
    the maximum cover size over all bags is returned. With
    ``cover="exact"`` this is the exact quantity whose minimum over all
    orderings equals ``ghw(H)`` (Theorem 3); with ``cover="greedy"`` it is
    the upper bound GA-ghw optimises (Figure 7.1). Covers are memoised
    in the shared cover cache (except greedy with an ``rng``, whose
    random tie-breaks must stay fresh). ``backend="bitset"`` evaluates
    on the bitmask kernel; identical on every deterministic path.
    """
    if backend != "python":
        from repro.kernels.bithypergraph import BitHypergraph
        from repro.kernels.elimination import bit_ordering_ghw
        from repro.kernels.evaluators import check_backend

        check_backend(backend)
        bh = BitHypergraph.from_hypergraph(hypergraph)
        return bit_ordering_ghw(bh, bh.order_of(ordering), cover=cover)
    bags = elimination_bags(hypergraph.primal_graph(), ordering)
    edges = hypergraph.edges()
    if cover == "exact":
        active_solver = solver or ExactSetCoverSolver(edges)
        return max(
            (active_solver.cover_size(bag) for bag in bags.values()), default=0
        )
    if cover != "greedy":
        raise ValueError(f"unknown cover mode {cover!r}")
    token = None if rng is not None else edges_token(edges)
    return max(
        (
            len(_cached_greedy_cover(bag, edges, rng, token))
            for bag in bags.values()
        ),
        default=0,
    )


def ordering_to_tree_decomposition(
    graph: Graph, ordering: Sequence[Vertex]
) -> TreeDecomposition:
    """Build the full bucket-elimination tree decomposition (Figure 2.10).

    One node per vertex, labelled by its elimination bag; each bucket is
    connected to the bucket of the next-to-be-eliminated vertex in its
    bag. Buckets whose bag contains no later vertex start a new component;
    they are linked to the immediately following bucket so the result is a
    single tree (their bags share no vertices, so connectedness is safe).
    """
    _check_ordering(graph.vertices(), ordering)
    bags = elimination_bags(graph, ordering)
    position = {vertex: i for i, vertex in enumerate(ordering)}
    decomposition = TreeDecomposition()
    node_of: dict[Vertex, int] = {}
    for vertex in ordering:
        node_of[vertex] = decomposition.add_node(bags[vertex])
    for index, vertex in enumerate(ordering):
        later = bags[vertex] - {vertex}
        if later:
            successor = min(later, key=position.__getitem__)
            decomposition.add_edge(node_of[vertex], node_of[successor])
        elif index + 1 < len(ordering):
            decomposition.add_edge(node_of[vertex], node_of[ordering[index + 1]])
    decomposition.root = node_of[ordering[-1]]
    return decomposition


def ordering_to_ghd(
    hypergraph: Hypergraph,
    ordering: Sequence[Vertex],
    cover: str = "greedy",
    rng: random.Random | None = None,
    solver: ExactSetCoverSolver | None = None,
) -> GeneralizedHypertreeDecomposition:
    """Build the GHD McMahan-style: tree decomposition + per-bag covers.

    The chi-labels come from bucket elimination on the primal graph; each
    lambda-label is a set cover of the bag (greedy or exact). The width of
    the result equals :func:`ordering_ghw` for the same cover mode — and
    both draw covers from the shared cover cache, so building the GHD for
    an ordering whose width was already evaluated re-solves nothing.
    """
    tree = ordering_to_tree_decomposition(hypergraph.primal_graph(), ordering)
    edges = hypergraph.edges()
    ghd = GeneralizedHypertreeDecomposition(tree=tree)
    if cover == "exact":
        active_solver = solver or ExactSetCoverSolver(edges)
        for node in tree.nodes():
            ghd.covers[node] = set(active_solver.cover(tree.bags[node]))
    elif cover == "greedy":
        token = None if rng is not None else edges_token(edges)
        for node in tree.nodes():
            ghd.covers[node] = set(
                _cached_greedy_cover(tree.bags[node], edges, rng, token)
            )
    else:
        raise ValueError(f"unknown cover mode {cover!r}")
    return ghd


def cliques_of_ordering(
    hypergraph: Hypergraph, ordering: Sequence[Vertex]
) -> list[set[Vertex]]:
    """``cliques(sigma, H)`` of Definition 16, in elimination order.

    Computed on the primal graph — the thesis notes the Definition-16
    hypergraph-merging process produces exactly the vertex-elimination
    adjacencies, and this equality is property-tested against
    :meth:`Hypergraph.eliminate`.
    """
    bags = elimination_bags(hypergraph.primal_graph(), ordering)
    return [bags[vertex] for vertex in ordering]


def width_of_cliques(
    hypergraph: Hypergraph, ordering: Sequence[Vertex]
) -> int:
    """``width(sigma, H)`` of Definition 17 with exact covers."""
    return ordering_ghw(hypergraph, ordering, cover="exact")
