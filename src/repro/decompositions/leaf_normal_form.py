"""Leaf normal form and the chapter-3 theory of elimination orderings.

Chapter 3 of the thesis proves that elimination orderings are a complete
search space for generalized hypertree width. The proof is constructive
and this module implements each construction:

* :func:`transform_leaf_normal_form` — Algorithm *Transform Leaf Normal
  Form* (Figure 3.1). It rewrites any tree decomposition ``TD`` of a
  hypergraph into one in *leaf normal form* (Definition 18): leaves
  correspond one-to-one to hyperedges (``chi(leaf(h)) = h``) and every
  inner bag contains a vertex exactly when it lies on a path between two
  leaves containing that vertex. Crucially (Theorem 1), every bag of the
  result is contained in some bag of ``TD``.
* :func:`ordering_from_leaf_normal_form` — the Lemma-13 ordering: sort
  vertices by the depth of the deepest common ancestor (dca) of the
  leaves containing them; eliminating deeper-dca vertices first
  guarantees every produced clique fits inside a bag of the normal form.
* :func:`extract_ordering` — the composition: tree decomposition in,
  elimination ordering out, such that bucket elimination from that
  ordering never exceeds the original decomposition's bags (and hence,
  with exact covers, never exceeds a GHD's width — Theorems 2 and 3).
"""

from __future__ import annotations

from repro.decompositions.tree_decomposition import (
    DecompositionError,
    TreeDecomposition,
)
from repro.hypergraphs.graph import Vertex
from repro.hypergraphs.hypergraph import EdgeName, Hypergraph


def transform_leaf_normal_form(
    decomposition: TreeDecomposition, hypergraph: Hypergraph
) -> tuple[TreeDecomposition, dict[EdgeName, int]]:
    """Figure 3.1: rewrite ``decomposition`` into leaf normal form.

    Returns the transformed decomposition and the one-to-one mapping
    ``leaf`` from hyperedge names to leaf node ids.

    Raises :class:`DecompositionError` if ``decomposition`` is not a
    valid tree decomposition of ``hypergraph`` (step 2 needs a host bag
    for every hyperedge).
    """
    result = decomposition.copy()

    # Step 2: introduce one leaf per hyperedge, attached to a host bag.
    leaf_of: dict[EdgeName, int] = {}
    original_nodes = set(result.nodes())
    for name, edge in hypergraph.edges().items():
        host = next(
            (node for node in original_nodes if edge <= result.bags[node]),
            None,
        )
        if host is None:
            raise DecompositionError(
                f"hyperedge {name!r} fits in no bag; not a tree decomposition"
            )
        leaf = result.add_node(edge)
        result.add_edge(host, leaf)
        leaf_of[name] = leaf

    # Step 3: repeatedly delete leaves that do not represent a hyperedge.
    mapped_leaves = set(leaf_of.values())
    while True:
        stray = [
            node for node in result.leaves()
            if node not in mapped_leaves and result.num_nodes() > 1
        ]
        if not stray:
            break
        for node in stray:
            result.remove_node(node)

    # Re-root at an inner node if the root was deleted or is now a leaf;
    # any node works, the dca construction only needs *a* root.
    if result.root not in result.bags:
        result.root = next(iter(result.bags))

    # Step 4: strip inner-bag vertices not on a leaf-to-leaf path.
    leaves = set(result.leaves())
    vertex_leaves: dict[Vertex, list[int]] = {}
    for leaf in leaves:
        for vertex in result.bags[leaf]:
            vertex_leaves.setdefault(vertex, []).append(leaf)
    for node in result.nodes():
        if node in leaves:
            continue
        bag = result.bags[node]
        keep: set[Vertex] = set()
        for vertex in bag:
            holders = vertex_leaves.get(vertex, [])
            if len(holders) >= 2 and _on_steiner_tree(result, node, holders):
                keep.add(vertex)
        result.bags[node] = keep
    return result, leaf_of


def _on_steiner_tree(
    decomposition: TreeDecomposition, node: int, terminals: list[int]
) -> bool:
    """Is ``node`` on some path between two of the ``terminals``?

    The union of pairwise terminal paths is the minimal subtree spanning
    the terminals; membership is checked by walking paths from a fixed
    terminal to each other terminal.
    """
    # The Steiner tree of the terminals equals the union of the paths
    # from any fixed terminal to every other one, so anchoring at
    # terminals[0] loses nothing.
    anchor = terminals[0]
    return any(
        node in decomposition.path_between(anchor, other)
        for other in terminals[1:]
    )


def is_leaf_normal_form(
    decomposition: TreeDecomposition,
    hypergraph: Hypergraph,
    leaf_of: dict[EdgeName, int],
) -> bool:
    """Check Definition 18 explicitly (used by tests)."""
    leaves = set(decomposition.leaves())
    if set(leaf_of.values()) != leaves or len(leaf_of) != len(leaves):
        return False
    for name, leaf in leaf_of.items():
        if decomposition.bags[leaf] != set(hypergraph.edge(name)):
            return False
    vertex_leaves: dict[Vertex, list[int]] = {}
    for leaf in leaves:
        for vertex in decomposition.bags[leaf]:
            vertex_leaves.setdefault(vertex, []).append(leaf)
    for node in decomposition.nodes():
        if node in leaves:
            continue
        for vertex in decomposition.bags[node]:
            holders = vertex_leaves.get(vertex, [])
            if len(holders) < 2:
                return False
            if not _on_steiner_tree(decomposition, node, holders):
                return False
        # the "iff" direction: every vertex on a leaf-to-leaf path must be
        # present (this is the connectedness condition, assumed validated)
    return True


def ordering_from_leaf_normal_form(
    decomposition: TreeDecomposition, hypergraph: Hypergraph
) -> list[Vertex]:
    """The Lemma-13 elimination ordering from a leaf-normal-form tree.

    For each hypergraph vertex ``v``, compute the deepest common ancestor
    of the leaves containing ``v`` and sort by its depth. Deeper dca means
    *earlier elimination* (this library's orderings eliminate the first
    element first; the thesis's convention is the reverse).
    """
    depths = decomposition.depths()
    parents = decomposition.parent_map()
    leaves = set(decomposition.leaves())
    vertex_leaves: dict[Vertex, list[int]] = {}
    for leaf in leaves:
        for vertex in decomposition.bags[leaf]:
            vertex_leaves.setdefault(vertex, []).append(leaf)

    def lca(a: int, b: int) -> int:
        while depths[a] > depths[b]:
            a = parents[a]  # type: ignore[assignment]
        while depths[b] > depths[a]:
            b = parents[b]  # type: ignore[assignment]
        while a != b:
            a = parents[a]  # type: ignore[assignment]
            b = parents[b]  # type: ignore[assignment]
        return a

    vertex_depth: dict[Vertex, int] = {}
    for vertex in hypergraph.vertices():
        holders = vertex_leaves.get(vertex)
        if not holders:
            # isolated vertex: eliminate first, it constrains nothing
            vertex_depth[vertex] = max(depths.values(), default=0) + 1
            continue
        ancestor = holders[0]
        for other in holders[1:]:
            ancestor = lca(ancestor, other)
        vertex_depth[vertex] = depths[ancestor]
    return sorted(
        hypergraph.vertices(),
        key=lambda v: (-vertex_depth[v], repr(v)),
    )


def extract_ordering(
    decomposition: TreeDecomposition, hypergraph: Hypergraph
) -> list[Vertex]:
    """Tree decomposition -> elimination ordering (Theorem 2 pipeline).

    Bucket elimination from the returned ordering produces bags each of
    which is contained in some bag of ``decomposition``; consequently the
    exact-cover width of the ordering never exceeds the width of any GHD
    sharing ``decomposition``'s tree and bags.
    """
    normal_form, _ = transform_leaf_normal_form(decomposition, hypergraph)
    return ordering_from_leaf_normal_form(normal_form, hypergraph)
