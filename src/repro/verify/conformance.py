"""The differential conformance matrix: every solver family, both
backends, serial and parallel, fresh and resumed — cross-checked.

Each generated instance is pushed through a matrix of *cells*. A cell is
one configured solver run (a :class:`~repro.portfolio.strategies.
StrategySpec` in all but name); its reported width is never taken at
face value — the witness ordering is re-decomposed and certified by
:mod:`repro.verify.certify`. On top of per-cell certification the runner
checks relations *between* cells that hold by theorem, not by test
oracle:

* all exact solvers (and any portfolio that closed its bounds) must
  agree on the optimum;
* no certified witness may beat a proven optimum, and no claimed lower
  bound may exceed a certified upper bound;
* deterministic cells that differ only in backend or job count
  (treewidth fitness is deterministic on both backends) must report
  identical widths;
* a resumed portfolio race may only match or improve the incumbent it
  was killed with, and two closed races must agree on the optimum;
* ``ghw(H) <= tw(H) + 1`` whenever both optima are proven.

Any violated relation becomes a :class:`Divergence`; the shrinker in
:mod:`repro.verify.shrink` then minimises the instance behind it.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field

from repro.portfolio.scheduler import (
    PortfolioSpec,
    resume_portfolio,
    run_portfolio,
)
from repro.portfolio.strategies import StrategySpec
from repro.portfolio.workers import run_strategy
from repro.verify.certify import (
    Certification,
    certify_ghw_witness,
    certify_tw_witness,
)
from repro.verify.generators import (
    FAMILIES,
    VerifyInstance,
    generate_instance,
)

MEASURES = ("tw", "ghw")

#: Deliberately small heuristic budgets: the matrix needs breadth (many
#: seeds x many cells), not per-cell solution quality.
GA_OPTIONS = {"population_size": 12, "max_iterations": 15}
SAIGA_OPTIONS = {
    "islands": 2,
    "island_population": 8,
    "epochs": 2,
    "epoch_generations": 4,
}
SA_OPTIONS = {
    "initial_temperature": 2.0,
    "cooling_rate": 0.9,
    "steps_per_temperature": 10,
}
TABU_OPTIONS = {
    "iterations": 30,
    "tenure": 5,
    "neighbourhood_sample": 10,
    "stall_restart": 15,
}


@dataclass
class CellSpec:
    """One solver configuration in the conformance matrix."""

    name: str
    measure: str
    kind: str
    backend: str = "python"
    jobs: int = 1
    options: dict = field(default_factory=dict)
    strict: bool = False
    """Require the certified width to *equal* the claim (sound for
    solvers whose evaluator is exact/deterministic for the measure)."""

    allow_no_claim: bool = False
    """A cell that may legitimately report no upper bound (a race killed
    before its first incumbent)."""


@dataclass
class CellResult:
    """One cell's outcome on one instance, with its certification."""

    cell: CellSpec
    status: str
    lower_bound: int | None = None
    upper_bound: int | None = None
    witness_width: int | None = None
    certified: bool = False
    reason: str | None = None
    elapsed: float = 0.0

    def to_dict(self) -> dict:
        return {
            "cell": self.cell.name,
            "measure": self.cell.measure,
            "status": self.status,
            "lower_bound": self.lower_bound,
            "upper_bound": self.upper_bound,
            "witness_width": self.witness_width,
            "certified": self.certified,
            "reason": self.reason,
            "elapsed": round(self.elapsed, 4),
        }


@dataclass
class Divergence:
    """One violated conformance relation on one instance."""

    instance: str
    family: str
    seed: int
    measure: str
    kind: str
    """Relation slug: ``uncertified``, ``exact-disagreement``,
    ``impossible-width``, ``bound-crossing``, ``parity``,
    ``resume-regression``, ``resume-disagreement``, ``measure-order``."""

    cells: list[str] = field(default_factory=list)
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "instance": self.instance,
            "family": self.family,
            "seed": self.seed,
            "measure": self.measure,
            "kind": self.kind,
            "cells": list(self.cells),
            "detail": self.detail,
        }

    def __str__(self) -> str:
        return (
            f"{self.instance} [{self.measure}/{self.kind}] "
            f"{'+'.join(self.cells)}: {self.detail}"
        )


@dataclass
class InstanceVerdict:
    """Everything the matrix concluded about one instance."""

    instance: VerifyInstance
    cells: list[CellResult] = field(default_factory=list)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "instance": self.instance.name,
            "family": self.instance.family,
            "seed": self.instance.seed,
            "ok": self.ok,
            "cells": [cell.to_dict() for cell in self.cells],
            "divergences": [d.to_dict() for d in self.divergences],
        }


@dataclass
class ConformanceReport:
    """Aggregate over all seeds of one conformance run."""

    verdicts: list[InstanceVerdict] = field(default_factory=list)

    @property
    def divergences(self) -> list[Divergence]:
        return [d for v in self.verdicts for d in v.divergences]

    @property
    def cells_run(self) -> int:
        return sum(len(v.cells) for v in self.verdicts)

    @property
    def cells_certified(self) -> int:
        return sum(
            1 for v in self.verdicts for c in v.cells if c.certified
        )

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    def summary(self) -> str:
        return (
            f"conformance: {len(self.verdicts)} instances, "
            f"{self.cells_run} cells, "
            f"{self.cells_certified} certified, "
            f"{len(self.divergences)} divergences"
        )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "instances": len(self.verdicts),
            "cells": self.cells_run,
            "certified": self.cells_certified,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def default_matrix(
    measures: tuple[str, ...] = MEASURES, seed: int = 0
) -> list[CellSpec]:
    """The standard matrix for one instance.

    Treewidth cells carry ``strict=True`` throughout: every tw evaluator
    in the library is deterministic, so claim and witness must agree
    exactly. For ghw only the exact searches are strict — they score
    incumbents with exact covers — while the heuristics cover greedily
    (randomised on the python backend), so their claims are upper bounds
    on their own witness's exact-cover width.
    """
    cells: list[CellSpec] = []
    for measure in measures:
        strict_all = measure == "tw"

        def cell(name, kind, backend="python", jobs=1, options=None,
                 strict=False, _measure=measure, _strict_all=strict_all):
            cells.append(
                CellSpec(
                    name=f"{name}-{_measure}",
                    measure=_measure,
                    kind=kind,
                    backend=backend,
                    jobs=jobs,
                    options=dict(options or {}),
                    strict=strict or _strict_all,
                )
            )

        cell("bb", "bb", strict=True)
        cell("astar", "astar", strict=True)
        cell("ga-python", "ga", options=GA_OPTIONS)
        cell("ga-bitset", "ga", backend="bitset", options=GA_OPTIONS)
        cell("ga-python-j2", "ga", jobs=2, options=GA_OPTIONS)
        cell("sa-python", "sa", options=SA_OPTIONS)
        cell("sa-bitset", "sa", backend="bitset", options=SA_OPTIONS)
        cell("tabu-python", "tabu", options=TABU_OPTIONS)
        cell("tabu-bitset", "tabu", backend="bitset", options=TABU_OPTIONS)
        if measure == "ghw":
            cell("saiga-python", "saiga", options=SAIGA_OPTIONS)
    return cells


def _certify(
    cell: CellSpec,
    instance: VerifyInstance,
    upper: int | None,
    ordering: list,
) -> Certification:
    if upper is None:
        if cell.allow_no_claim:
            return Certification(ok=True, reason="no claim (interrupted)")
        return Certification(ok=False, reason="no upper bound reported")
    if cell.measure == "tw":
        return certify_tw_witness(
            instance.graph, list(ordering), upper, strict=cell.strict
        )
    return certify_ghw_witness(
        instance.hypergraph, list(ordering), upper, strict=cell.strict
    )


def run_cell(
    cell: CellSpec,
    instance: VerifyInstance,
    seed: int = 0,
    time_limit: float | None = 10.0,
) -> CellResult:
    """Run one matrix cell and certify whatever it claims."""
    spec = StrategySpec(
        name=cell.name,
        kind=cell.kind,
        seed=seed,
        backend=cell.backend,
        jobs=cell.jobs,
        options=dict(cell.options),
    )
    started = time.monotonic()
    try:
        result = run_strategy(
            spec, instance.hypergraph, cell.measure, time_limit=time_limit
        )
    except Exception as error:
        return CellResult(
            cell=cell,
            status="error",
            certified=False,
            reason=f"{type(error).__name__}: {error}",
            elapsed=time.monotonic() - started,
        )
    certification = _certify(
        cell, instance, result.upper_bound, result.ordering
    )
    return CellResult(
        cell=cell,
        status=result.status,
        lower_bound=result.lower_bound,
        upper_bound=result.upper_bound,
        witness_width=certification.witness_width,
        certified=certification.ok,
        reason=certification.reason,
        elapsed=result.elapsed or (time.monotonic() - started),
    )


# ----------------------------------------------------------------------
# portfolio cells: fresh, killed, resumed
# ----------------------------------------------------------------------


def _portfolio_strategies(measure: str, seed: int) -> list[StrategySpec]:
    """Fresh spec objects every call — races validate/own their specs."""
    return [
        StrategySpec(name="bb", kind="bb", seed=seed),
        StrategySpec(name="ga", kind="ga", seed=seed + 1, options=dict(GA_OPTIONS)),
        StrategySpec(
            name="tabu", kind="tabu", seed=seed + 2, options=dict(TABU_OPTIONS)
        ),
    ]


def _portfolio_cell_result(
    name: str,
    measure: str,
    instance: VerifyInstance,
    result,
    allow_no_claim: bool = False,
) -> CellResult:
    cell = CellSpec(
        name=name,
        measure=measure,
        kind="portfolio",
        strict=measure == "tw",
        allow_no_claim=allow_no_claim,
    )
    certification = _certify(
        cell, instance, result.upper_bound, result.ordering
    )
    return CellResult(
        cell=cell,
        status="optimal" if result.optimal else "heuristic",
        lower_bound=result.lower_bound,
        upper_bound=result.upper_bound,
        witness_width=certification.witness_width,
        certified=certification.ok,
        reason=certification.reason,
        elapsed=result.elapsed,
    )


def run_portfolio_cells(
    instance: VerifyInstance,
    measure: str,
    seed: int = 0,
    time_limit: float = 5.0,
    interrupt_after: float = 0.15,
) -> tuple[list[CellResult], list[Divergence]]:
    """The fresh / killed / resumed portfolio triple for one measure.

    The killed race runs with a checkpoint directory and a deliberately
    tiny deadline; the resumed race reconstructs it from the directory
    alone with a fresh budget. The resume contract (incumbent seeded
    from snapshots before any worker restarts) means the resumed race
    may only match or improve the killed race's incumbent.
    """
    cells: list[CellResult] = []
    divergences: list[Divergence] = []

    fresh = run_portfolio(
        instance.hypergraph,
        PortfolioSpec(
            measure=measure,
            strategies=_portfolio_strategies(measure, seed),
            mode="inline",
            time_limit=time_limit,
            seed=seed,
            instance_name=instance.name,
        ),
    )
    cells.append(
        _portfolio_cell_result(
            f"portfolio-{measure}", measure, instance, fresh
        )
    )

    with tempfile.TemporaryDirectory(prefix="repro-verify-") as checkpoints:
        killed = run_portfolio(
            instance.hypergraph,
            PortfolioSpec(
                measure=measure,
                strategies=_portfolio_strategies(measure, seed),
                mode="inline",
                time_limit=interrupt_after,
                seed=seed,
                instance_name=instance.name,
                checkpoint_dir=checkpoints,
                checkpoint_interval=0.01,
            ),
        )
        cells.append(
            _portfolio_cell_result(
                f"portfolio-killed-{measure}",
                measure,
                instance,
                killed,
                allow_no_claim=True,
            )
        )
        resumed = resume_portfolio(
            instance.hypergraph,
            checkpoints,
            time_limit=time_limit,
            mode="inline",
        )
    cells.append(
        _portfolio_cell_result(
            f"portfolio-resumed-{measure}", measure, instance, resumed
        )
    )

    def diverge(kind: str, names: list[str], detail: str) -> None:
        divergences.append(
            Divergence(
                instance=instance.name,
                family=instance.family,
                seed=instance.seed,
                measure=measure,
                kind=kind,
                cells=names,
                detail=detail,
            )
        )

    if (
        killed.upper_bound is not None
        and resumed.upper_bound is not None
        and resumed.upper_bound > killed.upper_bound
    ):
        diverge(
            "resume-regression",
            [f"portfolio-killed-{measure}", f"portfolio-resumed-{measure}"],
            f"resumed incumbent {resumed.upper_bound} is worse than the "
            f"killed race's {killed.upper_bound}; resume seeds the "
            "incumbent from checkpoints and can only improve it",
        )
    if fresh.optimal and resumed.optimal and fresh.value != resumed.value:
        diverge(
            "resume-disagreement",
            [f"portfolio-{measure}", f"portfolio-resumed-{measure}"],
            f"both races closed their bounds but disagree: fresh proved "
            f"{fresh.value}, resumed proved {resumed.value}",
        )
    return cells, divergences


# ----------------------------------------------------------------------
# cross-cell relations
# ----------------------------------------------------------------------


def _parity_key(cell: CellSpec, seed: int) -> tuple:
    """Cells equal under this key must report equal widths (tw only:
    both backends evaluate tw fitness deterministically, and parallel
    evaluation must not change results)."""
    return (
        cell.measure,
        cell.kind,
        seed,
        tuple(sorted(cell.options.items())),
    )


def _cross_check(
    instance: VerifyInstance,
    results: list[CellResult],
    measure: str,
) -> list[Divergence]:
    divergences: list[Divergence] = []
    in_measure = [r for r in results if r.cell.measure == measure]

    def diverge(kind: str, names: list[str], detail: str) -> None:
        divergences.append(
            Divergence(
                instance=instance.name,
                family=instance.family,
                seed=instance.seed,
                measure=measure,
                kind=kind,
                cells=names,
                detail=detail,
            )
        )

    for result in in_measure:
        if not result.certified:
            diverge(
                "uncertified",
                [result.cell.name],
                result.reason or "certification failed",
            )

    optimal = [r for r in in_measure if r.status == "optimal"]
    values = sorted({r.upper_bound for r in optimal})
    if len(values) > 1:
        diverge(
            "exact-disagreement",
            [r.cell.name for r in optimal],
            f"solvers proved different optima: {values}",
        )
    proven = values[0] if len(values) == 1 else None

    certified = [r for r in in_measure if r.certified and r.witness_width is not None]
    if proven is not None:
        for result in certified:
            if result.witness_width < proven:
                diverge(
                    "impossible-width",
                    [result.cell.name] + [r.cell.name for r in optimal],
                    f"certified witness of width {result.witness_width} "
                    f"beats the proven optimum {proven}",
                )

    lower_cells = [r for r in in_measure if r.lower_bound is not None]
    if lower_cells and certified:
        best_lower = max(lower_cells, key=lambda r: r.lower_bound)
        best_upper = min(certified, key=lambda r: r.witness_width)
        if best_lower.lower_bound > best_upper.witness_width:
            diverge(
                "bound-crossing",
                [best_lower.cell.name, best_upper.cell.name],
                f"claimed lower bound {best_lower.lower_bound} exceeds "
                f"certified upper bound {best_upper.witness_width}",
            )
    return divergences


def _parity_check(
    instance: VerifyInstance, results: list[CellResult], seed: int
) -> list[Divergence]:
    groups: dict[tuple, list[CellResult]] = {}
    for result in results:
        if result.cell.measure != "tw" or result.cell.kind == "portfolio":
            continue
        if not result.certified or result.upper_bound is None:
            continue
        groups.setdefault(_parity_key(result.cell, seed), []).append(result)
    divergences: list[Divergence] = []
    for group in groups.values():
        widths = sorted({r.upper_bound for r in group})
        if len(widths) > 1:
            divergences.append(
                Divergence(
                    instance=instance.name,
                    family=instance.family,
                    seed=instance.seed,
                    measure="tw",
                    kind="parity",
                    cells=[r.cell.name for r in group],
                    detail=(
                        f"deterministic cells disagree across "
                        f"backend/jobs: widths {widths}"
                    ),
                )
            )
    return divergences


def _measure_order_check(
    instance: VerifyInstance, results: list[CellResult]
) -> list[Divergence]:
    """``ghw(H) <= tw(H) + 1`` whenever both optima are proven."""

    def proven(measure: str) -> int | None:
        values = {
            r.upper_bound
            for r in results
            if r.cell.measure == measure and r.status == "optimal"
        }
        return values.pop() if len(values) == 1 else None

    tw, ghw = proven("tw"), proven("ghw")
    if tw is not None and ghw is not None and ghw > tw + 1:
        return [
            Divergence(
                instance=instance.name,
                family=instance.family,
                seed=instance.seed,
                measure="ghw",
                kind="measure-order",
                cells=["bb-tw", "bb-ghw"],
                detail=f"ghw {ghw} > tw {tw} + 1 violates ghw <= tw + 1",
            )
        ]
    return []


# ----------------------------------------------------------------------
# driving the matrix
# ----------------------------------------------------------------------


def check_hypergraph(
    instance: VerifyInstance,
    matrix: list[CellSpec] | None = None,
    time_limit: float | None = 10.0,
    portfolio: bool = True,
    portfolio_time_limit: float = 5.0,
) -> InstanceVerdict:
    """Run the full matrix on one instance and collect divergences."""
    matrix = default_matrix() if matrix is None else matrix
    seed = instance.seed
    results = [
        run_cell(cell, instance, seed=seed, time_limit=time_limit)
        for cell in matrix
    ]
    divergences: list[Divergence] = []
    measures = sorted({cell.measure for cell in matrix})
    if portfolio:
        for measure in measures:
            cells, portfolio_divergences = run_portfolio_cells(
                instance, measure, seed=seed, time_limit=portfolio_time_limit
            )
            results.extend(cells)
            divergences.extend(portfolio_divergences)
    for measure in measures:
        divergences.extend(_cross_check(instance, results, measure))
    divergences.extend(_parity_check(instance, results, seed))
    divergences.extend(_measure_order_check(instance, results))
    return InstanceVerdict(
        instance=instance, cells=results, divergences=divergences
    )


def run_conformance(
    seeds: int = 20,
    families: tuple[str, ...] = FAMILIES,
    matrix: list[CellSpec] | None = None,
    time_limit: float | None = 10.0,
    portfolio: bool = True,
    progress=None,
) -> ConformanceReport:
    """The conformance sweep: ``seeds`` generated instances through the
    matrix. ``progress`` (if given) is called with each verdict as it
    lands — the CLI uses it for live output."""
    report = ConformanceReport()
    for seed in range(seeds):
        instance = generate_instance(seed, families=families)
        verdict = check_hypergraph(
            instance,
            matrix=matrix,
            time_limit=time_limit,
            portfolio=portfolio,
        )
        report.verdicts.append(verdict)
        if progress is not None:
            progress(verdict)
    return report
