"""Seeded random instance generators for the conformance harness.

Differential testing wants many *small* instances across structurally
different families, not a few big ones: every cell of the conformance
matrix (including the exact searches) must finish in milliseconds so a
50-seed sweep covers the whole matrix. Five families, echoing the shapes
HyperBench catalogues (CQs/CSPs from applications, random, and synthetic
width families):

* ``primal`` — a random G(n, p) graph lifted to a binary-edge
  hypergraph: the tw and ghw measures see exactly the same structure;
* ``uniform`` — random k-uniform constraint scopes (the classic random
  CSP shape);
* ``acyclic`` — alpha-acyclic hypergraphs grown join-tree-style (each
  new edge overlaps one existing edge), ghw(H) = 1 territory where any
  solver claiming more than its cover structure allows is wrong;
* ``near-acyclic`` — an acyclic instance plus a few chord edges, the
  low-width regime det-k-decomp targets;
* ``bench`` — small members of the named generator families the thesis
  tables use (adder, bridge, clique, grid, circuit).

Every generator guarantees each vertex occurs in at least one hyperedge
(ghw is undefined otherwise) and derives all randomness from the seed,
so a failing seed reproduces everywhere.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.hypergraphs.graph import Graph
from repro.hypergraphs.hypergraph import Hypergraph, from_graph
from repro.instances.hypergraphs import (
    adder,
    bridge,
    clique_hypergraph,
    grid2d,
    random_circuit,
)

FAMILIES = ("primal", "uniform", "acyclic", "near-acyclic", "bench")


@dataclass
class VerifyInstance:
    """One generated conformance workload."""

    name: str
    family: str
    seed: int
    hypergraph: Hypergraph

    @property
    def graph(self) -> Graph:
        """The primal graph (what the tw matrix runs on)."""
        return self.hypergraph.primal_graph()


def random_primal_hypergraph(
    seed: int, max_vertices: int = 9
) -> Hypergraph:
    """A random G(n, p) graph as a binary-edge hypergraph.

    Isolated vertices are attached to a random neighbour rather than
    dropped, keeping ghw defined without changing the density regime.
    """
    rng = random.Random(f"primal-{seed}")
    n = rng.randint(4, max_vertices)
    p = rng.uniform(0.25, 0.6)
    graph = Graph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    for v in range(n):
        if graph.degree(v) == 0:
            other = rng.choice([u for u in range(n) if u != v])
            graph.add_edge(v, other)
    return from_graph(graph)


def random_uniform_hypergraph(
    seed: int, max_vertices: int = 9
) -> Hypergraph:
    """Random ``arity``-uniform constraint scopes covering every vertex."""
    rng = random.Random(f"uniform-{seed}")
    n = rng.randint(5, max_vertices)
    arity = rng.randint(2, min(4, n))
    extra = rng.randint(1, n)
    hypergraph = Hypergraph()
    count = 0
    uncovered = list(range(n))
    rng.shuffle(uncovered)
    while uncovered:
        scope = set(uncovered[:arity])
        del uncovered[:arity]
        while len(scope) < arity:
            scope.add(rng.randrange(n))
        hypergraph.add_edge(f"c{count}", scope)
        count += 1
    for _ in range(extra):
        hypergraph.add_edge(f"c{count}", rng.sample(range(n), arity))
        count += 1
    return hypergraph


def random_acyclic_hypergraph(
    seed: int, max_edges: int = 6
) -> Hypergraph:
    """An alpha-acyclic hypergraph grown like a join tree.

    Each new edge shares a subset of exactly one existing edge plus
    fresh vertices, so the edge-creation order is a join tree and the
    result is alpha-acyclic by construction (GYO-reducible).
    """
    rng = random.Random(f"acyclic-{seed}")
    hypergraph = Hypergraph()
    next_vertex = 0

    def fresh(k: int) -> list[int]:
        nonlocal next_vertex
        out = list(range(next_vertex, next_vertex + k))
        next_vertex += k
        return out

    hypergraph.add_edge("e0", fresh(rng.randint(2, 3)))
    for i in range(1, rng.randint(2, max_edges)):
        host = rng.choice(hypergraph.edge_sets())
        shared = rng.sample(sorted(host), rng.randint(1, min(2, len(host))))
        hypergraph.add_edge(f"e{i}", shared + fresh(rng.randint(1, 2)))
    return hypergraph


def random_near_acyclic_hypergraph(seed: int) -> Hypergraph:
    """An acyclic instance plus one or two random binary chords."""
    rng = random.Random(f"near-acyclic-{seed}")
    hypergraph = random_acyclic_hypergraph(seed)
    vertices = sorted(hypergraph.vertices())
    if len(vertices) >= 3:
        for i in range(rng.randint(1, 2)):
            u, v = rng.sample(vertices, 2)
            try:
                hypergraph.add_edge(f"chord{i}", {u, v})
            except ValueError:  # pragma: no cover - duplicate name impossible
                pass
    return hypergraph


def bench_hypergraph(seed: int) -> Hypergraph:
    """A small member of the named thesis/HyperBench generator families."""
    rng = random.Random(f"bench-{seed}")
    shape = rng.choice(("adder", "bridge", "clique", "grid", "circuit"))
    if shape == "adder":
        return adder(rng.randint(1, 3))
    if shape == "bridge":
        return bridge(rng.randint(1, 4))
    if shape == "clique":
        return clique_hypergraph(rng.randint(3, 6))
    if shape == "grid":
        return grid2d(rng.randint(2, 3), rng.randint(2, 3))
    return random_circuit(rng.randint(2, 4), rng.randint(4, 8), seed=seed)


_GENERATORS = {
    "primal": random_primal_hypergraph,
    "uniform": random_uniform_hypergraph,
    "acyclic": random_acyclic_hypergraph,
    "near-acyclic": random_near_acyclic_hypergraph,
    "bench": bench_hypergraph,
}


def generate_instance(
    seed: int, families: tuple[str, ...] = FAMILIES
) -> VerifyInstance:
    """The conformance instance for ``seed``: family cycles with the seed."""
    unknown = [f for f in families if f not in _GENERATORS]
    if unknown:
        raise ValueError(
            f"unknown families {unknown}; choose from {list(FAMILIES)}"
        )
    family = families[seed % len(families)]
    hypergraph = _GENERATORS[family](seed)
    return VerifyInstance(
        name=f"verify-{family}-{seed}",
        family=family,
        seed=seed,
        hypergraph=hypergraph,
    )
