"""Delta-debugging shrinker for divergent instances.

A conformance divergence on a 9-vertex random instance is real evidence
but a poor regression test: half the structure is noise. This module
minimises the instance while the caller-supplied predicate ("the matrix
still diverges on this hypergraph") keeps holding — classic ddmin over
the hyperedges first, then greedy removal of individual vertices — and
emits the minimal instance as a ready-to-commit pytest file.

The predicate is treated as expensive (it re-runs solver cells), so
results are memoised by the hypergraph's edge structure and the total
number of predicate evaluations is capped.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.hypergraphs.hypergraph import EdgeName, Hypergraph
from repro.verify.conformance import Divergence


def subhypergraph(
    hypergraph: Hypergraph, edge_names: list[EdgeName]
) -> Hypergraph:
    """The hypergraph induced by a subset of hyperedges.

    Vertices are the union of the kept edges — vertices left edge-less
    by the restriction are dropped, since ghw (and the ``.hg`` format)
    are only defined for covered vertices.
    """
    edges = hypergraph.edges()
    return Hypergraph({name: edges[name] for name in edge_names})


class _Oracle:
    """Memoised, budgeted wrapper around the interestingness predicate."""

    def __init__(self, predicate, max_checks: int) -> None:
        self._predicate = predicate
        self._budget = max_checks
        self._cache: dict[frozenset, bool] = {}

    def __call__(self, hypergraph: Hypergraph) -> bool:
        if hypergraph.num_edges() == 0:
            return False
        key = frozenset(hypergraph.edges().items())
        if key in self._cache:
            return self._cache[key]
        if self._budget <= 0:
            return False
        self._budget -= 1
        try:
            verdict = bool(self._predicate(hypergraph))
        except Exception:
            # A predicate that crashes on a candidate cannot vouch for
            # it; treat the candidate as uninteresting so the shrinker
            # only ever returns instances the predicate accepted.
            verdict = False
        self._cache[key] = verdict
        return verdict


def _ddmin_edges(
    hypergraph: Hypergraph, oracle: _Oracle
) -> Hypergraph:
    """Zeller-style ddmin over the hyperedge list."""
    names = sorted(hypergraph.edge_names(), key=str)
    granularity = 2
    while len(names) >= 2:
        chunk = max(1, len(names) // granularity)
        chunks = [
            names[i : i + chunk] for i in range(0, len(names), chunk)
        ]
        reduced = False
        for index in range(len(chunks)):
            complement = [
                name
                for j, piece in enumerate(chunks)
                for name in piece
                if j != index
            ]
            if complement and oracle(subhypergraph(hypergraph, complement)):
                names = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(names):
                break
            granularity = min(len(names), granularity * 2)
    return subhypergraph(hypergraph, names)


def _drop_vertices(
    hypergraph: Hypergraph, oracle: _Oracle
) -> Hypergraph:
    """Greedy one-vertex-at-a-time removal (edges shrink, may vanish)."""
    changed = True
    while changed:
        changed = False
        for vertex in sorted(hypergraph.vertices(), key=repr):
            keep = hypergraph.vertices() - {vertex}
            if not keep:
                continue
            candidate = hypergraph.restrict(keep)
            # restrict() keeps now-isolated vertices; rebuild from the
            # surviving edges so every vertex stays covered.
            candidate = subhypergraph(candidate, candidate.edge_names())
            if candidate.num_edges() and oracle(candidate):
                hypergraph = candidate
                changed = True
                break
    return hypergraph


def shrink_hypergraph(
    hypergraph: Hypergraph, predicate, max_checks: int = 400
) -> Hypergraph:
    """Minimise ``hypergraph`` while ``predicate`` stays true.

    ``predicate(candidate) -> bool`` must be true for the input itself;
    the returned hypergraph satisfies it too and is 1-minimal up to the
    evaluation budget (no single removed hyperedge or vertex can be
    dropped while keeping the predicate true).
    """
    oracle = _Oracle(predicate, max_checks)
    if not oracle(hypergraph):
        raise ValueError(
            "predicate is false on the unshrunk instance; nothing to "
            "minimise"
        )
    shrunk = _ddmin_edges(hypergraph, oracle)
    shrunk = _drop_vertices(shrunk, oracle)
    return shrunk


# ----------------------------------------------------------------------
# regression emission
# ----------------------------------------------------------------------

_SLUG_UNSAFE = re.compile(r"[^a-z0-9_]+")


def _slug(text: str) -> str:
    return _SLUG_UNSAFE.sub("_", text.lower()).strip("_") or "divergence"


def _edges_literal(hypergraph: Hypergraph) -> str:
    lines = ["{"]
    for name, edge in sorted(hypergraph.edges().items(), key=lambda kv: str(kv[0])):
        members = ", ".join(repr(v) for v in sorted(edge, key=repr))
        lines.append(f"        {name!r}: {{{members}}},")
    lines.append("    }")
    return "\n".join(lines)


def write_regression(
    hypergraph: Hypergraph,
    divergence: Divergence,
    directory: str | Path,
    portfolio: bool | None = None,
) -> Path:
    """Write a shrunk divergence as a pytest file under ``directory``.

    The emitted test embeds the minimised hypergraph as a literal and
    re-runs the full conformance matrix on it, asserting no divergence —
    exactly the check that failed before the underlying bug was fixed.
    """
    if portfolio is None:
        portfolio = divergence.kind.startswith("resume")
    slug = _slug(f"{divergence.kind}_{divergence.family}_{divergence.seed}")
    path = Path(directory) / f"test_shrunk_{slug}.py"
    cells = "+".join(divergence.cells)
    body = f'''"""Shrunk conformance regression: {divergence.kind} on
{divergence.instance} ({cells}).

{divergence.detail}

Generated by repro.verify.shrink from the minimised divergent instance;
the matrix must stay divergence-free on it.
"""

from repro.hypergraphs.hypergraph import Hypergraph
from repro.verify.conformance import check_hypergraph
from repro.verify.generators import VerifyInstance

HYPERGRAPH = Hypergraph(
    {_edges_literal(hypergraph)}
)


def test_shrunk_{slug}():
    instance = VerifyInstance(
        name={divergence.instance!r},
        family={divergence.family!r},
        seed={divergence.seed!r},
        hypergraph=HYPERGRAPH,
    )
    verdict = check_hypergraph(instance, portfolio={portfolio!r})
    assert verdict.ok, [str(d) for d in verdict.divergences]
'''
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(body)
    return path
