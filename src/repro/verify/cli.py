"""The ``repro-decompose verify`` subcommand.

Runs the differential conformance matrix over seeded generated
instances, certifies every reported width against a validated witness
decomposition, prints a verdict per instance, and — when divergences
are found — delta-debugs each one down to a minimal instance and emits
it as a ready-to-commit regression test.

Exit codes: 0 when every cell certifies and no conformance relation is
violated, 1 on any divergence, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.verify.conformance import (
    MEASURES,
    CellSpec,
    ConformanceReport,
    Divergence,
    InstanceVerdict,
    check_hypergraph,
    default_matrix,
    run_conformance,
)
from repro.verify.generators import FAMILIES, VerifyInstance
from repro.verify.shrink import shrink_hypergraph, write_regression


def build_verify_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-decompose verify",
        description=(
            "Differential conformance: run every solver family across "
            "backends and execution modes on seeded random instances, "
            "certify every claimed width with a validated witness, and "
            "shrink any divergence to a minimal regression test."
        ),
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=20,
        metavar="N",
        help="number of generated instances (seeds 0..N-1)",
    )
    parser.add_argument(
        "--families",
        default=",".join(FAMILIES),
        metavar="LIST",
        help=f"comma-separated instance families (default: all of "
        f"{','.join(FAMILIES)})",
    )
    parser.add_argument(
        "--measures",
        default=",".join(MEASURES),
        metavar="LIST",
        help="width measures to cross-check (tw, ghw or both)",
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        default=10.0,
        metavar="S",
        help="per-cell solver budget in seconds",
    )
    parser.add_argument(
        "--no-portfolio",
        action="store_true",
        help="skip the fresh/killed/resumed portfolio cells",
    )
    parser.add_argument(
        "--shrink-dir",
        default=None,
        metavar="DIR",
        help=(
            "minimise each divergent instance and write a pytest "
            "regression file per divergence kind into DIR"
        ),
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="write the full conformance report as JSON",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="only print the final summary line",
    )
    return parser


def _shrink_and_emit(
    verdict: InstanceVerdict,
    divergence: Divergence,
    matrix: list[CellSpec],
    time_limit: float,
    directory: str,
) -> str:
    """Minimise the instance behind one divergence, emit the regression.

    The interestingness predicate is "the matrix (restricted to the
    divergence's measure) still produces a divergence of the same kind"
    — so the shrinker cannot wander off onto an unrelated failure.
    """
    instance = verdict.instance
    measure_matrix = [c for c in matrix if c.measure == divergence.measure]
    use_portfolio = divergence.kind.startswith("resume")

    def predicate(hypergraph) -> bool:
        candidate = VerifyInstance(
            name=instance.name,
            family=instance.family,
            seed=instance.seed,
            hypergraph=hypergraph,
        )
        shrunk_verdict = check_hypergraph(
            candidate,
            matrix=measure_matrix,
            time_limit=time_limit,
            portfolio=use_portfolio,
        )
        return any(
            d.kind == divergence.kind for d in shrunk_verdict.divergences
        )

    shrunk = shrink_hypergraph(instance.hypergraph, predicate)
    path = write_regression(
        shrunk, divergence, directory, portfolio=use_portfolio
    )
    return str(path)


def main_verify(argv: list[str]) -> int:
    args = build_verify_parser().parse_args(argv)
    if args.seeds < 1:
        print("error: --seeds must be >= 1", file=sys.stderr)
        return 2
    families = tuple(
        token.strip() for token in args.families.split(",") if token.strip()
    )
    measures = tuple(
        token.strip() for token in args.measures.split(",") if token.strip()
    )
    unknown = [f for f in families if f not in FAMILIES]
    if unknown or not families:
        print(
            f"error: unknown families {unknown or families}; choose from "
            f"{list(FAMILIES)}",
            file=sys.stderr,
        )
        return 2
    bad_measures = [m for m in measures if m not in MEASURES]
    if bad_measures or not measures:
        print(
            f"error: unknown measures {bad_measures or measures}; choose "
            f"from {list(MEASURES)}",
            file=sys.stderr,
        )
        return 2

    matrix = default_matrix(measures=measures)

    def progress(verdict: InstanceVerdict) -> None:
        if args.quiet:
            return
        instance = verdict.instance
        certified = sum(1 for c in verdict.cells if c.certified)
        status = "ok" if verdict.ok else "DIVERGES"
        print(
            f"{instance.name:<28} |V|={instance.hypergraph.num_vertices():<3}"
            f" |H|={instance.hypergraph.num_edges():<3} "
            f"cells={len(verdict.cells)} certified={certified} {status}"
        )
        for divergence in verdict.divergences:
            print(f"  !! {divergence}")

    report: ConformanceReport = run_conformance(
        seeds=args.seeds,
        families=families,
        matrix=matrix,
        time_limit=args.time_limit,
        portfolio=not args.no_portfolio,
        progress=progress,
    )

    if args.shrink_dir and report.divergences:
        emitted: set[tuple[str, str]] = set()
        for verdict in report.verdicts:
            for divergence in verdict.divergences:
                key = (divergence.measure, divergence.kind)
                if key in emitted:
                    continue  # one minimal regression per relation kind
                emitted.add(key)
                try:
                    path = _shrink_and_emit(
                        verdict,
                        divergence,
                        matrix,
                        args.time_limit,
                        args.shrink_dir,
                    )
                    print(f"shrunk {divergence.kind} -> {path}")
                except ValueError as exc:
                    print(
                        f"could not shrink {divergence.kind}: {exc}",
                        file=sys.stderr,
                    )

    if args.json_out:
        try:
            with open(args.json_out, "w") as handle:
                json.dump(report.to_dict(), handle, indent=2)
        except OSError as exc:
            print(f"error: cannot write report: {exc}", file=sys.stderr)
            return 2

    print(report.summary())
    return 0 if report.ok else 1
