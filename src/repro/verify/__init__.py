"""Differential conformance testing and witness certification.

Six solver families x two compute backends x serial/parallel/portfolio/
resume execution paths all claim widths on the same instances; nothing
short of cross-checking them against each other (and certifying every
claim with a validated witness decomposition) catches a silent
regression in one path. This package is that cross-check:

* :mod:`repro.verify.generators` — seeded random instance generators
  (primal-graph families, uniform CSP hypergraphs, alpha-acyclic and
  near-acyclic families, HyperBench-style shapes);
* :mod:`repro.verify.certify` — witness certification: rebuild the
  decomposition a claim's ordering induces, ``validate`` it, complete
  it, and compare its width against the claim;
* :mod:`repro.verify.conformance` — the matrix runner: every solver
  family, both backends, ``jobs=1`` vs ``jobs=2``, fresh vs
  kill-and-resume portfolio races, with cross-cell divergence checks;
* :mod:`repro.verify.shrink` — a delta-debugging shrinker that
  minimises any divergent instance and emits it as a ready-to-commit
  regression test.

Entry point: ``repro-decompose verify`` (see :mod:`repro.verify.cli`).
"""

from repro.verify.certify import (
    Certification,
    certify_ghw_witness,
    certify_tw_witness,
)
from repro.verify.conformance import (
    CellResult,
    CellSpec,
    ConformanceReport,
    Divergence,
    InstanceVerdict,
    check_hypergraph,
    default_matrix,
    run_conformance,
)
from repro.verify.generators import (
    FAMILIES,
    VerifyInstance,
    generate_instance,
)
from repro.verify.shrink import shrink_hypergraph, write_regression

__all__ = [
    "Certification",
    "CellResult",
    "CellSpec",
    "ConformanceReport",
    "Divergence",
    "FAMILIES",
    "InstanceVerdict",
    "VerifyInstance",
    "certify_ghw_witness",
    "certify_tw_witness",
    "check_hypergraph",
    "default_matrix",
    "generate_instance",
    "run_conformance",
    "shrink_hypergraph",
    "write_regression",
]
