"""Witness certification: no width claim is trusted without a validated
decomposition achieving it.

HyperBench validates every decomposition it reports and det-k-decomp
ships witness decompositions precisely so answers are checkable; every
solver in this library reports the elimination ordering behind its best
width, which is a complete witness — this module rebuilds the
decomposition the ordering induces and checks the claim against it.

For treewidth the rebuilt tree decomposition's width must *equal* the
claim: every tw evaluator in the library (python and bitset) is
deterministic, so a mismatch means a solver reported a width its own
witness does not achieve. For ghw the certified width must be *at most*
the claim: the python GA evaluates with randomised greedy covers, so a
deterministic re-cover may pick different hyperedges — but exact covers
minimise per bag, hence certify any sound claim (and expose unsound
ones: a claim below the witness's exact-cover width is uncertifiable).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.decompositions.elimination import (
    ordering_to_ghd,
    ordering_to_tree_decomposition,
)
from repro.decompositions.ghd import exact_cover_width, make_complete
from repro.decompositions.tree_decomposition import DecompositionError
from repro.hypergraphs.graph import Graph, Vertex
from repro.hypergraphs.hypergraph import Hypergraph


@dataclass
class Certification:
    """Outcome of checking one width claim against its witness."""

    ok: bool
    witness_width: int | None = None
    """Width the rebuilt decomposition actually achieves."""

    reason: str | None = None
    """Why certification failed (``None`` when ``ok``)."""

    def __bool__(self) -> bool:
        return self.ok


def _fail(reason: str) -> Certification:
    return Certification(ok=False, reason=reason)


def certify_tw_witness(
    graph: Graph,
    ordering: list[Vertex],
    claimed_upper: int,
    strict: bool = True,
) -> Certification:
    """Certify a treewidth upper-bound claim with its ordering witness.

    Builds the bucket-elimination tree decomposition, validates the
    three tree-decomposition conditions, and compares widths. With
    ``strict`` (the default) the witness width must equal the claim;
    otherwise it may also be smaller.
    """
    if not ordering:
        return _fail("claim carries no witness ordering")
    try:
        decomposition = ordering_to_tree_decomposition(graph, ordering)
        decomposition.validate(graph)
    except (DecompositionError, ValueError, KeyError) as error:
        return _fail(f"witness does not validate: {error}")
    width = decomposition.width()
    if width > claimed_upper:
        return Certification(
            ok=False,
            witness_width=width,
            reason=(
                f"witness achieves width {width}, worse than the "
                f"claimed {claimed_upper}"
            ),
        )
    if strict and width != claimed_upper:
        return Certification(
            ok=False,
            witness_width=width,
            reason=(
                f"witness achieves width {width} but the solver "
                f"claimed {claimed_upper} (deterministic evaluators "
                "must agree exactly)"
            ),
        )
    return Certification(ok=True, witness_width=width)


def certify_ghw_witness(
    hypergraph: Hypergraph,
    ordering: list[Vertex],
    claimed_upper: int,
    strict: bool = False,
) -> Certification:
    """Certify a ghw upper-bound claim with its ordering witness.

    Rebuilds the GHD with *exact* per-bag covers (sound against any
    greedy tie-break randomisation in the claiming solver), validates
    Definition 13, completes it per Lemma 2, re-validates, checks
    Definition 14 completeness, and checks ``exact_cover_width``
    agreement with the rebuilt covers. With ``strict`` the certified
    width must equal the claim (right for the exact searches, whose
    incumbents are evaluated with exact covers); without it the witness
    may beat the claim (heuristics cover greedily, so their claims may
    exceed the exact-cover width of their own ordering).
    """
    if not ordering:
        return _fail("claim carries no witness ordering")
    try:
        ghd = ordering_to_ghd(hypergraph, ordering, cover="exact")
        ghd.validate(hypergraph)
        complete = make_complete(ghd, hypergraph)
        complete.validate(hypergraph)
    except (DecompositionError, ValueError, KeyError) as error:
        return _fail(f"witness does not validate: {error}")
    if not complete.is_complete(hypergraph):
        return _fail("completed witness fails Definition 14 completeness")
    width = ghd.width()
    if complete.width() != width:
        return Certification(
            ok=False,
            witness_width=width,
            reason=(
                f"completion changed the width ({width} -> "
                f"{complete.width()}); Lemma 2 must preserve it"
            ),
        )
    recovered = exact_cover_width(ghd, hypergraph)
    if recovered != width:
        return Certification(
            ok=False,
            witness_width=width,
            reason=(
                f"exact_cover_width recomputes {recovered} for a GHD of "
                f"width {width}; exact covers must agree"
            ),
        )
    if width > claimed_upper:
        return Certification(
            ok=False,
            witness_width=width,
            reason=(
                f"witness achieves width {width}, worse than the "
                f"claimed {claimed_upper}"
            ),
        )
    if strict and width != claimed_upper:
        return Certification(
            ok=False,
            witness_width=width,
            reason=(
                f"witness achieves width {width} but the solver "
                f"claimed {claimed_upper} (exact-cover evaluators "
                "must agree exactly)"
            ),
        )
    return Certification(ok=True, witness_width=width)
