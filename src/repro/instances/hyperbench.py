"""HyperBench ``.hg`` hypergraph files.

HyperBench (hyperbench.dbai.tuwien.ac.at) distributes the CQ/CSP
benchmark instances the decomposition literature evaluates on as ``.hg``
files: a sequence of named hyperedges

::

    % optional comments
    edge1 (v1, v2, v3),
    edge2 (v3, v4,
           v5),
    edge3 (v5, v1).

separated by commas and terminated by a period. Edges routinely span
multiple lines, so the parser tokenises the whole file instead of going
line by line. For convenience it also accepts the lax one-edge-per-line
dialect of :mod:`repro.hypergraphs.io` (no separators, no terminator).

Vertex and edge names keep their spelling; vertices are strings.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.io import FormatError

#: Names may contain interior dots (``c1.x``); a standalone ``.`` is the
#: end-of-file terminator.
_TOKEN = re.compile(r"[A-Za-z0-9_\-:$]+(?:\.[A-Za-z0-9_\-:$]+)*|[(),.]")

_COMMENT = re.compile(r"%.*|//.*|#.*")


def _tokenize(text: str) -> list[tuple[str, int]]:
    """``(token, line_number)`` pairs with comments stripped."""
    tokens: list[tuple[str, int]] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = _COMMENT.sub("", raw)
        chars = list(line)
        for match in _TOKEN.finditer(line):
            tokens.append((match.group(), line_number))
            for i in range(*match.span()):
                chars[i] = " "
        rest = "".join(chars).strip()
        if rest:
            raise FormatError(
                f"line {line_number}: unexpected characters {rest!r}"
            )
    return tokens


def parse_hg(text: str) -> Hypergraph:
    """Parse HyperBench ``.hg`` text into a :class:`Hypergraph`."""
    tokens = _tokenize(text)
    hypergraph = Hypergraph()
    position = 0

    def expect(kind: str) -> tuple[str, int]:
        nonlocal position
        if position >= len(tokens):
            raise FormatError(f"unexpected end of file, expected {kind}")
        token, line = tokens[position]
        position += 1
        if kind == "name":
            if token in "(),.":
                raise FormatError(
                    f"line {line}: expected a name, got {token!r}"
                )
        elif token != kind:
            raise FormatError(
                f"line {line}: expected {kind!r}, got {token!r}"
            )
        return token, line

    while position < len(tokens):
        token, line = tokens[position]
        if token == ".":  # file terminator; anything after it is junk
            position += 1
            if position < len(tokens):
                extra, extra_line = tokens[position]
                raise FormatError(
                    f"line {extra_line}: trailing content {extra!r} "
                    "after final period"
                )
            break
        name, line = expect("name")
        expect("(")
        members: list[str] = []
        while True:
            vertex, _ = expect("name")
            members.append(vertex)
            token, _ = tokens[position] if position < len(tokens) else ("", 0)
            if token == ",":
                position += 1
                continue
            expect(")")
            break
        try:
            hypergraph.add_edge(name, members)
        except ValueError as exc:
            raise FormatError(f"line {line}: {exc}") from exc
        # after an edge: ',' continues, '.' ends, a bare name starts the
        # next edge (the lax line-per-edge dialect)
        if position < len(tokens) and tokens[position][0] == ",":
            position += 1
    if hypergraph.num_edges() == 0:
        raise FormatError("no hyperedges found")
    return hypergraph


_UNSAFE = re.compile(r"[^A-Za-z0-9_\-:$.]")
_DOT_RUNS = re.compile(r"\.\.+")


def _safe_names(values) -> dict:
    """Deterministic ``value -> .hg token`` mapping.

    Generated instances use tuple vertices (``(0, 1)``); their ``str``
    forms contain parentheses and commas, so unsafe characters are
    replaced by underscores. Interior dots are part of the token grammar
    (``c1.x``) and survive; leading, trailing and consecutive dots would
    break tokenization and are stripped or collapsed. Collisions (two
    values mangling to the same token) are refused rather than silently
    merged.
    """
    mapping: dict = {}
    taken: dict[str, object] = {}
    for value in sorted(values, key=str):
        token = _DOT_RUNS.sub(".", _UNSAFE.sub("_", str(value))).strip(".") or "v"
        if token in taken and taken[token] != value:
            raise FormatError(
                f"names {taken[token]!r} and {value!r} both map to "
                f"{token!r}; relabel the hypergraph first"
            )
        taken[token] = value
        mapping[value] = token
    return mapping


def format_hg(hypergraph: Hypergraph) -> str:
    """Render a hypergraph as canonical ``.hg`` text.

    Edges are sorted by name and vertices by spelling, so the output is
    deterministic and diffs cleanly; a parse -> format round trip on
    ``.hg``-safe names is a fixed point.
    """
    edges = hypergraph.edges()
    covered: set = set()
    for edge in edges.values():
        covered |= edge
    isolated = hypergraph.vertices() - covered
    if isolated:
        # ``.hg`` has no syntax for edge-less vertices; writing them would
        # silently drop them on the next parse. Refuse instead.
        raise FormatError(
            "cannot express isolated vertices in .hg: "
            f"{sorted(map(repr, isolated))}"
        )
    lines = [
        f"% {hypergraph.num_vertices()} vertices, "
        f"{hypergraph.num_edges()} hyperedges"
    ]
    edge_names = _safe_names(edges.keys())
    vertex_names = _safe_names(hypergraph.vertices())
    ordered = sorted(edges.items(), key=lambda kv: edge_names[kv[0]])
    for index, (name, edge) in enumerate(ordered):
        members = ",".join(sorted(vertex_names[v] for v in edge))
        separator = "." if index == len(ordered) - 1 else ","
        lines.append(f"{edge_names[name]}({members}){separator}")
    return "\n".join(lines) + "\n"


def read_hg(path: str | Path) -> Hypergraph:
    return parse_hg(Path(path).read_text())


def write_hg(hypergraph: Hypergraph, path: str | Path) -> None:
    Path(path).write_text(format_hg(hypergraph))
