"""Benchmark instance generators and the named registry."""

from repro.instances.dimacs_like import (
    grid_graph,
    mycielski_graph,
    queen_graph,
    random_gnm,
    random_gnp,
)
from repro.instances.hypergraphs import (
    adder,
    bridge,
    clique_hypergraph,
    grid2d,
    grid3d,
    random_circuit,
    random_csp_hypergraph,
)
from repro.instances.hyperbench import (
    format_hg,
    parse_hg,
    read_hg,
    write_hg,
)
from repro.instances.registry import (
    graph_instance,
    hypergraph_instance,
    instance,
)

__all__ = [
    "adder",
    "bridge",
    "clique_hypergraph",
    "format_hg",
    "graph_instance",
    "grid2d",
    "grid3d",
    "grid_graph",
    "hypergraph_instance",
    "instance",
    "mycielski_graph",
    "parse_hg",
    "queen_graph",
    "random_circuit",
    "random_csp_hypergraph",
    "random_gnm",
    "random_gnp",
    "read_hg",
    "write_hg",
]
