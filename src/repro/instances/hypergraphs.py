"""Generators for the CSP-hypergraph-library instances of Tables 7.1-9.2.

The thesis evaluates its ghw algorithms on the CSP hypergraph library of
Ganzow/Gottlob/Musliu/Samer (adder/bridge circuits, cliques, grids, ISCAS
netlists, "NewSystem" industrial instances). The library is not available
offline; these generators reconstruct the families with public
constructions:

* :func:`adder` — an n-bit ripple-carry adder's constraint hypergraph:
  per bit, a sum constraint and a carry constraint chained through the
  carry variables. Its ghw is 2 for n >= 2 (the chain of
  {sum_i, carry_i} bags), matching the library's adder_* optimum.
* :func:`bridge` — n bridged parallel paths between two terminals, the
  "bridge_n" circuit family (ghw small and constant).
* :func:`clique_hypergraph` — K_n as a hypergraph of binary edges;
  covering the single bag of size n takes ceil(n/2) pairs, so
  ghw(clique_n) = ceil(n/2), matching Table 7.1's clique_20 ~ 10.
* :func:`grid2d` / :func:`grid3d` — grid graphs as binary-edge
  hypergraphs (ghw ~ half the treewidth, as in the thesis tables).
* :func:`random_circuit` — a seeded synthetic combinational circuit
  (DAG of gates; one hyperedge per gate over its inputs and output),
  substituting for the ISCAS netlists b06...c880 with matching
  vertex/edge counts.
* :func:`random_csp_hypergraph` — k-uniform random constraint scopes,
  a generic workload for property tests and ablations.
"""

from __future__ import annotations

import random

from repro.hypergraphs.graph import Graph
from repro.hypergraphs.hypergraph import Hypergraph, from_graph
from repro.instances.dimacs_like import grid_graph


def adder(bits: int) -> Hypergraph:
    """The n-bit ripple-carry adder constraint hypergraph (gate level).

    Variables per bit: inputs ``a_i``, ``b_i``, the propagate signal
    ``p_i = a_i XOR b_i``, the sum output ``s_i`` and the carry ``c_i``
    — five per bit plus the initial carry ``c_0``, matching the CSP
    hypergraph library's 5n + 1 vertex count for adder_n. Constraints
    per bit: ``xor1_i = {a, b, p}``, ``xor2_i = {p, c_(i-1), s}`` and the
    majority carry ``maj_i = {a, b, c_(i-1), c_i}``.

    Unlike a naive two-constraint-per-bit model this gate decomposition
    is *cyclic* (GYO gets stuck on the a/b/p / p-c-s / a-b-c triangle of
    scopes), so its ghw is 2 for every ``bits >= 1`` — the value the
    thesis reports as the best known upper bound for the adder family.
    (The library uses 7 constraints per bit; ours uses 3 with the same
    chain-of-cyclic-blocks structure, which is what the algorithms
    exercise.)
    """
    if bits < 1:
        raise ValueError("adder needs at least one bit")
    hypergraph = Hypergraph()
    for i in range(1, bits + 1):
        carry_in = f"c{i - 1}"
        hypergraph.add_edge(f"xor1_{i}", {f"a{i}", f"b{i}", f"p{i}"})
        hypergraph.add_edge(f"xor2_{i}", {f"p{i}", carry_in, f"s{i}"})
        hypergraph.add_edge(
            f"maj_{i}", {f"a{i}", f"b{i}", carry_in, f"c{i}"}
        )
    return hypergraph


def bridge(spans: int) -> Hypergraph:
    """The bridge_n family: n parallel 2-edge paths between terminals,
    with a "bridge" constraint tying consecutive midpoints together.

    Vertices: terminals ``s``, ``t``; midpoints ``m_1 .. m_n``.
    Hyperedges: ``left_i = {s, m_i}``, ``right_i = {m_i, t}`` and
    ``bridge_i = {m_i, m_(i+1)}``.
    """
    if spans < 1:
        raise ValueError("bridge needs at least one span")
    hypergraph = Hypergraph()
    for i in range(1, spans + 1):
        hypergraph.add_edge(f"left_{i}", {"s", f"m{i}"})
        hypergraph.add_edge(f"right_{i}", {f"m{i}", "t"})
        if i < spans:
            hypergraph.add_edge(f"bridge_{i}", {f"m{i}", f"m{i + 1}"})
    return hypergraph


def clique_hypergraph(n: int) -> Hypergraph:
    """clique_n: the complete graph K_n as a binary-edge hypergraph.

    Every tree decomposition has a bag containing all n vertices, and
    covering n vertices with pair-edges needs ceil(n/2) of them, so
    ghw = ceil(n/2).
    """
    if n < 2:
        raise ValueError("clique hypergraph needs n >= 2")
    graph = Graph(vertices=range(n))
    graph.add_clique(range(n))
    return from_graph(graph)


def grid2d(rows: int, cols: int | None = None) -> Hypergraph:
    """grid2d_n: the rows x cols grid as a binary-edge hypergraph."""
    return from_graph(grid_graph(rows, cols))


def grid3d(nx: int, ny: int | None = None, nz: int | None = None) -> Hypergraph:
    """grid3d_n: a 3-dimensional grid as a binary-edge hypergraph."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be >= 1")
    graph = Graph(
        vertices=[
            (x, y, z) for x in range(nx) for y in range(ny) for z in range(nz)
        ]
    )
    for x in range(nx):
        for y in range(ny):
            for z in range(nz):
                if x + 1 < nx:
                    graph.add_edge((x, y, z), (x + 1, y, z))
                if y + 1 < ny:
                    graph.add_edge((x, y, z), (x, y + 1, z))
                if z + 1 < nz:
                    graph.add_edge((x, y, z), (x, y, z + 1))
    return from_graph(graph)


def random_circuit(
    inputs: int,
    gates: int,
    max_fanin: int = 3,
    seed: int = 0,
) -> Hypergraph:
    """A seeded synthetic combinational circuit hypergraph.

    Substitutes for the ISCAS netlists (b06 ... c880): a DAG of ``gates``
    gates is grown over ``inputs`` primary inputs; each gate reads 2 to
    ``max_fanin`` earlier signals and writes one new signal, and each
    gate contributes one hyperedge over its inputs plus output — exactly
    how circuit CSPs are encoded in the library. Circuit hypergraphs are
    sparse with small edges and moderate ghw, which is the property the
    thesis's tables exercise.
    """
    if inputs < 2:
        raise ValueError("circuit needs at least two primary inputs")
    if max_fanin < 2:
        raise ValueError("gates need fan-in of at least two")
    rng = random.Random(seed)
    signals = [f"in{i}" for i in range(inputs)]
    unused_inputs = list(signals)
    hypergraph = Hypergraph(vertices=signals)
    for g in range(gates):
        fanin = rng.randint(2, max_fanin)
        if unused_inputs:
            # Drain the primary inputs first so every vertex ends up in
            # at least one hyperedge (ghw is undefined otherwise). One
            # slot is reserved for an already-produced signal so the
            # netlist stays connected.
            take = fanin if g == 0 else fanin - 1
            sources = unused_inputs[:take]
            del unused_inputs[: len(sources)]
            if g > 0:
                sources.append(f"g{g - 1}")
            if len(sources) < 2:
                sources.append(
                    rng.choice([s for s in signals if s not in sources])
                )
        else:
            # Bias the picks toward recent signals so depth grows and the
            # hypergraph is connected, like a real netlist.
            window = signals[-(4 * max_fanin) :]
            sources = rng.sample(window, min(fanin, len(window)))
        output = f"g{g}"
        hypergraph.add_edge(f"gate_{g}", set(sources) | {output})
        signals.append(output)
    if unused_inputs:
        raise ValueError(
            f"{gates} gates cannot consume {inputs} primary inputs; "
            "increase gates or max_fanin"
        )
    return hypergraph


def random_csp_hypergraph(
    variables: int,
    constraints: int,
    arity: int = 3,
    seed: int = 0,
) -> Hypergraph:
    """Random ``arity``-uniform constraint scopes over ``variables``.

    Guaranteed to mention every variable at least once (isolated
    variables would make ghw undefined) by seeding the first edges with
    a covering design before sampling freely.
    """
    if arity < 2 or arity > variables:
        raise ValueError("arity must be in [2, variables]")
    rng = random.Random(seed)
    names = [f"x{i}" for i in range(variables)]
    hypergraph = Hypergraph()
    count = 0
    # Cover all variables first (chained windows).
    position = 0
    while position < variables:
        window = names[position : position + arity]
        if len(window) < arity:
            window = names[-arity:]
        hypergraph.add_edge(f"c{count}", set(window))
        count += 1
        position += arity - 1 if arity > 1 else 1
    while count < constraints:
        scope = rng.sample(names, arity)
        try:
            hypergraph.add_edge(f"c{count}", set(scope))
        except ValueError:  # pragma: no cover - duplicate names impossible
            pass
        count += 1
    return hypergraph
