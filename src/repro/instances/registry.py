"""A named registry of benchmark instances.

Maps thesis instance names (``queen5_5``, ``myciel4``, ``adder_15``,
``grid2d_6`` ...) to generated graphs/hypergraphs, so tests, benches and
the CLI can refer to workloads the way the thesis tables do. Random
substitutes take their seed from the instance name, making every lookup
reproducible.

``graph_instance``/``hypergraph_instance`` parse parameterised names, so
any size is addressable (e.g. ``queen9_9``, ``adder_200``), not just the
sizes the thesis happened to print.
"""

from __future__ import annotations

import re

from repro.hypergraphs.graph import Graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.instances.dimacs_like import (
    grid_graph,
    mycielski_graph,
    queen_graph,
    random_gnm,
    random_gnp,
)
from repro.instances.hypergraphs import (
    adder,
    bridge,
    clique_hypergraph,
    grid2d,
    grid3d,
    random_circuit,
)

#: DIMACS graphs with no public construction, simulated by G(n, m) with
#: the published vertex/edge counts (Table 5.1 / 6.6 metadata).
SIMULATED_DIMACS: dict[str, tuple[int, int]] = {
    "anna": (138, 986),
    "david": (87, 812),
    "huck": (74, 602),
    "jean": (80, 508),
    "homer": (561, 3258),
    "games120": (120, 1276),
    "miles250": (128, 774),
    "miles500": (128, 2340),
    "miles750": (128, 4226),
    "miles1000": (128, 6432),
    "miles1500": (128, 10396),
    "mulsol.i.1": (197, 3925),
    "zeroin.i.1": (211, 4100),
    "school1": (385, 19095),
    "le450_5a": (450, 5714),
}

#: ISCAS-style circuits simulated with matching vertex/edge counts.
SIMULATED_CIRCUITS: dict[str, tuple[int, int]] = {
    # name -> (primary inputs, gates); |V| = inputs + gates, |H| = gates.
    "b06": (8, 40),
    "b08": (30, 140),
    "b09": (29, 139),
    "b10": (28, 161),
    "c499": (41, 202),
    "c880": (60, 323),
}


def _seed_from_name(name: str) -> int:
    return sum(ord(ch) for ch in name)


def graph_instance(name: str) -> Graph:
    """Resolve a DIMACS-style instance name to a graph."""
    queen = re.fullmatch(r"queen(\d+)_(\d+)", name)
    if queen:
        n, m = int(queen.group(1)), int(queen.group(2))
        if n != m:
            raise ValueError("only square queen boards are supported")
        return queen_graph(n)
    myciel = re.fullmatch(r"myciel(\d+)", name)
    if myciel:
        return mycielski_graph(int(myciel.group(1)))
    grid = re.fullmatch(r"grid(\d+)", name)
    if grid:
        return grid_graph(int(grid.group(1)))
    dsjc = re.fullmatch(r"DSJC(\d+)\.(\d+)", name)
    if dsjc:
        n = int(dsjc.group(1))
        density = int(dsjc.group(2)) / 10.0
        return random_gnp(n, density, seed=_seed_from_name(name))
    if name in SIMULATED_DIMACS:
        n, m = SIMULATED_DIMACS[name]
        return random_gnm(n, m, seed=_seed_from_name(name))
    raise KeyError(f"unknown graph instance {name!r}")


def hypergraph_instance(name: str) -> Hypergraph:
    """Resolve a hypergraph-library instance name to a hypergraph."""
    for pattern, build in (
        (r"adder_(\d+)", lambda n: adder(n)),
        (r"bridge_(\d+)", lambda n: bridge(n)),
        (r"clique_(\d+)", lambda n: clique_hypergraph(n)),
        (r"grid2d_(\d+)", lambda n: grid2d(n)),
        (r"grid3d_(\d+)", lambda n: grid3d(n)),
    ):
        match = re.fullmatch(pattern, name)
        if match:
            return build(int(match.group(1)))
    if name in SIMULATED_CIRCUITS:
        inputs, gates = SIMULATED_CIRCUITS[name]
        return random_circuit(
            inputs, gates, seed=_seed_from_name(name)
        )
    raise KeyError(f"unknown hypergraph instance {name!r}")


def instance(name: str) -> Graph | Hypergraph:
    """Resolve either kind of instance name."""
    try:
        return graph_instance(name)
    except (KeyError, ValueError):
        pass
    return hypergraph_instance(name)
