"""Generators for the DIMACS-style graphs of Tables 5.1-6.6.

The thesis evaluates on the Second DIMACS graph-colouring benchmark. The
archive is not available offline, but several families are deterministic
constructions that we can regenerate *exactly*:

* ``queen n_n`` — the n x n queen graph (vertices are board squares,
  edges between squares a queen attacks); queen5_5 has 25 vertices and
  320 edge endpoints/2 = 160? No — DIMACS counts each direction, the
  thesis table lists 320 for queen5_5, i.e. directed edge count; our
  :func:`queen_graph` produces the 160 undirected edges of the same
  graph (the table's |E| column is reproduced as 2x our count).
* ``myciel k`` — iterated Mycielski construction starting from K2;
  triangle-free with chromatic number k+1; myciel3 = 11 vertices / 20
  edges exactly as in Table 5.1.
* ``grid n`` — the n x n grid, treewidth n (Table 5.2).

Random families (``DSJC n.d``) are Erdos-Renyi graphs by construction;
we regenerate them as seeded G(n, p). Named graphs without a public
construction (book graphs, register-allocation graphs) are *simulated*
by seeded G(n, m) with the published vertex/edge counts — shape-level
substitutes only, flagged in EXPERIMENTS.md.
"""

from __future__ import annotations

import random

from repro.hypergraphs.graph import Graph


def queen_graph(n: int) -> Graph:
    """The n x n queen graph (DIMACS ``queenN_N``)."""
    if n < 1:
        raise ValueError("board size must be >= 1")
    graph = Graph(vertices=[(r, c) for r in range(n) for c in range(n)])
    squares = list(graph.vertices())
    for i, (r1, c1) in enumerate(squares):
        for r2, c2 in squares[i + 1 :]:
            same_row = r1 == r2
            same_col = c1 == c2
            same_diag = abs(r1 - r2) == abs(c1 - c2)
            if same_row or same_col or same_diag:
                graph.add_edge((r1, c1), (r2, c2))
    return graph


def mycielski_graph(k: int) -> Graph:
    """DIMACS ``mycielK``: apply the Mycielski construction k - 2 times to K2.

    myciel3 is the Grötzsch-graph predecessor with 11 vertices; each step
    maps a graph with n vertices and m edges to one with 2n + 1 vertices
    and 3m + n edges.
    """
    if k < 2:
        raise ValueError("myciel index must be >= 2")
    graph = Graph(vertices=[0, 1], edges=[(0, 1)])
    # DIMACS indexing: mycielK applies the construction K - 1 times to K2
    # (myciel3 is the 11-vertex, 20-edge Grötzsch graph of Table 5.1).
    for _ in range(k - 1):
        graph = _mycielskian(graph)
    return graph


def _mycielskian(graph: Graph) -> Graph:
    vertices = sorted(graph.vertices())
    index = {vertex: i for i, vertex in enumerate(vertices)}
    n = len(vertices)
    result = Graph(vertices=range(2 * n + 1))
    for edge in graph.edges():
        u, v = sorted(edge)
        result.add_edge(index[u], index[v])
        result.add_edge(index[u], n + index[v])
        result.add_edge(index[v], n + index[u])
    for i in range(n):
        result.add_edge(n + i, 2 * n)
    return result


def grid_graph(rows: int, cols: int | None = None) -> Graph:
    """The rows x cols grid graph (treewidth min(rows, cols))."""
    if cols is None:
        cols = rows
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be >= 1")
    graph = Graph(
        vertices=[(r, c) for r in range(rows) for c in range(cols)]
    )
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1))
    return graph


def random_gnp(n: int, p: float, seed: int = 0) -> Graph:
    """Erdos-Renyi G(n, p), the DSJC-family model."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("edge probability must be in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def random_gnm(n: int, m: int, seed: int = 0) -> Graph:
    """A uniformly random graph with exactly ``m`` edges.

    Used to *simulate* DIMACS graphs that have no public construction:
    matching |V| and |E| preserves density, the main driver of width.
    """
    maximum = n * (n - 1) // 2
    if m > maximum:
        raise ValueError(f"cannot place {m} edges on {n} vertices")
    rng = random.Random(seed)
    graph = Graph(vertices=range(n))
    placed = 0
    while placed < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            placed += 1
    return graph
