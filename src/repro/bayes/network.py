"""Bayesian networks: moral graphs and junction-tree cost (Section 4.5).

The genetic algorithm the thesis builds on (Larrañaga et al.) was
designed to triangulate the *moral graph* of a Bayesian network — the
undirected graph obtained by marrying every variable's parents and
dropping edge directions. Exact inference runs on a *junction tree*,
which is precisely a tree decomposition of the moral graph; its cost is
the total clique-table size, the weighted objective implemented in
:mod:`repro.genetic.weighted`.

This module closes the loop: define a network (DAG + per-variable state
counts), moralise it, find a good elimination ordering with any of the
library's treewidth machinery, and report the junction tree plus its
inference cost.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.decompositions.elimination import (
    elimination_bags,
    ordering_to_tree_decomposition,
)
from repro.decompositions.tree_decomposition import TreeDecomposition
from repro.hypergraphs.graph import Graph, Vertex


class CycleError(ValueError):
    """Raised when the directed structure is not acyclic."""


@dataclass
class BayesianNetwork:
    """A DAG of variables with finite state counts."""

    states: dict[Vertex, int] = field(default_factory=dict)
    _parents: dict[Vertex, set[Vertex]] = field(default_factory=dict)

    # ------------------------------------------------------------------

    def add_variable(self, name: Vertex, states: int) -> None:
        if states < 1:
            raise ValueError(f"variable {name!r} needs at least one state")
        if name in self.states:
            raise ValueError(f"duplicate variable {name!r}")
        self.states[name] = states
        self._parents[name] = set()

    def add_edge(self, parent: Vertex, child: Vertex) -> None:
        """Directed edge ``parent -> child``; rejects cycles."""
        if parent not in self.states or child not in self.states:
            raise KeyError("both endpoints must be declared variables")
        if parent == child:
            raise CycleError(f"self-loop on {parent!r}")
        self._parents[child].add(parent)
        if self._has_cycle():
            self._parents[child].discard(parent)
            raise CycleError(
                f"edge {parent!r} -> {child!r} would create a cycle"
            )

    def parents(self, name: Vertex) -> set[Vertex]:
        return set(self._parents[name])

    def variables(self) -> list[Vertex]:
        return list(self.states)

    def _has_cycle(self) -> bool:
        indegree = {v: 0 for v in self.states}
        for child, parents in self._parents.items():
            indegree[child] += len(parents)
        children: dict[Vertex, list[Vertex]] = {v: [] for v in self.states}
        for child, parents in self._parents.items():
            for parent in parents:
                children[parent].append(child)
        frontier = [v for v, degree in indegree.items() if degree == 0]
        seen = 0
        while frontier:
            current = frontier.pop()
            seen += 1
            for child in children[current]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    frontier.append(child)
        return seen != len(self.states)

    # ------------------------------------------------------------------

    def moral_graph(self) -> Graph:
        """Marry each variable's parents, drop directions."""
        graph = Graph(vertices=self.states.keys())
        for child, parents in self._parents.items():
            family = [child] + sorted(parents, key=repr)
            graph.add_clique(family)
        return graph

    def family_table_size(self, name: Vertex) -> int:
        """Size of the CPT of ``name`` (its family's state product)."""
        size = self.states[name]
        for parent in self._parents[name]:
            size *= self.states[parent]
        return size


@dataclass
class JunctionTree:
    """A junction tree with its inference cost."""

    tree: TreeDecomposition
    ordering: list[Vertex]
    total_table_size: int
    log2_cost: float

    def width(self) -> int:
        return self.tree.width()


def junction_tree(
    network: BayesianNetwork,
    ordering: Iterable[Vertex] | None = None,
    seed: int = 0,
) -> JunctionTree:
    """Build a junction tree for ``network``.

    Without an explicit ordering, the weighted GA of Section 4.5 is run
    on the moral graph (minimising the log total table size). The result
    is a validated tree decomposition of the moral graph, annotated with
    the inference cost it implies.
    """
    moral = network.moral_graph()
    if ordering is None:
        from repro.genetic.engine import GAParameters
        from repro.genetic.weighted import ga_weighted_triangulation

        result = ga_weighted_triangulation(
            moral,
            network.states,
            parameters=GAParameters(population_size=20, max_iterations=25),
            seed=seed,
        )
        chosen = list(result.best_individual)
    else:
        chosen = list(ordering)
    tree = ordering_to_tree_decomposition(moral, chosen)
    tree.validate(moral)
    bags = elimination_bags(moral, chosen)
    total = 0
    for bag in bags.values():
        table = 1
        for vertex in bag:
            table *= network.states[vertex]
        total += table
    return JunctionTree(
        tree=tree,
        ordering=chosen,
        total_table_size=total,
        log2_cost=math.log2(total) if total else 0.0,
    )


def chain_network(length: int, states: int = 2) -> BayesianNetwork:
    """A Markov chain X1 -> X2 -> ... (junction tree of width 1)."""
    network = BayesianNetwork()
    for i in range(length):
        network.add_variable(f"X{i}", states)
    for i in range(length - 1):
        network.add_edge(f"X{i}", f"X{i + 1}")
    return network


def naive_bayes_network(
    features: int, class_states: int = 2, feature_states: int = 3
) -> BayesianNetwork:
    """A class variable pointing at every feature (moral graph = star)."""
    network = BayesianNetwork()
    network.add_variable("class", class_states)
    for i in range(features):
        network.add_variable(f"f{i}", feature_states)
        network.add_edge("class", f"f{i}")
    return network


def sprinkler_network() -> BayesianNetwork:
    """The textbook rain/sprinkler/wet-grass network.

    Moralisation marries Rain and Sprinkler (shared child WetGrass), so
    the moral graph is a diamond with a chord — treewidth 2.
    """
    network = BayesianNetwork()
    for name in ("cloudy", "sprinkler", "rain", "wet"):
        network.add_variable(name, 2)
    network.add_edge("cloudy", "sprinkler")
    network.add_edge("cloudy", "rain")
    network.add_edge("sprinkler", "wet")
    network.add_edge("rain", "wet")
    return network
