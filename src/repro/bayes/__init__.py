"""Bayesian networks: moral graphs and junction trees (Section 4.5)."""

from repro.bayes.network import (
    BayesianNetwork,
    CycleError,
    JunctionTree,
    chain_network,
    junction_tree,
    naive_bayes_network,
    sprinkler_network,
)

__all__ = [
    "BayesianNetwork",
    "CycleError",
    "JunctionTree",
    "chain_network",
    "junction_tree",
    "naive_bayes_network",
    "sprinkler_network",
]
