"""Local-search baselines: simulated annealing and tabu search.

These are the competitors the thesis's GA chapters measure against
(Section 4.5 for simulated annealing; the Table 6.6 best-known bounds
include Clautiaux et al.'s tabu search). All three heuristics share the
ordering representation and fitness functions, so their results compare
one-to-one.
"""

from repro.localsearch.simulated_annealing import (
    AnnealingParameters,
    AnnealingResult,
    sa_ghw,
    sa_treewidth,
    simulated_annealing,
)
from repro.localsearch.tabu import (
    TabuParameters,
    TabuResult,
    tabu_ghw,
    tabu_search,
    tabu_treewidth,
)

__all__ = [
    "AnnealingParameters",
    "AnnealingResult",
    "TabuParameters",
    "TabuResult",
    "sa_ghw",
    "sa_treewidth",
    "simulated_annealing",
    "tabu_ghw",
    "tabu_search",
    "tabu_treewidth",
]
