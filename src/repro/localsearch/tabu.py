"""Tabu search over elimination orderings.

Table 6.6 of the thesis compares GA-tw against the best previously
published DIMACS upper bounds, which include Clautiaux et al.'s tabu
search [13]. This module supplies that style of competitor:

* the neighbourhood of an ordering is the set of single-element
  *insertion* moves (the thesis's best mutation, applied exhaustively
  on a sample of positions),
* moves that touch recently-moved vertices are tabu for a fixed tenure
  unless they improve on the best width seen (aspiration),
* the walk restarts from the incumbent when it stalls.

Fitness callables are shared with the GA and SA, keeping the three
upper-bound heuristics directly comparable.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro import obs
from repro.hypergraphs.graph import Vertex
from repro.obs.budget import Budget
from repro.obs.control import SolverControl

Permutation = list[Vertex]
Evaluator = Callable[[Sequence[Vertex]], int]


@dataclass
class TabuParameters:
    iterations: int = 100
    tenure: int = 8
    neighbourhood_sample: int = 30
    stall_restart: int = 25

    def validated(self) -> "TabuParameters":
        if self.iterations < 1:
            raise ValueError("need at least one iteration")
        if self.tenure < 0:
            raise ValueError("tenure must be >= 0")
        if self.neighbourhood_sample < 1:
            raise ValueError("need at least one sampled neighbour")
        if self.stall_restart < 1:
            raise ValueError("stall threshold must be >= 1")
        return self


@dataclass
class TabuResult:
    best_fitness: int
    best_individual: Permutation
    evaluations: int
    iterations: int
    history: list[int] = field(default_factory=list)
    elapsed: float = 0.0

    metrics: dict = field(default_factory=dict)
    """``repro.obs`` snapshot at run end (empty when uninstrumented)."""


def tabu_search(
    elements: Sequence[Vertex],
    evaluate: Evaluator,
    parameters: TabuParameters | None = None,
    seed: int | random.Random = 0,
    initial: Sequence[Vertex] | None = None,
    time_limit: float | None = None,
    target: int | None = None,
    control: SolverControl | None = None,
    resume_state: dict | None = None,
) -> TabuResult:
    """Tabu-search an ordering; smaller fitness is better.

    ``control`` attaches the walk to a portfolio bound bus (cooperative
    stop, best-so-far publication, one resume snapshot per iteration);
    ``resume_state`` continues a snapshotted walk at its saved iteration
    (the tabu list is serialised as ``[vertex, expiry]`` pairs so the
    snapshot survives a JSON round trip).
    """
    parameters = (parameters or TabuParameters()).validated()
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    budget = Budget(time_limit=time_limit)
    ins = obs.current()
    metrics = ins.metrics
    moves_applied = metrics.counter("moves", solver="tabu", outcome="applied")
    moves_stalled = metrics.counter("moves", solver="tabu", outcome="stalled")
    restarts_total = metrics.counter("restarts", solver="tabu")
    evaluations_total = metrics.counter("evaluations", solver="tabu")

    if initial is not None:
        current = list(initial)
        if sorted(current, key=repr) != sorted(elements, key=repr):
            raise ValueError("initial ordering must permute the elements")
    else:
        current = list(elements)
        rng.shuffle(current)
    n = len(current)

    with ins.tracer.span(
        "tabu", tenure=parameters.tenure, iterations=parameters.iterations
    ):
        if resume_state is None:
            current_fitness = evaluate(current)
            best, best_fitness = list(current), current_fitness
            evaluations = 1
            evaluations_total.inc()
            history = [best_fitness]
            tabu_until: dict[Vertex, int] = {}
            stalled = 0
            iteration = 0
        else:
            if resume_state.get("rng_state") is not None:
                rng.setstate(resume_state["rng_state"])
            current = list(resume_state["current"])
            current_fitness = int(resume_state["current_fitness"])
            best = list(resume_state["best_individual"])
            best_fitness = int(resume_state["best_fitness"])
            evaluations = int(resume_state.get("evaluations", 0))
            history = list(resume_state.get("history", [best_fitness]))
            tabu_until = {
                vertex: int(expiry)
                for vertex, expiry in resume_state.get("tabu", [])
            }
            stalled = int(resume_state.get("stalled", 0))
            iteration = int(resume_state.get("iteration", 0))
        if control is not None:
            control.publish_upper(best_fitness, best)

        def snapshot() -> dict:
            return {
                "best_fitness": best_fitness,
                "best_individual": list(best),
                "current": list(current),
                "current_fitness": current_fitness,
                "tabu": [[vertex, expiry] for vertex, expiry in tabu_until.items()],
                "stalled": stalled,
                "iteration": iteration,
                "evaluations": evaluations,
                "history": list(history),
                "rng_state": rng.getstate(),
            }

        if control is not None:
            control.checkpoint(snapshot())
        while iteration < parameters.iterations:
            if target is not None and best_fitness <= target:
                break
            if budget.exhausted():
                break
            if control is not None:
                if control.should_stop():
                    break
                shared_lb = control.shared_lower_bound()
                if shared_lb is not None and best_fitness <= shared_lb:
                    break

            best_move: tuple[int, int] | None = None
            best_move_fitness: int | None = None
            for _ in range(parameters.neighbourhood_sample):
                source = rng.randrange(n)
                destination = rng.randrange(n)
                if source == destination:
                    continue
                vertex = current[source]
                neighbour = list(current)
                neighbour.pop(source)
                neighbour.insert(destination, vertex)
                fitness = evaluate(neighbour)
                evaluations += 1
                evaluations_total.inc()
                is_tabu = tabu_until.get(vertex, -1) >= iteration
                if is_tabu and fitness >= best_fitness:
                    continue  # tabu and no aspiration
                if best_move_fitness is None or fitness < best_move_fitness:
                    best_move = (source, destination)
                    best_move_fitness = fitness
            if best_move is None:
                stalled += 1
                moves_stalled.inc()
            else:
                source, destination = best_move
                vertex = current[source]
                current.pop(source)
                current.insert(destination, vertex)
                current_fitness = best_move_fitness  # type: ignore[assignment]
                tabu_until[vertex] = iteration + parameters.tenure
                moves_applied.inc()
                if current_fitness < best_fitness:
                    best, best_fitness = list(current), current_fitness
                    stalled = 0
                    if control is not None:
                        control.publish_upper(best_fitness, best)
                else:
                    stalled += 1
            if stalled >= parameters.stall_restart:
                current = list(best)
                current_fitness = best_fitness
                tabu_until.clear()
                stalled = 0
                restarts_total.inc()
            history.append(best_fitness)
            iteration += 1
            if control is not None:
                control.checkpoint(snapshot())

    if metrics.enabled:
        metrics.gauge("best_fitness", solver="tabu").set(best_fitness)
    return TabuResult(
        best_fitness=best_fitness,
        best_individual=best,
        evaluations=evaluations,
        iterations=len(history) - 1,
        history=history,
        elapsed=budget.elapsed(),
        metrics=metrics.snapshot() if metrics.enabled else {},
    )


def tabu_treewidth(
    graph,
    parameters: TabuParameters | None = None,
    seed: int = 0,
    time_limit: float | None = None,
    backend: str = "python",
    control: SolverControl | None = None,
    resume_state: dict | None = None,
) -> TabuResult:
    """Tabu-search upper bound on the treewidth of ``graph``.

    ``backend="bitset"`` evaluates widths on the :mod:`repro.kernels`
    bitmask kernel (identical values, much faster on large graphs).
    """
    from repro.bounds.upper import min_fill_ordering
    from repro.hypergraphs.hypergraph import Hypergraph
    from repro.kernels.evaluators import make_tw_evaluator

    if isinstance(graph, Hypergraph):
        graph = graph.primal_graph()
    rng = random.Random(seed)
    vertices = sorted(graph.vertices(), key=repr)
    if len(vertices) <= 1:
        return TabuResult(0, vertices, 0, 0, [0])
    return tabu_search(
        vertices,
        make_tw_evaluator(graph, backend=backend),
        parameters=parameters,
        seed=rng,
        initial=min_fill_ordering(graph, rng),
        time_limit=time_limit,
        control=control,
        resume_state=resume_state,
    )


def tabu_ghw(
    hypergraph,
    parameters: TabuParameters | None = None,
    seed: int = 0,
    time_limit: float | None = None,
    backend: str = "python",
    control: SolverControl | None = None,
    resume_state: dict | None = None,
) -> TabuResult:
    """Tabu-search upper bound on ``ghw(hypergraph)``.

    ``backend="bitset"`` evaluates greedy cover widths on the bitmask
    kernel with the shared cover cache (deterministic tie-breaks instead
    of the thesis's randomised ones).
    """
    from repro.bounds.upper import min_fill_ordering
    from repro.kernels.evaluators import make_ghw_evaluator_backend

    rng = random.Random(seed)
    vertices = sorted(hypergraph.vertices(), key=repr)
    if len(vertices) <= 1 or hypergraph.num_edges() == 0:
        fitness = 0 if hypergraph.num_edges() == 0 else 1
        return TabuResult(fitness, vertices, 0, 0, [fitness])
    primal = hypergraph.primal_graph()
    return tabu_search(
        vertices,
        make_ghw_evaluator_backend(hypergraph, backend=backend, rng=rng),
        parameters=parameters,
        seed=rng,
        initial=min_fill_ordering(primal, rng),
        time_limit=time_limit,
        control=control,
        resume_state=resume_state,
    )
