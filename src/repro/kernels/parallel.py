"""Opt-in process-pool parallel fitness evaluation.

GA/SAIGA populations are embarrassingly parallel: every generation
evaluates ``n`` independent orderings. This module fans a population out
over a :class:`concurrent.futures.ProcessPoolExecutor`; each worker
builds the bitset evaluator once (in the pool initializer) and then
evaluates chunks of orderings, so per-generation IPC is one pickle of the
orderings and one of the integer fitnesses.

Parallelism is strictly opt-in (``jobs=1`` — the default everywhere —
never spawns a process): on small instances the fork+pickle overhead
dwarfs the evaluation time, and each worker holds its own cover cache,
so cross-candidate sharing happens per worker rather than process-wide.
Use it when single-ordering evaluation is the bottleneck at scale.

Utilization is instrumented: the evaluator counts batches, tasks and
per-worker chunk assignments (:meth:`ParallelEvaluator.stats`) and
publishes ``parallel_eval`` counters plus a ``parallel_workers_used``
gauge to the ambient :mod:`repro.obs` metrics.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor

from repro import obs
from repro.hypergraphs.graph import Graph, Vertex
from repro.hypergraphs.hypergraph import Hypergraph
from repro.kernels.evaluators import (
    check_backend,
    make_ghw_evaluator_backend,
    make_tw_evaluator,
)

#: Per-process evaluator state, populated by the pool initializer.
_WORKER_STATE: dict = {}


def _build_evaluator(
    measure: str, instance: Graph | Hypergraph, backend: str, cover: str
):
    if measure == "tw":
        return make_tw_evaluator(instance, backend=backend)
    if measure == "ghw":
        return make_ghw_evaluator_backend(instance, backend=backend, cover=cover)
    raise ValueError(f"unknown measure {measure!r}")


def _init_worker(
    measure: str, instance: Graph | Hypergraph, backend: str, cover: str
) -> None:
    _WORKER_STATE["evaluate"] = _build_evaluator(measure, instance, backend, cover)


def _evaluate_chunk(
    orderings: list[list[Vertex]],
) -> tuple[int, list[int]]:
    evaluate = _WORKER_STATE["evaluate"]
    return os.getpid(), [evaluate(ordering) for ordering in orderings]


class ParallelEvaluator:
    """Population-batch fitness evaluation, optionally over a pool.

    Callable two ways: ``evaluator(ordering)`` evaluates one ordering
    in-process (the pool is bypassed), and
    ``evaluator.evaluate_population(population)`` evaluates a whole
    population — across the pool when ``jobs > 1``.
    """

    def __init__(
        self,
        instance: Graph | Hypergraph,
        measure: str = "ghw",
        jobs: int = 1,
        backend: str = "bitset",
        cover: str = "greedy",
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        check_backend(backend)
        self.jobs = jobs
        self._local = _build_evaluator(measure, instance, backend, cover)
        self._pool: ProcessPoolExecutor | None = None
        if jobs > 1:
            self._pool = ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_init_worker,
                initargs=(measure, instance, backend, cover),
            )
        self.batches = 0
        self.tasks = 0
        self.worker_chunks: dict[int, int] = {}

    def __call__(self, ordering: Sequence[Vertex]) -> int:
        return self._local(list(ordering))

    def evaluate_population(
        self, population: Sequence[Sequence[Vertex]]
    ) -> list[int]:
        """Fitness of every individual, in population order."""
        if self._pool is None or len(population) < 2:
            return [self._local(list(ordering)) for ordering in population]
        chunks: list[list[list[Vertex]]] = [[] for _ in range(self.jobs)]
        for i, ordering in enumerate(population):
            chunks[i % self.jobs].append(list(ordering))
        futures = [
            self._pool.submit(_evaluate_chunk, chunk)
            for chunk in chunks
            if chunk
        ]
        per_chunk: list[list[int]] = []
        for future in futures:
            pid, fitnesses = future.result()
            self.worker_chunks[pid] = self.worker_chunks.get(pid, 0) + 1
            per_chunk.append(fitnesses)
        fitnesses = [0] * len(population)
        used = 0
        for chunk_index, chunk_fitnesses in enumerate(per_chunk):
            for offset, fitness in enumerate(chunk_fitnesses):
                fitnesses[offset * self.jobs + chunk_index] = fitness
                used += 1
        assert used == len(population)
        self.batches += 1
        self.tasks += len(population)
        metrics = obs.current().metrics
        if metrics.enabled:
            metrics.counter("parallel_eval", event="batch").inc()
            metrics.counter("parallel_eval", event="task").inc(len(population))
            metrics.gauge("parallel_workers_used").set(len(self.worker_chunks))
        return fitnesses

    def stats(self) -> dict:
        """Batch/task counts and per-worker chunk assignments."""
        return {
            "jobs": self.jobs,
            "batches": self.batches,
            "tasks": self.tasks,
            "worker_chunks": dict(self.worker_chunks),
        }

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
