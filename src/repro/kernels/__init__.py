"""repro.kernels — the bitset compute backend.

Everything the heuristics spend their time on — elimination-ordering
evaluation and per-bag set covers — reimplemented over interned bitmask
representations, with a process-wide cover cache and opt-in process-pool
population evaluation:

* :class:`BitGraph` / :class:`BitHypergraph` — vertices/edges interned
  to indices, bags and neighbourhoods as Python-int bitmasks,
* :func:`bit_ordering_width` / :func:`bit_ordering_ghw` — incremental
  bucket elimination over masks,
* :class:`CoverCache` — the shared, instrumented bag -> cover LRU
  (see ``docs/performance.md`` for its semantics),
* :class:`ParallelEvaluator` — opt-in ``--jobs N`` process-pool fitness
  evaluation for GA/SAIGA populations.

The pure-Python implementations remain the reference semantics; the
property suite holds both backends to identical widths.
"""

from repro.kernels.bithypergraph import BitGraph, BitHypergraph, bits_of
from repro.kernels.cache import (
    CoverCache,
    configure_cover_cache,
    cover_cache,
    edges_token,
    family_token,
)
from repro.kernels.cover import cover_mask, exact_cover_mask, greedy_cover_mask
from repro.kernels.elimination import (
    bit_elimination_bags,
    bit_ordering_ghw,
    bit_ordering_width,
)
from repro.kernels.evaluators import (
    BACKENDS,
    check_backend,
    make_bit_ghw_evaluator,
    make_bit_tw_evaluator,
    make_ghw_evaluator_backend,
    make_tw_evaluator,
)
from repro.kernels.parallel import ParallelEvaluator

__all__ = [
    "BACKENDS",
    "BitGraph",
    "BitHypergraph",
    "CoverCache",
    "ParallelEvaluator",
    "bit_elimination_bags",
    "bit_ordering_ghw",
    "bit_ordering_width",
    "bits_of",
    "check_backend",
    "configure_cover_cache",
    "cover_cache",
    "cover_mask",
    "edges_token",
    "exact_cover_mask",
    "family_token",
    "greedy_cover_mask",
    "make_bit_ghw_evaluator",
    "make_bit_tw_evaluator",
    "make_ghw_evaluator_backend",
    "make_tw_evaluator",
]
