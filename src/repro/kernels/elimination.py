"""Incremental bucket elimination over bitmasks (Figures 6.2 / 7.1).

The pure-Python :func:`~repro.decompositions.elimination.elimination_bags`
rebuilds ``dict``-of-``set`` neighbourhoods for every ordering it
evaluates. Here the bucket-propagation scheme runs on interned bitmasks:
eliminating a vertex is three integer operations (mask the remaining
vertices, OR the clique forward, clear the successor bit), so evaluating
an ordering is a single pass of machine-word arithmetic with no per-bag
allocation.

The recurrences are exactly the reference ones — the forward/pushed
content of each bucket is identical set-by-set, which the property suite
checks on randomized hypergraphs — including the Figure 6.2 early exit of
``bit_ordering_width``.
"""

from __future__ import annotations

from repro.kernels.bithypergraph import BitGraph, BitHypergraph
from repro.kernels.cache import CoverCache, cover_cache
from repro.kernels.cover import cover_mask


def _check_order(bg: BitGraph, order: list[int]) -> None:
    seen = 0
    for index in order:
        seen |= 1 << index
    if len(order) != len(bg.vertices) or seen != bg.full_mask:
        raise ValueError("ordering is not a permutation of the vertices")


def _successor(clique: int, position: list[int]) -> int:
    """The member of ``clique`` eliminated first (minimum position)."""
    best = -1
    best_position = -1
    while clique:
        low = clique & -clique
        index = low.bit_length() - 1
        if best < 0 or position[index] < best_position:
            best = index
            best_position = position[index]
        clique ^= low
    return best


def bit_elimination_bags(bg: BitGraph, order: list[int]) -> list[int]:
    """Bag masks ``{v} | N(v)`` per eliminated vertex, in order."""
    _check_order(bg, order)
    n = len(bg.vertices)
    position = [0] * n
    for i, index in enumerate(order):
        position[index] = i
    nbr_masks = bg.nbr_masks
    pushed = [0] * n
    remaining = bg.full_mask
    bags: list[int] = []
    for index in order:
        bit = 1 << index
        remaining &= ~bit
        clique = (nbr_masks[index] | pushed[index]) & remaining
        bags.append(clique | bit)
        if clique:
            successor = _successor(clique, position)
            pushed[successor] |= clique & ~(1 << successor)
    return bags


def bit_ordering_width(bg: BitGraph, order: list[int]) -> int:
    """Width of the ordering's tree decomposition (``max |bag| - 1``)."""
    _check_order(bg, order)
    n = len(bg.vertices)
    position = [0] * n
    for i, index in enumerate(order):
        position[index] = i
    nbr_masks = bg.nbr_masks
    pushed = [0] * n
    remaining = bg.full_mask
    width = 0
    for i, index in enumerate(order):
        if width >= n - i - 1:
            break
        bit = 1 << index
        remaining &= ~bit
        clique = (nbr_masks[index] | pushed[index]) & remaining
        size = clique.bit_count()
        if size > width:
            width = size
        if clique:
            successor = _successor(clique, position)
            pushed[successor] |= clique & ~(1 << successor)
    return width


def bit_ordering_ghw(
    bh: BitHypergraph,
    order: list[int],
    cover: str = "greedy",
    cache: CoverCache | None = None,
) -> int:
    """Cover width of the ordering (Definition 17) on the bitset kernel.

    Every elimination bag is covered with hyperedges (greedy or exact
    over masks); covers are memoised in the shared cover cache keyed by
    the bag bitmask, so repeated bags — the common case across a GA
    population — cost one cache lookup.
    """
    if cover not in ("greedy", "exact"):
        raise ValueError(f"unknown cover mode {cover!r}")
    if cache is None:
        cache = cover_cache()
    width = 0
    for bag in bit_elimination_bags(bh, order):
        size = len(cover_mask(bh, bag, cover, cache))
        if size > width:
            width = size
    return width
