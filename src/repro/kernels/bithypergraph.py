"""Bitset representations of graphs and hypergraphs.

The pure-Python :class:`~repro.hypergraphs.hypergraph.Hypergraph` and
:class:`~repro.hypergraphs.graph.Graph` keep vertex sets as ``set``
objects, which makes every elimination-ordering evaluation allocate and
hash thousands of small sets. The classes here intern vertices and edges
to dense indices once, and from then on every bag, neighbourhood and
hyperedge is a single Python ``int`` used as a bitmask: union is ``|``,
intersection ``&``, cardinality ``int.bit_count()`` — all C-speed
operations on machine words, following the bitmask designs of the
Gottlob–Samer backtracking solver and the HyperBench tooling.

Interning is deterministic (vertices in the library-wide canonical order
of :func:`~repro.hypergraphs.graph.vertex_sort_key`, edges in insertion
order), so the mapping between a structure and its bitset view
is reproducible across processes — which the parallel evaluator relies
on — and round-trips exactly (property-tested).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.hypergraphs.graph import Graph, Vertex, vertex_sort_key
from repro.hypergraphs.hypergraph import EdgeName, Hypergraph
from repro.kernels.cache import family_token


def bits_of(mask: int) -> list[int]:
    """The set bit positions of ``mask``, ascending."""
    out: list[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


class BitGraph:
    """A graph interned to indices with bitmask adjacency."""

    def __init__(self, vertices: list[Vertex], nbr_masks: list[int]) -> None:
        self.vertices = vertices
        self.index = {vertex: i for i, vertex in enumerate(vertices)}
        self.nbr_masks = nbr_masks
        self.full_mask = (1 << len(vertices)) - 1

    @classmethod
    def from_graph(cls, graph: Graph) -> "BitGraph":
        vertices = sorted(graph.vertices(), key=vertex_sort_key)
        index = {vertex: i for i, vertex in enumerate(vertices)}
        nbr_masks = [0] * len(vertices)
        for vertex in vertices:
            mask = 0
            for neighbour in graph.neighbours(vertex):
                mask |= 1 << index[neighbour]
            nbr_masks[index[vertex]] = mask
        return cls(vertices, nbr_masks)

    def to_graph(self) -> Graph:
        graph = Graph(vertices=self.vertices)
        for i, mask in enumerate(self.nbr_masks):
            for j in bits_of(mask):
                if j > i:
                    graph.add_edge(self.vertices[i], self.vertices[j])
        return graph

    def mask_of(self, vertices: Iterable[Vertex]) -> int:
        mask = 0
        for vertex in vertices:
            mask |= 1 << self.index[vertex]
        return mask

    def vertices_of(self, mask: int) -> set[Vertex]:
        return {self.vertices[i] for i in bits_of(mask)}

    def order_of(self, ordering: Iterable[Vertex]) -> list[int]:
        """Translate a vertex ordering to interned indices."""
        try:
            return [self.index[vertex] for vertex in ordering]
        except KeyError as exc:
            raise ValueError(
                "ordering is not a permutation of the vertices: "
                f"unknown vertex {exc.args[0]!r}"
            ) from exc

    def __repr__(self) -> str:
        return f"BitGraph(|V|={len(self.vertices)})"


class BitHypergraph(BitGraph):
    """A hypergraph interned to indices: edges and bags are bitmasks.

    On top of the primal adjacency masks of :class:`BitGraph` it keeps

    * ``edge_names[i]`` / ``edge_masks[i]`` — the named hyperedges,
    * ``tie_rank[i]`` — the rank of edge ``i`` in ``repr``-sorted name
      order, so greedy tie-breaking matches the pure-Python
      :func:`~repro.setcover.greedy.greedy_set_cover` exactly,
    * ``incidence_masks[v]`` — per vertex, a bitmask over *edge indices*
      of the hyperedges containing it, so cover search only ever scans
      edges that can still contribute, and
    * ``token`` — the shared cover-cache family token for this edge
      family (see :mod:`repro.kernels.cache`).
    """

    def __init__(
        self,
        vertices: list[Vertex],
        nbr_masks: list[int],
        edge_names: list[EdgeName],
        edge_masks: list[int],
    ) -> None:
        super().__init__(vertices, nbr_masks)
        self.edge_names = edge_names
        self.edge_masks = edge_masks
        ranked = sorted(range(len(edge_names)), key=lambda i: repr(edge_names[i]))
        self.tie_rank = [0] * len(edge_names)
        for rank, i in enumerate(ranked):
            self.tie_rank[i] = rank
        self.incidence_masks = [0] * len(vertices)
        for i, mask in enumerate(edge_masks):
            bit = 1 << i
            for v in bits_of(mask):
                self.incidence_masks[v] |= bit
        self.token = family_token(
            (tuple(vertices), tuple(edge_names), tuple(edge_masks))
        )

    @classmethod
    def from_hypergraph(cls, hypergraph: Hypergraph) -> "BitHypergraph":
        vertices = sorted(hypergraph.vertices(), key=vertex_sort_key)
        index = {vertex: i for i, vertex in enumerate(vertices)}
        edge_names: list[EdgeName] = []
        edge_masks: list[int] = []
        nbr_masks = [0] * len(vertices)
        for name, edge in hypergraph.edges().items():
            mask = 0
            for vertex in edge:
                mask |= 1 << index[vertex]
            edge_names.append(name)
            edge_masks.append(mask)
            for i in bits_of(mask):
                nbr_masks[i] |= mask
        for i in range(len(vertices)):
            nbr_masks[i] &= ~(1 << i)
        return cls(vertices, nbr_masks, edge_names, edge_masks)

    def to_hypergraph(self) -> Hypergraph:
        return Hypergraph(
            edges={
                name: self.vertices_of(mask)
                for name, mask in zip(self.edge_names, self.edge_masks)
            },
            vertices=self.vertices,
        )

    def names_of(self, edge_indices: Iterable[int]) -> list[EdgeName]:
        return [self.edge_names[i] for i in edge_indices]

    def __repr__(self) -> str:
        return (
            f"BitHypergraph(|V|={len(self.vertices)}, "
            f"|H|={len(self.edge_masks)})"
        )
