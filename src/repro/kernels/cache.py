"""The process-wide bag -> cover LRU cache shared by all cover backends.

Every heuristic in the pipeline evaluates thousands of highly-similar
elimination orderings; the bags they produce overlap massively both
*within* one candidate ordering and *across* the whole population of a
GA/SAIGA/SA/tabu run. Before this module each :class:`ExactSetCoverSolver`
kept a private memo that died with the solver, and greedy covers were
never reused at all. The :class:`CoverCache` replaces both with one
process-wide LRU, so a bag solved once — by any backend, exact or greedy,
pure-Python or bitset — is free for every later candidate of the run.

Keys are ``(family token, mode, bag)``:

* the **family token** is an interned small integer identifying the edge
  family (hyperedge name -> vertex-set mapping, or the bitset kernel's
  edge-mask tuple). Interning keys by content means two structurally
  identical hypergraphs share entries, while any difference in edges or
  names isolates them completely;
* the **mode** is ``"exact"`` or ``"greedy"`` — the two never mix because
  greedy covers may be suboptimal;
* the **bag** is a ``frozenset`` of vertices (pure-Python backends) or an
  ``int`` bitmask (bitset kernel).

Values are tuples of edge names / edge indices; cover *size* is their
length. Randomised greedy covers (``rng`` tie-breaking) are deliberately
never cached — re-randomisation is part of their semantics.

The cache is instrumented: it keeps cumulative hit/miss/eviction counts
(:meth:`CoverCache.stats`), and callers on hot paths publish deltas to
``repro.obs`` once per evaluation rather than once per lookup.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable, Mapping
from threading import Lock

#: Default maximum number of cached covers. A cover entry is a small
#: tuple; 2^18 entries stay well under typical memory budgets while
#: comfortably holding every distinct bag of a benchmark-scale run.
DEFAULT_MAXSIZE = 262_144

CacheKey = tuple[int, str, Hashable]


class CoverCache:
    """A bounded LRU mapping ``(token, mode, bag) -> cover tuple``."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 1:
            raise ValueError("cover cache maxsize must be >= 1")
        self._maxsize = maxsize
        self._entries: OrderedDict[CacheKey, tuple] = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, token: int, mode: str, bag: Hashable) -> tuple | None:
        """The cached cover for ``bag``, or ``None``; refreshes recency."""
        key = (token, mode, bag)
        with self._lock:
            cover = self._entries.get(key)
            if cover is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return cover

    def put(self, token: int, mode: str, bag: Hashable, cover: tuple) -> None:
        """Insert (or refresh) a cover, evicting the LRU entry if full."""
        key = (token, mode, bag)
        with self._lock:
            self._entries[key] = cover
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def resize(self, maxsize: int) -> None:
        """Change capacity; evicts oldest entries if shrinking."""
        if maxsize < 1:
            raise ValueError("cover cache maxsize must be >= 1")
        with self._lock:
            self._maxsize = maxsize
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def counts(self) -> tuple[int, int, int]:
        """One atomic ``(hits, misses, evictions)`` read.

        Hot paths that publish *deltas* must read all three under the
        lock — reading the fields one by one can interleave with a
        concurrent lookup and report a hit without its lookup (or vice
        versa), making deltas drift negative or double-count.
        """
        with self._lock:
            return self.hits, self.misses, self.evictions

    def stats(self) -> dict:
        """Cumulative counters plus current occupancy."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "maxsize": self._maxsize,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }


#: The process-wide instance every backend shares by default.
_GLOBAL_CACHE = CoverCache()

#: Interned edge-family fingerprints -> small integer tokens.
_FAMILY_TOKENS: dict[Hashable, int] = {}
_FAMILY_LOCK = Lock()


def cover_cache() -> CoverCache:
    """The shared process-wide cover cache."""
    return _GLOBAL_CACHE


def configure_cover_cache(maxsize: int) -> CoverCache:
    """Resize the shared cache (the CLI's ``--cover-cache-size``)."""
    _GLOBAL_CACHE.resize(maxsize)
    return _GLOBAL_CACHE


def family_token(fingerprint: Hashable) -> int:
    """Intern an edge-family fingerprint to a stable small integer.

    Tokens are compared by content, so structurally identical edge
    families (same names, same vertex sets) share cache entries while
    different families can never collide — the full fingerprint is kept
    as the interning key, not a hash of it.
    """
    with _FAMILY_LOCK:
        token = _FAMILY_TOKENS.get(fingerprint)
        if token is None:
            token = len(_FAMILY_TOKENS)
            _FAMILY_TOKENS[fingerprint] = token
        return token


def edges_token(edges: Mapping) -> int:
    """Family token for a ``name -> frozenset(vertices)`` edge mapping."""
    return family_token(frozenset(edges.items()))
