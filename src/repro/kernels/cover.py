"""Set covers over bitmasks: greedy (Figure 7.2) and exact (B&B).

Mask-native re-implementations of :mod:`repro.setcover.greedy` and
:mod:`repro.setcover.exact` used by the bitset elimination kernel. Both
are bit-for-bit compatible with the pure-Python reference:

* the greedy cover breaks ties among maximum-gain edges toward the edge
  whose *name* is smallest under ``repr`` — exactly the deterministic
  (``rng=None``) branch of :func:`~repro.setcover.greedy.greedy_set_cover`
  — so greedy cover widths agree between backends, and
* the exact cover is optimal, so its size agrees with
  :class:`~repro.setcover.exact.ExactSetCoverSolver` by definition.

Unlike the reference, neither routine ever scans the full edge family:
the candidate set starts from the per-vertex incidence masks (only edges
meeting the bag) and shrinks as edges stop contributing. Results are
cached in the shared :mod:`repro.kernels.cache` keyed by the bag
bitmask, which is what makes GA-scale evaluation cheap: across a
population of orderings the same bags recur constantly.
"""

from __future__ import annotations

from math import ceil

from repro.kernels.bithypergraph import BitHypergraph, bits_of
from repro.kernels.cache import CoverCache
from repro.setcover.greedy import UncoverableError


def _uncoverable(bh: BitHypergraph, uncovered: int) -> UncoverableError:
    missing = sorted(repr(v) for v in bh.vertices_of(uncovered))
    return UncoverableError(f"vertices {missing} appear in no hyperedge")


def _candidate_edges(bh: BitHypergraph, bag_mask: int) -> int:
    """Bitmask over edge indices of all edges meeting the bag."""
    candidates = 0
    incidence = bh.incidence_masks
    probe = bag_mask
    while probe:
        low = probe & -probe
        candidates |= incidence[low.bit_length() - 1]
        probe ^= low
    return candidates


def greedy_cover_mask(bh: BitHypergraph, bag_mask: int) -> tuple[int, ...]:
    """Greedy cover of ``bag_mask``; returns chosen edge indices."""
    uncovered = bag_mask
    edge_masks = bh.edge_masks
    tie_rank = bh.tie_rank
    candidates = bits_of(_candidate_edges(bh, bag_mask))
    chosen: list[int] = []
    while uncovered:
        best_gain = 0
        best_rank = 0
        best_index = -1
        for i in candidates:
            gain = (edge_masks[i] & uncovered).bit_count()
            if gain > best_gain:
                best_gain = gain
                best_rank = tie_rank[i]
                best_index = i
            elif gain == best_gain and gain and tie_rank[i] < best_rank:
                best_rank = tie_rank[i]
                best_index = i
        if best_index < 0:
            raise _uncoverable(bh, uncovered)
        chosen.append(best_index)
        uncovered &= ~edge_masks[best_index]
        if uncovered:
            candidates = [i for i in candidates if edge_masks[i] & uncovered]
    return tuple(chosen)


def exact_cover_mask(bh: BitHypergraph, bag_mask: int) -> tuple[int, ...]:
    """An optimal cover of ``bag_mask``; returns chosen edge indices."""
    if not bag_mask:
        return ()
    # Restrict to the bag and drop dominated (subset) edges.
    restricted: list[tuple[int, int]] = []  # (edge index, restricted mask)
    coverable = 0
    scan = _candidate_edges(bh, bag_mask)
    while scan:
        low = scan & -scan
        scan ^= low
        i = low.bit_length() - 1
        useful = bh.edge_masks[i] & bag_mask
        restricted.append((i, useful))
        coverable |= useful
    if bag_mask & ~coverable:
        raise _uncoverable(bh, bag_mask & ~coverable)
    restricted.sort(
        key=lambda item: (-item[1].bit_count(), bh.tie_rank[item[0]])
    )
    kept: list[tuple[int, int]] = []
    for i, mask in restricted:
        if not any(mask & ~other == 0 for _, other in kept):
            kept.append((i, mask))

    best = list(greedy_cover_mask(bh, bag_mask))
    budget = len(best)
    found = _search_mask(bh, bag_mask, kept, [], budget)
    if found is not None:
        best = found
    return tuple(best)


def _search_mask(
    bh: BitHypergraph,
    uncovered: int,
    edges: list[tuple[int, int]],
    chosen: list[int],
    budget: int,
) -> list[int] | None:
    """Find a cover strictly smaller than ``budget`` if one exists."""
    if not uncovered:
        return list(chosen) if len(chosen) < budget else None
    max_gain = max((mask & uncovered).bit_count() for _, mask in edges)
    if max_gain == 0:
        return None
    if len(chosen) + ceil(uncovered.bit_count() / max_gain) >= budget:
        return None
    # Branch on the uncovered vertex contained in the fewest edges.
    pivot_bit = -1
    pivot_count = len(edges) + 1
    probe = uncovered
    while probe:
        low = probe & -probe
        count = sum(1 for _, mask in edges if mask & low)
        if count < pivot_count:
            pivot_count = count
            pivot_bit = low
        probe ^= low
    candidates = sorted(
        (item for item in edges if item[1] & pivot_bit),
        key=lambda item: (
            -(item[1] & uncovered).bit_count(),
            bh.tie_rank[item[0]],
        ),
    )
    best: list[int] | None = None
    for index, mask in candidates:
        chosen.append(index)
        found = _search_mask(bh, uncovered & ~mask, edges, chosen, budget)
        chosen.pop()
        if found is not None:
            best = found
            budget = len(found)
            if budget <= len(chosen) + 1:
                break
    return best


def cover_mask(
    bh: BitHypergraph,
    bag_mask: int,
    mode: str,
    cache: CoverCache | None = None,
) -> tuple[int, ...]:
    """Cover ``bag_mask`` in ``mode`` (``"greedy"``/``"exact"``), cached."""
    if cache is not None:
        cached = cache.get(bh.token, mode, bag_mask)
        if cached is not None:
            return cached
    if mode == "greedy":
        cover = greedy_cover_mask(bh, bag_mask)
    elif mode == "exact":
        cover = exact_cover_mask(bh, bag_mask)
    else:
        raise ValueError(f"unknown cover mode {mode!r}")
    if cache is not None:
        cache.put(bh.token, mode, bag_mask, cover)
    return cover
