"""Fitness evaluators backed by the bitset kernel.

Drop-in replacements for the closures the heuristics already use
(:func:`~repro.genetic.ga_ghw.make_ghw_evaluator` and the inline
``ordering_width`` lambdas of GA-tw/SA/tabu): same signature
``Sequence[Vertex] -> int``, same values on deterministic paths, but
evaluated on interned bitmasks with the shared cover cache.

Each evaluator publishes ``kernel_evaluations`` and ``cover_cache``
hit/miss deltas to the ambient :mod:`repro.obs` metrics once per call
(not per bag), so instrumentation stays out of the inner loop.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro import obs
from repro.hypergraphs.graph import Graph, Vertex
from repro.hypergraphs.hypergraph import Hypergraph
from repro.kernels.bithypergraph import BitGraph, BitHypergraph
from repro.kernels.cache import cover_cache
from repro.kernels.elimination import bit_ordering_ghw, bit_ordering_width

#: Backend names accepted throughout the library.
BACKENDS = ("python", "bitset")


def check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {list(BACKENDS)}"
        )
    return backend


def make_bit_tw_evaluator(graph: Graph):
    """Bitset evaluator for ``ordering_width`` on ``graph``."""
    bg = BitGraph.from_graph(graph)

    def evaluate(ordering: Sequence[Vertex]) -> int:
        width = bit_ordering_width(bg, [bg.index[v] for v in ordering])
        metrics = obs.current().metrics
        if metrics.enabled:
            metrics.counter("kernel_evaluations", measure="tw").inc()
        return width

    return evaluate


def make_bit_ghw_evaluator(hypergraph: Hypergraph, cover: str = "greedy"):
    """Bitset evaluator for ``ordering_ghw`` on ``hypergraph``.

    Greedy covers break ties deterministically (smallest edge name by
    ``repr``), matching the pure-Python path with ``rng=None``; the
    thesis's randomised tie-breaking is not reproduced here because
    cached covers must not depend on evaluation order.
    """
    bh = BitHypergraph.from_hypergraph(hypergraph)
    cache = cover_cache()
    seen = {"counts": cache.counts()}

    def evaluate(ordering: Sequence[Vertex]) -> int:
        width = bit_ordering_ghw(
            bh, [bh.index[v] for v in ordering], cover=cover, cache=cache
        )
        metrics = obs.current().metrics
        if metrics.enabled:
            metrics.counter("kernel_evaluations", measure="ghw").inc()
            counts = cache.counts()
            last = seen["counts"]
            for event, now, before in (
                ("hit", counts[0], last[0]),
                ("miss", counts[1], last[1]),
                ("eviction", counts[2], last[2]),
            ):
                if now > before:
                    metrics.counter("cover_cache", event=event).inc(
                        now - before
                    )
            seen["counts"] = counts
        return width

    return evaluate


def make_tw_evaluator(graph: Graph, backend: str = "python"):
    """``ordering -> width`` evaluator for the selected backend."""
    if check_backend(backend) == "bitset":
        return make_bit_tw_evaluator(graph)
    from repro.decompositions.elimination import ordering_width

    return lambda ordering: ordering_width(graph, list(ordering))


def make_ghw_evaluator_backend(
    hypergraph: Hypergraph,
    backend: str = "python",
    cover: str = "greedy",
    rng=None,
):
    """``ordering -> cover width`` evaluator for the selected backend."""
    if check_backend(backend) == "bitset":
        return make_bit_ghw_evaluator(hypergraph, cover=cover)
    from repro.genetic.ga_ghw import make_ghw_evaluator

    return make_ghw_evaluator(hypergraph, rng=rng)
