"""Simplicial and (strongly) almost simplicial reductions (Section 4.4.3).

Bodlaender et al.'s reduction rules shrink the search space of exact
treewidth algorithms without losing optimality:

* a **simplicial** vertex (neighbourhood is a clique, Definition 22) may
  always be eliminated next; the treewidth of the rest together with the
  vertex's degree determines the overall treewidth;
* a **strongly almost simplicial** vertex (all but one neighbour form a
  clique *and* its degree does not exceed a known treewidth lower bound,
  Definitions 23/24) may likewise be eliminated next.

For generalized hypertree width only the simplicial rule is used: an
optimal elimination ordering may always start at a simplicial vertex of
the (possibly filled) primal graph, because the clique ``N[v]`` must be
contained in some bag of every decomposition and eliminating ``v`` first
adds no fill (the library's DESIGN.md records the proof sketch). The
almost-simplicial rule's correctness argument compares bag *sizes*, which
does not transfer to cover *numbers*, so BB-ghw/A*-ghw do not use it.
"""

from __future__ import annotations

from repro.hypergraphs.graph import Graph, Vertex, vertex_sort_key


def find_simplicial(graph: Graph) -> Vertex | None:
    """Some simplicial vertex, or ``None``.

    Ties break on :func:`~repro.hypergraphs.graph.vertex_sort_key`, the
    same canonical order the bitset kernels intern vertices in, so the
    python and bitset paths force identical reduction vertices (integer
    vertices order numerically, not lexicographically by ``repr``).
    """
    for vertex in sorted(graph.vertices(), key=vertex_sort_key):
        if graph.is_simplicial(vertex):
            return vertex
    return None


def find_strongly_almost_simplicial(
    graph: Graph, lower_bound: int
) -> Vertex | None:
    """Some almost simplicial vertex of degree <= ``lower_bound``, or None.

    Vertices that are outright simplicial are excluded here so callers can
    distinguish the two rules; use :func:`find_reduction_vertex` for the
    combined search the A* algorithms perform.
    """
    for vertex in sorted(graph.vertices(), key=vertex_sort_key):
        if graph.degree(vertex) > lower_bound:
            continue
        if graph.is_simplicial(vertex):
            continue
        if graph.is_almost_simplicial(vertex):
            return vertex
    return None


def find_reduction_vertex(
    graph: Graph, lower_bound: int, allow_almost_simplicial: bool = True
) -> Vertex | None:
    """The vertex the reduction rules force as the only child, if any.

    Mirrors the child computation in Algorithm A*-tw (Figure 5.1): a
    simplicial vertex wins, otherwise a strongly almost simplicial vertex
    (with respect to ``lower_bound``) if permitted.
    """
    simplicial = find_simplicial(graph)
    if simplicial is not None:
        return simplicial
    if allow_almost_simplicial:
        return find_strongly_almost_simplicial(graph, lower_bound)
    return None


def simplicial_preprocess(
    graph: Graph, lower_bound: int, allow_almost_simplicial: bool = True
) -> tuple[Graph, list[Vertex], int]:
    """Exhaustively apply the reduction rules before a search starts.

    Returns ``(reduced graph, eliminated prefix, updated lower bound)``.
    The treewidth of the original graph is
    ``max(updated lower bound, treewidth(reduced graph))`` and every
    optimal ordering of the reduced graph, prefixed with the eliminated
    vertices, is optimal for the original.
    """
    working = graph.copy()
    prefix: list[Vertex] = []
    bound = lower_bound
    while True:
        vertex = find_reduction_vertex(
            working, bound, allow_almost_simplicial=allow_almost_simplicial
        )
        if vertex is None:
            return working, prefix, bound
        bound = max(bound, working.degree(vertex))
        working.eliminate(vertex)
        prefix.append(vertex)
