"""Search-space reduction: simplicial rules and pruning rules."""

from repro.reductions.pruning import (
    pr1_ghw,
    pr1_treewidth,
    pr2_prune_children,
    swap_safe_ghw,
    swap_safe_treewidth,
)
from repro.reductions.simplicial import (
    find_reduction_vertex,
    find_simplicial,
    find_strongly_almost_simplicial,
    simplicial_preprocess,
)

__all__ = [
    "find_reduction_vertex",
    "find_simplicial",
    "find_strongly_almost_simplicial",
    "pr1_ghw",
    "pr1_treewidth",
    "pr2_prune_children",
    "simplicial_preprocess",
    "swap_safe_ghw",
    "swap_safe_treewidth",
]
