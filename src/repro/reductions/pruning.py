"""Pruning rules for elimination-ordering searches (Sections 4.4.4-4.4.5).

**Pruning rule 1 (PR1).** At a search node with partial width ``g`` and
``n'`` remaining vertices, any completion has width at most
``max(g, n' - 1)`` — eliminate the rest in any order and no bag exceeds
the remainder. So ``max(g, n' - 1)`` may update the incumbent, and if
``n' - 1 <= g`` the subtree's best is exactly ``g`` and the subtree can be
closed. :func:`pr1_treewidth` returns that certificate;
:func:`pr1_ghw` is the cover-number analogue, where the achievable
completion width is the cover number of the whole remainder (every later
clique is a subset of the remainder, and covering a subset never costs
more than covering the superset).

**Pruning rule 2 (PR2).** If ``v`` and ``w`` are eliminated consecutively
and swapping them provably preserves the width of every completion, only
one of the two sibling branches needs exploring; we keep the branch where
the canonically smaller vertex goes first. Swap-safety
(:func:`swap_safe_treewidth`, after Bachoore & Bodlaender) holds when

* ``v`` and ``w`` are non-adjacent (the produced bags are then literally
  the same two sets in either order), or
* ``v`` and ``w`` are adjacent and each has a private neighbour the other
  lacks — then the second bag (which is order-independent) dominates both
  first bags, so the max is order-independent.

The second case compares bag *sizes* and is therefore sound for treewidth
only; for generalized hypertree width :func:`swap_safe_ghw` accepts just
the non-adjacent case, where the bag *sets* (hence their covers) coincide.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.hypergraphs.graph import Graph, Vertex


def swap_safe_treewidth(graph: Graph, v: Vertex, w: Vertex) -> bool:
    """May ``v`` and ``w`` (both still present in ``graph``) be swapped as
    consecutive eliminations without changing any completion's width?"""
    if not graph.has_edge(v, w):
        return True
    v_neighbours = graph.neighbours(v)
    w_neighbours = graph.neighbours(w)
    v_private = v_neighbours - w_neighbours - {w}
    w_private = w_neighbours - v_neighbours - {v}
    return bool(v_private) and bool(w_private)


def swap_safe_ghw(graph: Graph, v: Vertex, w: Vertex) -> bool:
    """The provably-safe (non-adjacent) fragment of PR2 for ghw."""
    return not graph.has_edge(v, w)


def pr2_prune_children(
    graph_before_last: Graph,
    last: Vertex,
    children: list[Vertex],
    swap_safe: Callable[[Graph, Vertex, Vertex], bool] = swap_safe_treewidth,
    key: Callable[[Vertex], object] = repr,
) -> list[Vertex]:
    """Drop children that PR2 makes redundant.

    ``graph_before_last`` is the graph state *before* ``last`` was
    eliminated — swap-safety must be judged with both vertices present.
    A child ``v`` is redundant when ``(last, v)`` is swap-safe and the
    sibling branch ``(v, last)`` is canonically preferred, i.e.
    ``key(v) < key(last)``.
    """
    last_key = key(last)
    return [
        v
        for v in children
        if key(v) > last_key or not swap_safe(graph_before_last, v, last)
    ]


def pr1_treewidth(g: int, remaining: int) -> tuple[int, bool]:
    """PR1 for treewidth searches.

    Returns ``(achievable, close_subtree)``: ``achievable`` is the width
    ``max(g, remaining - 1)`` obtainable by finishing immediately, and
    ``close_subtree`` says the subtree cannot beat ``g`` and may be
    abandoned once ``achievable`` has been offered as an incumbent.
    """
    achievable = max(g, remaining - 1)
    return achievable, remaining - 1 <= g


def pr1_ghw(g: int, remainder_cover: int) -> tuple[int, bool]:
    """PR1 for ghw searches.

    ``remainder_cover`` is (an upper bound on) the number of hyperedges
    needed to cover *all* remaining vertices; finishing in any order
    yields width at most ``max(g, remainder_cover)``.
    """
    achievable = max(g, remainder_cover)
    return achievable, remainder_cover <= g
