"""repro.obs — the unified instrumentation layer.

Zero-dependency observability for every solver family in the library:

* :class:`MetricsRegistry` — process-local counters, gauges and
  histograms with labels (``prunes{rule="pr2",solver="bb-ghw"}``),
* :class:`Tracer` — nested wall-clock spans with a near-zero-cost
  no-op mode,
* :class:`Budget` — the one wall-clock / operation budget all solver
  loops share,
* :class:`RunReport` — the structured JSONL telemetry record the
  experiment runner and CLI emit.

Activation is ambient::

    from repro import obs

    with obs.instrument() as ins:
        result = branch_and_bound_ghw(hypergraph)
    print(ins.metrics.snapshot()['prunes{rule="pr1",solver="bb-ghw"}'])

Outside an :func:`instrument` block, :func:`current` returns a disabled
pair whose instruments are shared no-ops, so uninstrumented callers pay
(almost) nothing. Metric-name and span conventions are documented in
``docs/observability.md``.
"""

from repro.obs.budget import Budget
from repro.obs.control import LocalControl, SolverControl
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    series_key,
)
from repro.obs.render import render_metrics, render_report, render_spans
from repro.obs.report import (
    SCHEMA_VERSION,
    RunReport,
    append_jsonl,
    peak_rss_kb,
    read_jsonl,
    validate_report,
)
from repro.obs.runtime import (
    DISABLED,
    Instruments,
    current,
    instrument,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Budget",
    "Counter",
    "DISABLED",
    "Gauge",
    "Histogram",
    "Instruments",
    "LocalControl",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "RunReport",
    "SCHEMA_VERSION",
    "SolverControl",
    "Span",
    "Tracer",
    "append_jsonl",
    "current",
    "instrument",
    "peak_rss_kb",
    "read_jsonl",
    "render_metrics",
    "render_report",
    "render_spans",
    "series_key",
    "validate_report",
]
