"""Human-readable rendering of metrics snapshots and span trees.

The CLI's ``--metrics`` / ``--trace`` flags print these to stderr, so a
terminal user gets the same signals a telemetry JSONL carries, aligned
and indented instead of serialized.
"""

from __future__ import annotations

from repro.obs.report import RunReport


def render_metrics(snapshot: dict) -> str:
    """Align a flat ``registry.snapshot()`` as ``series  value`` lines."""
    if not snapshot:
        return "(no metrics recorded)"
    width = max(len(key) for key in snapshot)
    lines = []
    for key, value in snapshot.items():
        if isinstance(value, dict):  # histogram summary
            shown = (
                f"count={value.get('count', 0)} sum={value.get('sum', 0.0):.6g} "
                f"min={value.get('min', 0.0):.6g} max={value.get('max', 0.0):.6g}"
            )
        elif isinstance(value, float):
            shown = f"{value:.6g}"
        else:
            shown = str(value)
        lines.append(f"{key.ljust(width)}  {shown}")
    return "\n".join(lines)


def render_spans(spans: list[dict], indent: int = 0) -> str:
    """Indent a ``tracer.tree()`` forest with per-span durations."""
    if not spans and indent == 0:
        return "(no spans recorded)"
    lines: list[str] = []
    for span in spans:
        duration = span.get("duration_s")
        shown = f"{duration:.6f}s" if duration is not None else "?"
        attrs = span.get("attrs") or {}
        suffix = (
            " " + " ".join(f"{k}={v}" for k, v in attrs.items()) if attrs else ""
        )
        lines.append(f"{'  ' * indent}{span['name']}  {shown}{suffix}")
        children = span.get("children") or []
        if children:
            lines.append(render_spans(children, indent + 1))
    return "\n".join(lines)


def render_report(report: RunReport) -> str:
    """Multi-section summary of one run report."""
    shown_value = (
        report.value
        if report.value is not None
        else f"[{report.lower_bound}, {report.upper_bound}]"
    )
    head = (
        f"{report.instance}  {report.solver}  {report.measure}="
        f"{shown_value} ({report.status})  {report.elapsed_s:.2f}s"
    )
    if report.peak_rss_kb is not None:
        head += f"  rss={report.peak_rss_kb}KiB"
    sections = [head]
    snapshot: dict = {**report.counters, **report.gauges, **report.histograms}
    sections.append(render_metrics(dict(sorted(snapshot.items()))))
    if report.spans:
        sections.append(render_spans(report.spans))
    return "\n".join(sections)
