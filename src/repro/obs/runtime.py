"""Ambient instrumentation: ``instrument()`` activates, ``current()`` reads.

Threading a registry and tracer through every solver signature would
bloat two dozen APIs, so the pair travels ambiently in a
:class:`contextvars.ContextVar`. Solvers call :func:`current` once at
entry and instrument unconditionally; outside any :func:`instrument`
block they receive the shared disabled pair (null registry + null
tracer), whose instruments are no-ops.

ContextVar scoping means concurrent runs (threads, asyncio tasks) each
see their own instruments, and nesting ``instrument()`` blocks shadows
correctly — the experiment runner opens one block per table cell.
"""

from __future__ import annotations

import contextvars
from collections.abc import Iterator
from contextlib import contextmanager

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer


class Instruments:
    """The active (metrics registry, tracer) pair."""

    __slots__ = ("metrics", "tracer")

    def __init__(self, metrics: MetricsRegistry, tracer: Tracer) -> None:
        self.metrics = metrics
        self.tracer = tracer

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled or self.tracer.enabled


DISABLED = Instruments(NULL_REGISTRY, NULL_TRACER)

_ACTIVE: contextvars.ContextVar[Instruments] = contextvars.ContextVar(
    "repro_obs_instruments", default=DISABLED
)


def current() -> Instruments:
    """The instruments active in this context (disabled pair by default)."""
    return _ACTIVE.get()


@contextmanager
def instrument(
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> Iterator[Instruments]:
    """Activate instrumentation for the enclosed code.

    Fresh instruments are created unless given explicitly; pass
    ``metrics=NULL_REGISTRY`` or ``tracer=NULL_TRACER`` to enable only
    one half. The previous instruments are restored on exit.
    """
    active = Instruments(
        metrics if metrics is not None else MetricsRegistry(),
        tracer if tracer is not None else Tracer(),
    )
    token = _ACTIVE.set(active)
    try:
        yield active
    finally:
        _ACTIVE.reset(token)
