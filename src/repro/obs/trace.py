"""Search-span tracing: nested wall-clock timings with a no-op mode.

A *span* is a named, attributed stretch of wall-clock time; spans nest,
so a traced run yields a tree — e.g. ``bb-ghw`` containing
``root_bounds`` and ``search``. Usage::

    with tracer.span("search", vertices=n):
        ...

Conventions (see ``docs/observability.md``): spans are *coarse* — one
per solver phase, never one per search node — so a span tree stays a
handful of entries and tracing never dominates the traced work. Hot-path
statistics belong in counters (:mod:`repro.obs.metrics`).

Disabled mode is :class:`NullTracer`, whose ``span`` returns one shared
no-op context manager; entering it costs two trivial method calls, so
instrumented code needs no ``if enabled`` guards around ``with`` blocks.
"""

from __future__ import annotations

import time
from collections.abc import Iterator


class Span:
    """One timed, attributed node of the span tree."""

    __slots__ = ("name", "attrs", "start", "duration", "children")

    def __init__(self, name: str, attrs: dict[str, object]) -> None:
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.duration: float | None = None
        self.children: list[Span] = []

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "name": self.name,
            "duration_s": round(self.duration, 6) if self.duration is not None else None,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class _ActiveSpan:
    """Context manager that opens/closes one span on a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        if tracer._stack:
            tracer._stack[-1].children.append(span)
        else:
            tracer.roots.append(span)
        tracer._stack.append(span)
        span.start = tracer._clock()
        return span

    def __exit__(self, *exc_info: object) -> None:
        span = self._tracer._stack.pop()
        span.duration = self._tracer._clock() - span.start


class Tracer:
    """Collects a tree of :class:`Span` objects."""

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._clock = clock

    def span(self, name: str, **attrs: object) -> _ActiveSpan:
        return _ActiveSpan(self, Span(name, attrs))

    def tree(self) -> list[dict[str, object]]:
        """The completed span forest as plain dicts (JSON-ready)."""
        return [span.to_dict() for span in self.roots]

    def walk(self) -> Iterator[Span]:
        """All spans, depth-first."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def total(self, name: str) -> float:
        """Summed duration of every *completed* span called ``name``."""
        return sum(
            span.duration
            for span in self.walk()
            if span.name == name and span.duration is not None
        )


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


class NullTracer(Tracer):
    """Disabled tracer: ``span`` returns one shared no-op context."""

    enabled = False

    _SPAN = _NullSpanContext()

    def __init__(self) -> None:
        self.roots = []

    def span(self, name: str, **attrs: object) -> _NullSpanContext:  # type: ignore[override]
        return self._SPAN

    def tree(self) -> list[dict[str, object]]:
        return []

    def walk(self) -> Iterator[Span]:
        return iter(())


NULL_TRACER = NullTracer()
