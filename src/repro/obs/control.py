"""Cooperative solver control: stop signals, shared bounds, checkpoints.

A :class:`SolverControl` is the solver-facing half of the portfolio's
bound bus (:mod:`repro.portfolio.bus`). Every solver loop in the library
accepts an optional ``control`` and, when one is given,

* polls :meth:`SolverControl.should_stop` at its loop head and winds
  down gracefully (flushing its best-so-far result) when it fires,
* reads :meth:`shared_upper_bound` / :meth:`shared_lower_bound` — the
  portfolio-wide incumbent — and prunes or early-stops against them,
* reports its own improvements through :meth:`publish_upper` /
  :meth:`publish_lower`, and
* offers periodic :meth:`checkpoint` payloads (RNG state plus whatever
  population/ordering snapshot the solver needs to resume).

The base class is deliberately inert: every method is a no-op that
reports "keep going", so solvers can hold a control unconditionally.
:class:`LocalControl` is the in-process implementation used by the
inline scheduler and by tests; the process-mode client lives with the
bus because it owns the multiprocessing primitives.

This lives in :mod:`repro.obs` next to :class:`~repro.obs.budget.Budget`
for the same reason the budget does: it is cross-cutting runtime plumbing
that every solver family shares, with no solver-specific imports, so
solvers can depend on it without cycles.
"""

from __future__ import annotations

from collections.abc import Sequence


class SolverControl:
    """No-op control: never stops, shares nothing, records nothing."""

    def should_stop(self) -> bool:
        """``True`` when the solver should wind down and return."""
        return False

    def shared_upper_bound(self) -> int | None:
        """The portfolio-wide incumbent upper bound, if any."""
        return None

    def shared_lower_bound(self) -> int | None:
        """The portfolio-wide proven lower bound, if any."""
        return None

    def publish_upper(self, value: int, ordering: Sequence | None = None) -> None:
        """Report an improved upper bound (with its witness ordering)."""

    def publish_lower(self, value: int) -> None:
        """Report an improved proven lower bound."""

    def checkpoint(self, state: dict) -> None:
        """Offer a resume snapshot; implementations throttle and persist."""


class LocalControl(SolverControl):
    """In-process control backed by plain attributes.

    Used directly in tests and as the building block of the inline
    scheduler: ``stop`` is a flag the owner flips, ``upper_bound`` /
    ``lower_bound`` are injected shared bounds, and published bounds and
    checkpoints are recorded on the instance. Publishing keeps only
    improvements, so ``best_upper``/``best_lower`` are monotone.
    """

    def __init__(
        self,
        upper_bound: int | None = None,
        lower_bound: int | None = None,
        stop_after_publishes: int | None = None,
    ) -> None:
        self.stop = False
        self.upper_bound = upper_bound
        self.lower_bound = lower_bound
        self.best_upper: int | None = None
        self.best_ordering: list | None = None
        self.best_lower: int | None = None
        self.checkpoints: list[dict] = []
        self.publishes = 0
        self._stop_after_publishes = stop_after_publishes

    def should_stop(self) -> bool:
        return self.stop

    def shared_upper_bound(self) -> int | None:
        return self.upper_bound

    def shared_lower_bound(self) -> int | None:
        return self.lower_bound

    def publish_upper(self, value: int, ordering: Sequence | None = None) -> None:
        self.publishes += 1
        if self.best_upper is None or value < self.best_upper:
            self.best_upper = value
            self.best_ordering = list(ordering) if ordering is not None else None
        if (
            self._stop_after_publishes is not None
            and self.publishes >= self._stop_after_publishes
        ):
            self.stop = True

    def publish_lower(self, value: int) -> None:
        self.publishes += 1
        if self.best_lower is None or value > self.best_lower:
            self.best_lower = value

    def checkpoint(self, state: dict) -> None:
        self.checkpoints.append(state)
