"""Structured run telemetry: the :class:`RunReport` JSON-lines record.

One ``RunReport`` describes one solver run on one instance — what ran,
what it concluded (value / bounds / status), how long it took, and the
full metrics snapshot and span tree collected while it ran. Reports
serialize one-per-line as JSON (JSONL), the format HyperBench-style
benchmark tooling ingests; :func:`validate_report` is the schema check
CI runs against emitted files.

The schema is hand-validated (no ``jsonschema`` dependency); bump
``SCHEMA_VERSION`` on breaking changes so downstream readers can branch.
"""

from __future__ import annotations

import json
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.obs.runtime import Instruments

SCHEMA_VERSION = 1

#: Run outcomes a report may carry.
STATUSES = ("optimal", "interrupted", "heuristic", "error")

#: field name -> (required, allowed types); bounds/value are also allowed
#: to be None because heuristics prove only one side.
_FIELD_TYPES: dict[str, tuple[bool, tuple[type, ...]]] = {
    "schema_version": (True, (int,)),
    "instance": (True, (str,)),
    "solver": (True, (str,)),
    "measure": (True, (str,)),
    "status": (True, (str,)),
    "value": (False, (int, float, type(None))),
    "lower_bound": (False, (int, float, type(None))),
    "upper_bound": (False, (int, float, type(None))),
    "elapsed_s": (True, (int, float)),
    "counters": (True, (dict,)),
    "gauges": (True, (dict,)),
    "histograms": (True, (dict,)),
    "spans": (True, (list,)),
    "peak_rss_kb": (False, (int, type(None))),
    "certified": (False, (bool, type(None))),
    "meta": (False, (dict,)),
    "workers": (False, (list,)),
}


def peak_rss_kb() -> int | None:
    """This process's peak resident set size in KiB (``None`` off-POSIX)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes
        rss //= 1024
    return int(rss)


@dataclass
class RunReport:
    """Telemetry for one (instance, solver) run."""

    instance: str
    solver: str
    measure: str
    status: str
    value: int | float | None = None
    lower_bound: int | float | None = None
    upper_bound: int | float | None = None
    elapsed_s: float = 0.0
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    peak_rss_kb: int | None = None
    certified: bool | None = None
    """Whether the claimed width was certified against a validated
    witness decomposition (``None``: certification was not attempted)."""

    meta: dict = field(default_factory=dict)
    workers: list = field(default_factory=list)
    """Nested per-worker reports (portfolio runs): plain report dicts,
    each validating against this same schema."""

    schema_version: int = SCHEMA_VERSION

    @classmethod
    def capture(
        cls,
        instruments: Instruments,
        *,
        instance: str,
        solver: str,
        measure: str,
        status: str,
        value: int | float | None = None,
        lower_bound: int | float | None = None,
        upper_bound: int | float | None = None,
        elapsed_s: float = 0.0,
        certified: bool | None = None,
        meta: dict | None = None,
        workers: list | None = None,
    ) -> "RunReport":
        """Build a report from the run's active instruments."""
        by_kind = instruments.metrics.snapshot_by_kind()
        return cls(
            instance=instance,
            solver=solver,
            measure=measure,
            status=status,
            value=value,
            lower_bound=lower_bound,
            upper_bound=upper_bound,
            elapsed_s=elapsed_s,
            counters=by_kind["counters"],
            gauges=by_kind["gauges"],
            histograms=by_kind["histograms"],
            spans=instruments.tracer.tree(),
            peak_rss_kb=peak_rss_kb(),
            certified=certified,
            meta=dict(meta or {}),
            workers=list(workers or []),
        )

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=False)

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        validate_report(data)
        return cls(**{k: data[k] for k in _FIELD_TYPES if k in data})

    @classmethod
    def from_json(cls, line: str) -> "RunReport":
        return cls.from_dict(json.loads(line))


def validate_report(data: dict) -> None:
    """Check ``data`` against the RunReport schema; raise on violation.

    All problems are collected and reported in one :class:`ValueError`,
    so a CI failure names every offending field at once.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        raise ValueError(f"report must be a JSON object, got {type(data).__name__}")
    for name, (required, types) in _FIELD_TYPES.items():
        if name not in data:
            if required:
                problems.append(f"missing required field {name!r}")
            continue
        # bool is an int subclass; reject it where int is expected
        # (unless the field genuinely allows bool).
        if (
            isinstance(data[name], bool) and bool not in types
        ) or not isinstance(data[name], types):
            expected = "/".join(t.__name__ for t in types)
            problems.append(
                f"field {name!r} has type {type(data[name]).__name__}, "
                f"expected {expected}"
            )
    unknown = sorted(set(data) - set(_FIELD_TYPES))
    if unknown:
        problems.append(f"unknown fields: {unknown}")
    if isinstance(data.get("status"), str) and data["status"] not in STATUSES:
        problems.append(
            f"status {data['status']!r} not one of {list(STATUSES)}"
        )
    if isinstance(data.get("schema_version"), int) and data[
        "schema_version"
    ] != SCHEMA_VERSION:
        problems.append(
            f"schema_version {data['schema_version']} != {SCHEMA_VERSION}"
        )
    counters = data.get("counters")
    if isinstance(counters, dict):
        for key, value in counters.items():
            if isinstance(value, bool) or not isinstance(value, int):
                problems.append(f"counter {key!r} is not an integer")
    spans = data.get("spans")
    if isinstance(spans, list):
        for span in spans:
            if not isinstance(span, dict) or "name" not in span:
                problems.append(f"span entry {span!r} lacks a 'name'")
    workers = data.get("workers")
    if isinstance(workers, list):
        for index, worker in enumerate(workers):
            try:
                validate_report(worker)
            except ValueError as error:
                problems.append(f"workers[{index}]: {error}")
    if problems:
        raise ValueError("invalid RunReport: " + "; ".join(problems))


def append_jsonl(path: str | Path, report: RunReport) -> None:
    """Append one report to a JSON-lines telemetry file."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(report.to_json() + "\n")


def read_jsonl(path: str | Path) -> list[RunReport]:
    """Read and validate every report in a JSON-lines telemetry file."""
    reports: list[RunReport] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                reports.append(RunReport.from_json(line))
    return reports
