"""Process-local metrics: counters, gauges and histograms with labels.

The registry is the accounting half of the observability layer
(:mod:`repro.obs`). Solvers ask it for *instruments* — a counter, gauge
or histogram identified by a metric name plus a set of key=value labels,
e.g. ``prunes{rule="pr2",solver="bb-ghw"}`` — and bump them on the hot
path. Instrument handles are plain objects with one integer/float slot,
so the per-event cost is an attribute add; the lookup cost is paid once
when the handle is created, which solvers do outside their loops.

Disabled mode is a :class:`NullMetricsRegistry` whose instruments are
shared do-nothing singletons: code instruments unconditionally and the
registry decides whether anything is recorded. ``registry.enabled``
lets hot paths skip even the no-op calls when they want to.

Series keys render in Prometheus exposition style
(``name{label="value",...}``, labels sorted by key), which keeps
snapshots diffable and greppable.
"""

from __future__ import annotations

from math import inf

LabelSet = tuple[tuple[str, str], ...]


def series_key(name: str, labels: LabelSet | dict[str, str] = ()) -> str:
    """Render ``name`` + sorted labels as ``name{k="v",...}``."""
    if isinstance(labels, dict):
        labels = tuple(sorted((k, str(v)) for k, v in labels.items()))
    if not labels:
        return name
    body = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{body}}}"


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down (temperature, best fitness, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """Streaming summary of observations (count/sum/min/max).

    No buckets: the solvers' distributions of interest (per-generation
    seconds, bag-cover sizes) are summarised, not binned, so the
    instrument stays four floats and ``observe`` stays branch-light.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = inf
        self.max = -inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class MetricsRegistry:
    """Get-or-create registry of labelled instruments.

    The same ``(kind, name, labels)`` always returns the same instrument
    object, so handles can be hoisted out of loops and shared freely.
    Reusing one metric *name* for two different kinds is a programming
    error and raises immediately — mixed-kind series cannot be rendered
    or aggregated coherently.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelSet], Counter] = {}
        self._gauges: dict[tuple[str, LabelSet], Gauge] = {}
        self._histograms: dict[tuple[str, LabelSet], Histogram] = {}
        self._kinds: dict[str, str] = {}

    def _key(self, kind: str, name: str, labels: dict[str, str]) -> tuple[str, LabelSet]:
        known = self._kinds.setdefault(name, kind)
        if known != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {known}, "
                f"cannot reuse it as a {kind}"
            )
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    def counter(self, name: str, **labels: str) -> Counter:
        key = self._key("counter", name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = self._key("gauge", name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = self._key("histogram", name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    def snapshot(self) -> dict[str, int | float | dict[str, float]]:
        """One flat, sorted mapping of every series to its current value.

        Counters and gauges map to numbers, histograms to their
        ``summary()`` dict. The flat form is what result dataclasses
        carry and what telemetry JSON serialises.
        """
        out: dict[str, int | float | dict[str, float]] = {}
        for (name, labels), counter in self._counters.items():
            out[series_key(name, labels)] = counter.value
        for (name, labels), gauge in self._gauges.items():
            out[series_key(name, labels)] = gauge.value
        for (name, labels), histogram in self._histograms.items():
            out[series_key(name, labels)] = histogram.summary()
        return dict(sorted(out.items()))

    def snapshot_by_kind(self) -> dict[str, dict]:
        """Snapshot split into ``counters`` / ``gauges`` / ``histograms``."""
        return {
            "counters": dict(
                sorted(
                    (series_key(n, l), c.value)
                    for (n, l), c in self._counters.items()
                )
            ),
            "gauges": dict(
                sorted(
                    (series_key(n, l), g.value)
                    for (n, l), g in self._gauges.items()
                )
            ),
            "histograms": dict(
                sorted(
                    (series_key(n, l), h.summary())
                    for (n, l), h in self._histograms.items()
                )
            ),
        }


class NullMetricsRegistry(MetricsRegistry):
    """Disabled registry: hands out shared no-op instruments."""

    enabled = False

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    def __init__(self) -> None:  # no tables to build
        pass

    def counter(self, name: str, **labels: str) -> Counter:
        return self._COUNTER

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._GAUGE

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._HISTOGRAM

    def snapshot(self) -> dict[str, int | float | dict[str, float]]:
        return {}

    def snapshot_by_kind(self) -> dict[str, dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_REGISTRY = NullMetricsRegistry()
