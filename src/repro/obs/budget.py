"""A shared wall-clock / operation budget for solver loops.

Every solver family in the library runs some bounded loop — search node
expansions, GA generations, annealing moves — and historically each
rolled its own ``start = time.monotonic()`` deadline check. This class
is the single implementation: construct it when the run starts, charge
it per unit of work, and ask :meth:`exhausted` at loop heads. Time
limits therefore behave identically across solvers (checked against the
same monotonic clock, from construction time, inclusive at the limit).

:class:`repro.search.common.SearchBudget` is the search-flavoured alias
(``node_limit`` / ``nodes`` vocabulary) built on top of this.
"""

from __future__ import annotations

import time


class Budget:
    """Wall-clock and operation-count budget."""

    __slots__ = ("time_limit", "op_limit", "ops", "_start", "_clock")

    def __init__(
        self,
        time_limit: float | None = None,
        op_limit: int | None = None,
        clock=time.monotonic,
    ) -> None:
        self.time_limit = time_limit
        self.op_limit = op_limit
        self.ops = 0
        self._clock = clock
        self._start = clock()

    def charge(self, amount: int = 1) -> None:
        """Account for ``amount`` units of work (nodes, moves, ...)."""
        self.ops += amount

    def exhausted(self) -> bool:
        return self.exhausted_reason() is not None

    def exhausted_reason(self) -> str | None:
        """``"ops"``, ``"time"``, or ``None`` while budget remains."""
        if self.op_limit is not None and self.ops >= self.op_limit:
            return "ops"
        if (
            self.time_limit is not None
            and self._clock() - self._start >= self.time_limit
        ):
            return "time"
        return None

    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining_time(self) -> float | None:
        """Seconds left on the wall clock, or ``None`` if unlimited."""
        if self.time_limit is None:
            return None
        return max(0.0, self.time_limit - self.elapsed())
