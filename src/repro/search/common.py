"""Shared infrastructure for the exact search algorithms (Chapter 4).

Both search families in the thesis — depth-first branch and bound
(Section 4.1) and best-first A* (Section 4.2) — explore the tree of
elimination-ordering prefixes. They share bookkeeping: resource limits,
anytime incumbents, anytime lower bounds and a uniform result record.

:class:`SearchResult` is what every exact algorithm returns. The
``optimal`` flag distinguishes a certified value from an interrupted run,
in which case ``lower_bound``/``upper_bound`` bracket the true answer
(Section 5.3 explains why the A* frontier yields nondecreasing anytime
lower bounds; a branch and bound's incumbent yields anytime upper
bounds).

Resource accounting is the shared :class:`repro.obs.Budget`;
:class:`SearchBudget` is its search-flavoured face (``node_limit`` /
``nodes`` vocabulary), so time limits behave identically in searches,
genetic algorithms and local search.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hypergraphs.graph import Vertex
from repro.obs.budget import Budget
from repro.obs.metrics import MetricsRegistry


class SearchBudget(Budget):
    """Wall-clock and node budget for a search run."""

    __slots__ = ()

    def __init__(
        self,
        time_limit: float | None = None,
        node_limit: int | None = None,
    ) -> None:
        super().__init__(time_limit=time_limit, op_limit=node_limit)

    @property
    def nodes(self) -> int:
        """Expanded-node count (the generic budget's ``ops``)."""
        return self.ops

    @property
    def node_limit(self) -> int | None:
        return self.op_limit


@dataclass
class SearchResult:
    """Outcome of an exact (possibly interrupted) width computation."""

    value: int | None
    """The certified width, or ``None`` if the run was interrupted."""

    lower_bound: int
    """Best proven lower bound on the width."""

    upper_bound: int
    """Best width of any solution found (``|V| - 1`` at worst)."""

    ordering: list[Vertex] = field(default_factory=list)
    """Elimination ordering achieving ``upper_bound``."""

    optimal: bool = False
    """``True`` iff ``value`` is certified (then lb == ub == value)."""

    nodes_expanded: int = 0
    elapsed: float = 0.0
    algorithm: str = ""

    metrics: dict = field(default_factory=dict)
    """Metrics snapshot (``repro.obs`` registry) taken when the run
    finished; empty when the run was not instrumented."""

    budget_exhausted: bool = False
    """``True`` when a shared budget ran dry before the run (or some
    component of a combined run) got any budget of its own."""

    def __post_init__(self) -> None:
        if self.optimal and self.value is None:
            raise ValueError("optimal result must carry a value")
        if self.optimal and self.lower_bound != self.upper_bound:
            raise ValueError("optimal result must have lb == ub")

    @property
    def gap(self) -> int:
        """``upper_bound - lower_bound`` (0 iff certified)."""
        return self.upper_bound - self.lower_bound

    def summary(self) -> str:
        status = "optimal" if self.optimal else "interrupted"
        shown = self.value if self.value is not None else f"[{self.lower_bound}, {self.upper_bound}]"
        return (
            f"{self.algorithm}: width={shown} ({status}), "
            f"nodes={self.nodes_expanded}, time={self.elapsed:.2f}s"
        )


def attach_metrics(
    result: SearchResult, registry: MetricsRegistry
) -> SearchResult:
    """Stamp the registry's snapshot onto ``result`` (no-op if disabled)."""
    if registry.enabled:
        result.metrics = registry.snapshot()
    return result


def certified(
    value: int,
    ordering: list[Vertex],
    budget: SearchBudget,
    algorithm: str,
) -> SearchResult:
    """Build an optimal :class:`SearchResult`."""
    return SearchResult(
        value=value,
        lower_bound=value,
        upper_bound=value,
        ordering=ordering,
        optimal=True,
        nodes_expanded=budget.nodes,
        elapsed=budget.elapsed(),
        algorithm=algorithm,
    )


def interrupted(
    lower_bound: int,
    upper_bound: int,
    ordering: list[Vertex],
    budget: SearchBudget,
    algorithm: str,
) -> SearchResult:
    """Build an interrupted :class:`SearchResult` (bounds only)."""
    if lower_bound >= upper_bound:
        # The budget ran out exactly as the bounds met: still certified.
        return certified(upper_bound, ordering, budget, algorithm)
    return SearchResult(
        value=None,
        lower_bound=lower_bound,
        upper_bound=upper_bound,
        ordering=ordering,
        optimal=False,
        nodes_expanded=budget.nodes,
        elapsed=budget.elapsed(),
        algorithm=algorithm,
    )
