"""Shared infrastructure for the exact search algorithms (Chapter 4).

Both search families in the thesis — depth-first branch and bound
(Section 4.1) and best-first A* (Section 4.2) — explore the tree of
elimination-ordering prefixes. They share bookkeeping: resource limits,
anytime incumbents, anytime lower bounds and a uniform result record.

:class:`SearchResult` is what every exact algorithm returns. The
``optimal`` flag distinguishes a certified value from an interrupted run,
in which case ``lower_bound``/``upper_bound`` bracket the true answer
(Section 5.3 explains why the A* frontier yields nondecreasing anytime
lower bounds; a branch and bound's incumbent yields anytime upper
bounds).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.hypergraphs.graph import Vertex


class SearchBudget:
    """Wall-clock and node budget for a search run."""

    def __init__(
        self,
        time_limit: float | None = None,
        node_limit: int | None = None,
    ) -> None:
        self.time_limit = time_limit
        self.node_limit = node_limit
        self.nodes = 0
        self._start = time.monotonic()

    def charge(self) -> None:
        """Account for one expanded node."""
        self.nodes += 1

    def exhausted(self) -> bool:
        if self.node_limit is not None and self.nodes >= self.node_limit:
            return True
        if (
            self.time_limit is not None
            and time.monotonic() - self._start >= self.time_limit
        ):
            return True
        return False

    def elapsed(self) -> float:
        return time.monotonic() - self._start


@dataclass
class SearchResult:
    """Outcome of an exact (possibly interrupted) width computation."""

    value: int | None
    """The certified width, or ``None`` if the run was interrupted."""

    lower_bound: int
    """Best proven lower bound on the width."""

    upper_bound: int
    """Best width of any solution found (``|V| - 1`` at worst)."""

    ordering: list[Vertex] = field(default_factory=list)
    """Elimination ordering achieving ``upper_bound``."""

    optimal: bool = False
    """``True`` iff ``value`` is certified (then lb == ub == value)."""

    nodes_expanded: int = 0
    elapsed: float = 0.0
    algorithm: str = ""

    def __post_init__(self) -> None:
        if self.optimal and self.value is None:
            raise ValueError("optimal result must carry a value")
        if self.optimal and self.lower_bound != self.upper_bound:
            raise ValueError("optimal result must have lb == ub")

    @property
    def gap(self) -> int:
        """``upper_bound - lower_bound`` (0 iff certified)."""
        return self.upper_bound - self.lower_bound

    def summary(self) -> str:
        status = "optimal" if self.optimal else "interrupted"
        shown = self.value if self.value is not None else f"[{self.lower_bound}, {self.upper_bound}]"
        return (
            f"{self.algorithm}: width={shown} ({status}), "
            f"nodes={self.nodes_expanded}, time={self.elapsed:.2f}s"
        )


def certified(
    value: int,
    ordering: list[Vertex],
    budget: SearchBudget,
    algorithm: str,
) -> SearchResult:
    """Build an optimal :class:`SearchResult`."""
    return SearchResult(
        value=value,
        lower_bound=value,
        upper_bound=value,
        ordering=ordering,
        optimal=True,
        nodes_expanded=budget.nodes,
        elapsed=budget.elapsed(),
        algorithm=algorithm,
    )


def interrupted(
    lower_bound: int,
    upper_bound: int,
    ordering: list[Vertex],
    budget: SearchBudget,
    algorithm: str,
) -> SearchResult:
    """Build an interrupted :class:`SearchResult` (bounds only)."""
    if lower_bound >= upper_bound:
        # The budget ran out exactly as the bounds met: still certified.
        return certified(upper_bound, ordering, budget, algorithm)
    return SearchResult(
        value=None,
        lower_bound=lower_bound,
        upper_bound=upper_bound,
        ordering=ordering,
        optimal=False,
        nodes_expanded=budget.nodes,
        elapsed=budget.elapsed(),
        algorithm=algorithm,
    )
