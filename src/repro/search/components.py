"""Component-wise width computation.

Width parameters are maxima over connected components: the treewidth of
a disconnected graph is the largest treewidth of its components, and an
elimination ordering for the whole graph is any concatenation of
per-component orderings. Decomposing per component before searching is
therefore free pruning — each exact search runs on a strictly smaller
instance, and budgets stretch much further.

These wrappers split an instance, run the chosen exact algorithm per
component (sharing one overall budget), and recombine the results into
a single :class:`SearchResult` whose ordering is valid for the whole
instance.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro import obs
from repro.hypergraphs.graph import Graph, Vertex
from repro.hypergraphs.hypergraph import Hypergraph
from repro.search.common import SearchResult, attach_metrics

GraphSolver = Callable[..., SearchResult]


def _combine(
    pieces: list[SearchResult],
    algorithm: str,
    budget_exhausted: bool = False,
) -> SearchResult:
    """Max-combine per-component results into one."""
    if not pieces:
        return SearchResult(
            value=0,
            lower_bound=0,
            upper_bound=0,
            optimal=True,
            algorithm=algorithm,
        )
    ordering: list[Vertex] = []
    for piece in pieces:
        ordering.extend(piece.ordering)
    lower = max(piece.lower_bound for piece in pieces)
    upper = max(piece.upper_bound for piece in pieces)
    optimal = all(piece.optimal for piece in pieces)
    nodes = sum(piece.nodes_expanded for piece in pieces)
    elapsed = sum(piece.elapsed for piece in pieces)
    combined = SearchResult(
        value=upper if optimal else None,
        lower_bound=upper if optimal else lower,
        upper_bound=upper,
        ordering=ordering,
        optimal=optimal,
        nodes_expanded=nodes,
        elapsed=elapsed,
        algorithm=f"{algorithm}+components",
        budget_exhausted=budget_exhausted
        or any(piece.budget_exhausted for piece in pieces),
    )
    # The ambient registry saw every per-component run, so its snapshot
    # is already the whole-instance tally.
    return attach_metrics(combined, obs.current().metrics)


def _spend(
    remaining_nodes: int | None, piece: SearchResult, components_left: int
) -> tuple[int | None, bool]:
    """Deduct a component's node spend from the shared budget.

    Returns the remaining budget and whether the budget just ran dry
    with components still waiting — previously the budget was silently
    floored at one node, which hid exhaustion from callers.
    """
    if remaining_nodes is None:
        return None, False
    remaining_nodes = max(0, remaining_nodes - piece.nodes_expanded)
    exhausted = remaining_nodes == 0 and components_left > 0
    if exhausted:
        obs.current().metrics.counter(
            "budget_exhausted", scope="components"
        ).inc()
    return remaining_nodes, exhausted


def treewidth_by_components(
    graph: Graph,
    solver: GraphSolver,
    time_limit: float | None = None,
    node_limit: int | None = None,
    rng: random.Random | None = None,
) -> SearchResult:
    """Run a treewidth ``solver`` per connected component.

    ``solver`` is one of the exact algorithms
    (:func:`repro.search.astar_tw.astar_treewidth` or
    :func:`repro.search.bb_tw.branch_and_bound_treewidth`); the node
    budget is shared across components, largest component first so the
    hard part gets the freshest budget.
    """
    components = graph.connected_components()
    components.sort(key=len, reverse=True)
    pieces: list[SearchResult] = []
    remaining_nodes = node_limit
    exhausted = False
    for index, component in enumerate(components):
        piece = solver(
            graph.subgraph(component),
            time_limit=time_limit,
            node_limit=remaining_nodes,
            rng=rng,
        )
        pieces.append(piece)
        remaining_nodes, ran_dry = _spend(
            remaining_nodes, piece, len(components) - index - 1
        )
        exhausted = exhausted or ran_dry
    name = pieces[0].algorithm if pieces else "tw"
    return _combine(pieces, name, budget_exhausted=exhausted)


def ghw_by_components(
    hypergraph: Hypergraph,
    solver: Callable[..., SearchResult],
    time_limit: float | None = None,
    node_limit: int | None = None,
    rng: random.Random | None = None,
) -> SearchResult:
    """Run a ghw ``solver`` per connected component of the hypergraph.

    Components are taken in the primal graph; each sub-hypergraph keeps
    exactly the hyperedges inside its component (hyperedges never span
    components, by definition of the primal graph).
    """
    primal = hypergraph.primal_graph()
    components = primal.connected_components()
    components.sort(key=len, reverse=True)
    pieces: list[SearchResult] = []
    remaining_nodes = node_limit
    exhausted = False
    for index, component in enumerate(components):
        names = {
            name
            for name, edge in hypergraph.edges().items()
            if edge & component
        }
        piece_hypergraph = Hypergraph(vertices=component)
        for name in sorted(names, key=repr):
            piece_hypergraph.add_edge(name, hypergraph.edge(name))
        piece = solver(
            piece_hypergraph,
            time_limit=time_limit,
            node_limit=remaining_nodes,
            rng=rng,
        )
        pieces.append(piece)
        remaining_nodes, ran_dry = _spend(
            remaining_nodes, piece, len(components) - index - 1
        )
        exhausted = exhausted or ran_dry
    name = pieces[0].algorithm if pieces else "ghw"
    return _combine(pieces, name, budget_exhausted=exhausted)
