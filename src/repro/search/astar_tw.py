"""A*-tw: best-first exact treewidth (Chapter 5, Figure 5.1).

The branch-and-bound tree over elimination prefixes is searched best-first
with evaluation ``f(n) = max(g(n), h(n), f(parent))`` where ``g`` is the
width of the prefix and ``h`` an admissible treewidth lower bound on the
remaining graph (max of minor-min-width and minor-gamma_R, Section 4.4.2).
Among equal ``f`` the deeper state is preferred, so goals surface early
once the frontier reaches the treewidth level (Section 5.3).

Search-space shrinking follows the thesis exactly: states with
``f >= ub`` are never enqueued; a simplicial or strongly almost
simplicial vertex forces an only child; pruning rule 2 removes
swap-redundant siblings (skipped when the parent's children were forced).

Because ``f`` never decreases along a path, the ``f`` of the last visited
state is an anytime treewidth *lower bound* — interrupting A*-tw yields
``[last f, ub]`` (Section 5.3), which Table 5.1 reports for the instances
the thesis could not finish.
"""

from __future__ import annotations

import heapq
import random
from itertools import count

from repro import obs
from repro.bounds.lower import treewidth_lower_bound
from repro.bounds.upper import upper_bound_ordering
from repro.hypergraphs.elimination_graph import EliminationGraph
from repro.hypergraphs.graph import Graph, Vertex
from repro.obs.control import SolverControl
from repro.reductions.pruning import pr2_prune_children, swap_safe_treewidth
from repro.reductions.simplicial import find_reduction_vertex
from repro.search.common import (
    SearchBudget,
    SearchResult,
    attach_metrics,
    certified,
    interrupted,
)


def astar_treewidth(
    graph: Graph,
    time_limit: float | None = None,
    node_limit: int | None = None,
    use_pr2: bool = True,
    use_reductions: bool = True,
    lb_methods: tuple[str, ...] = ("minor-min-width", "minor-gamma-r"),
    rng: random.Random | None = None,
    control: SolverControl | None = None,
) -> SearchResult:
    """Compute the treewidth of ``graph`` via best-first search.

    Returns a certified :class:`SearchResult` or, when the budget runs
    out, bounds with ``lower_bound`` taken from the A* frontier.

    ``control`` attaches the search to a portfolio bound bus: states are
    additionally pruned against the portfolio incumbent upper bound, the
    anytime frontier lower bound is published as it rises, and the search
    stops cooperatively. Once external pruning has occurred, frontier
    ``f`` values above the external bound no longer prove a lower bound,
    so the published/returned lower bound is capped at the smallest
    external bound ever pruned against.
    """
    budget = SearchBudget(time_limit=time_limit, node_limit=node_limit)
    name = "astar-tw"
    ins = obs.current()
    metrics = ins.metrics
    nodes_total = metrics.counter("nodes", solver=name)
    prune_pr2 = metrics.counter("prunes", rule="pr2", solver=name)
    prune_ub = metrics.counter("prunes", rule="ub", solver=name)
    forced_total = metrics.counter("reductions", kind="forced", solver=name)

    def _finish(result: SearchResult) -> SearchResult:
        return attach_metrics(result, metrics)

    n = graph.num_vertices()
    if n <= 1:
        return _finish(
            certified(0, sorted(graph.vertices(), key=repr), budget, name)
        )

    with ins.tracer.span(name, vertices=n):
        with ins.tracer.span("root_bounds"):
            lb = treewidth_lower_bound(graph, methods=lb_methods, rng=rng)
            ub, ub_ordering = upper_bound_ordering(graph, "min-fill", rng)
        if control is not None:
            control.publish_lower(lb)
            control.publish_upper(ub, ub_ordering)
        if lb >= ub:
            return _finish(certified(ub, ub_ordering, budget, name))

        ext_floor: int | None = None

        def effective_ub() -> int:
            """Pruning bound: own root ub vs the bus incumbent."""
            nonlocal ext_floor
            if control is not None:
                shared = control.shared_upper_bound()
                if shared is not None and shared < ub:
                    ext_floor = (
                        shared if ext_floor is None else min(ext_floor, shared)
                    )
                    return shared
            return ub

        def proven_lb() -> int:
            """The frontier lb, capped by any external bound pruned against."""
            return lb if ext_floor is None else min(lb, ext_floor)

        working = EliminationGraph(graph)
        sequence = count()
        # Heap entries: (f, -depth, tiebreak, g, prefix, children, forced)
        heap: list[
            tuple[int, int, int, int, tuple[Vertex, ...], tuple[Vertex, ...], bool]
        ] = []

        root_children = tuple(sorted(graph.vertices(), key=repr))
        root_forced = False
        if use_reductions:
            reduction = find_reduction_vertex(graph, lb)
            if reduction is not None:
                root_children = (reduction,)
                root_forced = True
        heapq.heappush(
            heap, (lb, 0, next(sequence), 0, (), root_children, root_forced)
        )

        with ins.tracer.span("search"):
            while heap:
                if budget.exhausted() or (
                    control is not None and control.should_stop()
                ):
                    return _finish(
                        interrupted(proven_lb(), ub, ub_ordering, budget, name)
                    )
                f, neg_depth, _tie, g, prefix, children, forced = heapq.heappop(heap)
                budget.charge()
                nodes_total.inc()
                if f > lb:
                    lb = f
                    if control is not None:
                        control.publish_lower(proven_lb())
                if control is not None:
                    control.checkpoint(
                        {
                            "best_fitness": ub,
                            "best_individual": list(ub_ordering),
                            "lower_bound": proven_lb(),
                            "nodes": budget.nodes,
                        }
                    )
                working.switch_to(prefix)
                remaining = working.num_vertices()

                if g >= remaining - 1:
                    # Goal: finishing in any order yields width exactly g.
                    ordering = list(prefix) + sorted(working.vertices(), key=repr)
                    if ext_floor is not None and ext_floor < g:
                        # States between the external bound and g were
                        # pruned, so g is not certified here — but the
                        # bus witness at ext_floor closes the portfolio.
                        return _finish(
                            interrupted(ext_floor, g, ordering, budget, name)
                        )
                    return _finish(certified(g, ordering, budget, name))

                for child in children:
                    degree = working.degree(child)
                    child_g = max(g, degree)
                    grandchildren = [v for v in working.vertices() if v != child]
                    if use_pr2 and not forced:
                        kept = pr2_prune_children(
                            working.graph(), child, grandchildren,
                            swap_safe=swap_safe_treewidth,
                        )
                        prune_pr2.inc(len(grandchildren) - len(kept))
                        grandchildren = kept
                    working.eliminate(child)
                    child_forced = False
                    if use_reductions:
                        reduction = find_reduction_vertex(
                            working.graph(), max(child_g, lb)
                        )
                        if reduction is not None:
                            grandchildren = [reduction]
                            child_forced = True
                            forced_total.inc()
                    h = treewidth_lower_bound(
                        working.graph(), methods=lb_methods, rng=rng
                    )
                    child_f = max(child_g, h, f)
                    if child_f < effective_ub():
                        heapq.heappush(
                            heap,
                            (
                                child_f,
                                neg_depth - 1,
                                next(sequence),
                                child_g,
                                prefix + (child,),
                                tuple(grandchildren),
                                child_forced,
                            ),
                        )
                    else:
                        prune_ub.inc()
                    working.restore()

        # Every state with f < ub was exhausted: ub is the treewidth —
        # unless pruning used an external bound below ub, in which case
        # exhaustion only proves the optimum is at least that bound.
        if ext_floor is not None and ext_floor < ub:
            if control is not None:
                control.publish_lower(ext_floor)
            return _finish(
                interrupted(ext_floor, ub, ub_ordering, budget, name)
            )
        if control is not None:
            control.publish_lower(ub)
        return _finish(certified(ub, ub_ordering, budget, name))
