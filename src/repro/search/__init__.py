"""Exact width algorithms: A*-tw, BB-tw, BB-ghw, A*-ghw."""

from repro.search.astar_ghw import astar_ghw
from repro.search.astar_tw import astar_treewidth
from repro.search.bb_ghw import branch_and_bound_ghw
from repro.search.bb_tw import branch_and_bound_treewidth
from repro.search.common import SearchBudget, SearchResult

__all__ = [
    "SearchBudget",
    "SearchResult",
    "astar_ghw",
    "astar_treewidth",
    "branch_and_bound_ghw",
    "branch_and_bound_treewidth",
]
