"""Branch and bound for exact treewidth (the Section 4.4 baseline).

This is the QuickBB/BB-tw-style algorithm the thesis reviews and compares
against: depth-first search over elimination-ordering prefixes with

* an initial incumbent from the min-fill heuristic,
* per-node lower bounds ``f = max(g, h)`` with ``h`` a minor-based
  treewidth lower bound on the remaining graph,
* pruning rule 1 (finish-now certificates, Section 4.4.5),
* pruning rule 2 (swap-redundant sibling elimination),
* simplicial / strongly almost simplicial forcing (Section 4.4.3).

The search walks a single :class:`EliminationGraph` with undo, so moving
between search nodes costs only the differing suffix.
"""

from __future__ import annotations

import random

from repro import obs
from repro.bounds.lower import treewidth_lower_bound
from repro.bounds.upper import upper_bound_ordering
from repro.hypergraphs.elimination_graph import EliminationGraph
from repro.hypergraphs.graph import Graph, Vertex
from repro.obs.control import SolverControl
from repro.reductions.pruning import pr1_treewidth, pr2_prune_children, swap_safe_treewidth
from repro.reductions.simplicial import find_reduction_vertex
from repro.search.common import (
    SearchBudget,
    SearchResult,
    attach_metrics,
    certified,
    interrupted,
)


class _Incumbent:
    """Best complete ordering found so far.

    When a :class:`SolverControl` is attached, improvements are published
    to it (the portfolio's bound bus) as they happen.
    """

    def __init__(
        self,
        width: int,
        ordering: list[Vertex],
        control: SolverControl | None = None,
    ) -> None:
        self.width = width
        self.ordering = ordering
        self.control = control
        if control is not None:
            control.publish_upper(width, ordering)

    def offer(self, width: int, ordering: list[Vertex]) -> None:
        if width < self.width:
            self.width = width
            self.ordering = ordering
            if self.control is not None:
                self.control.publish_upper(width, ordering)


def branch_and_bound_treewidth(
    graph: Graph,
    time_limit: float | None = None,
    node_limit: int | None = None,
    use_pr2: bool = True,
    use_reductions: bool = True,
    lb_methods: tuple[str, ...] = ("minor-min-width", "minor-gamma-r"),
    rng: random.Random | None = None,
    control: SolverControl | None = None,
) -> SearchResult:
    """Compute the treewidth of ``graph`` (or bounds, if interrupted).

    ``control`` attaches the search to a portfolio bound bus: the search
    stops cooperatively when the control says so, prunes against the
    portfolio-wide incumbent upper bound, publishes its own incumbent and
    proven lower bounds, and offers best-so-far checkpoints. When the
    search exhausts while pruning against an external bound below its own
    incumbent, the result is an ``interrupted`` bracket whose lower bound
    equals that external bound — the matching witness lives elsewhere on
    the bus, so the portfolio (not this worker) certifies optimality.
    """
    budget = SearchBudget(time_limit=time_limit, node_limit=node_limit)
    name = "bb-tw"
    ins = obs.current()
    metrics = ins.metrics
    nodes_total = metrics.counter("nodes", solver=name)
    prune_pr1 = metrics.counter("prunes", rule="pr1", solver=name)
    prune_pr2 = metrics.counter("prunes", rule="pr2", solver=name)
    prune_incumbent = metrics.counter("prunes", rule="incumbent", solver=name)
    prune_lb = metrics.counter("prunes", rule="lb", solver=name)
    forced_total = metrics.counter("reductions", kind="forced", solver=name)

    def _finish(result: SearchResult) -> SearchResult:
        return attach_metrics(result, metrics)

    n = graph.num_vertices()
    if n == 0:
        return _finish(certified(0, [], budget, name))
    if n == 1:
        return _finish(certified(0, list(graph.vertices()), budget, name))

    with ins.tracer.span(name, vertices=n):
        with ins.tracer.span("root_bounds"):
            root_lb = treewidth_lower_bound(graph, methods=lb_methods, rng=rng)
            ub_width, ub_ordering = upper_bound_ordering(graph, "min-fill", rng)
        incumbent = _Incumbent(ub_width, ub_ordering, control)
        if control is not None:
            control.publish_lower(root_lb)
        if root_lb >= incumbent.width:
            return _finish(
                certified(incumbent.width, incumbent.ordering, budget, name)
            )

        working = EliminationGraph(graph)
        aborted = False
        ext_floor: int | None = None

        def bound() -> int:
            """Effective pruning bound: own incumbent vs the bus incumbent."""
            nonlocal ext_floor
            if control is not None:
                shared = control.shared_upper_bound()
                if shared is not None and shared < incumbent.width:
                    ext_floor = (
                        shared if ext_floor is None else min(ext_floor, shared)
                    )
                    return shared
            return incumbent.width

        def visit(g: int, children: list[Vertex], forced: bool) -> None:
            """Depth-first expansion; ``children`` were computed by the parent
            (so PR2 could consult the pre-elimination graph)."""
            nonlocal aborted
            if (
                aborted
                or budget.exhausted()
                or (control is not None and control.should_stop())
            ):
                aborted = True
                return
            budget.charge()
            nodes_total.inc()
            if control is not None:
                control.checkpoint(
                    {
                        "best_fitness": incumbent.width,
                        "best_individual": list(incumbent.ordering),
                        "lower_bound": root_lb,
                        "nodes": budget.nodes,
                    }
                )

            remaining = working.num_vertices()
            prefix = working.eliminated()
            if remaining == 0:
                incumbent.offer(g, list(prefix))
                return

            achievable, close = pr1_treewidth(g, remaining)
            if achievable < incumbent.width:
                incumbent.offer(
                    achievable, list(prefix) + sorted(working.vertices(), key=repr)
                )
            if close:
                prune_pr1.inc()
                return

            # Order children cheapest-degree-first: good solutions early
            # tighten the incumbent for the remaining siblings.
            ranked = sorted(
                children, key=lambda v: (working.degree(v), repr(v))
            )
            for child in ranked:
                if aborted:
                    return
                limit = bound()
                degree = working.degree(child)
                child_g = max(g, degree)
                if child_g >= limit:
                    prune_incumbent.inc()
                    continue
                grandchildren = [
                    v for v in working.vertices() if v != child
                ]
                if use_pr2 and not forced:
                    kept = pr2_prune_children(
                        working.graph(), child, grandchildren,
                        swap_safe=swap_safe_treewidth,
                    )
                    prune_pr2.inc(len(grandchildren) - len(kept))
                    grandchildren = kept
                working.eliminate(child)
                child_forced = False
                if use_reductions:
                    reduction = find_reduction_vertex(
                        working.graph(), max(child_g, root_lb)
                    )
                    if reduction is not None:
                        grandchildren = [reduction]
                        child_forced = True
                        forced_total.inc()
                h = treewidth_lower_bound(
                    working.graph(), methods=lb_methods, rng=rng
                )
                if max(child_g, h) < limit:
                    visit(child_g, grandchildren, child_forced)
                else:
                    prune_lb.inc()
                working.restore()

        root_children = sorted(graph.vertices(), key=repr)
        root_forced = False
        if use_reductions:
            reduction = find_reduction_vertex(graph, root_lb)
            if reduction is not None:
                root_children = [reduction]
                root_forced = True
        with ins.tracer.span("search"):
            visit(0, root_children, root_forced)

        if aborted:
            return _finish(
                interrupted(
                    root_lb, incumbent.width, incumbent.ordering, budget, name
                )
            )
        if ext_floor is not None and ext_floor < incumbent.width:
            # Exhausted while pruning against a portfolio bound below our
            # own incumbent: optimum >= that bound is proven here, the
            # matching witness lives elsewhere on the bus.
            final_lb = max(root_lb, ext_floor)
            if control is not None:
                control.publish_lower(final_lb)
            return _finish(
                interrupted(
                    final_lb, incumbent.width, incumbent.ordering, budget, name
                )
            )
        if control is not None:
            control.publish_lower(incumbent.width)
        return _finish(
            certified(incumbent.width, incumbent.ordering, budget, name)
        )
