"""BB-ghw: branch and bound for exact generalized hypertree width (Ch. 8).

The search space is the set of elimination orderings (sound and complete
for ghw by Theorems 2 and 3). A search node is an elimination prefix of
the primal graph; its cost ``g`` is the largest *exact* set-cover size of
any bag produced so far — covers are taken over the original hyperedges,
exactly as in Definition 17. Ingredients, following Chapter 8:

* initial incumbent: best of min-fill / min-degree orderings evaluated
  with greedy covers (Section 2.5.2),
* lower bound ``h``: ``tw-ksc-width`` of the remaining instance
  (Section 8.1) — a treewidth lower bound on the remaining (filled) graph
  chained with a k-set-cover lower bound over the hyperedges restricted
  to the remaining vertices,
* reduction: a simplicial vertex of the current graph is forced as the
  only child (Section 8.2; safe for ghw — see DESIGN.md),
* pruning rule 1 in cover form: finishing immediately costs at most the
  cover number of the whole remainder (Section 8.3),
* pruning rule 2 in its non-adjacent (ghw-safe) form (Section 8.3).

Exact covers are produced by a memoised branch-and-bound set-cover solver
shared across the entire search — elimination bags repeat massively.
"""

from __future__ import annotations

import random

from repro import obs
from repro.bounds.ghw_lower import tw_ksc_width_remaining
from repro.bounds.upper import min_degree_ordering, min_fill_ordering
from repro.hypergraphs.elimination_graph import EliminationGraph
from repro.hypergraphs.graph import Vertex
from repro.hypergraphs.hypergraph import Hypergraph
from repro.obs.control import SolverControl
from repro.reductions.pruning import pr1_ghw, pr2_prune_children, swap_safe_ghw
from repro.reductions.simplicial import find_simplicial
from repro.search.common import (
    SearchBudget,
    SearchResult,
    attach_metrics,
    certified,
    interrupted,
)
from repro.setcover.exact import ExactSetCoverSolver
from repro.setcover.greedy import greedy_set_cover


class _Incumbent:
    def __init__(
        self,
        width: int,
        ordering: list[Vertex],
        control: SolverControl | None = None,
    ) -> None:
        self.width = width
        self.ordering = ordering
        self.control = control
        if control is not None:
            control.publish_upper(width, ordering)

    def offer(self, width: int, ordering: list[Vertex]) -> None:
        if width < self.width:
            self.width = width
            self.ordering = ordering
            if self.control is not None:
                self.control.publish_upper(width, ordering)


def initial_ghw_incumbent(
    hypergraph: Hypergraph,
    solver: ExactSetCoverSolver,
    rng: random.Random | None = None,
) -> tuple[int, list[Vertex]]:
    """Best heuristic ordering, scored with *exact* covers.

    Greedy covers would also be sound (they only overestimate), but the
    heuristic orderings are few and scoring them exactly gives the search
    a genuinely attainable incumbent.
    """
    from repro.decompositions.elimination import elimination_bags

    primal = hypergraph.primal_graph()
    best_width: int | None = None
    best_ordering: list[Vertex] = []
    for build in (min_fill_ordering, min_degree_ordering):
        ordering = build(primal, rng)
        bags = elimination_bags(primal, ordering)
        width = max(
            (solver.cover_size(bag) for bag in bags.values()), default=0
        )
        if best_width is None or width < best_width:
            best_width = width
            best_ordering = ordering
    assert best_width is not None
    return best_width, best_ordering


def branch_and_bound_ghw(
    hypergraph: Hypergraph,
    time_limit: float | None = None,
    node_limit: int | None = None,
    use_pr2: bool = True,
    use_reductions: bool = True,
    lb_methods: tuple[str, ...] = ("minor-min-width", "minor-gamma-r"),
    rng: random.Random | None = None,
    control: SolverControl | None = None,
) -> SearchResult:
    """Compute ``ghw(hypergraph)`` (or bounds, if interrupted).

    ``control`` attaches the search to a portfolio bound bus exactly as
    in :func:`~repro.search.bb_tw.branch_and_bound_treewidth`: stop
    cooperatively, prune against the portfolio incumbent, publish bound
    improvements and best-so-far checkpoints.
    """
    budget = SearchBudget(time_limit=time_limit, node_limit=node_limit)
    name = "bb-ghw"
    ins = obs.current()
    metrics = ins.metrics
    nodes_total = metrics.counter("nodes", solver=name)
    prune_pr1 = metrics.counter("prunes", rule="pr1", solver=name)
    prune_pr2 = metrics.counter("prunes", rule="pr2", solver=name)
    prune_incumbent = metrics.counter("prunes", rule="incumbent", solver=name)
    prune_lb = metrics.counter("prunes", rule="lb", solver=name)
    forced_total = metrics.counter("reductions", kind="forced", solver=name)

    def _finish(result: SearchResult) -> SearchResult:
        return attach_metrics(result, metrics)

    n = hypergraph.num_vertices()
    if n == 0 or hypergraph.num_edges() == 0:
        return _finish(
            certified(0, sorted(hypergraph.vertices(), key=repr), budget, name)
        )

    edges = hypergraph.edges()
    solver = ExactSetCoverSolver(edges)
    primal = hypergraph.primal_graph()

    with ins.tracer.span(name, vertices=n, edges=hypergraph.num_edges()):
        with ins.tracer.span("root_bounds"):
            root_lb = tw_ksc_width_remaining(
                hypergraph, primal, tw_methods=lb_methods, rng=rng
            )
            ub_width, ub_ordering = initial_ghw_incumbent(hypergraph, solver, rng)
        incumbent = _Incumbent(ub_width, ub_ordering, control)
        if control is not None:
            control.publish_lower(root_lb)
        if root_lb >= incumbent.width:
            return _finish(
                certified(incumbent.width, incumbent.ordering, budget, name)
            )

        working = EliminationGraph(primal)
        aborted = False
        ext_floor: int | None = None

        def bound() -> int:
            """Effective pruning bound: own incumbent vs the bus incumbent."""
            nonlocal ext_floor
            if control is not None:
                shared = control.shared_upper_bound()
                if shared is not None and shared < incumbent.width:
                    ext_floor = (
                        shared if ext_floor is None else min(ext_floor, shared)
                    )
                    return shared
            return incumbent.width

        def remainder_cover_size() -> int:
            """Greedy cover of all remaining vertices (PR1's certificate)."""
            remaining = working.vertices()
            if not remaining:
                return 0
            restricted = {
                name_: edge & remaining
                for name_, edge in edges.items()
                if edge & remaining
            }
            return len(
                greedy_set_cover(
                    remaining,
                    {k: frozenset(v) for k, v in restricted.items()},
                )
            )

        def visit(g: int, children: list[Vertex], forced: bool) -> None:
            nonlocal aborted
            if (
                aborted
                or budget.exhausted()
                or (control is not None and control.should_stop())
            ):
                aborted = True
                return
            budget.charge()
            nodes_total.inc()
            if control is not None:
                control.checkpoint(
                    {
                        "best_fitness": incumbent.width,
                        "best_individual": list(incumbent.ordering),
                        "lower_bound": root_lb,
                        "nodes": budget.nodes,
                    }
                )

            prefix = working.eliminated()
            if working.num_vertices() == 0:
                incumbent.offer(g, list(prefix))
                return

            achievable, close = pr1_ghw(g, remainder_cover_size())
            if achievable < incumbent.width:
                incumbent.offer(
                    achievable, list(prefix) + sorted(working.vertices(), key=repr)
                )
            if close:
                prune_pr1.inc()
                return

            ranked = sorted(
                children, key=lambda v: (working.degree(v), repr(v))
            )
            for child in ranked:
                if aborted:
                    return
                limit = bound()
                bag = {child} | working.neighbours(child)
                child_g = max(g, solver.cover_size(bag))
                if child_g >= limit:
                    prune_incumbent.inc()
                    continue
                grandchildren = [v for v in working.vertices() if v != child]
                if use_pr2 and not forced:
                    kept = pr2_prune_children(
                        working.graph(), child, grandchildren,
                        swap_safe=swap_safe_ghw,
                    )
                    prune_pr2.inc(len(grandchildren) - len(kept))
                    grandchildren = kept
                working.eliminate(child)
                child_forced = False
                if use_reductions:
                    simplicial = find_simplicial(working.graph())
                    if simplicial is not None:
                        grandchildren = [simplicial]
                        child_forced = True
                        forced_total.inc()
                h = tw_ksc_width_remaining(
                    hypergraph, working.graph(), tw_methods=lb_methods, rng=rng
                )
                if max(child_g, h) < limit:
                    visit(child_g, grandchildren, child_forced)
                else:
                    prune_lb.inc()
                working.restore()

        root_children = sorted(primal.vertices(), key=repr)
        root_forced = False
        if use_reductions:
            simplicial = find_simplicial(primal)
            if simplicial is not None:
                root_children = [simplicial]
                root_forced = True
        with ins.tracer.span("search"):
            visit(0, root_children, root_forced)

        if aborted:
            return _finish(
                interrupted(
                    root_lb, incumbent.width, incumbent.ordering, budget, name
                )
            )
        if ext_floor is not None and ext_floor < incumbent.width:
            # Exhausted while pruning against a portfolio bound below our
            # own incumbent: optimum >= that bound is proven here, the
            # matching witness lives elsewhere on the bus.
            final_lb = max(root_lb, ext_floor)
            if control is not None:
                control.publish_lower(final_lb)
            return _finish(
                interrupted(
                    final_lb, incumbent.width, incumbent.ordering, budget, name
                )
            )
        if control is not None:
            control.publish_lower(incumbent.width)
        return _finish(
            certified(incumbent.width, incumbent.ordering, budget, name)
        )
