"""A*-ghw: best-first exact generalized hypertree width (Chapter 9).

The best-first counterpart of BB-ghw, built like A*-tw (Chapter 5) on
the ghw ingredients: ``g`` is the largest exact bag-cover size of the
prefix, ``h`` the tw-ksc-width lower bound of the remaining instance, and
``f = max(g, h, f(parent))`` is nondecreasing along paths, so the ``f``
of the last visited state is an anytime ghw *lower bound* — the quantity
Tables 9.1/9.2 report for instances the thesis could not close.

Goal test: once every hyperedge-restricted remainder can be covered
within ``g`` (PR1's certificate, here checked as "the greedy cover of the
whole remainder is at most g"), finishing in any order costs ``g``; the
first such state popped is optimal.
"""

from __future__ import annotations

import heapq
import random
from itertools import count

from repro import obs
from repro.bounds.ghw_lower import tw_ksc_width_remaining
from repro.hypergraphs.elimination_graph import EliminationGraph
from repro.hypergraphs.graph import Vertex
from repro.hypergraphs.hypergraph import Hypergraph
from repro.obs.control import SolverControl
from repro.reductions.pruning import pr2_prune_children, swap_safe_ghw
from repro.reductions.simplicial import find_simplicial
from repro.search.bb_ghw import initial_ghw_incumbent
from repro.search.common import (
    SearchBudget,
    SearchResult,
    attach_metrics,
    certified,
    interrupted,
)
from repro.setcover.exact import ExactSetCoverSolver
from repro.setcover.greedy import greedy_set_cover


def astar_ghw(
    hypergraph: Hypergraph,
    time_limit: float | None = None,
    node_limit: int | None = None,
    use_pr2: bool = True,
    use_reductions: bool = True,
    lb_methods: tuple[str, ...] = ("minor-min-width", "minor-gamma-r"),
    rng: random.Random | None = None,
    control: SolverControl | None = None,
) -> SearchResult:
    """Compute ``ghw(hypergraph)`` via best-first search.

    ``control`` attaches the search to a portfolio bound bus exactly as
    in :func:`~repro.search.astar_tw.astar_treewidth`; once external
    pruning has occurred, the returned/published lower bound is capped at
    the smallest external bound ever pruned against.
    """
    budget = SearchBudget(time_limit=time_limit, node_limit=node_limit)
    name = "astar-ghw"
    ins = obs.current()
    metrics = ins.metrics
    nodes_total = metrics.counter("nodes", solver=name)
    prune_pr2 = metrics.counter("prunes", rule="pr2", solver=name)
    prune_ub = metrics.counter("prunes", rule="ub", solver=name)
    forced_total = metrics.counter("reductions", kind="forced", solver=name)

    def _finish(result: SearchResult) -> SearchResult:
        return attach_metrics(result, metrics)

    if hypergraph.num_vertices() == 0 or hypergraph.num_edges() == 0:
        return _finish(
            certified(0, sorted(hypergraph.vertices(), key=repr), budget, name)
        )

    edges = hypergraph.edges()
    solver = ExactSetCoverSolver(edges)
    primal = hypergraph.primal_graph()

    with ins.tracer.span(
        name, vertices=hypergraph.num_vertices(), edges=hypergraph.num_edges()
    ):
        with ins.tracer.span("root_bounds"):
            lb = tw_ksc_width_remaining(
                hypergraph, primal, tw_methods=lb_methods, rng=rng
            )
            ub, ub_ordering = initial_ghw_incumbent(hypergraph, solver, rng)
        if control is not None:
            control.publish_lower(lb)
            control.publish_upper(ub, ub_ordering)
        if lb >= ub:
            return _finish(certified(ub, ub_ordering, budget, name))

        ext_floor: int | None = None

        def effective_ub() -> int:
            """Pruning bound: own root ub vs the bus incumbent."""
            nonlocal ext_floor
            if control is not None:
                shared = control.shared_upper_bound()
                if shared is not None and shared < ub:
                    ext_floor = (
                        shared if ext_floor is None else min(ext_floor, shared)
                    )
                    return shared
            return ub

        def proven_lb() -> int:
            """The frontier lb, capped by any external bound pruned against."""
            return lb if ext_floor is None else min(lb, ext_floor)

        working = EliminationGraph(primal)
        sequence = count()
        heap: list[
            tuple[int, int, int, int, tuple[Vertex, ...], tuple[Vertex, ...], bool]
        ] = []

        def remainder_cover_size() -> int:
            remaining = working.vertices()
            if not remaining:
                return 0
            restricted = {
                name_: frozenset(edge & remaining)
                for name_, edge in edges.items()
                if edge & remaining
            }
            return len(greedy_set_cover(remaining, restricted))

        root_children = tuple(sorted(primal.vertices(), key=repr))
        root_forced = False
        if use_reductions:
            simplicial = find_simplicial(primal)
            if simplicial is not None:
                root_children = (simplicial,)
                root_forced = True
        heapq.heappush(
            heap, (lb, 0, next(sequence), 0, (), root_children, root_forced)
        )

        with ins.tracer.span("search"):
            while heap:
                if budget.exhausted() or (
                    control is not None and control.should_stop()
                ):
                    return _finish(
                        interrupted(proven_lb(), ub, ub_ordering, budget, name)
                    )
                f, neg_depth, _tie, g, prefix, children, forced = heapq.heappop(heap)
                budget.charge()
                nodes_total.inc()
                if f > lb:
                    lb = f
                    if control is not None:
                        control.publish_lower(proven_lb())
                if control is not None:
                    control.checkpoint(
                        {
                            "best_fitness": ub,
                            "best_individual": list(ub_ordering),
                            "lower_bound": proven_lb(),
                            "nodes": budget.nodes,
                        }
                    )
                working.switch_to(prefix)

                if remainder_cover_size() <= g:
                    # Goal: any completion's bags stay within the remainder,
                    # whose cover fits in g — the completion has width
                    # exactly g.
                    ordering = list(prefix) + sorted(working.vertices(), key=repr)
                    if ext_floor is not None and ext_floor < g:
                        # States between the external bound and g were
                        # pruned, so g is not certified here — but the
                        # bus witness at ext_floor closes the portfolio.
                        return _finish(
                            interrupted(ext_floor, g, ordering, budget, name)
                        )
                    return _finish(certified(g, ordering, budget, name))

                for child in children:
                    bag = {child} | working.neighbours(child)
                    child_g = max(g, solver.cover_size(bag))
                    grandchildren = [v for v in working.vertices() if v != child]
                    if use_pr2 and not forced:
                        kept = pr2_prune_children(
                            working.graph(), child, grandchildren,
                            swap_safe=swap_safe_ghw,
                        )
                        prune_pr2.inc(len(grandchildren) - len(kept))
                        grandchildren = kept
                    working.eliminate(child)
                    child_forced = False
                    if use_reductions:
                        simplicial = find_simplicial(working.graph())
                        if simplicial is not None:
                            grandchildren = [simplicial]
                            child_forced = True
                            forced_total.inc()
                    h = tw_ksc_width_remaining(
                        hypergraph, working.graph(), tw_methods=lb_methods, rng=rng
                    )
                    child_f = max(child_g, h, f)
                    if child_f < effective_ub():
                        heapq.heappush(
                            heap,
                            (
                                child_f,
                                neg_depth - 1,
                                next(sequence),
                                child_g,
                                prefix + (child,),
                                tuple(grandchildren),
                                child_forced,
                            ),
                        )
                    else:
                        prune_ub.inc()
                    working.restore()

        if ext_floor is not None and ext_floor < ub:
            if control is not None:
                control.publish_lower(ext_floor)
            return _finish(
                interrupted(ext_floor, ub, ub_ordering, budget, name)
            )
        if control is not None:
            control.publish_lower(ub)
        return _finish(certified(ub, ub_ordering, budget, name))
