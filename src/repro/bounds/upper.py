"""Upper-bound ordering heuristics for treewidth (Section 4.4.2).

Each heuristic greedily builds an elimination ordering; evaluating the
ordering with :func:`repro.decompositions.elimination.ordering_width`
yields an upper bound on the treewidth. The min-fill heuristic is what
QuickBB and the thesis's A*-tw use for their initial ``ub``; min-degree,
min-width and maximum-cardinality search are classic alternatives kept
for comparison and for seeding genetic populations.

All heuristics accept an optional ``rng`` for random tie-breaking (the
thesis breaks ties randomly and reports the best of several runs);
without one, ties break deterministically on ``repr`` of the vertex.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.decompositions.elimination import ordering_width
from repro.hypergraphs.elimination_graph import EliminationGraph
from repro.hypergraphs.graph import Graph, Vertex


def _pick(
    candidates: list[Vertex],
    rng: random.Random | None,
) -> Vertex:
    if rng is None:
        return min(candidates, key=repr)
    return rng.choice(candidates)


def _greedy_ordering(
    graph: Graph,
    score: Callable[[EliminationGraph, Vertex], int],
    rng: random.Random | None,
) -> list[Vertex]:
    """Repeatedly eliminate a vertex minimising ``score``."""
    working = EliminationGraph(graph)
    ordering: list[Vertex] = []
    while working.num_vertices() > 0:
        best_score: int | None = None
        best: list[Vertex] = []
        for vertex in working.vertices():
            value = score(working, vertex)
            if best_score is None or value < best_score:
                best_score = value
                best = [vertex]
            elif value == best_score:
                best.append(vertex)
        choice = _pick(best, rng)
        working.eliminate(choice)
        ordering.append(choice)
    return ordering


def min_fill_ordering(
    graph: Graph, rng: random.Random | None = None
) -> list[Vertex]:
    """Eliminate the vertex adding the fewest fill-in edges first."""
    return _greedy_ordering(
        graph, lambda working, v: working.graph().fill_in(v), rng
    )


def min_degree_ordering(
    graph: Graph, rng: random.Random | None = None
) -> list[Vertex]:
    """Eliminate a minimum-degree vertex first."""
    return _greedy_ordering(graph, lambda working, v: working.degree(v), rng)


def min_width_ordering(
    graph: Graph, rng: random.Random | None = None
) -> list[Vertex]:
    """Min-width: repeatedly *remove* (no fill) a minimum-degree vertex.

    The removal order is returned as an elimination ordering; evaluating
    it performs proper elimination, so the resulting width may exceed the
    degrees observed during construction.
    """
    working = graph.copy()
    ordering: list[Vertex] = []
    while working.num_vertices() > 0:
        lowest = min(working.degree(v) for v in working)
        candidates = [v for v in working if working.degree(v) == lowest]
        choice = _pick(candidates, rng)
        working.remove_vertex(choice)
        ordering.append(choice)
    return ordering


def max_cardinality_ordering(
    graph: Graph, rng: random.Random | None = None
) -> list[Vertex]:
    """Maximum cardinality search (MCS) elimination ordering.

    MCS numbers vertices n..1 by repeatedly picking the vertex with the
    most already-numbered neighbours; eliminating in increasing number
    order is the associated elimination ordering, so the vertex picked
    *first* by MCS is eliminated *last*.
    """
    weights: dict[Vertex, int] = {vertex: 0 for vertex in graph}
    reverse: list[Vertex] = []
    remaining = graph.vertices()
    while remaining:
        highest = max(weights[v] for v in remaining)
        candidates = [v for v in remaining if weights[v] == highest]
        choice = _pick(candidates, rng)
        reverse.append(choice)
        remaining.discard(choice)
        for neighbour in graph.neighbours(choice):
            if neighbour in remaining:
                weights[neighbour] += 1
    reverse.reverse()
    return reverse


_HEURISTICS: dict[str, Callable[[Graph, random.Random | None], list[Vertex]]] = {
    "min-fill": min_fill_ordering,
    "min-degree": min_degree_ordering,
    "min-width": min_width_ordering,
    "mcs": max_cardinality_ordering,
}


def heuristic_names() -> list[str]:
    return list(_HEURISTICS)


def upper_bound_ordering(
    graph: Graph,
    heuristic: str = "min-fill",
    rng: random.Random | None = None,
) -> tuple[int, list[Vertex]]:
    """Run ``heuristic`` and return ``(width, ordering)``."""
    try:
        build = _HEURISTICS[heuristic]
    except KeyError:
        raise ValueError(
            f"unknown heuristic {heuristic!r}; choose from {heuristic_names()}"
        ) from None
    ordering = build(graph, rng)
    return ordering_width(graph, ordering), ordering


def treewidth_upper_bound(
    graph: Graph,
    heuristic: str = "min-fill",
    rng: random.Random | None = None,
    restarts: int = 1,
) -> int:
    """Best width over ``restarts`` runs of ``heuristic``."""
    best = graph.num_vertices()
    for _ in range(max(1, restarts)):
        width, _ordering = upper_bound_ordering(graph, heuristic, rng)
        best = min(best, width)
    return best
