"""The tw-ksc-width lower bound for generalized hypertree width (Fig. 8.1).

Section 8.1 of the thesis combines two ingredients into a ghw lower bound:

1. a treewidth lower bound ``t`` on the primal graph — every tree
   decomposition (hence every GHD) of the hypergraph has a bag with at
   least ``t + 1`` vertices, and
2. a lower bound for the *k-set-cover* problem — a bound on how many
   hyperedges are needed to cover *any* set of ``k = t + 1`` vertices.

Chaining them: some GHD node has ``|chi(p)| >= t + 1``; its lambda-label
covers ``chi(p)``; so ``|lambda(p)|`` is at least the k-set-cover lower
bound, and therefore so is the GHD's width. This holds for *every* GHD,
giving ``ghw(H) >= tw_ksc_width(H)``.

Both ingredients are pluggable; the ablation bench compares the choices.
The bound is also used on *remaining subinstances* during BB-ghw/A*-ghw:
there the hyperedges must be restricted to the not-yet-eliminated
vertices first (a bag of the remaining problem can only be covered by
what the edges still offer inside it), which
:func:`tw_ksc_width_remaining` handles.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.bounds.lower import treewidth_lower_bound
from repro.hypergraphs.graph import Graph, Vertex
from repro.hypergraphs.hypergraph import Hypergraph
from repro.setcover.lower_bounds import k_set_cover_lower_bound


def tw_ksc_width(
    hypergraph: Hypergraph,
    tw_methods: tuple[str, ...] = ("minor-min-width", "minor-gamma-r"),
    rng: random.Random | None = None,
    primal: Graph | None = None,
) -> int:
    """Algorithm tw-ksc-width: a lower bound on ``ghw(hypergraph)``.

    Parameters
    ----------
    hypergraph:
        The instance.
    tw_methods:
        Which treewidth lower bounds to combine (their max is used).
    rng:
        Random tie-breaking for the treewidth heuristics.
    primal:
        The primal graph, if the caller already has it (avoids a rebuild
        in search inner loops).
    """
    if hypergraph.num_edges() == 0:
        return 0
    graph = primal if primal is not None else hypergraph.primal_graph()
    tw_bound = treewidth_lower_bound(graph, methods=tw_methods, rng=rng)
    k = tw_bound + 1
    bound = k_set_cover_lower_bound(k, hypergraph.edges())
    # Any hypergraph with at least one edge needs at least one lambda edge.
    return max(1, bound)


def tw_ksc_width_remaining(
    hypergraph: Hypergraph,
    remaining_graph: Graph,
    remaining_vertices: Iterable[Vertex] | None = None,
    tw_methods: tuple[str, ...] = ("minor-min-width", "minor-gamma-r"),
    rng: random.Random | None = None,
) -> int:
    """tw-ksc-width of the instance left after a partial elimination.

    ``remaining_graph`` is the (fill-in-containing) graph after the
    elimination prefix; its treewidth lower-bounds the width still to be
    paid. Hyperedges are restricted to the remaining vertices: a bag of
    the remaining subproblem lies entirely inside them, so an edge can
    contribute at most its restricted size to any cover.

    Returns 0 for an empty remainder (nothing left to pay for).
    """
    vertices = (
        set(remaining_vertices)
        if remaining_vertices is not None
        else remaining_graph.vertices()
    )
    if not vertices:
        return 0
    restricted = hypergraph.restrict(vertices)
    if restricted.num_edges() == 0:
        return 0
    tw_bound = treewidth_lower_bound(
        remaining_graph, methods=tw_methods, rng=rng
    )
    k = tw_bound + 1
    bound = k_set_cover_lower_bound(k, restricted.edges())
    return max(1, bound)
