"""Treewidth lower-bound heuristics (Section 4.4.2).

All bounds here exploit the facts that (a) the treewidth of a graph is at
least the treewidth of any of its *minors* and (b) simple degree-based
parameters bound treewidth from below:

* **MMD / degeneracy**: repeatedly delete a minimum-degree vertex; the
  largest minimum degree seen is a lower bound.
* **minor-min-width** (Figure 4.7, QuickBB; independently MMD+(least-c)):
  like MMD but *contract* the minimum-degree vertex into its
  smallest-degree neighbour, strengthening the bound via minors.
* **gamma_R**: Ramachandramurthi's parameter — ``n - 1`` for a complete
  graph, otherwise the minimum over non-adjacent pairs ``u, v`` of
  ``max(degree(u), degree(v))``; always a treewidth lower bound.
* **minor-gamma_R** (Figure 4.8): maximise gamma_R over a sequence of
  minors obtained by contracting low-degree vertices.

``treewidth_lower_bound`` returns the max of the selected heuristics,
matching the thesis's choice for A*-tw ("the maximum of the values
returned by the minor-min-width heuristic and the minor-gamma_R
heuristic").
"""

from __future__ import annotations

import random

from repro.hypergraphs.graph import Graph, Vertex


def _min_degree_vertex(
    graph: Graph, rng: random.Random | None
) -> Vertex:
    lowest = min(graph.degree(v) for v in graph)
    candidates = [v for v in graph if graph.degree(v) == lowest]
    if rng is None:
        return min(candidates, key=repr)
    return rng.choice(candidates)


def _contract_into_min_neighbour(
    graph: Graph, vertex: Vertex, rng: random.Random | None
) -> None:
    """Contract ``vertex``'s edge to its minimum-degree neighbour.

    Isolated vertices are simply removed (there is no edge to contract;
    removing them never increases any degree-based bound).
    """
    neighbours = graph.neighbours(vertex)
    if not neighbours:
        graph.remove_vertex(vertex)
        return
    lowest = min(graph.degree(u) for u in neighbours)
    candidates = [u for u in neighbours if graph.degree(u) == lowest]
    if rng is None:
        partner = min(candidates, key=repr)
    else:
        partner = rng.choice(candidates)
    graph.contract(partner, vertex)


def degeneracy(graph: Graph, rng: random.Random | None = None) -> int:
    """MMD: the degeneracy of the graph, a treewidth lower bound."""
    working = graph.copy()
    bound = 0
    while working.num_vertices() > 0:
        vertex = _min_degree_vertex(working, rng)
        bound = max(bound, working.degree(vertex))
        working.remove_vertex(vertex)
    return bound


def minor_min_width(graph: Graph, rng: random.Random | None = None) -> int:
    """Figure 4.7: the minor-min-width treewidth lower bound."""
    working = graph.copy()
    bound = 0
    while working.num_vertices() > 0:
        vertex = _min_degree_vertex(working, rng)
        bound = max(bound, working.degree(vertex))
        _contract_into_min_neighbour(working, vertex, rng)
    return bound


def gamma_r(graph: Graph) -> int:
    """Ramachandramurthi's gamma parameter of ``graph``.

    ``n - 1`` if the graph is complete, else the minimum over vertices
    ``v`` that are non-adjacent to at least one other vertex of the
    degree of ``v``'s cheapest non-adjacent "partner" — equivalently,
    min over non-adjacent pairs of the larger degree.
    """
    vertices = sorted(graph.vertices(), key=lambda v: (graph.degree(v), repr(v)))
    n = len(vertices)
    if n == 0:
        return 0
    # First vertex (in ascending degree order) not adjacent to all its
    # predecessors: gamma equals its degree (Figure 4.8 step b/c).
    for index, vertex in enumerate(vertices):
        predecessors = vertices[:index]
        if any(not graph.has_edge(vertex, other) for other in predecessors):
            return graph.degree(vertex)
    return n - 1


def minor_gamma_r(graph: Graph, rng: random.Random | None = None) -> int:
    """Figure 4.8: maximise gamma_R over minimum-degree contractions."""
    working = graph.copy()
    bound = 0
    while working.num_vertices() > 0:
        bound = max(bound, gamma_r(working))
        if working.num_vertices() == 1:
            break
        vertex = _min_degree_vertex(working, rng)
        _contract_into_min_neighbour(working, vertex, rng)
    return bound


_METHODS = {
    "degeneracy": degeneracy,
    "minor-min-width": minor_min_width,
    "minor-gamma-r": minor_gamma_r,
}


def lower_bound_names() -> list[str]:
    return list(_METHODS)


def treewidth_lower_bound(
    graph: Graph,
    methods: tuple[str, ...] = ("minor-min-width", "minor-gamma-r"),
    rng: random.Random | None = None,
) -> int:
    """Max of the selected heuristics (the thesis's A*-tw combination)."""
    if graph.num_vertices() == 0:
        return 0
    best = 0
    for name in methods:
        method = _METHODS.get(name)
        if method is None:
            raise ValueError(
                f"unknown lower bound {name!r}; choose from {lower_bound_names()}"
            )
        best = max(best, method(graph, rng))
    return best
