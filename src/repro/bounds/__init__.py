"""Upper and lower bound heuristics for treewidth and ghw."""

from repro.bounds.ghw_lower import tw_ksc_width, tw_ksc_width_remaining
from repro.bounds.lower import (
    degeneracy,
    gamma_r,
    minor_gamma_r,
    minor_min_width,
    treewidth_lower_bound,
)
from repro.bounds.upper import (
    max_cardinality_ordering,
    min_degree_ordering,
    min_fill_ordering,
    min_width_ordering,
    treewidth_upper_bound,
    upper_bound_ordering,
)

__all__ = [
    "degeneracy",
    "gamma_r",
    "max_cardinality_ordering",
    "min_degree_ordering",
    "min_fill_ordering",
    "min_width_ordering",
    "minor_gamma_r",
    "minor_min_width",
    "treewidth_lower_bound",
    "treewidth_upper_bound",
    "tw_ksc_width",
    "tw_ksc_width_remaining",
    "upper_bound_ordering",
]
