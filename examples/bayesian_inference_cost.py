"""Bayesian networks: what the Section 4.5 GA was really for.

Exact inference in a Bayesian network runs on a junction tree — a tree
decomposition of the network's *moral graph* — and costs the sum of the
clique table sizes. This example builds three classic network shapes,
moralises them, and compares junction trees found by (a) the naive
variable order, (b) min-fill, and (c) the weighted GA that descends from
Larrañaga et al.'s triangulation GA (the thesis's Section 4.5 lineage),
showing how the weighted objective dodges large-state variables where
pure width cannot.

Run with::

    python examples/bayesian_inference_cost.py
"""

from __future__ import annotations

from repro.bayes.network import (
    BayesianNetwork,
    junction_tree,
    naive_bayes_network,
    sprinkler_network,
)
from repro.bounds.upper import min_fill_ordering


def diagnosis_network() -> BayesianNetwork:
    """A small two-layer diagnosis network with one huge nuisance node."""
    network = BayesianNetwork()
    network.add_variable("disease", 6)
    network.add_variable("exposure", 40)  # many-valued history variable
    for i in range(4):
        network.add_variable(f"symptom{i}", 3)
        network.add_edge("disease", f"symptom{i}")
    network.add_edge("exposure", "disease")
    network.add_edge("exposure", "symptom0")
    return network


def report(name: str, network: BayesianNetwork) -> None:
    moral = network.moral_graph()
    naive = junction_tree(network, ordering=sorted(network.variables(), key=repr))
    min_fill = junction_tree(
        network, ordering=min_fill_ordering(moral, None)
    )
    weighted = junction_tree(network, seed=0)
    print(f"\n{name}: {moral.num_vertices()} variables, "
          f"{moral.num_edges()} moral edges")
    for label, jt in (
        ("naive order", naive),
        ("min-fill", min_fill),
        ("weighted GA", weighted),
    ):
        print(
            f"  {label:>12}: width {jt.width()}, "
            f"total table size {jt.total_table_size:>7} "
            f"(log2 = {jt.log2_cost:.2f})"
        )
    assert weighted.total_table_size <= naive.total_table_size


def main() -> None:
    report("sprinkler", sprinkler_network())
    report("naive Bayes (8 features)", naive_bayes_network(8))
    report("diagnosis with heavy nuisance node", diagnosis_network())
    print(
        "\nWidth alone treats all bags equally; the weighted objective "
        "keeps the 40-state variable out of large cliques."
    )


if __name__ == "__main__":
    main()
