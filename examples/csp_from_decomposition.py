"""Figures 2.5, 2.8 and 2.9 as running code.

Walks the thesis's Example 5 through all three solving routes and prints
the intermediate relations, mirroring the worked figures:

* Figure 2.8 — Join-Tree Clustering over a tree decomposition,
* Figure 2.9 — solving from a complete generalized hypertree
  decomposition,
* Figure 2.5 — the Acyclic Solving sweeps on the resulting join tree.

Run with::

    python examples/csp_from_decomposition.py
"""

from __future__ import annotations

from repro.core.api import decompose
from repro.csp.builders import example_5_csp
from repro.csp.relations import join_all
from repro.csp.solve import solve_with_ghd, solve_with_tree_decomposition
from repro.decompositions.ghd import make_complete
from repro.decompositions.tree_decomposition import TreeDecomposition


def figure_2_6_tree_decomposition() -> TreeDecomposition:
    """The width-2 tree decomposition of Figure 2.6(b)."""
    decomposition = TreeDecomposition()
    top = decomposition.add_node({"x1", "x2", "x3"})
    middle = decomposition.add_node({"x1", "x3", "x5"})
    left = decomposition.add_node({"x3", "x4", "x5"})
    right = decomposition.add_node({"x1", "x5", "x6"})
    decomposition.add_edge(top, middle)
    decomposition.add_edge(middle, left)
    decomposition.add_edge(middle, right)
    return decomposition


def main() -> None:
    csp = example_5_csp()
    hypergraph = csp.constraint_hypergraph(include_unconstrained=False)

    print("Example 5:", csp)
    for constraint in csp.constraints:
        print(
            f"  {constraint.name} on {constraint.scope}: "
            f"{sorted(constraint.relation.tuples)}"
        )

    # --- Figure 2.8: solve from the hand-built tree decomposition -----
    decomposition = figure_2_6_tree_decomposition()
    decomposition.validate(hypergraph)
    print(
        f"\nFigure 2.6 tree decomposition: width {decomposition.width()}"
    )
    solution = solve_with_tree_decomposition(csp, decomposition)
    print(f"Figure 2.8 solution via Join-Tree Clustering: {solution}")
    assert solution is not None and csp.is_solution(solution)

    # --- Figure 2.9: solve from a complete GHD ------------------------
    ghd = decompose(hypergraph, algorithm="bb", cover="exact")
    complete = make_complete(ghd, hypergraph)
    print(f"\ncomplete GHD of width {complete.width()}:")
    relations = {
        constraint.name: constraint.relation for constraint in csp.constraints
    }
    for node in sorted(complete.nodes()):
        bag = complete.bag(node)
        cover = sorted(map(str, complete.cover(node)))
        joined = join_all([relations[name] for name in complete.cover(node)])
        projected = joined.project(
            [v for v in sorted(joined.schema) if v in bag]
        )
        print(
            f"  node {node}: chi={{{','.join(sorted(bag))}}} "
            f"lambda={{{','.join(cover)}}} -> R_p has {len(projected)} tuples"
        )
    solution = solve_with_ghd(csp, ghd)
    print(f"Figure 2.9 solution via the GHD: {solution}")
    assert solution is not None and csp.is_solution(solution)


if __name__ == "__main__":
    main()
