"""Quickstart: widths and decompositions in five minutes.

Run with::

    python examples/quickstart.py

Builds the thesis's running Example 5 (a six-variable CSP with three
ternary constraints), computes its exact treewidth and generalized
hypertree width, materialises a complete GHD, and solves the CSP from
it.
"""

from __future__ import annotations

from repro import (
    Hypergraph,
    decompose,
    generalized_hypertree_width,
    treewidth,
)
from repro.csp.builders import example_5_csp
from repro.csp.solve import solve_with_ghd


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A hypergraph: one hyperedge per constraint scope (Example 5).
    # ------------------------------------------------------------------
    hypergraph = Hypergraph(
        {
            "C1": {"x1", "x2", "x3"},
            "C2": {"x1", "x5", "x6"},
            "C3": {"x3", "x4", "x5"},
        }
    )
    print(f"instance: {hypergraph}")

    # ------------------------------------------------------------------
    # 2. Exact widths. Both searches certify optimality.
    # ------------------------------------------------------------------
    tw = treewidth(hypergraph, algorithm="astar")
    ghw = generalized_hypertree_width(hypergraph, algorithm="bb")
    print(f"treewidth: {tw.value} ({tw.summary()})")
    print(f"generalized hypertree width: {ghw.value} ({ghw.summary()})")

    # ------------------------------------------------------------------
    # 3. A complete, validated GHD (Figure 2.7's shape).
    # ------------------------------------------------------------------
    ghd = decompose(hypergraph, algorithm="bb", cover="exact")
    print(f"\ndecomposition: {ghd}")
    for node in sorted(ghd.nodes()):
        bag = ",".join(sorted(ghd.bag(node)))
        cover = ",".join(sorted(map(str, ghd.cover(node))))
        print(f"  node {node}: chi = {{{bag}}}  lambda = {{{cover}}}")

    # ------------------------------------------------------------------
    # 4. Solve the actual CSP from the decomposition (Figure 2.9).
    # ------------------------------------------------------------------
    csp = example_5_csp()
    solution = solve_with_ghd(csp, ghd)
    print(f"\nCSP solution from the GHD: {solution}")
    assert solution is not None and csp.is_solution(solution)
    print("verified against the CSP's constraints: OK")


if __name__ == "__main__":
    main()
