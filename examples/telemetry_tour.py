"""A tour of the observability layer: metrics, spans, telemetry JSONL.

Run with::

    python examples/telemetry_tour.py

Instruments one exact ghw run and one GA run, prints the counters and
span tree each produced, stages a small experiment table with telemetry
enabled, and round-trips the emitted JSON-lines file through the schema
validator — everything ``docs/observability.md`` describes, as running
code.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import obs
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.genetic.ga_ghw import ga_ghw
from repro.instances.hypergraphs import grid2d
from repro.obs.render import render_metrics, render_spans
from repro.obs.report import RunReport, read_jsonl
from repro.search.bb_ghw import branch_and_bound_ghw


def main() -> None:
    hypergraph = grid2d(3, 3)

    # ------------------------------------------------------------------
    # 1. Instrument an exact search: counters for nodes/prunes/set-cover
    #    work, a span tree for the solver phases.
    # ------------------------------------------------------------------
    with obs.instrument() as ins:
        result = branch_and_bound_ghw(hypergraph)
    print("== bb-ghw on the 3x3 grid hypergraph ==")
    print(f"ghw = {result.value} (optimal={result.optimal})")
    print()
    print(render_metrics(ins.metrics.snapshot()))
    print()
    print(render_spans(ins.tracer.tree()))

    # The result object carries the same snapshot, so metrics stay
    # attributable to the run that produced them.
    assert result.metrics == ins.metrics.snapshot()

    # ------------------------------------------------------------------
    # 2. Heuristics report through the same vocabulary.
    # ------------------------------------------------------------------
    with obs.instrument() as ins:
        ga = ga_ghw(hypergraph, seed=0)
    print()
    print("== GA-ghw, same instance ==")
    print(f"ghw <= {ga.best_fitness} after {ga.generations} generations")
    print(render_metrics(ins.metrics.snapshot()))

    # ------------------------------------------------------------------
    # 3. Capture a structured RunReport by hand...
    # ------------------------------------------------------------------
    report = RunReport.capture(
        ins,
        instance="grid_3x3",
        solver="ga",
        measure="ghw",
        status="heuristic",
        upper_bound=ga.best_fitness,
        elapsed_s=ga.elapsed,
    )
    print()
    print("== RunReport as a JSON line ==")
    print(report.to_json()[:120] + " ...")

    # ------------------------------------------------------------------
    # 4. ...or let the experiment runner emit one per table cell.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "runs.jsonl"
        spec = ExperimentSpec(
            instances=["adder_3"],
            measure="ghw",
            algorithms=["bb", "sa"],
            time_limit=5.0,
        )
        table = run_experiment(spec, telemetry_out=str(path))
        print()
        print("== experiment table ==")
        print(table.to_text())
        reports = read_jsonl(path)  # validates every line on load
        print()
        print(f"telemetry: {len(reports)} validated reports in {path.name}")
        for entry in reports:
            print(
                f"  {entry.instance} / {entry.solver}: {entry.status}, "
                f"{len(entry.counters)} counter series, "
                f"{len(entry.spans)} root span(s)"
            )


if __name__ == "__main__":
    main()
