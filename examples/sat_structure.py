"""Structure-aware SAT solving (the thesis's Example 2, scaled up).

CNF formulas become CSPs with one constraint per clause; the clause
hypergraph's generalized hypertree width measures how tree-like the
formula is. This example builds a chain-structured CNF family (bounded
ghw regardless of size), certifies its width, and solves formula sizes
a naive enumeration over 2^n assignments could never touch — while a
deliberately tangled formula of the same size shows the width climbing.

Run with::

    python examples/sat_structure.py
"""

from __future__ import annotations

import random

from repro.core.api import decompose, ghw_bounds
from repro.csp.builders import sat_csp
from repro.csp.solve import solve_with_ghd


def chain_formula(blocks: int) -> list[list[int]]:
    """A satisfiable chain of overlapping clauses: block i couples
    variables 2i+1, 2i+2, 2i+3 — pathwidth-style structure."""
    clauses = []
    for i in range(blocks):
        a, b, c = 2 * i + 1, 2 * i + 2, 2 * i + 3
        clauses.append([a, b, c])
        clauses.append([-a, -b, c])
        clauses.append([a, -c, b])
    return clauses


def tangled_formula(variables: int, clauses: int, seed: int) -> list[list[int]]:
    """Random 3-CNF — no structure for the decomposition to exploit."""
    rng = random.Random(seed)
    result = []
    for _ in range(clauses):
        chosen = rng.sample(range(1, variables + 1), 3)
        result.append([v if rng.random() < 0.5 else -v for v in chosen])
    return result


def main() -> None:
    print("chain-structured CNF: width stays constant as the formula grows")
    for blocks in (5, 15, 30):
        csp = sat_csp(chain_formula(blocks))
        hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
        lower, upper = ghw_bounds(hypergraph)
        ghd = decompose(hypergraph, algorithm="min-fill", cover="greedy")
        solution = solve_with_ghd(csp, ghd)
        status = "SAT" if solution is not None else "UNSAT"
        if solution is not None:
            assert csp.is_solution(solution)
        print(
            f"  {blocks:3d} blocks ({len(csp.domains):3d} vars, "
            f"{len(csp.constraints):3d} clauses): ghw in [{lower}, {upper}], "
            f"decomposition width {ghd.width()}, {status}"
        )

    print("\ntangled random 3-CNF of similar size: the width climbs")
    for variables, clauses in ((12, 20), (16, 30), (20, 40)):
        csp = sat_csp(tangled_formula(variables, clauses, seed=1))
        hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
        lower, upper = ghw_bounds(hypergraph)
        print(
            f"  {variables} vars / {clauses} clauses: "
            f"ghw in [{lower}, {upper}]"
        )

    print(
        "\nbounded width = polynomial-time SAT for the family; "
        "unbounded width = no such guarantee."
    )


if __name__ == "__main__":
    main()
