"""Anatomy of the bounds: how the thesis's algorithms squeeze a width.

For one instance (the queen5_5 graph, treewidth 18, and the clique_10
hypergraph, ghw 5) this example shows every layer of the machinery in
action:

* heuristic upper bounds (min-fill / min-degree / MCS orderings),
* genetic upper bounds (GA-tw),
* heuristic lower bounds (degeneracy, minor-min-width, minor-gamma_R,
  tw-ksc-width),
* anytime exact search: A*'s frontier lower bound rising and B&B's
  incumbent falling as the node budget grows, until they meet.

Run with::

    python examples/bounds_anatomy.py
"""

from __future__ import annotations

from repro.bounds.ghw_lower import tw_ksc_width
from repro.bounds.lower import degeneracy, minor_gamma_r, minor_min_width
from repro.bounds.upper import upper_bound_ordering
from repro.genetic.engine import GAParameters
from repro.genetic.ga_tw import ga_treewidth
from repro.instances.dimacs_like import queen_graph
from repro.instances.hypergraphs import clique_hypergraph
from repro.search.astar_ghw import astar_ghw
from repro.search.astar_tw import astar_treewidth


def treewidth_story() -> None:
    graph = queen_graph(5)
    print(f"queen5_5: {graph.num_vertices()} vertices, "
          f"{graph.num_edges()} edges (treewidth 18)\n")

    print("upper bounds from ordering heuristics:")
    for heuristic in ("min-fill", "min-degree", "min-width", "mcs"):
        width, _ = upper_bound_ordering(graph, heuristic)
        print(f"  {heuristic:>10}: {width}")

    ga = ga_treewidth(
        graph,
        parameters=GAParameters(population_size=30, max_iterations=30),
        seed=0,
    )
    print(f"  {'GA-tw':>10}: {ga.best_fitness} "
          f"({ga.evaluations} evaluations)")

    print("\nlower bounds from minors:")
    print(f"  degeneracy (MMD): {degeneracy(graph)}")
    print(f"  minor-min-width : {minor_min_width(graph)}")
    print(f"  minor-gamma_R   : {minor_gamma_r(graph)}")

    print("\nanytime A*-tw (frontier lower bound rises with the budget):")
    for budget in (10, 100, 1000, None):
        result = astar_treewidth(graph, node_limit=budget)
        label = f"{budget} nodes" if budget else "unbounded"
        if result.optimal:
            print(f"  {label:>12}: certified treewidth = {result.value}")
            break
        print(
            f"  {label:>12}: bounds [{result.lower_bound}, "
            f"{result.upper_bound}]"
        )


def ghw_story() -> None:
    hypergraph = clique_hypergraph(10)
    print(
        f"\nclique_10: {hypergraph.num_vertices()} vertices, "
        f"{hypergraph.num_edges()} pair edges (ghw 5)\n"
    )
    print(f"tw-ksc-width root lower bound: {tw_ksc_width(hypergraph)}")
    result = astar_ghw(hypergraph)
    print(f"A*-ghw: {result.summary()}")


def main() -> None:
    treewidth_story()
    ghw_story()


if __name__ == "__main__":
    main()
