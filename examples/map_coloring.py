"""Map colouring end to end (the thesis's Example 1).

Models the 3-colouring of Australia's states and territories as a CSP,
inspects its constraint structure, decomposes it three different ways
(exact A*, branch and bound, and the min-fill heuristic) and solves the
CSP from each decomposition — demonstrating that any valid decomposition
yields a correct solver, with width controlling the work per node.

Run with::

    python examples/map_coloring.py
"""

from __future__ import annotations

from repro.core.api import decompose_graph, treewidth
from repro.csp.backtracking import count_solutions
from repro.csp.builders import australia_map_coloring
from repro.csp.solve import solve_with_tree_decomposition


def main() -> None:
    csp = australia_map_coloring()
    print("variables:", ", ".join(map(str, csp.variables)))
    print("constraints:", len(csp.constraints), "binary inequalities")

    hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
    primal = hypergraph.primal_graph()
    print(
        f"constraint graph: {primal.num_vertices()} vertices, "
        f"{primal.num_edges()} edges"
    )

    # The mainland constraint graph is a chain of triangles through SA:
    # its treewidth is 2 (bags of three regions suffice).
    result = treewidth(primal, algorithm="astar")
    print(f"treewidth of the constraint graph: {result.value}")

    for algorithm in ("astar", "bb", "min-fill"):
        decomposition = decompose_graph(primal, algorithm=algorithm)
        solution = solve_with_tree_decomposition(csp, decomposition)
        assert solution is not None and csp.is_solution(solution)
        colours = ", ".join(
            f"{region}={solution[region]}"
            for region in ("WA", "NT", "SA", "Q", "NSW", "V", "TAS")
        )
        print(
            f"[{algorithm:>8}] width {decomposition.width()} "
            f"decomposition -> {colours}"
        )

    total = count_solutions(csp)
    print(f"\ntotal 3-colourings (by exhaustive search): {total}")
    print("(6 proper colourings of the mainland x 3 free choices for TAS)")


if __name__ == "__main__":
    main()
