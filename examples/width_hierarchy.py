"""The width hierarchy on real instances:

    fhw(H)  <=  ghw(H)  <=  hw(H)  <=  tw(H) + 1.

The thesis's chapter 2 develops exactly this ladder (tree decompositions,
hypertree decompositions, generalized hypertree decompositions); this
example measures all four quantities on generated benchmark families and
shows where the inequalities are strict:

* the clique families separate fhw from ghw (n/2 vs ceil(n/2)),
* every cyclic family separates ghw/hw from tw + 1,
* acyclic families collapse the whole ladder to 1.

Run with::

    python examples/width_hierarchy.py
"""

from __future__ import annotations

from repro.core.api import generalized_hypertree_width, treewidth
from repro.decompositions.hypertree import hypertree_width
from repro.hypergraphs.hypergraph import Hypergraph
from repro.instances.hypergraphs import (
    adder,
    bridge,
    clique_hypergraph,
    grid2d,
)
from repro.setcover.fractional import ordering_fractional_width


def fractional_width_upper_bound(hypergraph) -> float:
    """fhw upper bound: the fractional width of the exact-ghw ordering."""
    result = generalized_hypertree_width(hypergraph)
    return ordering_fractional_width(hypergraph, result.ordering)


def main() -> None:
    instances = [
        ("acyclic chain", Hypergraph({"a": {1, 2, 3}, "b": {3, 4, 5}, "c": {5, 6, 7}})),
        ("adder(4)", adder(4)),
        ("bridge(4)", bridge(4)),
        ("clique_5", clique_hypergraph(5)),
        ("clique_7", clique_hypergraph(7)),
        ("grid2d_3", grid2d(3)),
    ]
    header = f"{'instance':>14}  {'fhw<=':>6}  {'ghw':>4}  {'hw':>4}  {'tw+1':>5}"
    print(header)
    print("-" * len(header))
    for name, hypergraph in instances:
        fractional = fractional_width_upper_bound(hypergraph)
        ghw = generalized_hypertree_width(hypergraph).value
        hw, _decomposition = hypertree_width(hypergraph)
        tw = treewidth(hypergraph).value
        print(
            f"{name:>14}  {fractional:6.2f}  {ghw:4d}  {hw:4d}  {tw + 1:5d}"
        )
        assert fractional <= ghw + 1e-9 <= hw + 1e-9 <= tw + 1 + 1e-9
    print(
        "\nclique_5: fractional cover of a 5-clique by pair edges costs "
        "2.5 < 3 = ghw — the classic integrality gap."
    )


if __name__ == "__main__":
    main()
