"""Stage your own thesis-style table with the experiment runner.

The thesis's evaluation chapters are all the same shape — instances down
the rows, algorithms across the columns. ``repro.experiments`` makes
that a three-line affair; this example stages a small head-to-head of
the exact A* against three heuristics on treewidth, and of BB-ghw
against the genetic algorithm on ghw, printing ready-to-paste tables.

Run with::

    python examples/custom_experiment.py
"""

from __future__ import annotations

from repro.experiments import ExperimentSpec, run_experiment
from repro.genetic.engine import GAParameters


def main() -> None:
    tw_spec = ExperimentSpec(
        instances=["grid4", "myciel3", "myciel4", "queen5_5"],
        measure="tw",
        algorithms=["astar", "min-fill", "ga", "sa"],
        time_limit=15.0,
        ga_parameters=GAParameters(population_size=25, max_iterations=25),
    )
    tw_table = run_experiment(tw_spec)
    print("treewidth — exact vs heuristics")
    print(tw_table.to_text())

    ghw_spec = ExperimentSpec(
        instances=["adder_6", "bridge_4", "clique_6", "grid2d_3"],
        measure="ghw",
        algorithms=["bb", "ga", "tabu"],
        time_limit=15.0,
        ga_parameters=GAParameters(population_size=25, max_iterations=25),
    )
    ghw_table = run_experiment(ghw_spec)
    print("\ngeneralized hypertree width — exact vs heuristics")
    print(ghw_table.to_text())

    # results are plain data: post-process freely
    certified = [
        value for value in ghw_table.column("bb") if "*" not in str(value)
    ]
    print(
        f"\nBB-ghw certified {len(certified)} of "
        f"{len(ghw_table.rows)} instances within the budget."
    )


if __name__ == "__main__":
    main()
