"""Table 7.1 — GA-ghw on CSP hypergraph-library instances.

Thesis: GA-ghw (tuned chapter-6 parameters, 4M evaluations) reached
e.g. adder_* -> 3 (best known 2), clique_20 -> 11 (best known 10),
grid2d_20 -> 10 (improving the best known 11). Scaled run on generated
family members small enough that BB-ghw certifies the true ghw, so the
table shows GA vs certified optimum — the strongest shape check
available: the GA must land within one bag of optimal on every family.
"""

from __future__ import annotations

from repro.genetic.engine import GAParameters
from repro.genetic.ga_ghw import ga_ghw
from repro.instances.registry import hypergraph_instance
from repro.search.bb_ghw import branch_and_bound_ghw

from workloads import (
    GA_ITERATIONS,
    GA_POPULATION,
    SEARCH_NODE_LIMIT,
    SEARCH_TIME_LIMIT,
    Row,
    fmt_result,
    print_table,
)

#: family -> best-known ub the thesis reports for the full-size member
THESIS_FAMILY_UB = {
    "adder_8": "2 (adder_75)",
    "bridge_5": "2 (bridge_50: 6 via GA)",
    "clique_8": "10-11 (clique_20)",
    "grid2d_4": "10-11 (grid2d_20)",
    "grid3d_2": "21-22 (grid3d_8)",
    "b06": "4-5 (b06)",
}

INSTANCES = list(THESIS_FAMILY_UB)
RUNS = 3

TUNED = GAParameters(
    population_size=GA_POPULATION,
    crossover_rate=1.0,
    mutation_rate=0.3,
    group_size=3,
    max_iterations=GA_ITERATIONS,
)


def run_table() -> list[Row]:
    rows = []
    for name in INSTANCES:
        hypergraph = hypergraph_instance(name)
        exact = branch_and_bound_ghw(
            hypergraph,
            time_limit=SEARCH_TIME_LIMIT,
            node_limit=SEARCH_NODE_LIMIT,
        )
        widths = [
            ga_ghw(hypergraph, parameters=TUNED, seed=run).best_fitness
            for run in range(RUNS)
        ]
        rows.append(
            Row(
                name,
                {
                    "V": hypergraph.num_vertices(),
                    "H": hypergraph.num_edges(),
                    "ghw(BB)": fmt_result(exact),
                    "ga_min": min(widths),
                    "ga_max": max(widths),
                    "thesis_family": THESIS_FAMILY_UB[name],
                },
            )
        )
    return rows


def test_table_7_1(capsys):
    rows = run_table()
    with capsys.disabled():
        print_table(
            "Table 7.1 — GA-ghw vs certified ghw",
            rows,
            note="thesis_family = the thesis's best known ub for the "
            "full-size family member",
        )
    for row in rows:
        certified = row.columns["ghw(BB)"]
        if "*" not in str(certified):
            # GA is an upper bound and lands within one bag of optimal
            assert row.columns["ga_min"] >= int(certified)
            assert row.columns["ga_min"] <= int(certified) + 1


def test_benchmark_ga_ghw_adder8(benchmark):
    hypergraph = hypergraph_instance("adder_8")
    parameters = GAParameters(
        population_size=GA_POPULATION, max_iterations=10
    )
    benchmark.pedantic(
        lambda: ga_ghw(hypergraph, parameters=parameters, seed=0),
        iterations=1,
        rounds=1,
    )
