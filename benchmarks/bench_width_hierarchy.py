"""Extra table — the chapter-2 width hierarchy measured.

The thesis's chapter 2 sets up fhw <= ghw <= hw <= tw + 1 (fractional,
generalized, plain hypertree width, treewidth); this bench measures all
four on the generated benchmark families and asserts the chain, plus the
known strictness points (cliques separate fhw from ghw; every family
here separates hw from tw + 1).
"""

from __future__ import annotations

from repro.core.api import generalized_hypertree_width, treewidth
from repro.decompositions.hypertree import hypertree_width
from repro.instances.registry import hypergraph_instance
from repro.setcover.fractional import ordering_fractional_width

from workloads import Row, print_table

INSTANCES = ["adder_4", "bridge_4", "clique_5", "clique_7", "grid2d_3"]


def run_table() -> list[Row]:
    rows = []
    for name in INSTANCES:
        hypergraph = hypergraph_instance(name)
        ghw_result = generalized_hypertree_width(hypergraph)
        fractional = ordering_fractional_width(
            hypergraph, ghw_result.ordering
        )
        hw, _decomposition = hypertree_width(hypergraph)
        tw = treewidth(hypergraph).value
        rows.append(
            Row(
                name,
                {
                    "fhw<=": round(fractional, 2),
                    "ghw": ghw_result.value,
                    "hw": hw,
                    "tw+1": tw + 1,
                },
            )
        )
    return rows


def test_width_hierarchy(capsys):
    rows = run_table()
    with capsys.disabled():
        print_table(
            "Width hierarchy — fhw <= ghw <= hw <= tw + 1",
            rows,
            note="cliques separate fhw from ghw (n/2 vs ceil(n/2))",
        )
    for row in rows:
        fractional = row.columns["fhw<="]
        ghw = row.columns["ghw"]
        hw = row.columns["hw"]
        tw1 = row.columns["tw+1"]
        assert fractional <= ghw + 1e-9 <= hw + 1e-9 <= tw1 + 1e-9
    by_name = {row.instance: row.columns for row in rows}
    # the odd cliques witness the fractional integrality gap
    assert by_name["clique_5"]["fhw<="] < by_name["clique_5"]["ghw"]
    assert by_name["clique_7"]["fhw<="] < by_name["clique_7"]["ghw"]


def test_benchmark_hypertree_width_grid(benchmark):
    hypergraph = hypergraph_instance("grid2d_3")
    k, _decomposition = benchmark.pedantic(
        lambda: hypertree_width(hypergraph), iterations=1, rounds=1
    )
    assert k == 2
