"""Table 9.1 — A*-ghw: certified widths and agreement with BB-ghw.

Thesis: A*-ghw fixed the exact ghw for some library hypergraphs; it
visits states best-first, so wherever both algorithms finish they agree.
Reproduced: certified values match BB-ghw and known optima, and A*
expands no more nodes than plain depth-first BB on these instances.
"""

from __future__ import annotations

from repro.instances.registry import hypergraph_instance
from repro.search.astar_ghw import astar_ghw
from repro.search.bb_ghw import branch_and_bound_ghw

from workloads import (
    SEARCH_NODE_LIMIT,
    SEARCH_TIME_LIMIT,
    Row,
    fmt_result,
    print_table,
)

INSTANCES = ["adder_4", "adder_6", "bridge_4", "clique_6", "grid2d_3", "b06"]


def run_table() -> list[Row]:
    rows = []
    for name in INSTANCES:
        hypergraph = hypergraph_instance(name)
        astar = astar_ghw(
            hypergraph,
            time_limit=SEARCH_TIME_LIMIT,
            node_limit=SEARCH_NODE_LIMIT,
        )
        bb = branch_and_bound_ghw(
            hypergraph,
            time_limit=SEARCH_TIME_LIMIT,
            node_limit=SEARCH_NODE_LIMIT,
        )
        rows.append(
            Row(
                name,
                {
                    "V": hypergraph.num_vertices(),
                    "H": hypergraph.num_edges(),
                    "astar_ghw": fmt_result(astar),
                    "astar_nodes": astar.nodes_expanded,
                    "bb_ghw": fmt_result(bb),
                    "bb_nodes": bb.nodes_expanded,
                },
            )
        )
    return rows


def test_table_9_1(capsys):
    rows = run_table()
    with capsys.disabled():
        print_table(
            "Table 9.1 — A*-ghw vs BB-ghw",
            rows,
            note="certified values must agree; A* is the node-frugal one",
        )
    for row in rows:
        astar_value = row.columns["astar_ghw"]
        bb_value = row.columns["bb_ghw"]
        if "*" not in str(astar_value) and "*" not in str(bb_value):
            assert astar_value == bb_value


def test_benchmark_astar_ghw_adder6(benchmark):
    hypergraph = hypergraph_instance("adder_6")
    result = benchmark.pedantic(
        lambda: astar_ghw(hypergraph), iterations=1, rounds=1
    )
    assert result.value == 2
