"""Extra comparison — GA vs simulated annealing vs tabu search.

Section 4.5 of the thesis reports that, in the experiments the GA
descends from, *only simulated annealing matched the genetic algorithm*;
the best-known bounds of Table 6.6 include tabu-search results. This
bench stages the three upper-bound heuristics head-to-head at equal
evaluation budgets on both widths, asserting the thesis-shaped outcome:
all three land within a bag or two of each other (and of the certified
optimum where one is available).
"""

from __future__ import annotations

from repro.genetic.engine import GAParameters
from repro.genetic.ga_ghw import ga_ghw
from repro.genetic.ga_tw import ga_treewidth
from repro.instances.registry import graph_instance, hypergraph_instance
from repro.localsearch.simulated_annealing import (
    AnnealingParameters,
    sa_ghw,
    sa_treewidth,
)
from repro.localsearch.tabu import TabuParameters, tabu_ghw, tabu_treewidth
from repro.search.astar_tw import astar_treewidth

from workloads import Row, print_table

GRAPHS = ["queen5_5", "myciel4", "grid5", "games120"]
HYPERGRAPHS = ["adder_8", "clique_8", "grid2d_4", "b06"]

#: ~1200 evaluations each
GA = GAParameters(population_size=30, max_iterations=40)
SA = AnnealingParameters(
    initial_temperature=3.0, cooling_rate=0.93, steps_per_temperature=24
)
TABU = TabuParameters(iterations=40, neighbourhood_sample=30)


def run_tw_table() -> list[Row]:
    rows = []
    for name in GRAPHS:
        graph = graph_instance(name)
        ga = ga_treewidth(graph, parameters=GA, seed=0).best_fitness
        sa = sa_treewidth(graph, parameters=SA, seed=0).best_fitness
        tabu = tabu_treewidth(graph, parameters=TABU, seed=0).best_fitness
        exact = (
            astar_treewidth(graph, node_limit=5000)
            if graph.num_vertices() <= 50
            else None
        )
        rows.append(
            Row(
                name,
                {
                    "GA-tw": ga,
                    "SA-tw": sa,
                    "tabu-tw": tabu,
                    "exact": exact.value
                    if exact is not None and exact.optimal
                    else "-",
                },
            )
        )
    return rows


def run_ghw_table() -> list[Row]:
    rows = []
    for name in HYPERGRAPHS:
        hypergraph = hypergraph_instance(name)
        ga = ga_ghw(hypergraph, parameters=GA, seed=0).best_fitness
        sa = sa_ghw(hypergraph, parameters=SA, seed=0).best_fitness
        tabu = tabu_ghw(hypergraph, parameters=TABU, seed=0).best_fitness
        rows.append(
            Row(name, {"GA-ghw": ga, "SA-ghw": sa, "tabu-ghw": tabu})
        )
    return rows


def test_heuristic_comparison(capsys):
    tw_rows = run_tw_table()
    ghw_rows = run_ghw_table()
    with capsys.disabled():
        print_table(
            "Comparison — treewidth upper bounds at equal budgets",
            tw_rows,
            note="thesis/Section 4.5: SA is the GA's only close rival",
        )
        print_table(
            "Comparison — ghw upper bounds at equal budgets", ghw_rows
        )
    for row in tw_rows:
        values = [row.columns["GA-tw"], row.columns["SA-tw"], row.columns["tabu-tw"]]
        assert max(values) - min(values) <= 3
        exact = row.columns["exact"]
        if exact != "-":
            assert min(values) >= exact
    for row in ghw_rows:
        values = [
            row.columns["GA-ghw"],
            row.columns["SA-ghw"],
            row.columns["tabu-ghw"],
        ]
        assert max(values) - min(values) <= 2


def test_benchmark_sa_tw_queen5(benchmark):
    graph = graph_instance("queen5_5")
    benchmark.pedantic(
        lambda: sa_treewidth(graph, parameters=SA, seed=0),
        iterations=1,
        rounds=1,
    )
