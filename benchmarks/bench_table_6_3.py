"""Table 6.3 — GA-tw crossover-rate / mutation-rate sweep.

Thesis protocol: p_c in {0.8, 0.9, 1.0} x p_m in {0.01, 0.1, 0.3},
POS + ISM, population 200; the combination (1.0, 0.3) performed best on
the large instances and was adopted. Scaled sweep on queen8_8.
"""

from __future__ import annotations

import statistics

from repro.genetic.engine import GAParameters
from repro.genetic.ga_tw import ga_treewidth
from repro.instances.registry import graph_instance

from workloads import GA_ITERATIONS, GA_POPULATION, Row, print_table

INSTANCE = "queen8_8"
RUNS = 3
CROSSOVER_RATES = (0.8, 0.9, 1.0)
MUTATION_RATES = (0.01, 0.1, 0.3)


def run_combo(p_c: float, p_m: float) -> list[int]:
    graph = graph_instance(INSTANCE)
    parameters = GAParameters(
        population_size=GA_POPULATION,
        crossover_rate=p_c,
        mutation_rate=p_m,
        group_size=2,
        max_iterations=GA_ITERATIONS,
    )
    return [
        ga_treewidth(
            graph, parameters=parameters, seed=run, seed_heuristics=False
        ).best_fitness
        for run in range(RUNS)
    ]


def run_table() -> list[Row]:
    rows = []
    for p_c in CROSSOVER_RATES:
        for p_m in MUTATION_RATES:
            widths = run_combo(p_c, p_m)
            rows.append(
                Row(
                    INSTANCE,
                    {
                        "p_c": p_c,
                        "p_m": p_m,
                        "avg": round(statistics.mean(widths), 1),
                        "min": min(widths),
                        "max": max(widths),
                    },
                )
            )
    rows.sort(key=lambda r: r.columns["avg"])
    return rows


def test_table_6_3(capsys):
    rows = run_table()
    with capsys.disabled():
        print_table(
            "Table 6.3 — crossover/mutation rate sweep (queen8_8)",
            rows,
            note="thesis adopted p_c = 1.0, p_m = 0.3",
        )
    averages = {
        (row.columns["p_c"], row.columns["p_m"]): row.columns["avg"]
        for row in rows
    }
    best = min(averages.values())
    # the adopted combination is competitive (within a bag of the best)
    assert averages[(1.0, 0.3)] <= best + 1.5
    # mutation helps: the best p_m=0.3 combo beats the worst p_m=0.01 one
    high_mutation = min(averages[(c, 0.3)] for c in CROSSOVER_RATES)
    low_mutation = max(averages[(c, 0.01)] for c in CROSSOVER_RATES)
    assert high_mutation <= low_mutation


def test_benchmark_ga_tw_adopted_rates(benchmark):
    graph = graph_instance(INSTANCE)
    parameters = GAParameters(
        population_size=GA_POPULATION, max_iterations=10
    )
    benchmark.pedantic(
        lambda: ga_treewidth(graph, parameters=parameters, seed=0),
        iterations=1,
        rounds=1,
    )
