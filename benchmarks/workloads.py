"""Shared workloads and table-printing helpers for the bench suite.

Every thesis table gets one ``bench_table_*.py`` file. Each file does two
things:

* runs the (scaled-down) experiment and prints a table whose rows mirror
  the thesis table's columns, with the thesis's reported value alongside
  our measured one — this is the reproduction artifact recorded in
  EXPERIMENTS.md;
* registers one representative call with pytest-benchmark so
  ``pytest benchmarks/ --benchmark-only`` also yields timing data.

Scaling: the thesis ran 1-3 hours per instance on a 2005 Pentium 4 with
a C++ implementation; this is pure Python with a seconds-per-instance
budget. Instance sizes and GA budgets are scaled accordingly; the
comparisons of interest (who wins, optimality certificates, operator
rankings) are preserved. See DESIGN.md for the substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: GA budget used across the chapter-6/7 benches (thesis: n = 2000,
#: 2000 iterations = 4M evaluations; here: ~6k evaluations).
GA_POPULATION = 30
GA_ITERATIONS = 40

#: Search budgets for the exact algorithms (thesis: 1 h wall clock).
SEARCH_NODE_LIMIT = 20_000
SEARCH_TIME_LIMIT = 20.0


@dataclass
class Row:
    """One printable table row: paper value(s) vs measured value(s)."""

    instance: str
    columns: dict[str, Any]


def print_table(title: str, rows: list[Row], note: str = "") -> None:
    if not rows:
        print(f"\n== {title} == (no rows)")
        return
    headers = ["instance"] + list(rows[0].columns)
    widths = [
        max(len(str(h)), *(len(str(getattr(r, "instance") if h == "instance" else r.columns.get(h, ""))) for r in rows))
        for h in headers
    ]
    print(f"\n== {title} ==")
    if note:
        print(f"   {note}")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        cells = [row.instance] + [row.columns[h] for h in headers[1:]]
        print("  ".join(str(c).ljust(w) for c, w in zip(cells, widths)))


def fmt_result(result) -> str:
    """Format a SearchResult the way the thesis tables do: the value if
    certified, otherwise 'lb*' (the anytime lower bound)."""
    if result.optimal:
        return str(result.value)
    return f"{result.lower_bound}*[{result.upper_bound}]"
