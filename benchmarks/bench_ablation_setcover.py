"""Ablation — greedy vs exact set covering in ghw evaluation.

Section 2.5.2: bucket elimination plus *exact* covering realises the
true width of an ordering; the greedy cover (Figure 7.2) is the cheap
surrogate the GA uses. This bench quantifies the surrogate's gap and
cost across workloads: the greedy width is never below the exact width,
and on most orderings they coincide (the thesis's justification for
using greedy inside GA-ghw).
"""

from __future__ import annotations

import random
import time

from repro.decompositions.elimination import ordering_ghw
from repro.instances.registry import hypergraph_instance

from workloads import Row, print_table

INSTANCES = ["adder_8", "bridge_5", "clique_8", "grid2d_4", "b06"]
ORDERINGS_PER_INSTANCE = 12


def run_table() -> list[Row]:
    rows = []
    rng = random.Random(0)
    for name in INSTANCES:
        hypergraph = hypergraph_instance(name)
        vertices = sorted(hypergraph.vertices())
        equal = 0
        gaps = []
        greedy_time = exact_time = 0.0
        for _ in range(ORDERINGS_PER_INSTANCE):
            ordering = vertices[:]
            rng.shuffle(ordering)
            start = time.perf_counter()
            greedy = ordering_ghw(hypergraph, ordering, cover="greedy")
            greedy_time += time.perf_counter() - start
            start = time.perf_counter()
            exact = ordering_ghw(hypergraph, ordering, cover="exact")
            exact_time += time.perf_counter() - start
            assert greedy >= exact
            gaps.append(greedy - exact)
            equal += greedy == exact
        rows.append(
            Row(
                name,
                {
                    "orderings": ORDERINGS_PER_INSTANCE,
                    "greedy==exact": equal,
                    "max_gap": max(gaps),
                    "greedy_ms": round(1000 * greedy_time, 1),
                    "exact_ms": round(1000 * exact_time, 1),
                },
            )
        )
    return rows


def test_ablation_setcover(capsys):
    rows = run_table()
    with capsys.disabled():
        print_table(
            "Ablation — greedy vs exact covers over random orderings",
            rows,
            note="greedy is an upper bound; equality is the common case",
        )
    for row in rows:
        # The gap is instance-dependent: near zero on the structured
        # families, up to a few bags on circuit-like hypergraphs with
        # heavy fill-in — which is precisely why BB-ghw/A*-ghw pay for
        # exact covers while GA-ghw gets away with greedy ones.
        assert row.columns["max_gap"] <= 4
        assert row.columns["greedy==exact"] >= 1


def test_benchmark_exact_cover_evaluation(benchmark):
    hypergraph = hypergraph_instance("clique_8")
    ordering = sorted(hypergraph.vertices())
    benchmark.pedantic(
        lambda: ordering_ghw(hypergraph, ordering, cover="exact"),
        iterations=3,
        rounds=3,
    )
