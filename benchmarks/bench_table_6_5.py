"""Table 6.5 — tournament selection group-size comparison.

Thesis: with large populations, group sizes 3-4 beat 2. Scaled run with
the bench population on queen8_8 and games120.
"""

from __future__ import annotations

import statistics

from repro.genetic.engine import GAParameters
from repro.genetic.ga_tw import ga_treewidth
from repro.instances.registry import graph_instance

from workloads import GA_ITERATIONS, GA_POPULATION, Row, print_table

INSTANCES = ["queen8_8", "games120"]
RUNS = 3
GROUP_SIZES = (2, 3, 4)


def run_group(instance: str, group_size: int) -> list[int]:
    graph = graph_instance(instance)
    parameters = GAParameters(
        population_size=GA_POPULATION,
        group_size=group_size,
        max_iterations=GA_ITERATIONS,
    )
    return [
        ga_treewidth(
            graph, parameters=parameters, seed=run, seed_heuristics=False
        ).best_fitness
        for run in range(RUNS)
    ]


def run_table() -> list[Row]:
    rows = []
    for instance in INSTANCES:
        for group_size in GROUP_SIZES:
            widths = run_group(instance, group_size)
            rows.append(
                Row(
                    instance,
                    {
                        "group_size": group_size,
                        "avg": round(statistics.mean(widths), 1),
                        "min": min(widths),
                        "max": max(widths),
                    },
                )
            )
    return rows


def test_table_6_5(capsys):
    rows = run_table()
    with capsys.disabled():
        print_table(
            "Table 6.5 — tournament group size comparison",
            rows,
            note="thesis adopted s = 3 (3-4 beat 2 on large populations)",
        )
    for instance in INSTANCES:
        averages = {
            row.columns["group_size"]: row.columns["avg"]
            for row in rows
            if row.instance == instance
        }
        # higher selection pressure is never catastrophically worse
        assert min(averages[3], averages[4]) <= averages[2] + 2.0


def test_benchmark_ga_tw_group3(benchmark):
    graph = graph_instance("queen8_8")
    parameters = GAParameters(
        population_size=GA_POPULATION, group_size=3, max_iterations=10
    )
    benchmark.pedantic(
        lambda: ga_treewidth(graph, parameters=parameters, seed=0),
        iterations=1,
        rounds=1,
    )
