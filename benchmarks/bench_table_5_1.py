"""Table 5.1 — A*-tw on DIMACS graph-colouring instances.

Thesis columns: instance, |V|, |E|, lb, ub, A*-tw result, time, QuickBB.
Reproduced here on the exactly-generatable instances (queen, myciel) and
one seeded DSJC analog, with BB-tw standing in for the QuickBB column.
Thesis reference values are printed alongside. Budgets replace the
thesis's 1-hour limit; instances the budget cannot close report the
anytime lower bound, exactly as the thesis's '*' entries do.
"""

from __future__ import annotations

from repro.bounds.lower import treewidth_lower_bound
from repro.bounds.upper import upper_bound_ordering
from repro.instances.registry import graph_instance
from repro.search.astar_tw import astar_treewidth
from repro.search.bb_tw import branch_and_bound_treewidth

from workloads import (
    SEARCH_NODE_LIMIT,
    SEARCH_TIME_LIMIT,
    Row,
    fmt_result,
    print_table,
)

#: instance -> treewidth reported by the thesis (None = open, lb* shown)
THESIS_VALUES = {
    "queen5_5": 18,
    "queen6_6": 25,
    "myciel3": 5,
    "myciel4": 10,
    "DSJC125.9": 119,
}

#: the instances this scaled run actually closes vs. brackets
INSTANCES = ["queen5_5", "queen6_6", "myciel3", "myciel4"]


def run_table() -> list[Row]:
    rows = []
    for name in INSTANCES:
        graph = graph_instance(name)
        lb = treewidth_lower_bound(graph)
        ub, _ = upper_bound_ordering(graph, "min-fill")
        astar = astar_treewidth(
            graph,
            time_limit=SEARCH_TIME_LIMIT,
            node_limit=SEARCH_NODE_LIMIT,
        )
        bb = branch_and_bound_treewidth(
            graph,
            time_limit=SEARCH_TIME_LIMIT,
            node_limit=SEARCH_NODE_LIMIT,
        )
        rows.append(
            Row(
                name,
                {
                    "V": graph.num_vertices(),
                    "E": graph.num_edges(),
                    "lb": lb,
                    "ub": ub,
                    "astar_tw": fmt_result(astar),
                    "bb_tw": fmt_result(bb),
                    "time_s": f"{astar.elapsed:.2f}",
                    "thesis_tw": THESIS_VALUES.get(name, "?"),
                },
            )
        )
    return rows


def test_table_5_1(capsys):
    rows = run_table()
    with capsys.disabled():
        print_table(
            "Table 5.1 — A*-tw on DIMACS-style instances",
            rows,
            note="thesis_tw = value reported in the thesis; "
            "x*[y] = interrupted with bounds [x, y]",
        )
    # Shape assertions: certified instances match the thesis exactly.
    for row in rows:
        thesis = THESIS_VALUES.get(row.instance)
        measured = row.columns["astar_tw"]
        if thesis is not None and "*" not in str(measured):
            assert int(measured) == thesis


def test_benchmark_astar_tw_queen5(benchmark):
    graph = graph_instance("queen5_5")
    result = benchmark.pedantic(
        lambda: astar_treewidth(graph), iterations=1, rounds=1
    )
    assert result.value == 18
