"""Table 7.2 — SAIGA-ghw on CSP hypergraph-library instances.

Thesis: the self-adaptive island GA matches GA-ghw's results without
hand-tuned control parameters. Reproduced claim: on every instance,
SAIGA's best width is within one bag of the hand-tuned GA-ghw's (and
both are valid upper bounds on the certified ghw).
"""

from __future__ import annotations

from repro.genetic.engine import GAParameters
from repro.genetic.ga_ghw import ga_ghw
from repro.genetic.saiga import saiga_ghw
from repro.instances.registry import hypergraph_instance

from workloads import GA_ITERATIONS, GA_POPULATION, Row, print_table

INSTANCES = ["adder_8", "bridge_5", "clique_8", "grid2d_4", "grid3d_2", "b06"]
RUNS = 2

TUNED = GAParameters(
    population_size=GA_POPULATION,
    max_iterations=GA_ITERATIONS,
)


def run_table() -> list[Row]:
    rows = []
    for name in INSTANCES:
        hypergraph = hypergraph_instance(name)
        tuned = min(
            ga_ghw(
                hypergraph,
                parameters=TUNED,
                seed=run,
                seed_heuristics=False,
            ).best_fitness
            for run in range(RUNS)
        )
        adaptive = min(
            saiga_ghw(
                hypergraph,
                islands=3,
                island_population=GA_POPULATION // 3,
                epochs=5,
                epoch_generations=GA_ITERATIONS // 5,
                seed=run,
            ).best_fitness
            for run in range(RUNS)
        )
        rows.append(
            Row(
                name,
                {
                    "V": hypergraph.num_vertices(),
                    "H": hypergraph.num_edges(),
                    "ga_ghw": tuned,
                    "saiga_ghw": adaptive,
                },
            )
        )
    return rows


def test_table_7_2(capsys):
    rows = run_table()
    with capsys.disabled():
        print_table(
            "Table 7.2 — SAIGA-ghw vs hand-tuned GA-ghw",
            rows,
            note="thesis claim: self-adaptation matches hand tuning",
        )
    for row in rows:
        # Both start from random populations with equal evaluation
        # budgets; self-adaptation must stay within two bags of the
        # hand-tuned configuration (thesis: it matches it outright with
        # the full 4M-evaluation budget).
        assert row.columns["saiga_ghw"] <= row.columns["ga_ghw"] + 2


def test_benchmark_saiga_adder8(benchmark):
    hypergraph = hypergraph_instance("adder_8")
    benchmark.pedantic(
        lambda: saiga_ghw(
            hypergraph, islands=2, island_population=8, epochs=2,
            epoch_generations=3, seed=0,
        ),
        iterations=1,
        rounds=1,
    )
