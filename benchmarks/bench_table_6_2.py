"""Table 6.2 — GA-tw mutation operator comparison.

Thesis protocol: 0% crossover, 100% mutation, population 50, group size
2; ISM wins overall with EM close behind, while the substring operators
(DM, IVM, SM, SIM) trail badly. Scaled protocol as in bench_table_6_1.
"""

from __future__ import annotations

import statistics

from repro.genetic.engine import GAParameters
from repro.genetic.ga_tw import ga_treewidth
from repro.genetic.mutation import MUTATION_OPERATORS
from repro.instances.registry import graph_instance

from workloads import GA_ITERATIONS, GA_POPULATION, Row, print_table

INSTANCES = ["queen8_8", "myciel6", "games120"]
RUNS = 3


def run_operator(name: str, instance: str) -> list[int]:
    graph = graph_instance(instance)
    parameters = GAParameters(
        population_size=GA_POPULATION,
        crossover_rate=0.0,
        mutation_rate=1.0,
        group_size=2,
        max_iterations=GA_ITERATIONS,
        crossover="POS",
        mutation=name,
    )
    return [
        ga_treewidth(
            graph, parameters=parameters, seed=run, seed_heuristics=False
        ).best_fitness
        for run in range(RUNS)
    ]


def run_table() -> dict[str, list[Row]]:
    tables = {}
    for instance in INSTANCES:
        rows = []
        for name in sorted(MUTATION_OPERATORS):
            widths = run_operator(name, instance)
            rows.append(
                Row(
                    instance,
                    {
                        "mutation": name,
                        "avg": round(statistics.mean(widths), 1),
                        "min": min(widths),
                        "max": max(widths),
                    },
                )
            )
        rows.sort(key=lambda r: r.columns["avg"])
        tables[instance] = rows
    return tables


def test_table_6_2(capsys):
    tables = run_table()
    with capsys.disabled():
        for instance, rows in tables.items():
            print_table(
                f"Table 6.2 — GA-tw mutation comparison ({instance})",
                rows,
                note="thesis ranking: ISM best (EM close), substring "
                "operators trail",
            )
    for instance, rows in tables.items():
        averages = {row.columns["mutation"]: row.columns["avg"] for row in rows}
        point_ops_best = min(averages["ISM"], averages["EM"])
        substring_ops_best = min(
            averages["DM"], averages["IVM"], averages["SM"], averages["SIM"]
        )
        # the thesis's headline: point mutations beat substring mutations
        assert point_ops_best <= substring_ops_best


def test_benchmark_ga_tw_ism_queen8(benchmark):
    graph = graph_instance("queen8_8")
    parameters = GAParameters(
        population_size=GA_POPULATION,
        crossover_rate=0.0,
        mutation_rate=1.0,
        max_iterations=10,
        mutation="ISM",
    )
    benchmark.pedantic(
        lambda: ga_treewidth(graph, parameters=parameters, seed=0),
        iterations=1,
        rounds=1,
    )
