"""Table 6.1 — GA-tw crossover operator comparison.

Thesis protocol: five runs per (instance, operator), population 50,
group size 2, 1000 iterations, 100% crossover, 0% mutation; report
avg/min/max width. Thesis finding: POS wins on every instance.

Scaled protocol: three runs, population 30, 40 iterations, on queen8_8
and myciel6 (exact constructions) and the games120 density analog.
The assertion is the *ranking* finding: POS's average is never beaten
by more than half a bag, and POS beats the weakest operator clearly.
"""

from __future__ import annotations

import statistics

from repro.genetic.crossover import CROSSOVER_OPERATORS
from repro.genetic.engine import GAParameters
from repro.genetic.ga_tw import ga_treewidth
from repro.instances.registry import graph_instance

from workloads import GA_ITERATIONS, GA_POPULATION, Row, print_table

INSTANCES = ["queen8_8", "myciel6", "games120"]
RUNS = 3

#: Table 6.1 average widths for reference (thesis, full budget).
THESIS_AVG = {
    ("games120", "POS"): 37.0,
    ("games120", "AP"): 60.8,
    ("myciel6", "POS"): None,  # thesis used myciel7: POS 75, AP 128.8
}


def run_operator(name: str, instance: str) -> list[int]:
    graph = graph_instance(instance)
    parameters = GAParameters(
        population_size=GA_POPULATION,
        crossover_rate=1.0,
        mutation_rate=0.0,
        group_size=2,
        max_iterations=GA_ITERATIONS,
        crossover=name,
        mutation="ISM",
    )
    return [
        ga_treewidth(
            graph, parameters=parameters, seed=run, seed_heuristics=False
        ).best_fitness
        for run in range(RUNS)
    ]


def run_table() -> dict[str, list[Row]]:
    tables = {}
    for instance in INSTANCES:
        rows = []
        for name in sorted(CROSSOVER_OPERATORS):
            widths = run_operator(name, instance)
            rows.append(
                Row(
                    instance,
                    {
                        "crossover": name,
                        "avg": round(statistics.mean(widths), 1),
                        "min": min(widths),
                        "max": max(widths),
                    },
                )
            )
        rows.sort(key=lambda r: r.columns["avg"])
        tables[instance] = rows
    return tables


def test_table_6_1(capsys):
    tables = run_table()
    with capsys.disabled():
        for instance, rows in tables.items():
            print_table(
                f"Table 6.1 — GA-tw crossover comparison ({instance})",
                rows,
                note="thesis ranking: POS best on all instances",
            )
    for instance, rows in tables.items():
        averages = {row.columns["crossover"]: row.columns["avg"] for row in rows}
        best = min(averages.values())
        worst = max(averages.values())
        # POS is at or near the top and clearly beats the tail operator
        assert averages["POS"] <= best + 2.0
        assert averages["POS"] < worst


def test_benchmark_ga_tw_pos_queen8(benchmark):
    graph = graph_instance("queen8_8")
    parameters = GAParameters(
        population_size=GA_POPULATION,
        max_iterations=10,
        crossover="POS",
        mutation="ISM",
    )
    benchmark.pedantic(
        lambda: ga_treewidth(graph, parameters=parameters, seed=0),
        iterations=1,
        rounds=1,
    )
