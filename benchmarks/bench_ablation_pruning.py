"""Ablation — what PR2 and the simplicial reductions buy.

DESIGN.md calls the pruning machinery out as a design choice; this bench
measures its effect: node counts of A*-tw and BB-ghw with each feature
toggled, at identical certified answers. The thesis's motivation for the
rules (Sections 4.4.3-4.4.5) is exactly this node-count reduction.
"""

from __future__ import annotations

from repro.instances.registry import graph_instance, hypergraph_instance
from repro.search.astar_tw import astar_treewidth
from repro.search.bb_ghw import branch_and_bound_ghw

from workloads import Row, print_table

GRAPHS = ["queen4_4", "myciel3", "grid4"]
HYPERGRAPHS = ["adder_4", "clique_6", "grid2d_3"]

CONFIGS = [
    ("full", dict(use_pr2=True, use_reductions=True)),
    ("no-pr2", dict(use_pr2=False, use_reductions=True)),
    ("no-reductions", dict(use_pr2=True, use_reductions=False)),
    ("bare", dict(use_pr2=False, use_reductions=False)),
]


def run_tables() -> tuple[list[Row], list[Row]]:
    tw_rows = []
    for name in GRAPHS:
        graph = graph_instance(name)
        columns = {}
        value = None
        for label, flags in CONFIGS:
            result = astar_treewidth(graph, **flags)
            assert result.optimal
            if value is None:
                value = result.value
            assert result.value == value
            columns[f"nodes[{label}]"] = result.nodes_expanded
        columns["tw"] = value
        tw_rows.append(Row(name, columns))

    ghw_rows = []
    for name in HYPERGRAPHS:
        hypergraph = hypergraph_instance(name)
        columns = {}
        value = None
        for label, flags in CONFIGS:
            result = branch_and_bound_ghw(hypergraph, **flags)
            assert result.optimal
            if value is None:
                value = result.value
            assert result.value == value
            columns[f"nodes[{label}]"] = result.nodes_expanded
        columns["ghw"] = value
        ghw_rows.append(Row(name, columns))
    return tw_rows, ghw_rows


def test_ablation_pruning(capsys):
    tw_rows, ghw_rows = run_tables()
    with capsys.disabled():
        print_table(
            "Ablation — A*-tw node counts by pruning configuration",
            tw_rows,
        )
        print_table(
            "Ablation — BB-ghw node counts by pruning configuration",
            ghw_rows,
        )
    for row in tw_rows + ghw_rows:
        # full pruning must never expand more nodes than bare search
        assert row.columns["nodes[full]"] <= row.columns["nodes[bare]"]


def test_benchmark_astar_full_vs_bare(benchmark):
    graph = graph_instance("queen4_4")
    benchmark.pedantic(
        lambda: astar_treewidth(graph, use_pr2=True, use_reductions=True),
        iterations=1,
        rounds=1,
    )
