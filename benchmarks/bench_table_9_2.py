"""Table 9.2 — A*-ghw anytime lower bounds on larger instances.

Thesis: for instances its hour could not close, A*-ghw returned improved
*lower* bounds on the ghw (the frontier f-value is nondecreasing,
Section 5.3 applied to ghw). Reproduced: under increasing node budgets
the reported lower bound never decreases, always stays at or above the
tw-ksc-width root bound, and never crosses the incumbent upper bound.
"""

from __future__ import annotations

from repro.bounds.ghw_lower import tw_ksc_width
from repro.instances.registry import hypergraph_instance
from repro.search.astar_ghw import astar_ghw

from workloads import Row, print_table

INSTANCES = ["clique_10", "grid2d_5", "adder_12", "b08"]
BUDGETS = (5, 50, 300)


def run_table() -> list[Row]:
    rows = []
    for name in INSTANCES:
        hypergraph = hypergraph_instance(name)
        root = tw_ksc_width(hypergraph)
        bounds = []
        upper = None
        for budget in BUDGETS:
            result = astar_ghw(hypergraph, node_limit=budget)
            bounds.append(result.lower_bound)
            upper = result.upper_bound
        rows.append(
            Row(
                name,
                {
                    "V": hypergraph.num_vertices(),
                    "H": hypergraph.num_edges(),
                    "root_lb": root,
                    **{
                        f"lb@{budget}": bound
                        for budget, bound in zip(BUDGETS, bounds)
                    },
                    "ub": upper,
                },
            )
        )
    return rows


def test_table_9_2(capsys):
    rows = run_table()
    with capsys.disabled():
        print_table(
            "Table 9.2 — A*-ghw anytime lower bounds",
            rows,
            note="lower bounds are nondecreasing in the budget",
        )
    for row in rows:
        bounds = [row.columns[f"lb@{budget}"] for budget in BUDGETS]
        assert bounds == sorted(bounds)
        assert bounds[0] >= row.columns["root_lb"]
        assert bounds[-1] <= row.columns["ub"]


def test_benchmark_astar_ghw_budgeted_clique10(benchmark):
    hypergraph = hypergraph_instance("clique_10")
    benchmark.pedantic(
        lambda: astar_ghw(hypergraph, node_limit=50),
        iterations=1,
        rounds=1,
    )
