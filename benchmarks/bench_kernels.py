"""Benchmark the bitset kernel + shared cover cache against the seed
pure-Python GA fitness evaluation.

Two workload phases per instance, both replaying the exact populations a
GA-ghw run sees:

* **random** — generation-0 style populations of uniformly random
  orderings (every bag is new, so this measures the raw kernel);
* **converged** — late-run style populations built from an elite
  min-fill ordering plus small ISM mutations (bags repeat massively
  across individuals and generations, so this also measures the shared
  cover cache).

Both backends evaluate the *same* populations; the python side uses the
deterministic greedy tie-break (``rng=None``) so widths must match the
bitset kernel exactly — the bench asserts it.

Usage::

    python benchmarks/bench_kernels.py                   # full run
    python benchmarks/bench_kernels.py --smoke           # CI-sized run
    python benchmarks/bench_kernels.py --validate BENCH_kernels.json

The JSON artifact (``BENCH_kernels.json``) is schema-checked by
``--validate`` (structure only — no perf gating in CI).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

SCHEMA_VERSION = 1

#: (instance, population size, rounds) per mode. Rounds mimic GA
#: generations: each round is one population evaluated in full.
FULL_WORKLOADS = [("adder_30", 24, 4), ("grid2d_6", 24, 4), ("b08", 24, 4)]
SMOKE_WORKLOADS = [("adder_10", 6, 2), ("grid2d_3", 6, 2)]

#: Acceptance floor for the full run (GA fitness evaluation speedup).
SPEEDUP_FLOOR = 3.0


def _random_populations(vertices, size, rounds, rng):
    populations = []
    for _ in range(rounds):
        population = []
        for _ in range(size):
            individual = list(vertices)
            rng.shuffle(individual)
            population.append(individual)
        populations.append(population)
    return populations


def _converged_populations(hypergraph, size, rounds, rng):
    """Elite + ISM-mutation populations, like a converged GA-ghw run."""
    from repro.bounds.upper import min_fill_ordering
    from repro.genetic.mutation import get_mutation

    elite = min_fill_ordering(hypergraph.primal_graph(), rng)
    ism = get_mutation("ISM")
    populations = []
    for _ in range(rounds):
        population = [list(elite)]
        while len(population) < size:
            individual = list(elite)
            for _ in range(rng.randint(1, 3)):
                individual = ism(individual, rng)
            population.append(individual)
        populations.append(population)
    return populations


def _time_evaluator(evaluate, populations):
    """(seconds, widths) for evaluating every population in order."""
    widths = []
    started = time.perf_counter()
    for population in populations:
        for individual in population:
            widths.append(evaluate(individual))
    return time.perf_counter() - started, widths


def bench_instance(name, size, rounds):
    from repro.genetic.ga_ghw import make_ghw_evaluator
    from repro.instances.registry import instance as registry_instance
    from repro.kernels.cache import cover_cache
    from repro.kernels.evaluators import make_bit_ghw_evaluator

    hypergraph = registry_instance(name)
    vertices = sorted(hypergraph.vertices(), key=repr)
    rng = random.Random(0)
    workloads = {
        "random": _random_populations(vertices, size, rounds, rng),
        "converged": _converged_populations(hypergraph, size, rounds, rng),
    }

    cache = cover_cache()
    phases = []
    python_total = bitset_total = 0.0
    for phase, populations in workloads.items():
        python_s, python_widths = _time_evaluator(
            make_ghw_evaluator(hypergraph), populations
        )
        cache.clear()
        bitset_s, bitset_widths = _time_evaluator(
            make_bit_ghw_evaluator(hypergraph), populations
        )
        if python_widths != bitset_widths:
            raise AssertionError(
                f"{name}/{phase}: bitset widths diverge from python widths"
            )
        python_total += python_s
        bitset_total += bitset_s
        phases.append(
            {
                "phase": phase,
                "evaluations": sum(len(p) for p in populations),
                "python_s": round(python_s, 4),
                "bitset_s": round(bitset_s, 4),
                "speedup": round(python_s / bitset_s, 2) if bitset_s else 0.0,
                "widths_equal": True,
                "cache": cache.stats(),
            }
        )
    return {
        "instance": name,
        "vertices": hypergraph.num_vertices(),
        "edges": hypergraph.num_edges(),
        "population": size,
        "rounds": rounds,
        "phases": phases,
        "python_s": round(python_total, 4),
        "bitset_s": round(bitset_total, 4),
        "speedup": round(python_total / bitset_total, 2)
        if bitset_total
        else 0.0,
    }


def run(smoke: bool) -> dict:
    workloads = SMOKE_WORKLOADS if smoke else FULL_WORKLOADS
    results = [bench_instance(*workload) for workload in workloads]
    speedups = [r["speedup"] for r in results]
    payload = {
        "schema_version": SCHEMA_VERSION,
        "mode": "smoke" if smoke else "full",
        "results": results,
        "summary": {
            "instances": len(results),
            "min_speedup": min(speedups),
            "max_speedup": max(speedups),
            "overall_speedup": round(
                sum(r["python_s"] for r in results)
                / sum(r["bitset_s"] for r in results),
                2,
            ),
        },
    }
    return payload


def validate(payload: dict) -> list[str]:
    """Structural schema check for BENCH_kernels.json; [] when valid."""
    errors: list[str] = []

    def need(mapping, key, kind, where):
        if key not in mapping:
            errors.append(f"{where}: missing key {key!r}")
            return None
        value = mapping[key]
        if not isinstance(value, kind):
            errors.append(
                f"{where}.{key}: expected {kind}, got {type(value).__name__}"
            )
            return None
        return value

    if not isinstance(payload, dict):
        return ["payload is not an object"]
    need(payload, "schema_version", int, "payload")
    mode = need(payload, "mode", str, "payload")
    if mode is not None and mode not in ("full", "smoke"):
        errors.append(f"payload.mode: unknown mode {mode!r}")
    results = need(payload, "results", list, "payload")
    if results is not None:
        if not results:
            errors.append("payload.results: empty")
        for i, result in enumerate(results):
            where = f"results[{i}]"
            if not isinstance(result, dict):
                errors.append(f"{where}: not an object")
                continue
            need(result, "instance", str, where)
            need(result, "vertices", int, where)
            need(result, "edges", int, where)
            need(result, "python_s", (int, float), where)
            need(result, "bitset_s", (int, float), where)
            need(result, "speedup", (int, float), where)
            phases = need(result, "phases", list, where)
            for j, phase in enumerate(phases or []):
                pwhere = f"{where}.phases[{j}]"
                if not isinstance(phase, dict):
                    errors.append(f"{pwhere}: not an object")
                    continue
                kind = need(phase, "phase", str, pwhere)
                if kind is not None and kind not in ("random", "converged"):
                    errors.append(f"{pwhere}.phase: unknown phase {kind!r}")
                need(phase, "evaluations", int, pwhere)
                need(phase, "python_s", (int, float), pwhere)
                need(phase, "bitset_s", (int, float), pwhere)
                need(phase, "speedup", (int, float), pwhere)
                if phase.get("widths_equal") is not True:
                    errors.append(f"{pwhere}.widths_equal: must be true")
                cache = need(phase, "cache", dict, pwhere)
                for stat in ("hits", "misses", "evictions", "size"):
                    if cache is not None:
                        need(cache, stat, int, f"{pwhere}.cache")
    summary = need(payload, "summary", dict, "payload")
    if summary is not None:
        need(summary, "instances", int, "summary")
        need(summary, "min_speedup", (int, float), "summary")
        need(summary, "overall_speedup", (int, float), "summary")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny instances for CI"
    )
    parser.add_argument("--out", default="BENCH_kernels.json")
    parser.add_argument(
        "--validate",
        metavar="FILE",
        default=None,
        help="schema-check an existing artifact instead of benchmarking",
    )
    args = parser.parse_args(argv)

    if args.validate is not None:
        with open(args.validate) as handle:
            payload = json.load(handle)
        errors = validate(payload)
        if errors:
            for error in errors:
                print(f"invalid: {error}", file=sys.stderr)
            return 1
        print(f"{args.validate}: schema ok ({payload['mode']} mode, "
              f"{payload['summary']['instances']} instances)")
        return 0

    sys.path.insert(0, "src")
    payload = run(smoke=args.smoke)
    print(f"{'instance':<10} {'phase':<10} {'evals':>6} "
          f"{'python_s':>9} {'bitset_s':>9} {'speedup':>8}")
    for result in payload["results"]:
        for phase in result["phases"]:
            print(
                f"{result['instance']:<10} {phase['phase']:<10} "
                f"{phase['evaluations']:>6} {phase['python_s']:>9.3f} "
                f"{phase['bitset_s']:>9.3f} {phase['speedup']:>7.1f}x"
            )
        print(
            f"{result['instance']:<10} {'total':<10} {'':>6} "
            f"{result['python_s']:>9.3f} {result['bitset_s']:>9.3f} "
            f"{result['speedup']:>7.1f}x"
        )
    print(f"overall speedup: {payload['summary']['overall_speedup']}x "
          f"(min per-instance: {payload['summary']['min_speedup']}x)")
    errors = validate(payload)
    if errors:  # pragma: no cover - self-check
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        return 1
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    if not args.smoke and payload["summary"]["min_speedup"] < SPEEDUP_FLOOR:
        print(
            f"warning: min per-instance speedup below {SPEEDUP_FLOOR}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
