"""Table 6.6 — GA-tw final results vs best-known upper bounds.

Thesis: GA-tw (n = 2000, 2000 iterations, POS + ISM, p_c = 1.0,
p_m = 0.3, s = 3) improved the best known upper bound on 22 of 62 DIMACS
graphs and matched it on 31. Scaled run: the tuned configuration with a
small budget, compared against (a) the thesis's reported ub for the
exactly-generated instances and (b) the min-fill upper bound, which is
the classical best-known-cheap bound. The reproduced claim: GA-tw
matches or improves min-fill on every instance.
"""

from __future__ import annotations

from repro.bounds.upper import upper_bound_ordering
from repro.genetic.engine import GAParameters
from repro.genetic.ga_tw import ga_treewidth
from repro.instances.registry import graph_instance

from workloads import GA_ITERATIONS, GA_POPULATION, Row, print_table

#: Table 6.6 "min" column for the exactly-generated instances.
THESIS_GA_MIN = {
    "queen5_5": 18,
    "queen6_6": 26,
    "queen7_7": 35,
    "queen8_8": 45,
    "myciel3": 5,
    "myciel4": 10,
    "myciel5": 19,
    "myciel6": 35,
}

INSTANCES = list(THESIS_GA_MIN)
RUNS = 3

TUNED = GAParameters(
    population_size=GA_POPULATION,
    crossover_rate=1.0,
    mutation_rate=0.3,
    group_size=3,
    max_iterations=GA_ITERATIONS,
    crossover="POS",
    mutation="ISM",
)


def run_table() -> list[Row]:
    rows = []
    for name in INSTANCES:
        graph = graph_instance(name)
        min_fill, _ = upper_bound_ordering(graph, "min-fill")
        widths = [
            ga_treewidth(graph, parameters=TUNED, seed=run).best_fitness
            for run in range(RUNS)
        ]
        rows.append(
            Row(
                name,
                {
                    "V": graph.num_vertices(),
                    "E": graph.num_edges(),
                    "min_fill_ub": min_fill,
                    "ga_min": min(widths),
                    "ga_max": max(widths),
                    "thesis_ga_min": THESIS_GA_MIN[name],
                },
            )
        )
    return rows


def test_table_6_6(capsys):
    rows = run_table()
    with capsys.disabled():
        print_table(
            "Table 6.6 — GA-tw final results",
            rows,
            note="claim: GA-tw <= min-fill everywhere; thesis_ga_min is "
            "the thesis's best of 10 one-hour runs",
        )
    for row in rows:
        assert row.columns["ga_min"] <= row.columns["min_fill_ub"]
        # a budgeted run cannot beat the thesis's hour-long best by much,
        # nor should it be wildly worse on these small instances
        assert row.columns["ga_min"] >= row.columns["thesis_ga_min"] - 1
        assert row.columns["ga_min"] <= row.columns["thesis_ga_min"] + 6


def test_benchmark_ga_tw_tuned_myciel5(benchmark):
    graph = graph_instance("myciel5")
    benchmark.pedantic(
        lambda: ga_treewidth(graph, parameters=TUNED, seed=0),
        iterations=1,
        rounds=1,
    )
