"""Table 8.1 — BB-ghw: certified generalized hypertree widths.

Thesis: BB-ghw fixed the exact ghw for several library hypergraphs and
improved upper bounds on others within one hour. Scaled reproduction:
family members BB-ghw certifies within the bench budget, with the known
closed-form optima asserted (adder -> 2, clique_n -> ceil(n/2),
grid2d_3 -> 2, acyclic families -> 1).
"""

from __future__ import annotations

from math import ceil

from repro.instances.registry import hypergraph_instance
from repro.search.bb_ghw import branch_and_bound_ghw

from workloads import (
    SEARCH_NODE_LIMIT,
    SEARCH_TIME_LIMIT,
    Row,
    fmt_result,
    print_table,
)

#: instance -> known true ghw (closed-form or certified offline)
KNOWN_GHW = {
    "adder_4": 2,
    "adder_6": 2,
    "bridge_4": 2,
    "clique_6": 3,
    "clique_8": 4,
    "grid2d_3": 2,
    "grid2d_4": None,  # certified by the run itself
    "b06": None,
}


def run_table() -> list[Row]:
    rows = []
    for name, known in KNOWN_GHW.items():
        hypergraph = hypergraph_instance(name)
        result = branch_and_bound_ghw(
            hypergraph,
            time_limit=SEARCH_TIME_LIMIT,
            node_limit=SEARCH_NODE_LIMIT,
        )
        rows.append(
            Row(
                name,
                {
                    "V": hypergraph.num_vertices(),
                    "H": hypergraph.num_edges(),
                    "bb_ghw": fmt_result(result),
                    "nodes": result.nodes_expanded,
                    "time_s": f"{result.elapsed:.2f}",
                    "known_ghw": known if known is not None else "-",
                },
            )
        )
    return rows


def test_table_8_1(capsys):
    rows = run_table()
    with capsys.disabled():
        print_table(
            "Table 8.1 — BB-ghw certified widths",
            rows,
            note="known_ghw: closed-form optimum where available",
        )
    for row in rows:
        known = KNOWN_GHW[row.instance]
        measured = row.columns["bb_ghw"]
        if known is not None and "*" not in str(measured):
            assert int(measured) == known


def test_benchmark_bb_ghw_adder6(benchmark):
    hypergraph = hypergraph_instance("adder_6")
    result = benchmark.pedantic(
        lambda: branch_and_bound_ghw(hypergraph),
        iterations=1,
        rounds=1,
    )
    assert result.value == 2


def test_clique_closed_form():
    for n in (4, 5, 6, 7):
        assert (
            branch_and_bound_ghw(hypergraph_instance(f"clique_{n}")).value
            == ceil(n / 2)
        )
