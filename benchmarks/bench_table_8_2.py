"""Table 8.2 — BB-ghw on larger instances: anytime upper bounds.

Thesis: on instances one hour could not close, BB-ghw still *improved*
the best known upper bounds (its incumbent is always a feasible
ordering). Scaled reproduction: larger family members under a node
budget; the claim checked is the anytime contract — the incumbent never
exceeds the min-fill + greedy-cover baseline, and the reported bounds
bracket a longer run's certified value where we can afford one.
"""

from __future__ import annotations

from repro.bounds.upper import upper_bound_ordering
from repro.decompositions.elimination import ordering_ghw
from repro.instances.registry import hypergraph_instance
from repro.search.bb_ghw import branch_and_bound_ghw

from workloads import Row, fmt_result, print_table

INSTANCES = ["adder_12", "bridge_8", "clique_10", "grid2d_5", "grid3d_2", "b08"]
NODE_BUDGET = 300


def baseline_ub(hypergraph) -> int:
    _w, ordering = upper_bound_ordering(hypergraph.primal_graph(), "min-fill")
    return ordering_ghw(hypergraph, ordering, cover="greedy")


def run_table() -> list[Row]:
    rows = []
    for name in INSTANCES:
        hypergraph = hypergraph_instance(name)
        baseline = baseline_ub(hypergraph)
        result = branch_and_bound_ghw(hypergraph, node_limit=NODE_BUDGET)
        rows.append(
            Row(
                name,
                {
                    "V": hypergraph.num_vertices(),
                    "H": hypergraph.num_edges(),
                    "baseline_ub": baseline,
                    "bb_ghw": fmt_result(result),
                    "bb_ub": result.upper_bound,
                    "bb_lb": result.lower_bound,
                },
            )
        )
    return rows


def test_table_8_2(capsys):
    rows = run_table()
    with capsys.disabled():
        print_table(
            "Table 8.2 — BB-ghw anytime bounds on larger instances",
            rows,
            note="claim: the BB incumbent never exceeds the min-fill + "
            "greedy baseline",
        )
    for row in rows:
        assert row.columns["bb_ub"] <= row.columns["baseline_ub"]
        assert row.columns["bb_lb"] <= row.columns["bb_ub"]


def test_benchmark_bb_ghw_budgeted_grid2d5(benchmark):
    hypergraph = hypergraph_instance("grid2d_5")
    benchmark.pedantic(
        lambda: branch_and_bound_ghw(hypergraph, node_limit=NODE_BUDGET),
        iterations=1,
        rounds=1,
    )
