"""Ablation — which treewidth lower bound powers the searches best.

Section 4.4.2 offers three heuristics (degeneracy/MMD, minor-min-width,
minor-gamma_R); the thesis's A*-tw uses the max of the latter two. This
bench compares the bounds' tightness on the benchmark graphs and their
effect on A*-tw node counts, confirming the thesis's choice: the
combination dominates each single bound.
"""

from __future__ import annotations

from repro.bounds.lower import degeneracy, minor_gamma_r, minor_min_width
from repro.instances.registry import graph_instance
from repro.search.astar_tw import astar_treewidth

from workloads import Row, print_table

GRAPHS = ["queen4_4", "queen5_5", "myciel3", "myciel4", "grid4", "grid5"]

TRUTHS = {
    "queen4_4": None,
    "queen5_5": 18,
    "myciel3": 5,
    "myciel4": 10,
    "grid4": 4,
    "grid5": 5,
}


def run_table() -> list[Row]:
    rows = []
    for name in GRAPHS:
        graph = graph_instance(name)
        mmd = degeneracy(graph)
        mmw = minor_min_width(graph)
        gr = minor_gamma_r(graph)
        rows.append(
            Row(
                name,
                {
                    "degeneracy": mmd,
                    "minor_min_width": mmw,
                    "minor_gamma_r": gr,
                    "combined": max(mmw, gr),
                    "treewidth": TRUTHS[name] or "?",
                },
            )
        )
    return rows


def test_ablation_lower_bounds(capsys):
    rows = run_table()
    with capsys.disabled():
        print_table(
            "Ablation — treewidth lower bound tightness",
            rows,
            note="the thesis combines minor-min-width with minor-gamma_R",
        )
    for row in rows:
        assert row.columns["combined"] >= row.columns["minor_min_width"]
        assert row.columns["combined"] >= row.columns["minor_gamma_r"]
        # contraction-based MMW dominates plain degeneracy
        assert row.columns["minor_min_width"] >= row.columns["degeneracy"]
        truth = TRUTHS[row.instance]
        if truth is not None:
            assert row.columns["combined"] <= truth


def test_lb_choice_affects_search_nodes(capsys):
    graph = graph_instance("myciel4")
    single = astar_treewidth(graph, lb_methods=("degeneracy",))
    combined = astar_treewidth(
        graph, lb_methods=("minor-min-width", "minor-gamma-r")
    )
    assert single.value == combined.value
    with capsys.disabled():
        print(
            f"\nA*-tw(myciel4) nodes: degeneracy-only="
            f"{single.nodes_expanded}, combined={combined.nodes_expanded}"
        )
    assert combined.nodes_expanded <= single.nodes_expanded


def test_benchmark_minor_min_width_queen5(benchmark):
    graph = graph_instance("queen5_5")
    benchmark.pedantic(
        lambda: minor_min_width(graph), iterations=3, rounds=3
    )
