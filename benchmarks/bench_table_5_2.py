"""Table 5.2 — A*-tw on grid graphs.

Thesis: grid2..grid6 certified with treewidth n; grid7/grid8 interrupted
with lower bound 5*. Reproduced with grid2..grid5 certified and grid6
under a node budget (closing it takes minutes in pure Python; the thesis
itself needed 150 s in C++).
"""

from __future__ import annotations

from repro.bounds.lower import treewidth_lower_bound
from repro.bounds.upper import upper_bound_ordering
from repro.instances.dimacs_like import grid_graph
from repro.search.astar_tw import astar_treewidth

from workloads import SEARCH_TIME_LIMIT, Row, fmt_result, print_table

THESIS_VALUES = {2: 2, 3: 3, 4: 4, 5: 5, 6: 6}

CERTIFY = [2, 3, 4, 5]
BUDGETED = [6]


def run_table() -> list[Row]:
    rows = []
    for n in CERTIFY + BUDGETED:
        graph = grid_graph(n)
        lb = treewidth_lower_bound(graph)
        ub, _ = upper_bound_ordering(graph, "min-fill")
        kwargs = {}
        if n in BUDGETED:
            kwargs = {"time_limit": SEARCH_TIME_LIMIT, "node_limit": 30_000}
        result = astar_treewidth(graph, **kwargs)
        rows.append(
            Row(
                f"grid{n}",
                {
                    "V": graph.num_vertices(),
                    "E": graph.num_edges(),
                    "lb": lb,
                    "ub": ub,
                    "astar_tw": fmt_result(result),
                    "time_s": f"{result.elapsed:.2f}",
                    "thesis_tw": THESIS_VALUES[n],
                },
            )
        )
    return rows


def test_table_5_2(capsys):
    rows = run_table()
    with capsys.disabled():
        print_table(
            "Table 5.2 — A*-tw on grid graphs",
            rows,
            note="the n x n grid has treewidth n",
        )
    for row, n in zip(rows, CERTIFY):
        assert row.columns["astar_tw"] == str(n)
    # budgeted grids must still bracket the truth
    for row, n in zip(rows[len(CERTIFY):], BUDGETED):
        value = row.columns["astar_tw"]
        if "*" in value:
            lower, upper = value.replace("]", "").split("*[")
            assert int(lower) <= n <= int(upper)
        else:
            assert int(value) == n


def test_benchmark_astar_tw_grid4(benchmark):
    graph = grid_graph(4)
    result = benchmark.pedantic(
        lambda: astar_treewidth(graph), iterations=1, rounds=1
    )
    assert result.value == 4
