"""Table 6.4 — GA-tw population-size comparison.

Thesis: populations of 100/200/1000/2000 at equal generation counts;
larger populations win on most instances. Scaled: 10/20/40/80 at equal
*evaluation* budget is the fair modern comparison, but the thesis held
generations fixed, so we do both and print both.
"""

from __future__ import annotations

import statistics

from repro.genetic.engine import GAParameters
from repro.genetic.ga_tw import ga_treewidth
from repro.instances.registry import graph_instance

from workloads import Row, print_table

INSTANCE = "queen8_8"
RUNS = 3
SIZES = (10, 20, 40, 80)
GENERATIONS = 30


def run_size(size: int, iterations: int) -> list[int]:
    graph = graph_instance(INSTANCE)
    parameters = GAParameters(
        population_size=size,
        group_size=2,
        max_iterations=iterations,
    )
    return [
        ga_treewidth(
            graph, parameters=parameters, seed=run, seed_heuristics=False
        ).best_fitness
        for run in range(RUNS)
    ]


def run_table() -> list[Row]:
    rows = []
    for size in SIZES:
        fixed_gen = run_size(size, GENERATIONS)
        equal_budget = run_size(size, (SIZES[0] * GENERATIONS) // size * 4)
        rows.append(
            Row(
                INSTANCE,
                {
                    "population": size,
                    "avg_fixed_generations": round(
                        statistics.mean(fixed_gen), 1
                    ),
                    "min_fixed": min(fixed_gen),
                    "avg_equal_budget": round(
                        statistics.mean(equal_budget), 1
                    ),
                },
            )
        )
    return rows


def test_table_6_4(capsys):
    rows = run_table()
    with capsys.disabled():
        print_table(
            "Table 6.4 — population size comparison (queen8_8)",
            rows,
            note="thesis: larger populations win at fixed generations",
        )
    averages = [row.columns["avg_fixed_generations"] for row in rows]
    # the largest population is at least as good as the smallest
    assert averages[-1] <= averages[0]


def test_benchmark_ga_tw_large_population(benchmark):
    graph = graph_instance(INSTANCE)
    parameters = GAParameters(population_size=80, max_iterations=5)
    benchmark.pedantic(
        lambda: ga_treewidth(graph, parameters=parameters, seed=0),
        iterations=1,
        rounds=1,
    )
