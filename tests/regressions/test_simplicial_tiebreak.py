"""Regression: vertex tie-breaks must be canonical across backends.

``find_simplicial`` used to break ties by ``repr``-sorting vertices, so
on integer-labelled graphs vertex 10 sorted before vertex 2 ("10" < "2"
lexicographically) while the bitset kernels interned vertices in a
different order — the python and bitset search paths could force
*different* reduction vertices on the same graph. Both now share
:func:`repro.hypergraphs.graph.vertex_sort_key` (numeric vertices in
numeric order, everything else by ``repr``).
"""

from repro.genetic.engine import GAParameters
from repro.genetic.ga_tw import ga_treewidth
from repro.hypergraphs.graph import Graph, vertex_sort_key
from repro.kernels.bithypergraph import BitGraph
from repro.reductions.simplicial import find_simplicial


def two_digit_path() -> Graph:
    # Both endpoints (2 and 10) are simplicial; repr order picks 10,
    # numeric order picks 2.
    graph = Graph(vertices=[2, 5, 10])
    graph.add_edge(2, 5)
    graph.add_edge(5, 10)
    return graph


class TestCanonicalVertexOrder:
    def test_numeric_vertices_sort_numerically(self):
        assert sorted([10, 2, 33, 5], key=vertex_sort_key) == [2, 5, 10, 33]

    def test_mixed_types_numerics_first(self):
        ordered = sorted([10, "a", 2, (1, 2)], key=vertex_sort_key)
        assert ordered[:2] == [2, 10]

    def test_find_simplicial_prefers_numeric_minimum(self):
        assert find_simplicial(two_digit_path()) == 2

    def test_bitset_interning_matches_reduction_order(self):
        graph = two_digit_path()
        assert BitGraph.from_graph(graph).vertices == sorted(
            graph.vertices(), key=vertex_sort_key
        )


class TestBackendParity:
    def test_ga_tw_python_and_bitset_agree_on_two_digit_labels(self):
        # A graph whose integer labels straddle the 1-digit/2-digit
        # boundary: repr-order and numeric order genuinely differ.
        graph = Graph(vertices=range(13))
        for offset in (1, 2, 9, 11):
            for u in range(13):
                if u + offset < 13:
                    graph.add_edge(u, u + offset)
        parameters = GAParameters(population_size=8, max_iterations=6)
        results = {
            backend: ga_treewidth(
                graph, parameters=parameters, seed=11, backend=backend
            )
            for backend in ("python", "bitset")
        }
        assert (
            results["python"].best_fitness == results["bitset"].best_fitness
        )
        assert (
            results["python"].best_individual
            == results["bitset"].best_individual
        )
