"""Strategy specs: parsing, validation, JSON round trips."""

import pytest

from repro.portfolio.strategies import (
    StrategySpec,
    default_portfolio,
    parse_strategies,
)


class TestParseStrategies:
    def test_simple_list(self):
        specs = parse_strategies("bb,ga,sa,tabu", "ghw")
        assert [s.kind for s in specs] == ["bb", "ga", "sa", "tabu"]
        assert [s.name for s in specs] == ["bb", "ga", "sa", "tabu"]

    def test_duplicates_get_distinct_names_and_seeds(self):
        specs = parse_strategies("ga,ga,ga", "tw", seed=10)
        assert [s.name for s in specs] == ["ga-1", "ga-2", "ga-3"]
        assert [s.seed for s in specs] == [10, 11, 12]

    def test_whitespace_tolerated(self):
        specs = parse_strategies(" bb , sa ", "tw")
        assert [s.kind for s in specs] == ["bb", "sa"]

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_strategies(" , ", "tw")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy kind"):
            parse_strategies("bb,quantum", "tw")

    def test_saiga_is_ghw_only(self):
        assert parse_strategies("saiga", "ghw")[0].kind == "saiga"
        with pytest.raises(ValueError, match="only applies to ghw"):
            parse_strategies("saiga", "tw")


class TestStrategySpec:
    def test_round_trip(self):
        spec = StrategySpec(
            name="ga-1", kind="ga", seed=7, backend="bitset", jobs=2,
            options={"population_size": 20},
        )
        assert StrategySpec.from_dict(spec.to_dict()) == spec

    def test_exact_property(self):
        assert StrategySpec(name="bb", kind="bb").exact
        assert StrategySpec(name="astar", kind="astar").exact
        assert not StrategySpec(name="ga", kind="ga").exact

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="needs a name"):
            StrategySpec(name="", kind="bb").validated("tw")
        with pytest.raises(ValueError, match="jobs"):
            StrategySpec(name="ga", kind="ga", jobs=0).validated("tw")


class TestDefaultPortfolio:
    def test_default_mix(self):
        specs = default_portfolio("ghw")
        kinds = [s.kind for s in specs]
        assert "bb" in kinds  # one exact member for lower bounds
        assert len([k for k in kinds if k != "bb"]) >= 2
        names = [s.name for s in specs]
        assert len(set(names)) == len(names)
