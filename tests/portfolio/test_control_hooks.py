"""Every solver family honours the SolverControl contract.

Each family must: stop cooperatively when ``should_stop`` fires, publish
upper-bound improvements (with witness orderings), checkpoint resumable
state, and — for the exact searches — prune against an injected shared
upper bound without ever claiming a lower bound it did not prove.
"""

from repro.genetic.ga_ghw import ga_ghw
from repro.genetic.ga_tw import ga_treewidth
from repro.genetic.saiga import saiga_ghw
from repro.localsearch.simulated_annealing import sa_ghw
from repro.localsearch.tabu import tabu_ghw
from repro.obs.control import LocalControl
from repro.search.bb_tw import branch_and_bound_treewidth
from repro.search.astar_tw import astar_treewidth


class TestHeuristicHooks:
    def test_ga_publishes_and_checkpoints(self, figure_2_11):
        control = LocalControl()
        result = ga_ghw(figure_2_11, seed=0, control=control)
        assert control.best_upper == result.best_fitness
        assert sorted(control.best_ordering) == sorted(figure_2_11.vertices())
        assert control.checkpoints
        last = control.checkpoints[-1]
        assert last["best_fitness"] == result.best_fitness
        assert "rng_state" in last and "population" in last

    def test_ga_stops_cooperatively(self, figure_2_11):
        control = LocalControl(stop_after_publishes=1)
        result = ga_ghw(figure_2_11, seed=0, control=control)
        # wound down early but still returned its best-so-far
        assert result.best_fitness >= 2
        assert control.publishes >= 1

    def test_ga_early_stops_at_shared_lower_bound(self, figure_2_11):
        control = LocalControl(lower_bound=2)
        result = ga_ghw(figure_2_11, seed=0, control=control)
        assert result.best_fitness == 2
        # reaching the proven optimum ends the run well before the
        # generation budget
        assert result.generations < 20

    def test_ga_resumes_from_snapshot(self, figure_2_11):
        control = LocalControl(stop_after_publishes=1)
        ga_ghw(figure_2_11, seed=0, control=control)
        snapshot = control.checkpoints[-1]
        resumed = ga_ghw(figure_2_11, seed=0, resume_state=snapshot)
        assert resumed.best_fitness <= snapshot["best_fitness"]

    def test_sa_hooks(self, figure_2_11):
        control = LocalControl()
        result = sa_ghw(figure_2_11, seed=0, control=control)
        assert control.best_upper == result.best_fitness
        assert control.checkpoints
        snapshot = control.checkpoints[-1]
        assert snapshot["best_fitness"] == result.best_fitness
        resumed = sa_ghw(figure_2_11, seed=0, resume_state=snapshot)
        assert resumed.best_fitness <= result.best_fitness

    def test_tabu_hooks(self, figure_2_11):
        control = LocalControl()
        result = tabu_ghw(figure_2_11, seed=0, control=control)
        assert control.best_upper == result.best_fitness
        snapshot = control.checkpoints[-1]
        resumed = tabu_ghw(figure_2_11, seed=0, resume_state=snapshot)
        assert resumed.best_fitness <= result.best_fitness

    def test_saiga_hooks(self, figure_2_11):
        control = LocalControl()
        result = saiga_ghw(figure_2_11, seed=0, epochs=2, control=control)
        assert control.best_upper == result.best_fitness
        snapshot = control.checkpoints[-1]
        assert "islands" in snapshot
        resumed = saiga_ghw(
            figure_2_11, seed=0, epochs=1, resume_state=snapshot
        )
        assert resumed.best_fitness <= result.best_fitness

    def test_tw_ga_accepts_control(self, square):
        control = LocalControl()
        result = ga_treewidth(square, seed=0, control=control)
        assert control.best_upper == result.best_fitness == 2


class TestExactHooks:
    def test_bb_publishes_both_bounds(self, square):
        control = LocalControl()
        result = branch_and_bound_treewidth(square, control=control)
        assert result.optimal and result.value == 2
        assert control.best_upper == 2
        assert control.best_lower == 2

    def test_bb_prunes_against_shared_upper_without_fake_lb(self, square):
        # A shared ub below the true optimum: the search exhausts while
        # pruning against it, so it must NOT certify — only lb <= 2 is
        # actually proven.
        control = LocalControl(upper_bound=2)
        result = branch_and_bound_treewidth(square, control=control)
        assert result.lower_bound <= 2
        assert not (result.optimal and result.value > 2)

    def test_bb_stops_cooperatively(self):
        from repro.instances.dimacs_like import queen_graph

        control = LocalControl()
        control.stop = True
        result = branch_and_bound_treewidth(queen_graph(4), control=control)
        # wound down immediately: no search happened, bounds stay sound
        assert result.nodes_expanded == 0
        assert not result.optimal
        assert result.lower_bound <= result.upper_bound

    def test_astar_control(self, square):
        control = LocalControl()
        result = astar_treewidth(square, control=control)
        assert result.optimal and result.value == 2
        assert control.best_lower == 2
