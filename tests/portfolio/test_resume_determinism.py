"""Satellite of the conformance harness: a portfolio race killed
mid-run and resumed from its checkpoints must land on the same final
incumbent width as the uninterrupted race — and the incumbent must
carry a certifiable witness either way.

The resume contract makes this sound, not just likely: the incumbent is
seeded from every snapshot's best-so-far bounds before any worker
restarts, and both races keep the exact member (BB) that closes the
bounds on an instance this small, so both must prove the same optimum.
"""

from repro.instances.hypergraphs import grid2d
from repro.portfolio.scheduler import (
    PortfolioSpec,
    resume_portfolio,
    run_portfolio,
)
from repro.portfolio.strategies import StrategySpec
from repro.verify.certify import certify_ghw_witness

GA_OPTIONS = {"population_size": 10, "max_iterations": 10}


def strategies(seed: int) -> list[StrategySpec]:
    return [
        StrategySpec(name="bb", kind="bb", seed=seed),
        StrategySpec(name="ga", kind="ga", seed=seed + 1, options=dict(GA_OPTIONS)),
    ]


def spec(seed: int, **overrides) -> PortfolioSpec:
    settings = dict(
        measure="ghw",
        strategies=strategies(seed),
        mode="inline",
        time_limit=10.0,
        seed=seed,
        instance_name="grid3x3",
    )
    settings.update(overrides)
    return PortfolioSpec(**settings)


def test_killed_then_resumed_race_matches_uninterrupted(tmp_path):
    hypergraph = grid2d(3, 3)
    fresh = run_portfolio(hypergraph, spec(seed=5))
    assert fresh.optimal

    checkpoint_dir = str(tmp_path / "race")
    killed = run_portfolio(
        hypergraph,
        spec(
            seed=5,
            time_limit=0.15,
            checkpoint_dir=checkpoint_dir,
            checkpoint_interval=0.01,
        ),
    )
    resumed = resume_portfolio(
        hypergraph, checkpoint_dir, time_limit=10.0, mode="inline"
    )

    assert resumed.optimal
    assert resumed.upper_bound == fresh.upper_bound
    # Resume seeds the incumbent from the snapshots, so it can only
    # match or improve what the killed race had found.
    if killed.upper_bound is not None:
        assert resumed.upper_bound <= killed.upper_bound

    for result in (fresh, resumed):
        certification = certify_ghw_witness(
            hypergraph,
            list(result.ordering),
            result.upper_bound,
            strict=False,
        )
        assert certification.ok, certification.reason
        assert certification.witness_width <= result.upper_bound
