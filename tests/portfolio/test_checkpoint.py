"""Checkpoint persistence: throttling, atomicity, revival, manifests."""

import json
import random

from repro.portfolio.checkpoint import (
    Checkpointer,
    decode_rng_state,
    encode_rng_state,
    list_worker_states,
    load_worker_state,
    read_manifest,
    revive_vertices,
    write_manifest,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestRngRoundTrip:
    def test_identical_continuation(self):
        rng = random.Random(42)
        rng.random()
        encoded = json.loads(json.dumps(encode_rng_state(rng.getstate())))
        replay = random.Random()
        replay.setstate(decode_rng_state(encoded))
        assert [replay.random() for _ in range(5)] == [
            rng.random() for _ in range(5)
        ]


class TestCheckpointer:
    def test_throttle_keeps_freshest(self, tmp_path):
        clock = FakeClock()
        checkpointer = Checkpointer(tmp_path, "ga", interval_s=1.0, clock=clock)
        checkpointer.offer({"best_fitness": 5})  # first write is immediate
        clock.now = 0.5
        checkpointer.offer({"best_fitness": 4})  # throttled: pending only
        assert checkpointer.writes == 1
        assert load_worker_state(tmp_path, "ga")["best_fitness"] == 5
        checkpointer.flush()
        assert load_worker_state(tmp_path, "ga")["best_fitness"] == 4

    def test_interval_elapsed_writes_again(self, tmp_path):
        clock = FakeClock()
        checkpointer = Checkpointer(tmp_path, "ga", interval_s=1.0, clock=clock)
        checkpointer.offer({"best_fitness": 5})
        clock.now = 2.0
        checkpointer.offer({"best_fitness": 3})
        assert checkpointer.writes == 2
        assert load_worker_state(tmp_path, "ga")["best_fitness"] == 3

    def test_flush_without_pending_is_noop(self, tmp_path):
        checkpointer = Checkpointer(tmp_path, "ga")
        checkpointer.flush()
        assert load_worker_state(tmp_path, "ga") is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        checkpointer = Checkpointer(tmp_path, "ga")
        checkpointer.offer({"best_fitness": 5})
        assert not list(tmp_path.glob("*.tmp"))

    def test_rng_state_round_trips_through_file(self, tmp_path):
        rng = random.Random(7)
        checkpointer = Checkpointer(tmp_path, "sa")
        checkpointer.offer({"best_fitness": 2, "rng_state": rng.getstate()})
        state = load_worker_state(tmp_path, "sa")
        replay = random.Random()
        replay.setstate(state["rng_state"])
        assert replay.random() == rng.random()


class TestListAndManifest:
    def test_list_worker_states(self, tmp_path):
        Checkpointer(tmp_path, "ga").offer({"best_fitness": 4})
        Checkpointer(tmp_path, "bb").offer({"best_fitness": 3, "lower_bound": 2})
        states = list_worker_states(tmp_path)
        assert set(states) == {"ga", "bb"}
        assert states["bb"]["lower_bound"] == 2

    def test_missing_directory_is_empty(self, tmp_path):
        assert list_worker_states(tmp_path / "nope") == {}

    def test_manifest_round_trip(self, tmp_path):
        manifest = {"measure": "ghw", "strategies": [{"name": "bb"}]}
        write_manifest(tmp_path, manifest)
        assert read_manifest(tmp_path) == manifest
        assert read_manifest(tmp_path / "nope") is None


class TestReviveVertices:
    def test_tuple_vertices_restored(self):
        vertices = [(0, 0), (0, 1), (1, 0)]
        state = json.loads(
            json.dumps(
                {
                    "best_fitness": 2,
                    "best_individual": [(0, 1), (0, 0), (1, 0)],
                    "population": [[(0, 0), (0, 1), (1, 0)]],
                    "tabu": [[(0, 1), 17]],
                }
            )
        )
        revived = revive_vertices(state, vertices)
        assert revived["best_individual"] == [(0, 1), (0, 0), (1, 0)]
        assert revived["population"] == [[(0, 0), (0, 1), (1, 0)]]
        assert revived["tabu"] == [[(0, 1), 17]]
        assert revived["best_fitness"] == 2

    def test_string_and_int_vertices_untouched(self):
        state = {"best_individual": ["a", "b"], "fitnesses": [3, 4]}
        revived = revive_vertices(state, ["a", "b"])
        assert revived == state

    def test_rng_state_skipped(self):
        rng_state = random.Random(0).getstate()
        revived = revive_vertices({"rng_state": rng_state}, [(0, 1)])
        assert revived["rng_state"] is rng_state
