"""Portfolio races: the PR's acceptance criteria.

* a 4-strategy race under one shared deadline is at least as good as
  every member run alone on the same budget (ub no worse than any
  member's ub, lb no worse than any member's lb);
* the race stops early the moment lb == ub;
* a race killed by its deadline and resumed from its checkpoint
  directory reaches a same-or-better incumbent;
* process mode produces the same certified result with real worker
  processes and nested RunReports.
"""

import pytest

from repro import obs
from repro.instances.hypergraphs import bridge, grid2d
from repro.obs.report import validate_report
from repro.portfolio import (
    PortfolioSpec,
    parse_strategies,
    portfolio_report,
    resume_portfolio,
    run_portfolio,
    run_strategy,
)

STRATEGIES = "bb,ga,sa,tabu"
BUDGET = 5.0


class TestInlineRace:
    def test_bounds_dominate_every_member(self):
        instance = bridge(3)
        spec = PortfolioSpec(
            measure="ghw",
            strategies=parse_strategies(STRATEGIES, "ghw"),
            time_limit=BUDGET,
            mode="inline",
        )
        race = run_portfolio(instance, spec)

        for member in parse_strategies(STRATEGIES, "ghw"):
            alone = run_strategy(member, instance, "ghw", time_limit=BUDGET)
            if alone.upper_bound is not None:
                assert race.upper_bound <= alone.upper_bound
            if alone.lower_bound is not None:
                assert race.lower_bound >= alone.lower_bound

    def test_early_stop_when_bounds_meet(self):
        race = run_portfolio(
            bridge(3),
            PortfolioSpec(
                measure="ghw",
                strategies=parse_strategies(STRATEGIES, "ghw"),
                time_limit=BUDGET,
                mode="inline",
            ),
        )
        assert race.optimal and race.value == 2
        assert race.stop_reason == "closed"
        assert race.early_stopped
        assert race.elapsed < BUDGET
        # the witness ordering is a permutation of the vertex set
        assert sorted(race.ordering) == sorted(bridge(3).vertices())

    def test_heuristics_feed_the_exact_search(self):
        """The exact member prunes against heuristic bounds: certification
        can come from the *portfolio* (heuristic ub + exact lb) even when
        no single worker certified."""
        race = run_portfolio(
            bridge(3),
            PortfolioSpec(
                measure="ghw",
                strategies=parse_strategies(STRATEGIES, "ghw"),
                time_limit=BUDGET,
                mode="inline",
            ),
        )
        assert race.upper_source is not None
        assert race.lower_source is not None

    def test_tw_race(self):
        from repro.instances.dimacs_like import grid_graph

        race = run_portfolio(
            grid_graph(4),
            PortfolioSpec(
                measure="tw",
                strategies=parse_strategies(STRATEGIES, "tw"),
                time_limit=BUDGET,
                mode="inline",
            ),
        )
        assert race.optimal and race.value == 4

    def test_report_nests_and_validates(self):
        with obs.instrument() as ins:
            race = run_portfolio(
                bridge(3),
                PortfolioSpec(
                    measure="ghw",
                    strategies=parse_strategies("bb,ga", "ghw"),
                    time_limit=BUDGET,
                    mode="inline",
                    instance_name="bridge_3",
                ),
            )
            report = portfolio_report(
                ins, race, instance_name="bridge_3", meta={"mode": "inline"}
            )
        data = report.to_dict()
        validate_report(data)  # raises on any schema violation
        assert data["solver"] == "portfolio"
        assert len(data["workers"]) == 2
        assert {w["solver"] for w in data["workers"]} == {"bb", "ga"}
        assert data["meta"]["stop_reason"] == "closed"


class TestCheckpointResume:
    def test_killed_race_resumes_same_or_better(self, tmp_path):
        instance = grid2d(4)
        spec = PortfolioSpec(
            measure="ghw",
            strategies=parse_strategies("ga,sa,tabu", "ghw"),
            time_limit=0.05,  # far too little: the deadline kills the race
            mode="inline",
            checkpoint_dir=str(tmp_path),
            checkpoint_interval=0.0,
        )
        first = run_portfolio(instance, spec)
        assert first.stop_reason == "deadline"
        assert (tmp_path / "manifest.json").exists()

        resumed = resume_portfolio(instance, str(tmp_path), time_limit=BUDGET)
        # the resumed race starts from the checkpointed incumbent, so it
        # can only match or improve it
        if first.upper_bound is not None:
            assert resumed.upper_bound <= first.upper_bound
        assert resumed.upper_bound is not None

    def test_resume_without_manifest_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            resume_portfolio(bridge(3), str(tmp_path / "void"))

    def test_exact_member_restart_prunes_from_checkpoint(self, tmp_path):
        instance = bridge(3)
        spec = PortfolioSpec(
            measure="ghw",
            strategies=parse_strategies("bb,ga", "ghw"),
            time_limit=BUDGET,
            mode="inline",
            checkpoint_dir=str(tmp_path),
            checkpoint_interval=0.0,
        )
        first = run_portfolio(instance, spec)
        assert first.optimal
        # resuming a finished race still works and stays optimal: the
        # incumbent is seeded from the snapshots and closes immediately
        resumed = resume_portfolio(instance, str(tmp_path), time_limit=BUDGET)
        assert resumed.optimal and resumed.value == first.value


class TestProcessRace:
    def test_process_mode_certifies_with_nested_reports(self):
        race = run_portfolio(
            bridge(3),
            PortfolioSpec(
                measure="ghw",
                strategies=parse_strategies(STRATEGIES, "ghw"),
                time_limit=30.0,
                mode="process",
                instance_name="bridge_3",
            ),
        )
        assert race.optimal and race.value == 2
        assert race.stop_reason == "closed"
        reported = {w.name for w in race.workers}
        assert reported == {"bb", "ga", "sa", "tabu"}
        assert len(race.worker_reports) == 4
        for worker_report in race.worker_reports:
            validate_report(worker_report)

    def test_process_mode_deadline(self, tmp_path):
        race = run_portfolio(
            grid2d(5),
            PortfolioSpec(
                measure="ghw",
                strategies=parse_strategies("ga,sa", "ghw"),
                time_limit=0.3,
                mode="process",
                checkpoint_dir=str(tmp_path),
                checkpoint_interval=0.0,
                grace=10.0,
            ),
        )
        assert race.stop_reason in ("deadline", "closed")
        # every worker flushed a final message despite the cancellation
        assert {w.name for w in race.workers} == {"ga", "sa"}
