"""The bound bus: incumbent folding and both client implementations."""

import multiprocessing as mp

from repro.portfolio.bus import (
    LB_SENTINEL,
    UB_SENTINEL,
    BoundMessage,
    BusClient,
    Incumbent,
    InlineClient,
)


class TestIncumbent:
    def test_upper_keeps_minimum_with_witness(self):
        incumbent = Incumbent()
        assert incumbent.offer_upper(5, ["a", "b"], "ga")
        assert not incumbent.offer_upper(5, ["b", "a"], "sa")  # no improvement
        assert incumbent.offer_upper(3, ["b", "a"], "sa")
        assert incumbent.upper == 3
        assert incumbent.ordering == ["b", "a"]
        assert incumbent.upper_source == "sa"
        assert incumbent.upper_improvements == 2

    def test_lower_keeps_maximum(self):
        incumbent = Incumbent()
        assert incumbent.offer_lower(1, "bb")
        assert not incumbent.offer_lower(1, "astar")
        assert incumbent.offer_lower(2, "bb")
        assert incumbent.lower == 2
        assert incumbent.lower_source == "bb"

    def test_closed_when_bounds_meet(self):
        incumbent = Incumbent()
        assert not incumbent.closed
        incumbent.offer_upper(3, None, "ga")
        assert not incumbent.closed
        incumbent.offer_lower(2, "bb")
        assert not incumbent.closed
        incumbent.offer_lower(3, "bb")
        assert incumbent.closed


class TestInlineClient:
    def test_bounds_flow_through_incumbent(self):
        incumbent = Incumbent()
        first = InlineClient("ga", incumbent)
        second = InlineClient("bb", incumbent)
        first.publish_upper(4, ["x", "y"])
        assert second.shared_upper_bound() == 4
        second.publish_lower(2)
        assert first.shared_lower_bound() == 2

    def test_stops_on_deadline(self):
        clock = iter([0.0, 5.0, 11.0])
        client = InlineClient(
            "ga", Incumbent(), deadline=10.0, clock=lambda: next(clock)
        )
        assert not client.should_stop()
        assert not client.should_stop()
        assert client.should_stop()

    def test_stops_when_incumbent_closes(self):
        incumbent = Incumbent()
        client = InlineClient("ga", incumbent)
        assert not client.should_stop()
        incumbent.offer_upper(2, None, "ga")
        incumbent.offer_lower(2, "bb")
        assert client.should_stop()


class TestBusClient:
    def _client(self, name="ga"):
        context = mp.get_context()
        queue = context.Queue()
        stop_event = context.Event()
        shared_upper = context.Value("q", UB_SENTINEL)
        shared_lower = context.Value("q", LB_SENTINEL)
        return (
            BusClient(name, queue, stop_event, shared_upper, shared_lower),
            queue,
            stop_event,
        )

    def test_sentinels_read_as_none(self):
        client, _, _ = self._client()
        assert client.shared_upper_bound() is None
        assert client.shared_lower_bound() is None

    def test_publish_folds_eagerly_and_enqueues(self):
        client, queue, _ = self._client()
        client.publish_upper(4, ["a", "b"])
        client.publish_upper(6)  # worse: queued, but shared value keeps 4
        client.publish_lower(2)
        assert client.shared_upper_bound() == 4
        assert client.shared_lower_bound() == 2
        messages = [queue.get(timeout=5) for _ in range(3)]
        assert [m.type for m in messages] == ["upper", "upper", "lower"]
        assert messages[0].ordering == ["a", "b"]
        assert messages[0].worker == "ga"

    def test_stop_event(self):
        client, _, stop_event = self._client()
        assert not client.should_stop()
        stop_event.set()
        assert client.should_stop()

    def test_bound_message_defaults(self):
        message = BoundMessage(type="result", worker="bb")
        assert message.payload == {}
        assert message.value is None
