"""Tests for the upper-bound ordering heuristics (Section 4.4.2)."""

import random

import pytest

from repro.bounds.upper import (
    heuristic_names,
    max_cardinality_ordering,
    min_degree_ordering,
    min_fill_ordering,
    min_width_ordering,
    treewidth_upper_bound,
    upper_bound_ordering,
)
from repro.decompositions.elimination import ordering_width
from repro.hypergraphs.graph import complete_graph, cycle_graph, path_graph
from repro.instances.dimacs_like import grid_graph, queen_graph, random_gnp

ALL_BUILDERS = [
    min_fill_ordering,
    min_degree_ordering,
    min_width_ordering,
    max_cardinality_ordering,
]


class TestOrderingsAreValid:
    @pytest.mark.parametrize("build", ALL_BUILDERS)
    def test_permutation(self, build):
        graph = random_gnp(12, 0.4, seed=1)
        ordering = build(graph, None)
        assert sorted(ordering, key=repr) == sorted(
            graph.vertices(), key=repr
        )

    @pytest.mark.parametrize("build", ALL_BUILDERS)
    def test_graph_unchanged(self, build):
        graph = cycle_graph(6)
        before = graph.copy()
        build(graph, None)
        assert graph == before

    @pytest.mark.parametrize("build", ALL_BUILDERS)
    def test_deterministic_without_rng(self, build):
        graph = random_gnp(10, 0.5, seed=2)
        assert build(graph, None) == build(graph, None)


class TestQuality:
    def test_min_fill_is_optimal_on_chordal(self):
        """A chordal graph admits a perfect elimination ordering; min-fill
        finds one (width = clique number - 1)."""
        graph = path_graph(6)
        assert ordering_width(graph, min_fill_ordering(graph, None)) == 1
        tri = complete_graph(4)
        assert ordering_width(tri, min_fill_ordering(tri, None)) == 3

    def test_min_fill_on_cycle(self):
        graph = cycle_graph(8)
        assert ordering_width(graph, min_fill_ordering(graph, None)) == 2

    def test_min_fill_grid_close_to_optimal(self):
        graph = grid_graph(4)
        width, _ = upper_bound_ordering(graph, "min-fill")
        assert 4 <= width <= 6

    def test_mcs_on_chordal_is_perfect(self):
        # a 3-clique chain (chordal): treewidth 2
        from repro.hypergraphs.graph import Graph

        graph = Graph()
        for i in range(5):
            graph.add_clique([i, i + 1, i + 2])
        ordering = max_cardinality_ordering(graph, None)
        assert ordering_width(graph, ordering) == 2

    def test_queen5_upper_bound_near_thesis(self):
        """Thesis Table 5.1: queen5_5 ub = 18 (and tw = 18)."""
        width, _ = upper_bound_ordering(queen_graph(5), "min-fill")
        assert 18 <= width <= 21


class TestApi:
    def test_unknown_heuristic(self):
        with pytest.raises(ValueError):
            upper_bound_ordering(path_graph(3), "nope")

    def test_heuristic_names(self):
        assert set(heuristic_names()) == {
            "min-fill",
            "min-degree",
            "min-width",
            "mcs",
        }

    def test_restarts_never_hurt(self):
        graph = random_gnp(14, 0.4, seed=9)
        rng = random.Random(0)
        single = treewidth_upper_bound(graph, "min-fill", rng=rng)
        rng = random.Random(0)
        multi = treewidth_upper_bound(graph, "min-fill", rng=rng, restarts=5)
        assert multi <= single

    def test_width_matches_returned_ordering(self):
        graph = random_gnp(10, 0.5, seed=4)
        width, ordering = upper_bound_ordering(graph, "min-degree")
        assert ordering_width(graph, ordering) == width
