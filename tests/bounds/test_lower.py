"""Tests for treewidth lower bounds (Section 4.4.2, Figures 4.7-4.8)."""

import random
from itertools import permutations

import pytest

from repro.bounds.lower import (
    degeneracy,
    gamma_r,
    lower_bound_names,
    minor_gamma_r,
    minor_min_width,
    treewidth_lower_bound,
)
from repro.decompositions.elimination import ordering_width
from repro.hypergraphs.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
)
from repro.instances.dimacs_like import grid_graph, queen_graph, random_gnp


def brute_force_treewidth(graph: Graph) -> int:
    vertices = sorted(graph.vertices(), key=repr)
    return min(
        ordering_width(graph, list(perm)) for perm in permutations(vertices)
    )


class TestExactOnKnownGraphs:
    def test_complete_graph(self):
        graph = complete_graph(6)
        assert minor_min_width(graph) == 5
        assert minor_gamma_r(graph) == 5
        assert degeneracy(graph) == 5

    def test_path(self):
        graph = path_graph(6)
        assert minor_min_width(graph) == 1
        assert degeneracy(graph) == 1

    def test_cycle(self):
        graph = cycle_graph(7)
        assert minor_min_width(graph) == 2
        assert degeneracy(graph) == 2

    def test_grid(self):
        # the n x n grid has treewidth n; degree bounds give at least 2
        graph = grid_graph(4)
        assert minor_min_width(graph) >= 2

    def test_empty_and_single(self):
        assert treewidth_lower_bound(Graph()) == 0
        assert minor_min_width(Graph(vertices=[1])) == 0

    def test_disconnected_isolated_vertices(self):
        graph = path_graph(4)
        graph.add_vertex(99)
        assert minor_min_width(graph) == 1
        assert minor_gamma_r(graph) >= 0


class TestGammaR:
    def test_complete(self):
        assert gamma_r(complete_graph(5)) == 4

    def test_cycle(self):
        # C5: every vertex has degree 2 and non-adjacent pairs exist
        assert gamma_r(cycle_graph(5)) == 2

    def test_star(self):
        # star K1,3: leaves are non-adjacent, degree 1
        graph = Graph(edges=[(0, 1), (0, 2), (0, 3)])
        assert gamma_r(graph) == 1

    def test_empty(self):
        assert gamma_r(Graph()) == 0

    def test_single_vertex(self):
        assert gamma_r(Graph(vertices=[1])) == 0


class TestSoundness:
    """Every lower bound must be <= the true treewidth."""

    @pytest.mark.parametrize("seed", range(12))
    def test_against_brute_force(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 7)
        graph = random_gnp(n, rng.uniform(0.3, 0.8), seed=seed)
        truth = brute_force_treewidth(graph)
        assert minor_min_width(graph, rng) <= truth
        assert minor_gamma_r(graph, rng) <= truth
        assert degeneracy(graph, rng) <= truth
        assert treewidth_lower_bound(graph, rng=rng) <= truth

    def test_minor_min_width_at_least_degeneracy_often(self):
        """Contraction strengthens MMD; on queen graphs it is strictly
        better than raw degeneracy at least sometimes."""
        graph = queen_graph(5)
        assert minor_min_width(graph) >= degeneracy(graph) - 1

    def test_queen5_lower_bound_near_thesis(self):
        """Thesis Table 5.1: queen5_5 lb = 12."""
        bound = treewidth_lower_bound(queen_graph(5))
        assert 10 <= bound <= 18


class TestApi:
    def test_unknown_method(self):
        with pytest.raises(ValueError):
            treewidth_lower_bound(path_graph(3), methods=("nope",))

    def test_names(self):
        assert set(lower_bound_names()) == {
            "degeneracy",
            "minor-min-width",
            "minor-gamma-r",
        }

    def test_combination_is_max(self):
        graph = queen_graph(4)
        combined = treewidth_lower_bound(
            graph, methods=("minor-min-width", "minor-gamma-r")
        )
        assert combined >= treewidth_lower_bound(
            graph, methods=("minor-min-width",)
        )

    def test_source_graph_unchanged(self):
        graph = cycle_graph(6)
        before = graph.copy()
        minor_min_width(graph)
        minor_gamma_r(graph)
        degeneracy(graph)
        assert graph == before
