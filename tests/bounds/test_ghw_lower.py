"""Tests for the tw-ksc-width ghw lower bound (Figure 8.1)."""

import random
from itertools import permutations

import pytest

from repro.bounds.ghw_lower import tw_ksc_width, tw_ksc_width_remaining
from repro.decompositions.elimination import ordering_ghw
from repro.hypergraphs.elimination_graph import EliminationGraph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.instances.hypergraphs import (
    adder,
    clique_hypergraph,
    grid2d,
    random_csp_hypergraph,
)


def brute_force_ghw(hypergraph) -> int:
    vertices = sorted(hypergraph.vertices())
    return min(
        ordering_ghw(hypergraph, list(perm), cover="exact")
        for perm in permutations(vertices)
    )


class TestSoundness:
    @pytest.mark.parametrize("seed", range(8))
    def test_never_exceeds_true_ghw(self, seed):
        hypergraph = random_csp_hypergraph(6, 5, arity=3, seed=seed)
        truth = brute_force_ghw(hypergraph)
        assert tw_ksc_width(hypergraph) <= truth

    def test_clique_bound_is_tight(self):
        """clique_n: tw lb = n-1, pair edges -> bound = ceil(n/2) = ghw."""
        hypergraph = clique_hypergraph(8)
        assert tw_ksc_width(hypergraph) == 4

    def test_adder_bound(self):
        hypergraph = adder(4)
        bound = tw_ksc_width(hypergraph)
        assert 1 <= bound <= 2

    def test_grid_bound(self):
        hypergraph = grid2d(3)
        bound = tw_ksc_width(hypergraph)
        assert 1 <= bound <= 2  # ghw(grid2d_3) = 2

    def test_edgeless(self):
        assert tw_ksc_width(Hypergraph(vertices=[1, 2])) == 0

    def test_single_edge(self):
        assert tw_ksc_width(Hypergraph({"e": {1, 2, 3}})) == 1


class TestRemaining:
    def test_full_remainder_matches_plain_bound(self):
        hypergraph = clique_hypergraph(6)
        primal = hypergraph.primal_graph()
        assert tw_ksc_width_remaining(hypergraph, primal) == tw_ksc_width(
            hypergraph, primal=primal
        )

    def test_empty_remainder_is_zero(self):
        hypergraph = clique_hypergraph(4)
        working = EliminationGraph(hypergraph.primal_graph())
        for vertex in sorted(hypergraph.vertices()):
            working.eliminate(vertex)
        assert (
            tw_ksc_width_remaining(hypergraph, working.graph()) == 0
        )

    def test_remaining_bound_sound_for_completions(self):
        """After eliminating a prefix, the bound must not exceed the best
        completion's cover width."""
        rng = random.Random(5)
        for seed in range(6):
            hypergraph = random_csp_hypergraph(6, 5, arity=3, seed=seed)
            vertices = sorted(hypergraph.vertices())
            rng.shuffle(vertices)
            prefix, rest = vertices[:2], vertices[2:]
            working = EliminationGraph(hypergraph.primal_graph())
            for vertex in prefix:
                working.eliminate(vertex)
            bound = tw_ksc_width_remaining(hypergraph, working.graph())
            # best completion: min over permutations of the rest of the
            # max exact cover over the *remaining* bags only
            from repro.decompositions.elimination import elimination_bags
            from repro.setcover.exact import ExactSetCoverSolver

            solver = ExactSetCoverSolver(hypergraph.edges())
            best = None
            for perm in permutations(rest):
                bags = elimination_bags(
                    working.snapshot(), list(perm)
                )
                width = max(
                    solver.cover_size(bag) for bag in bags.values()
                )
                if best is None or width < best:
                    best = width
            assert bound <= best


class TestMonotonicity:
    def test_bound_at_least_one_with_edges(self):
        hypergraph = Hypergraph({"e1": {1, 2}, "e2": {2, 3}})
        assert tw_ksc_width(hypergraph) >= 1
