"""Fuzzing the HyperBench ``.hg`` round trip.

The properties: ``format_hg`` output always re-parses, formatting is a
fixed point after one round (idempotence even when names get mangled),
and lossy situations — isolated vertices, name collisions — are refused
loudly instead of silently dropping structure.
"""

from __future__ import annotations

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.io import FormatError
from repro.instances.hyperbench import format_hg, parse_hg

ACCEPTABLE = (FormatError, ValueError)

# Vertex labels spanning everything generators produce: ints, strings
# (including .hg-unsafe and dot-bearing spellings), and tuples.
vertex_labels = st.one_of(
    st.integers(min_value=-5, max_value=30),
    st.text(
        alphabet="abcxy._-:$()0 ", min_size=1, max_size=6
    ),
    st.tuples(st.integers(0, 3), st.integers(0, 3)),
)

hypergraphs = st.lists(
    st.sets(vertex_labels, min_size=1, max_size=5),
    min_size=1,
    max_size=6,
).map(
    lambda edges: Hypergraph(
        {f"e{i}": members for i, members in enumerate(edges)}
    )
)


@given(st.text(max_size=300))
@settings(max_examples=150, deadline=None)
def test_parser_never_crashes_uncleanly(text):
    try:
        parse_hg(text)
    except ACCEPTABLE:
        pass


@given(hypergraphs)
@settings(max_examples=100, deadline=None)
def test_format_parse_format_is_idempotent(hypergraph):
    # Name mangling may rewrite labels on the first pass, but the
    # written file must re-parse and re-format to the identical text.
    try:
        text = format_hg(hypergraph)
    except FormatError:
        return  # collision after mangling: refusing is the contract
    reparsed = parse_hg(text)
    assert format_hg(reparsed) == text
    assert reparsed.num_edges() == hypergraph.num_edges()
    assert sorted(len(e) for e in reparsed.edge_sets()) == sorted(
        len(e) for e in hypergraph.edge_sets()
    )


@given(hypergraphs)
@settings(max_examples=50, deadline=None)
def test_round_trip_preserves_safe_names(hypergraph):
    # When every label is already a legal .hg token, the round trip is
    # the identity on structure, not just on shape.
    try:
        text = format_hg(hypergraph)
    except FormatError:
        return
    reparsed = parse_hg(text)
    token = re.compile(r"[A-Za-z0-9_\-:$]+(?:\.[A-Za-z0-9_\-:$]+)*")
    safe = all(
        isinstance(v, str) and token.fullmatch(v)
        for v in hypergraph.vertices()
    )
    if safe:
        assert reparsed.vertices() == hypergraph.vertices()


class TestLossyCasesRefused:
    def test_isolated_vertex_refused(self):
        hypergraph = Hypergraph({"e1": {"a", "b"}}, vertices=["lonely"])
        with pytest.raises(FormatError, match="isolated vertices"):
            format_hg(hypergraph)

    def test_mangling_collision_refused(self):
        hypergraph = Hypergraph({"e1": {"a(b", "a)b"}})
        with pytest.raises(FormatError, match="both map"):
            format_hg(hypergraph)


class TestSpecificRoundTrips:
    def test_interior_dots_survive(self):
        text = format_hg(parse_hg("r1(t1.x, t2.y)."))
        assert "t1.x" in text and "t2.y" in text
        assert parse_hg(text).vertices() == {"t1.x", "t2.y"}

    def test_leading_and_trailing_dots_mangled_not_crashed(self):
        hypergraph = Hypergraph({"e1": {".a", "b."}})
        text = format_hg(hypergraph)
        reparsed = parse_hg(text)
        assert reparsed.vertices() == {"a", "b"}

    def test_single_vertex_edges(self):
        text = format_hg(parse_hg("e1(a),\ne2(a, b)."))
        reparsed = parse_hg(text)
        assert reparsed.edges()["e1"] == frozenset({"a"})

    def test_multi_line_edges_with_comments(self):
        text = "% header\ne1 (a, b,\n   c), % comment\ne2 (c, d)."
        assert format_hg(parse_hg(text)) == format_hg(
            parse_hg("e1(a,b,c),e2(c,d).")
        )
