"""Tests for the named instance registry."""

import pytest

from repro.hypergraphs.graph import Graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.instances.registry import (
    SIMULATED_CIRCUITS,
    SIMULATED_DIMACS,
    graph_instance,
    hypergraph_instance,
    instance,
)


class TestGraphNames:
    def test_queen(self):
        graph = graph_instance("queen5_5")
        assert graph.num_vertices() == 25

    def test_non_square_queen_rejected(self):
        with pytest.raises(ValueError):
            graph_instance("queen5_6")

    def test_myciel(self):
        assert graph_instance("myciel4").num_vertices() == 23

    def test_grid(self):
        assert graph_instance("grid6").num_vertices() == 36

    def test_dsjc(self):
        graph = graph_instance("DSJC125.1")
        assert graph.num_vertices() == 125
        density = graph.num_edges() / (125 * 124 / 2)
        assert 0.05 < density < 0.15

    def test_simulated_dimacs_sizes(self):
        for name, (vertices, edges) in list(SIMULATED_DIMACS.items())[:5]:
            graph = graph_instance(name)
            assert graph.num_vertices() == vertices
            assert graph.num_edges() == edges

    def test_unknown(self):
        with pytest.raises(KeyError):
            graph_instance("not_a_graph")


class TestHypergraphNames:
    @pytest.mark.parametrize(
        "name", ["adder_5", "bridge_4", "clique_8", "grid2d_4", "grid3d_2"]
    )
    def test_parameterised_families(self, name):
        hypergraph = hypergraph_instance(name)
        assert hypergraph.num_edges() > 0

    def test_circuits(self):
        for name in SIMULATED_CIRCUITS:
            hypergraph = hypergraph_instance(name)
            inputs, gates = SIMULATED_CIRCUITS[name]
            assert hypergraph.num_vertices() == inputs + gates
            assert hypergraph.num_edges() == gates

    def test_unknown(self):
        with pytest.raises(KeyError):
            hypergraph_instance("wat_99")


class TestGenericLookup:
    def test_dispatches_to_graph(self):
        assert isinstance(instance("queen4_4"), Graph)

    def test_dispatches_to_hypergraph(self):
        assert isinstance(instance("adder_3"), Hypergraph)

    def test_reproducible_simulations(self):
        assert graph_instance("anna") == graph_instance("anna")
