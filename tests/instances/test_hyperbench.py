"""HyperBench .hg parsing, formatting, and round trips."""

import pytest

from repro.hypergraphs.io import FormatError
from repro.instances.hyperbench import format_hg, parse_hg, read_hg, write_hg
from repro.instances.hypergraphs import bridge, grid2d


class TestParse:
    def test_multi_line_edges_and_comments(self):
        text = """\
% HyperBench export
e1 (a, b, c),   % trailing comment
e2 (c, d,
    e),
e3 (e, a).
"""
        hypergraph = parse_hg(text)
        assert hypergraph.num_edges() == 3
        assert hypergraph.edges()["e2"] == frozenset({"c", "d", "e"})

    def test_lax_line_per_edge_dialect(self):
        hypergraph = parse_hg("e1(a,b)\ne2(b,c)\n")
        assert set(hypergraph.edges()) == {"e1", "e2"}

    def test_names_with_interior_dots(self):
        hypergraph = parse_hg("r1(t1.x, t2.y).")
        assert hypergraph.edges()["r1"] == frozenset({"t1.x", "t2.y"})

    def test_empty_file_rejected(self):
        with pytest.raises(FormatError, match="no hyperedges"):
            parse_hg("% nothing here\n")

    def test_junk_characters_rejected(self):
        with pytest.raises(FormatError, match="unexpected characters"):
            parse_hg("e1(a,b) !\n")

    def test_content_after_final_period_rejected(self):
        with pytest.raises(FormatError, match="after final period"):
            parse_hg("e1(a,b). e2(c,d).")

    def test_missing_member_rejected(self):
        with pytest.raises(FormatError, match="expected a name"):
            parse_hg("e1(,a).")

    def test_unterminated_edge_rejected(self):
        with pytest.raises(FormatError, match="end of file"):
            parse_hg("e1(a,b")


class TestRoundTrip:
    def test_format_is_fixed_point(self):
        text = format_hg(parse_hg("e1(a,b,c),e2(c,d)."))
        assert format_hg(parse_hg(text)) == text

    def test_generated_instances_round_trip(self, tmp_path):
        # tuple vertices get mangled to .hg-safe tokens, so compare
        # structure: same counts and same multiset of edge sizes
        for name, instance in (("bridge", bridge(3)), ("grid", grid2d(3))):
            path = tmp_path / f"{name}.hg"
            write_hg(instance, path)
            loaded = read_hg(path)
            assert loaded.num_edges() == instance.num_edges()
            assert loaded.num_vertices() == instance.num_vertices()
            assert sorted(
                len(edge) for edge in loaded.edges().values()
            ) == sorted(len(edge) for edge in instance.edges().values())

    def test_edges_comma_separated_period_terminated(self):
        lines = format_hg(parse_hg("e1(a,b),e2(b,c).")).rstrip().splitlines()
        assert lines[-2].endswith(",")  # separator between edges
        assert lines[-1].endswith(".")  # terminator on the last edge

    def test_unsafe_names_are_mangled(self):
        from repro.hypergraphs.hypergraph import Hypergraph

        text = format_hg(Hypergraph({"e1": {(0, 1), (1, 2)}}))
        parsed = parse_hg(text)
        assert parsed.edges()["e1"] == frozenset({"_0__1_", "_1__2_"})
