"""Tests for the hypergraph-library generators (Tables 7.1-9.2 workloads)."""

import pytest

from repro.csp.acyclic import is_acyclic
from repro.instances.hypergraphs import (
    adder,
    bridge,
    clique_hypergraph,
    grid2d,
    grid3d,
    random_circuit,
    random_csp_hypergraph,
)


class TestAdder:
    def test_vertex_count_matches_library(self):
        """The CSP hypergraph library's adder_n has 5n + 1 vertices."""
        for bits in (1, 5, 75):
            assert adder(bits).num_vertices() == 5 * bits + 1

    def test_is_cyclic(self):
        """The gate-level adder is NOT alpha-acyclic (hence ghw = 2)."""
        assert not is_acyclic(adder(2))

    def test_connected(self):
        assert adder(4).is_connected()

    def test_invalid(self):
        with pytest.raises(ValueError):
            adder(0)


class TestBridge:
    def test_structure(self):
        hypergraph = bridge(4)
        assert hypergraph.num_vertices() == 6  # s, t, m1..m4
        assert hypergraph.num_edges() == 2 * 4 + 3

    def test_connected(self):
        assert bridge(3).is_connected()


class TestClique:
    def test_pair_edges(self):
        hypergraph = clique_hypergraph(6)
        assert hypergraph.num_vertices() == 6
        assert hypergraph.num_edges() == 15
        assert all(len(edge) == 2 for edge in hypergraph.edge_sets())

    def test_invalid(self):
        with pytest.raises(ValueError):
            clique_hypergraph(1)


class TestGrids:
    def test_grid2d(self):
        hypergraph = grid2d(3)
        assert hypergraph.num_vertices() == 9
        assert hypergraph.num_edges() == 12

    def test_grid3d(self):
        hypergraph = grid3d(2)
        assert hypergraph.num_vertices() == 8
        assert hypergraph.num_edges() == 12

    def test_grid3d_rectangular(self):
        hypergraph = grid3d(2, 3, 4)
        assert hypergraph.num_vertices() == 24


class TestRandomCircuit:
    def test_sizes(self):
        hypergraph = random_circuit(inputs=8, gates=30, seed=1)
        assert hypergraph.num_vertices() == 38
        assert hypergraph.num_edges() == 30

    def test_edge_arity_bounded(self):
        hypergraph = random_circuit(inputs=5, gates=20, max_fanin=3, seed=2)
        assert all(2 <= len(edge) <= 4 for edge in hypergraph.edge_sets())

    def test_reproducible(self):
        a = random_circuit(6, 15, seed=9)
        b = random_circuit(6, 15, seed=9)
        assert a == b

    def test_every_vertex_covered(self):
        hypergraph = random_circuit(6, 25, seed=3)
        covered = set()
        for edge in hypergraph.edge_sets():
            covered |= edge
        # primary inputs might be unused by chance with a tiny circuit,
        # but gate outputs are always covered
        assert {f"g{i}" for i in range(25)} <= covered

    def test_invalid(self):
        with pytest.raises(ValueError):
            random_circuit(1, 5)


class TestRandomCspHypergraph:
    def test_every_variable_covered(self):
        hypergraph = random_csp_hypergraph(12, 10, arity=3, seed=0)
        covered = set()
        for edge in hypergraph.edge_sets():
            covered |= edge
        assert covered == hypergraph.vertices()

    def test_reproducible(self):
        a = random_csp_hypergraph(10, 8, seed=4)
        b = random_csp_hypergraph(10, 8, seed=4)
        assert a == b

    def test_invalid_arity(self):
        with pytest.raises(ValueError):
            random_csp_hypergraph(4, 3, arity=9)
