"""Tests for the DIMACS-style graph generators (Tables 5.1-6.6 metadata)."""

import pytest

from repro.instances.dimacs_like import (
    grid_graph,
    mycielski_graph,
    queen_graph,
    random_gnm,
    random_gnp,
)


class TestQueenGraphs:
    @pytest.mark.parametrize(
        "n,vertices,directed_edges",
        [(5, 25, 320), (6, 36, 580), (7, 49, 952)],
    )
    def test_thesis_table_sizes(self, n, vertices, directed_edges):
        """Table 5.1 lists DIMACS's doubled (directed) edge counts."""
        graph = queen_graph(n)
        assert graph.num_vertices() == vertices
        assert 2 * graph.num_edges() == directed_edges

    def test_rows_are_cliques(self):
        graph = queen_graph(4)
        row = [(0, c) for c in range(4)]
        assert graph.is_clique(row)

    def test_diagonals_attack(self):
        graph = queen_graph(5)
        assert graph.has_edge((0, 0), (4, 4))
        assert not graph.has_edge((0, 1), (1, 3))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            queen_graph(0)


class TestMycielski:
    @pytest.mark.parametrize(
        "k,vertices,edges",
        [(3, 11, 20), (4, 23, 71), (5, 47, 236)],
    )
    def test_thesis_table_sizes(self, k, vertices, edges):
        graph = mycielski_graph(k)
        assert graph.num_vertices() == vertices
        assert graph.num_edges() == edges

    def test_triangle_free(self):
        """Mycielski graphs are triangle-free."""
        graph = mycielski_graph(4)
        for u in graph:
            for v in graph.neighbours(u):
                assert not (graph.neighbours(u) & graph.neighbours(v))

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            mycielski_graph(1)


class TestGrids:
    def test_square_grid(self):
        graph = grid_graph(4)
        assert graph.num_vertices() == 16
        assert graph.num_edges() == 24

    def test_rectangular(self):
        graph = grid_graph(2, 5)
        assert graph.num_vertices() == 10
        assert graph.num_edges() == 5 + 2 * 4

    def test_degenerate_line(self):
        graph = grid_graph(1, 6)
        assert graph.num_edges() == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_graph(0)


class TestRandomGraphs:
    def test_gnp_reproducible(self):
        assert random_gnp(20, 0.3, seed=5) == random_gnp(20, 0.3, seed=5)

    def test_gnp_density(self):
        graph = random_gnp(60, 0.5, seed=1)
        expected = 0.5 * 60 * 59 / 2
        assert abs(graph.num_edges() - expected) < 0.15 * expected

    def test_gnp_extremes(self):
        assert random_gnp(10, 0.0, seed=0).num_edges() == 0
        assert random_gnp(10, 1.0, seed=0).num_edges() == 45

    def test_gnp_invalid_probability(self):
        with pytest.raises(ValueError):
            random_gnp(5, 1.5)

    def test_gnm_exact_edge_count(self):
        graph = random_gnm(30, 100, seed=3)
        assert graph.num_vertices() == 30
        assert graph.num_edges() == 100

    def test_gnm_too_many_edges(self):
        with pytest.raises(ValueError):
            random_gnm(4, 10)

    def test_gnm_reproducible(self):
        assert random_gnm(15, 40, seed=2) == random_gnm(15, 40, seed=2)
