"""Shared fixtures: the thesis's running examples and small workloads."""

from __future__ import annotations

import pytest

from repro.csp.builders import example_5_csp
from repro.hypergraphs.graph import Graph
from repro.hypergraphs.hypergraph import Hypergraph


@pytest.fixture
def triangle() -> Graph:
    return Graph(vertices=[1, 2, 3], edges=[(1, 2), (2, 3), (1, 3)])


@pytest.fixture
def square() -> Graph:
    """A 4-cycle: treewidth 2."""
    return Graph(
        vertices=[1, 2, 3, 4], edges=[(1, 2), (2, 3), (3, 4), (4, 1)]
    )


@pytest.fixture
def example5() -> Hypergraph:
    """The constraint hypergraph of the thesis's Example 5 (ghw 2, tw 3)."""
    return Hypergraph(
        {
            "C1": {"x1", "x2", "x3"},
            "C2": {"x1", "x5", "x6"},
            "C3": {"x3", "x4", "x5"},
        }
    )


@pytest.fixture
def example5_csp():
    return example_5_csp()


@pytest.fixture
def figure_2_11() -> Hypergraph:
    """The hypergraph of Figure 2.11: h1={x1,x2,x3}, h2={x2,x4},
    h3={x3,x5}, h4={x4,x5,x6} (a 6-vertex cyclic structure)."""
    return Hypergraph(
        {
            "h1": {"x1", "x2", "x3"},
            "h2": {"x2", "x4"},
            "h3": {"x3", "x5"},
            "h4": {"x4", "x5", "x6"},
        }
    )
