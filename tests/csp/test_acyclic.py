"""Tests for join trees, GYO reduction and Acyclic Solving (Figure 2.4)."""

import pytest

from repro.csp.acyclic import (
    NotAcyclicError,
    acyclic_solve,
    gyo_join_tree,
    is_acyclic,
    solve_relation_tree,
)
from repro.csp.builders import acyclic_chain_csp, example_5_csp
from repro.csp.backtracking import backtracking_solve
from repro.csp.problem import Constraint, make_csp
from repro.csp.relations import Relation
from repro.hypergraphs.hypergraph import Hypergraph


class TestAcyclicity:
    def test_chain_is_acyclic(self):
        hypergraph = Hypergraph({"a": {1, 2, 3}, "b": {3, 4}, "c": {4, 5}})
        assert is_acyclic(hypergraph)

    def test_figure_2_3_hypergraph(self):
        """A hyperedge-covered triangle is alpha-acyclic."""
        hypergraph = Hypergraph({"big": {1, 2, 3}, "e1": {1, 2}, "e2": {2, 3}})
        assert is_acyclic(hypergraph)

    def test_plain_triangle_is_cyclic(self):
        hypergraph = Hypergraph({"e1": {1, 2}, "e2": {2, 3}, "e3": {1, 3}})
        assert not is_acyclic(hypergraph)

    def test_example5_is_cyclic(self, example5):
        assert not is_acyclic(example5)

    def test_empty_is_acyclic(self):
        assert is_acyclic(Hypergraph())

    def test_join_tree_parent_map_is_a_tree(self):
        hypergraph = Hypergraph(
            {"a": {1, 2}, "b": {2, 3}, "c": {3, 4}, "d": {2, 5}}
        )
        parent = gyo_join_tree(hypergraph)
        roots = [name for name, up in parent.items() if up is None]
        assert len(roots) == 1
        assert set(parent) == set(hypergraph.edge_names())

    def test_join_tree_connectedness_property(self):
        """Vertices induce connected subtrees of the join tree."""
        hypergraph = Hypergraph(
            {"a": {1, 2, 3}, "b": {2, 3, 4}, "c": {4, 5}, "d": {3, 6}}
        )
        parent = gyo_join_tree(hypergraph)

        def path_to_root(name):
            path = [name]
            while parent[path[-1]] is not None:
                path.append(parent[path[-1]])
            return path

        for vertex in hypergraph.vertices():
            holders = hypergraph.edges_containing(vertex)
            # every node on the path between two holders also holds it
            for a in holders:
                for b in holders:
                    pa, pb = path_to_root(a), path_to_root(b)
                    shared = next(x for x in pa if x in pb)
                    walk = (
                        pa[: pa.index(shared) + 1]
                        + pb[: pb.index(shared)]
                    )
                    for node in walk:
                        assert vertex in hypergraph.edge(node), (
                            f"join tree connectedness broken at {node}"
                        )

    def test_cyclic_raises(self):
        hypergraph = Hypergraph({"e1": {1, 2}, "e2": {2, 3}, "e3": {1, 3}})
        with pytest.raises(NotAcyclicError):
            gyo_join_tree(hypergraph)


class TestAcyclicSolve:
    def test_chain_csp(self):
        csp = acyclic_chain_csp(4)
        solution = acyclic_solve(csp)
        assert solution is not None
        assert csp.is_solution(solution)

    def test_matches_backtracking_satisfiability(self):
        for length in (1, 2, 3, 5):
            csp = acyclic_chain_csp(length)
            direct = backtracking_solve(csp)
            acyclic = acyclic_solve(csp)
            assert (direct is None) == (acyclic is None)

    def test_unsatisfiable_detected(self):
        constraints = [
            Constraint.make("force1", ("a",), [(1,)]),
            Constraint.make("force2", ("a", "b"), [(2, 2)]),
        ]
        csp = make_csp({"a": [1, 2], "b": [2]}, constraints)
        assert acyclic_solve(csp) is None

    def test_cyclic_csp_raises(self):
        with pytest.raises(NotAcyclicError):
            acyclic_solve(example_5_csp())

    def test_unconstrained_variables_get_values(self):
        csp = make_csp(
            {"a": [1], "free": [7, 8]},
            [Constraint.make("c", ("a",), [(1,)])],
        )
        solution = acyclic_solve(csp)
        assert solution is not None
        assert solution["free"] in (7, 8)


class TestSolveRelationTree:
    def test_single_node(self):
        relations = {"r": Relation.make(("a",), [(1,), (2,)])}
        assignment = solve_relation_tree(relations, {"r": None})
        assert assignment in ({"a": 1}, {"a": 2})

    def test_bottom_up_prunes(self):
        relations = {
            "parent": Relation.make(("a", "b"), [(1, 1), (2, 2)]),
            "child": Relation.make(("b", "c"), [(2, 9)]),
        }
        assignment = solve_relation_tree(
            relations, {"parent": None, "child": "parent"}
        )
        assert assignment == {"a": 2, "b": 2, "c": 9}

    def test_empty_after_semijoin(self):
        relations = {
            "parent": Relation.make(("a",), [(1,)]),
            "child": Relation.make(("a",), [(2,)]),
        }
        assert (
            solve_relation_tree(
                relations, {"parent": None, "child": "parent"}
            )
            is None
        )

    def test_forest_components_combine(self):
        relations = {
            "left": Relation.make(("a",), [(1,)]),
            "right": Relation.make(("b",), [(2,)]),
        }
        assignment = solve_relation_tree(
            relations, {"left": None, "right": None}
        )
        assert assignment == {"a": 1, "b": 2}

    def test_cycle_in_parent_map_rejected(self):
        relations = {
            "a": Relation.make(("x",), [(1,)]),
            "b": Relation.make(("x",), [(1,)]),
        }
        with pytest.raises(ValueError):
            solve_relation_tree(relations, {"a": "b", "b": "a"})
