"""Tests for the ready-made CSP builders."""

import pytest

from repro.csp.backtracking import backtracking_solve
from repro.csp.builders import (
    acyclic_chain_csp,
    australia_map_coloring,
    example_5_csp,
    graph_coloring_csp,
    n_queens_csp,
    random_binary_csp,
    sat_csp,
)
from repro.csp.acyclic import is_acyclic
from repro.hypergraphs.graph import complete_graph


class TestAustralia:
    def test_shape(self):
        csp = australia_map_coloring()
        assert len(csp.domains) == 7
        assert len(csp.constraints) == 9

    def test_known_solution_from_thesis(self):
        csp = australia_map_coloring()
        assert csp.is_solution(
            {
                "WA": "r", "NT": "g", "SA": "b", "Q": "r",
                "NSW": "g", "V": "r", "TAS": "g",
            }
        )


class TestSat:
    def test_clause_relations_exclude_falsifying_row(self):
        csp = sat_csp([[1, 2]])
        relation = csp.constraint("clause0").relation
        assert (False, False) not in relation.tuples
        assert len(relation) == 3

    def test_unit_clauses(self):
        csp = sat_csp([[1], [-2]])
        solution = backtracking_solve(csp)
        assert solution == {"x1": True, "x2": False}

    def test_extra_variables_declared(self):
        csp = sat_csp([[1]], variables=3)
        assert len(csp.domains) == 3

    def test_duplicate_literal_rejected(self):
        with pytest.raises(ValueError):
            sat_csp([[1, 1]])

    def test_empty_formula_rejected(self):
        with pytest.raises(ValueError):
            sat_csp([])


class TestGraphColoring:
    def test_k4_needs_4_colors(self):
        graph = complete_graph(4)
        assert backtracking_solve(graph_coloring_csp(graph, 3)) is None
        assert backtracking_solve(graph_coloring_csp(graph, 4)) is not None


class TestQueens:
    def test_shapes(self):
        csp = n_queens_csp(4)
        assert len(csp.domains) == 4
        assert len(csp.constraints) == 6

    def test_three_queens_unsat(self):
        assert backtracking_solve(n_queens_csp(3)) is None

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            n_queens_csp(0)


class TestRandomBinary:
    def test_reproducible(self):
        a = random_binary_csp(6, 3, 0.5, 0.3, seed=1)
        b = random_binary_csp(6, 3, 0.5, 0.3, seed=1)
        assert [c.relation.tuples for c in a.constraints] == [
            c.relation.tuples for c in b.constraints
        ]

    def test_density_zero_means_no_constraints(self):
        csp = random_binary_csp(5, 3, 0.0, 0.5, seed=0)
        assert not csp.constraints

    def test_tightness_zero_allows_everything(self):
        csp = random_binary_csp(5, 3, 1.0, 0.0, seed=0)
        for constraint in csp.constraints:
            assert len(constraint.relation) == 9

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            random_binary_csp(5, 3, 1.5, 0.5)


class TestChain:
    def test_is_acyclic(self):
        csp = acyclic_chain_csp(5)
        assert is_acyclic(csp.constraint_hypergraph())

    def test_solvable(self):
        csp = acyclic_chain_csp(3)
        solution = backtracking_solve(csp)
        assert solution is not None and csp.is_solution(solution)


class TestExample5:
    def test_matches_thesis_statement(self):
        csp = example_5_csp()
        assert len(csp.domains) == 6
        assert csp.domains["x1"] == frozenset({"a", "b"})
        assert len(csp.constraint("C1").relation) == 3
        assert len(csp.constraint("C2").relation) == 2
        assert len(csp.constraint("C3").relation) == 2
