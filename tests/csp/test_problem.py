"""Tests for CSP problems and constraint hypergraphs."""

import pytest

from repro.csp.builders import australia_map_coloring, example_5_csp, sat_csp
from repro.csp.problem import CSP, Constraint, make_csp


class TestConstraint:
    def test_scope_and_satisfaction(self):
        constraint = Constraint.make("c", ("a", "b"), [(1, 2), (2, 1)])
        assert constraint.scope == ("a", "b")
        assert constraint.satisfied_by({"a": 1, "b": 2})
        assert not constraint.satisfied_by({"a": 1, "b": 1})


class TestCSP:
    def test_duplicate_constraint_names(self):
        c = Constraint.make("c", ("a",), [(1,)])
        with pytest.raises(ValueError):
            make_csp({"a": [1]}, [c, c])

    def test_unknown_variable_in_scope(self):
        c = Constraint.make("c", ("zz",), [(1,)])
        with pytest.raises(ValueError):
            make_csp({"a": [1]}, [c])

    def test_constraint_lookup(self):
        csp = example_5_csp()
        assert csp.constraint("C1").scope == ("x1", "x2", "x3")
        with pytest.raises(KeyError):
            csp.constraint("zzz")

    def test_is_solution_example_5(self):
        """The thesis's printed solution of Example 5."""
        csp = example_5_csp()
        solution = {
            "x1": "a", "x2": "b", "x3": "c",
            "x4": "b", "x5": "c", "x6": "b",
        }
        assert csp.is_solution(solution)

    def test_incomplete_assignment_rejected(self):
        csp = example_5_csp()
        assert not csp.is_solution({"x1": "a"})

    def test_out_of_domain_value_rejected(self):
        csp = example_5_csp()
        solution = {
            "x1": "z", "x2": "b", "x3": "c",
            "x4": "b", "x5": "c", "x6": "b",
        }
        assert not csp.is_solution(solution)

    def test_max_domain_size(self):
        assert example_5_csp().max_domain_size() == 2
        assert australia_map_coloring().max_domain_size() == 3


class TestConstraintHypergraph:
    def test_example_5(self):
        hypergraph = example_5_csp().constraint_hypergraph()
        assert hypergraph.num_vertices() == 6
        assert hypergraph.num_edges() == 3
        assert hypergraph.edge("C2") == {"x1", "x5", "x6"}

    def test_australia_is_a_graph(self):
        """Example 3: only binary constraints -> primal = structure."""
        hypergraph = australia_map_coloring().constraint_hypergraph()
        assert all(len(edge) == 2 for edge in hypergraph.edge_sets())
        assert hypergraph.num_edges() == 9

    def test_sat_example_2(self):
        """Example 2's formula: three clauses over five variables."""
        csp = sat_csp([[-1, 2, 3], [1, -4], [-3, -5]])
        hypergraph = csp.constraint_hypergraph()
        assert hypergraph.num_vertices() == 5
        assert hypergraph.num_edges() == 3
        assert hypergraph.edge("clause0") == {"x1", "x2", "x3"}

    def test_unconstrained_variable_is_isolated_vertex(self):
        csp = make_csp({"a": [1], "b": [1]}, [
            Constraint.make("c", ("a",), [(1,)])
        ])
        hypergraph = csp.constraint_hypergraph()
        assert "b" in hypergraph
        assert hypergraph.edges_containing("b") == []
