"""Integration tests: solving CSPs from decompositions (Section 2.4)."""

import pytest

from repro.core.api import decompose, decompose_graph
from repro.csp.backtracking import backtracking_solve
from repro.csp.builders import (
    australia_map_coloring,
    example_5_csp,
    graph_coloring_csp,
    random_binary_csp,
    sat_csp,
)
from repro.csp.solve import solve_with_ghd, solve_with_tree_decomposition
from repro.decompositions.elimination import (
    ordering_to_ghd,
    ordering_to_tree_decomposition,
)
from repro.decompositions.tree_decomposition import (
    DecompositionError,
    TreeDecomposition,
)
from repro.hypergraphs.graph import cycle_graph


def td_of(csp):
    hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
    return decompose_graph(hypergraph.primal_graph(), algorithm="min-fill")


def ghd_of(csp):
    return decompose(
        csp.constraint_hypergraph(include_unconstrained=False),
        algorithm="bb",
    )


class TestTreeDecompositionSolving:
    def test_example_5(self):
        csp = example_5_csp()
        solution = solve_with_tree_decomposition(csp, td_of(csp))
        assert solution is not None
        assert csp.is_solution(solution)

    def test_australia(self):
        csp = australia_map_coloring()
        solution = solve_with_tree_decomposition(csp, td_of(csp))
        assert csp.is_solution(solution)

    def test_sat(self):
        csp = sat_csp([[-1, 2, 3], [1, -4], [-3, -5]])
        solution = solve_with_tree_decomposition(csp, td_of(csp))
        assert csp.is_solution(solution)

    def test_unsatisfiable_2_coloring_of_odd_cycle(self):
        csp = graph_coloring_csp(cycle_graph(5), colors=2)
        assert solve_with_tree_decomposition(csp, td_of(csp)) is None

    def test_satisfiable_3_coloring_of_odd_cycle(self):
        csp = graph_coloring_csp(cycle_graph(5), colors=3)
        solution = solve_with_tree_decomposition(csp, td_of(csp))
        assert csp.is_solution(solution)

    def test_invalid_decomposition_rejected(self):
        csp = example_5_csp()
        bad = TreeDecomposition()
        bad.add_node({"x1"})
        with pytest.raises(DecompositionError):
            solve_with_tree_decomposition(csp, bad)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_backtracking_on_random_csps(self, seed):
        csp = random_binary_csp(
            6, 3, density=0.5, tightness=0.4, seed=seed
        )
        direct = backtracking_solve(csp)
        via_td = solve_with_tree_decomposition(csp, td_of(csp))
        assert (direct is None) == (via_td is None)
        if via_td is not None:
            assert csp.is_solution(via_td)


class TestGhdSolving:
    def test_example_5_figure_2_9(self):
        csp = example_5_csp()
        solution = solve_with_ghd(csp, ghd_of(csp))
        assert solution is not None
        assert csp.is_solution(solution)

    def test_australia(self):
        csp = australia_map_coloring()
        solution = solve_with_ghd(csp, ghd_of(csp))
        assert csp.is_solution(solution)

    def test_unsatisfiable(self):
        csp = graph_coloring_csp(cycle_graph(7), colors=2)
        assert solve_with_ghd(csp, ghd_of(csp)) is None

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_backtracking_on_random_csps(self, seed):
        csp = random_binary_csp(
            6, 3, density=0.5, tightness=0.5, seed=seed + 40
        )
        direct = backtracking_solve(csp)
        via_ghd = solve_with_ghd(csp, ghd_of(csp))
        assert (direct is None) == (via_ghd is None)
        if via_ghd is not None:
            assert csp.is_solution(via_ghd)

    def test_handmade_ordering_ghd_works_too(self):
        csp = example_5_csp()
        hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
        ordering = sorted(hypergraph.vertices())
        ghd = ordering_to_ghd(hypergraph, ordering, cover="exact")
        solution = solve_with_ghd(csp, ghd)
        assert csp.is_solution(solution)


class TestAgreementBetweenPipelines:
    @pytest.mark.parametrize("seed", range(4))
    def test_td_and_ghd_agree(self, seed):
        csp = random_binary_csp(
            5, 3, density=0.6, tightness=0.45, seed=seed + 77
        )
        hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
        ordering = sorted(hypergraph.vertices())
        td = ordering_to_tree_decomposition(
            hypergraph.primal_graph(), ordering
        )
        ghd = ordering_to_ghd(hypergraph, ordering, cover="greedy")
        via_td = solve_with_tree_decomposition(csp, td)
        via_ghd = solve_with_ghd(csp, ghd)
        assert (via_td is None) == (via_ghd is None)
