"""Tests for all-solutions enumeration from decompositions."""

import pytest

from repro.core.api import decompose, decompose_graph
from repro.csp.backtracking import iterate_solutions
from repro.csp.builders import (
    australia_map_coloring,
    example_5_csp,
    graph_coloring_csp,
    n_queens_csp,
    random_binary_csp,
)
from repro.csp.enumerate import (
    count_solutions_with_ghd,
    enumerate_with_ghd,
    enumerate_with_tree_decomposition,
)
from repro.hypergraphs.graph import cycle_graph


def canonical(solutions):
    return sorted(tuple(sorted(s.items(), key=repr)) for s in solutions)


def td_of(csp):
    hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
    return decompose_graph(hypergraph.primal_graph(), algorithm="min-fill")


def ghd_of(csp):
    return decompose(
        csp.constraint_hypergraph(include_unconstrained=False),
        algorithm="bb",
    )


class TestAgainstBacktracking:
    def test_example_5_full_solution_set(self):
        csp = example_5_csp()
        direct = canonical(iterate_solutions(csp))
        via_td = canonical(enumerate_with_tree_decomposition(csp, td_of(csp)))
        via_ghd = canonical(enumerate_with_ghd(csp, ghd_of(csp)))
        assert direct == via_td == via_ghd
        assert direct  # satisfiable

    def test_australia_with_free_variable(self):
        """TAS is unconstrained: every mainland colouring triples."""
        csp = australia_map_coloring()
        direct = canonical(iterate_solutions(csp))
        via_ghd = canonical(enumerate_with_ghd(csp, ghd_of(csp)))
        assert direct == via_ghd
        assert len(direct) == 18

    def test_four_queens_has_two_solutions(self):
        csp = n_queens_csp(4)
        assert count_solutions_with_ghd(csp, ghd_of(csp)) == 2

    def test_unsatisfiable_enumerates_nothing(self):
        csp = graph_coloring_csp(cycle_graph(5), colors=2)
        assert list(enumerate_with_ghd(csp, ghd_of(csp))) == []
        assert list(
            enumerate_with_tree_decomposition(csp, td_of(csp))
        ) == []

    @pytest.mark.parametrize("seed", range(5))
    def test_random_csps_same_counts(self, seed):
        csp = random_binary_csp(
            5, 3, density=0.5, tightness=0.4, seed=seed + 300
        )
        direct = canonical(iterate_solutions(csp))
        via_td = canonical(
            enumerate_with_tree_decomposition(csp, td_of(csp))
        )
        via_ghd = canonical(enumerate_with_ghd(csp, ghd_of(csp)))
        assert direct == via_td == via_ghd


class TestStreamProperties:
    def test_no_duplicates(self):
        csp = example_5_csp()
        solutions = list(enumerate_with_ghd(csp, ghd_of(csp)))
        assert len(canonical(solutions)) == len(set(canonical(solutions)))

    def test_all_yields_are_solutions(self):
        csp = australia_map_coloring()
        for solution in enumerate_with_ghd(csp, ghd_of(csp)):
            assert csp.is_solution(solution)

    def test_lazy_evaluation(self):
        """The generator produces the first solution without exhausting
        the space (take one from a large instance)."""
        csp = graph_coloring_csp(cycle_graph(12), colors=3)
        stream = enumerate_with_tree_decomposition(csp, td_of(csp))
        first = next(stream)
        assert csp.is_solution(first)
