"""Tests for the backtracking baseline solver."""

from repro.csp.backtracking import (
    backtracking_solve,
    count_solutions,
    iterate_solutions,
)
from repro.csp.builders import (
    australia_map_coloring,
    example_5_csp,
    n_queens_csp,
    sat_csp,
)
from repro.csp.problem import Constraint, make_csp


class TestSolve:
    def test_australia_has_solution(self):
        csp = australia_map_coloring()
        solution = backtracking_solve(csp)
        assert solution is not None
        assert csp.is_solution(solution)

    def test_example_5(self):
        csp = example_5_csp()
        solution = backtracking_solve(csp)
        assert solution is not None
        assert csp.is_solution(solution)

    def test_sat_example_2(self):
        csp = sat_csp([[-1, 2, 3], [1, -4], [-3, -5]])
        solution = backtracking_solve(csp)
        assert solution is not None
        assert csp.is_solution(solution)

    def test_unsatisfiable(self):
        constraints = [
            Constraint.make("eq", ("a", "b"), [(1, 1), (2, 2)]),
            Constraint.make("ne", ("a", "b"), [(1, 2), (2, 1)]),
        ]
        csp = make_csp({"a": [1, 2], "b": [1, 2]}, constraints)
        assert backtracking_solve(csp) is None

    def test_no_constraints(self):
        csp = make_csp({"a": [1, 2]}, [])
        solution = backtracking_solve(csp)
        assert solution is not None and solution["a"] in (1, 2)


class TestCounting:
    def test_n_queens_counts(self):
        """Classic counts: 4-queens has 2 solutions, 5-queens has 10."""
        assert count_solutions(n_queens_csp(4)) == 2
        assert count_solutions(n_queens_csp(5)) == 10

    def test_limit_caps_enumeration(self):
        assert count_solutions(n_queens_csp(5), limit=3) == 3

    def test_all_solutions_are_valid(self):
        csp = australia_map_coloring()
        for solution in iterate_solutions(csp):
            assert csp.is_solution(solution)

    def test_australia_solution_count(self):
        """3-colourings of the Australia constraint graph: 18 for the
        mainland x 3 free choices for Tasmania = 54? No — mainland has
        6 regions; the known count is 6 proper colourings of the
        mainland times 3 for TAS."""
        count = count_solutions(australia_map_coloring())
        assert count % 3 == 0  # Tasmania is unconstrained
        assert count == 18

    def test_unsat_counts_zero(self):
        csp = sat_csp([[1], [-1]])
        assert count_solutions(csp) == 0
