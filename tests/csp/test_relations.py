"""Tests for the relational algebra substrate."""

import pytest

from repro.csp.relations import Relation, join_all


def rel(schema, rows):
    return Relation.make(schema, rows)


class TestConstruction:
    def test_make(self):
        relation = rel(("a", "b"), [(1, 2), (3, 4)])
        assert len(relation) == 2
        assert (1, 2) in relation

    def test_duplicate_schema_rejected(self):
        with pytest.raises(ValueError):
            rel(("a", "a"), [])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rel(("a", "b"), [(1,)])

    def test_full(self):
        relation = Relation.full("x", [1, 2, 3])
        assert len(relation) == 3

    def test_empty(self):
        assert Relation.empty(("a",)).is_empty()

    def test_as_dicts(self):
        relation = rel(("a", "b"), [(1, 2)])
        assert relation.as_dicts() == [{"a": 1, "b": 2}]


class TestProjection:
    def test_basic(self):
        relation = rel(("a", "b", "c"), [(1, 2, 3), (1, 2, 4)])
        projected = relation.project(("a", "b"))
        assert projected.schema == ("a", "b")
        assert len(projected) == 1  # duplicates collapse

    def test_reorders(self):
        relation = rel(("a", "b"), [(1, 2)])
        assert relation.project(("b", "a")).tuples == frozenset({(2, 1)})

    def test_absent_variable(self):
        with pytest.raises(KeyError):
            rel(("a",), [(1,)]).project(("z",))


class TestSelect:
    def test_filters_on_assignment(self):
        relation = rel(("a", "b"), [(1, 2), (1, 3), (2, 2)])
        assert len(relation.select({"a": 1})) == 2
        assert len(relation.select({"a": 1, "b": 3})) == 1

    def test_ignores_foreign_variables(self):
        relation = rel(("a",), [(1,), (2,)])
        assert len(relation.select({"z": 5})) == 2


class TestJoin:
    def test_natural_join(self):
        left = rel(("a", "b"), [(1, 2), (2, 3)])
        right = rel(("b", "c"), [(2, 9), (2, 8), (7, 7)])
        joined = left.join(right)
        assert joined.schema == ("a", "b", "c")
        assert joined.tuples == frozenset({(1, 2, 9), (1, 2, 8)})

    def test_cartesian_when_disjoint(self):
        left = rel(("a",), [(1,), (2,)])
        right = rel(("b",), [(7,), (8,)])
        assert len(left.join(right)) == 4

    def test_join_with_empty(self):
        left = rel(("a", "b"), [(1, 2)])
        assert left.join(Relation.empty(("b", "c"))).is_empty()

    def test_join_all_identity(self):
        unit = join_all([])
        assert unit.schema == ()
        assert len(unit) == 1

    def test_join_all_folds(self):
        r1 = rel(("a", "b"), [(1, 2)])
        r2 = rel(("b", "c"), [(2, 3)])
        r3 = rel(("c", "d"), [(3, 4)])
        joined = join_all([r1, r2, r3])
        assert joined.tuples == frozenset({(1, 2, 3, 4)})

    def test_join_is_commutative_up_to_schema(self):
        left = rel(("a", "b"), [(1, 2), (2, 2)])
        right = rel(("b", "c"), [(2, 5)])
        one = left.join(right)
        other = right.join(left)
        assert one.project(("a", "b", "c")).tuples == other.project(
            ("a", "b", "c")
        ).tuples


class TestSemijoin:
    def test_keeps_matching_rows(self):
        left = rel(("a", "b"), [(1, 2), (2, 3)])
        right = rel(("b",), [(2,)])
        reduced = left.semijoin(right)
        assert reduced.schema == ("a", "b")
        assert reduced.tuples == frozenset({(1, 2)})

    def test_no_shared_variables(self):
        left = rel(("a",), [(1,)])
        assert not left.semijoin(rel(("z",), [(9,)])).is_empty()
        assert left.semijoin(Relation.empty(("z",))).is_empty()

    def test_semijoin_equals_join_project(self):
        left = rel(("a", "b"), [(1, 2), (2, 3), (4, 4)])
        right = rel(("b", "c"), [(2, 1), (4, 0)])
        direct = left.semijoin(right)
        via_join = left.join(right).project(("a", "b"))
        assert direct.tuples == via_join.tuples


class TestRename:
    def test_rename(self):
        relation = rel(("a", "b"), [(1, 2)])
        renamed = relation.rename({"a": "x"})
        assert renamed.schema == ("x", "b")
        assert renamed.tuples == relation.tuples
