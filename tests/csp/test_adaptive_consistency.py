"""Tests for Adaptive Consistency (bucket-elimination CSP solving)."""

import pytest

from repro.csp.adaptive_consistency import adaptive_consistency
from repro.csp.backtracking import backtracking_solve
from repro.csp.builders import (
    australia_map_coloring,
    example_5_csp,
    graph_coloring_csp,
    n_queens_csp,
    random_binary_csp,
    sat_csp,
)
from repro.csp.problem import Constraint, make_csp
from repro.hypergraphs.graph import cycle_graph


class TestSolving:
    def test_example_5(self):
        csp = example_5_csp()
        solution = adaptive_consistency(csp)
        assert solution is not None
        assert csp.is_solution(solution)

    def test_australia(self):
        csp = australia_map_coloring()
        solution = adaptive_consistency(csp)
        assert csp.is_solution(solution)

    def test_sat(self):
        csp = sat_csp([[-1, 2, 3], [1, -4], [-3, -5]])
        solution = adaptive_consistency(csp)
        assert csp.is_solution(solution)

    def test_unsat_odd_cycle(self):
        csp = graph_coloring_csp(cycle_graph(5), colors=2)
        assert adaptive_consistency(csp) is None

    def test_queens(self):
        csp = n_queens_csp(5)
        solution = adaptive_consistency(csp)
        assert csp.is_solution(solution)

    def test_three_queens_unsat(self):
        assert adaptive_consistency(n_queens_csp(3)) is None

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_backtracking(self, seed):
        csp = random_binary_csp(
            6, 3, density=0.5, tightness=0.45, seed=seed
        )
        direct = backtracking_solve(csp)
        via_buckets = adaptive_consistency(csp)
        assert (direct is None) == (via_buckets is None)
        if via_buckets is not None:
            assert csp.is_solution(via_buckets)

    def test_unconstrained_variables(self):
        csp = make_csp(
            {"a": [1, 2], "free": [7]},
            [Constraint.make("c", ("a",), [(2,)])],
        )
        solution = adaptive_consistency(csp)
        assert solution == {"a": 2, "free": 7}


class TestOrderings:
    def test_explicit_ordering(self):
        csp = example_5_csp()
        ordering = ["x2", "x6", "x4", "x1", "x3", "x5"]
        solution = adaptive_consistency(csp, ordering)
        assert csp.is_solution(solution)

    def test_any_ordering_is_correct(self):
        """Width affects cost, never correctness."""
        import itertools

        csp = graph_coloring_csp(cycle_graph(4), colors=2)
        variables = sorted(csp.domains, key=repr)
        for ordering in itertools.islice(
            itertools.permutations(variables), 8
        ):
            solution = adaptive_consistency(csp, list(ordering))
            assert solution is not None
            assert csp.is_solution(solution)

    def test_bad_ordering_rejected(self):
        csp = example_5_csp()
        with pytest.raises(ValueError):
            adaptive_consistency(csp, ["x1", "x2"])
