"""CLI knobs (--backend/--jobs/--cover-cache-size) and the portfolio
subcommand."""

import json

import pytest

from repro.cli import build_parser, build_portfolio_parser, main
from repro.obs.report import validate_report


class TestKnobParsing:
    def test_defaults(self):
        args = build_parser().parse_args(["--instance", "grid3"])
        assert args.backend == "python"
        assert args.jobs == 1
        assert args.cover_cache_size is None

    def test_explicit_values(self):
        args = build_parser().parse_args(
            [
                "--instance", "grid3", "--backend", "bitset",
                "--jobs", "4", "--cover-cache-size", "1024",
            ]
        )
        assert args.backend == "bitset"
        assert args.jobs == 4
        assert args.cover_cache_size == 1024

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--instance", "grid3", "--backend", "fortran"]
            )

    def test_jobs_must_be_positive(self, capsys):
        code = main(["--instance", "grid3", "--jobs", "0"])
        assert code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_cover_cache_size_must_be_positive(self, capsys):
        code = main(["--instance", "grid3", "--cover-cache-size", "0"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestKnobsInTelemetry:
    def test_knobs_land_in_report_meta(self, capsys, tmp_path):
        out = tmp_path / "runs.jsonl"
        code = main(
            [
                "--instance", "adder_3", "--measure", "ghw",
                "--algorithm", "ga", "--backend", "bitset", "--jobs", "1",
                "--cover-cache-size", "4096", "--telemetry-out", str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text().splitlines()[-1])
        validate_report(report)
        assert report["meta"]["backend"] == "bitset"
        assert report["meta"]["jobs"] == 1
        assert report["meta"]["cover_cache_size"] == 4096
        assert "hits" in report["meta"]["cover_cache"]

    def test_seed_in_meta(self, capsys, tmp_path):
        out = tmp_path / "runs.jsonl"
        code = main(
            [
                "--instance", "grid3", "--measure", "tw", "--seed", "9",
                "--telemetry-out", str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text().splitlines()[-1])
        assert report["meta"]["seed"] == 9


class TestPortfolioParser:
    def test_requires_source(self):
        with pytest.raises(SystemExit):
            build_portfolio_parser().parse_args([])

    def test_defaults(self):
        args = build_portfolio_parser().parse_args(["--instance", "bridge_3"])
        assert args.mode == "process"
        assert args.strategies is None
        assert not args.resume

    def test_flags(self):
        args = build_portfolio_parser().parse_args(
            [
                "--instance", "bridge_3", "--strategies", "bb,ga",
                "--mode", "inline", "--time-limit", "2.5",
                "--checkpoint-dir", "/tmp/x", "--resume",
            ]
        )
        assert args.strategies == "bb,ga"
        assert args.mode == "inline"
        assert args.time_limit == 2.5
        assert args.resume


class TestPortfolioRuns:
    def test_inline_race_certifies(self, capsys):
        code = main(
            [
                "portfolio", "--instance", "bridge_3", "--measure", "ghw",
                "--strategies", "bb,ga", "--mode", "inline",
                "--time-limit", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "width=2 (optimal)" in out
        assert "stop=closed" in out
        assert "bb" in out and "ga" in out  # per-worker lines

    def test_telemetry_nests_worker_reports(self, capsys, tmp_path):
        out = tmp_path / "race.jsonl"
        code = main(
            [
                "portfolio", "--instance", "bridge_3", "--measure", "ghw",
                "--strategies", "bb,sa", "--mode", "inline",
                "--time-limit", "10", "--telemetry-out", str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text().splitlines()[-1])
        validate_report(report)
        assert report["solver"] == "portfolio"
        assert report["meta"]["mode"] == "inline"
        assert {w["solver"] for w in report["workers"]} == {"bb", "sa"}

    def test_resume_needs_checkpoint_dir(self, capsys):
        code = main(["portfolio", "--instance", "bridge_3", "--resume"])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_unknown_strategy_fails_cleanly(self, capsys):
        code = main(
            [
                "portfolio", "--instance", "bridge_3",
                "--strategies", "bb,quantum", "--mode", "inline",
            ]
        )
        assert code == 2
        assert "unknown strategy kind" in capsys.readouterr().err

    def test_ghw_on_graph_fails_cleanly(self, capsys):
        code = main(
            ["portfolio", "--instance", "grid3", "--measure", "ghw"]
        )
        assert code == 2

    def test_checkpoint_then_resume(self, capsys, tmp_path):
        checkpoints = tmp_path / "race"
        code = main(
            [
                "portfolio", "--instance", "grid2d_4", "--measure", "ghw",
                "--strategies", "ga,sa", "--mode", "inline",
                "--time-limit", "0.05", "--checkpoint-dir", str(checkpoints),
                "--checkpoint-interval", "0",
            ]
        )
        assert code == 0
        assert (checkpoints / "manifest.json").exists()
        code = main(
            [
                "portfolio", "--instance", "grid2d_4", "--resume",
                "--checkpoint-dir", str(checkpoints), "--mode", "inline",
                "--time-limit", "5",
            ]
        )
        assert code == 0
        assert "portfolio[ghw]" in capsys.readouterr().out
