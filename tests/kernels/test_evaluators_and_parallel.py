"""Unit tests for the backend evaluators, parallel evaluation and the
backend/jobs knobs exposed by the heuristics, the runner and the CLI."""

from __future__ import annotations

import json
import random

import pytest

from repro.genetic.engine import GAParameters, run_ga
from repro.genetic.ga_ghw import ga_ghw, make_ghw_evaluator
from repro.genetic.ga_tw import ga_treewidth
from repro.genetic.saiga import saiga_ghw
from repro.hypergraphs.graph import Graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.kernels.evaluators import (
    BACKENDS,
    check_backend,
    make_ghw_evaluator_backend,
    make_tw_evaluator,
)
from repro.kernels.parallel import ParallelEvaluator


def small_hypergraph():
    return Hypergraph(
        {"a": {0, 1, 2}, "b": {2, 3}, "c": {3, 4, 5}, "d": {5, 0}, "e": {1, 4}}
    )


def small_graph():
    return Graph(
        vertices=range(6),
        edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)],
    )


def orderings(vertices, count=6, seed=0):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        ordering = list(vertices)
        rng.shuffle(ordering)
        out.append(ordering)
    return out


def test_check_backend():
    for backend in BACKENDS:
        assert check_backend(backend) == backend
    with pytest.raises(ValueError, match="unknown backend"):
        check_backend("cuda")


def test_tw_evaluators_agree():
    graph = small_graph()
    python = make_tw_evaluator(graph, backend="python")
    bitset = make_tw_evaluator(graph, backend="bitset")
    for ordering in orderings(sorted(graph.vertices())):
        assert python(ordering) == bitset(ordering)


def test_ghw_evaluators_agree():
    h = small_hypergraph()
    python = make_ghw_evaluator_backend(h, backend="python")
    bitset = make_ghw_evaluator_backend(h, backend="bitset")
    for ordering in orderings(sorted(h.vertices())):
        assert python(ordering) == bitset(ordering)


def test_parallel_evaluator_matches_serial():
    h = small_hypergraph()
    population = orderings(sorted(h.vertices()), count=7)
    serial = [make_ghw_evaluator_backend(h, backend="bitset")(o) for o in population]
    with ParallelEvaluator(h, measure="ghw", jobs=2, backend="bitset") as pe:
        assert pe.evaluate_population(population) == serial
        # single-ordering calls bypass the pool but agree too
        assert [pe(o) for o in population] == serial
        stats = pe.stats()
    assert stats["jobs"] == 2 and stats["tasks"] == len(population)


def test_parallel_evaluator_tw_and_tiny_populations():
    g = small_graph()
    population = orderings(sorted(g.vertices()), count=1)
    with ParallelEvaluator(g, measure="tw", jobs=2) as pe:
        # < 2 individuals short-circuits to in-process evaluation
        assert pe.evaluate_population(population) == [
            make_tw_evaluator(g, backend="bitset")(population[0])
        ]


def test_parallel_evaluator_rejects_bad_args():
    with pytest.raises(ValueError):
        ParallelEvaluator(small_hypergraph(), jobs=0)
    with pytest.raises(ValueError):
        ParallelEvaluator(small_hypergraph(), measure="hw")


def test_run_ga_batch_evaluate_equivalent():
    h = small_hypergraph()
    vertices = sorted(h.vertices())
    params = GAParameters(population_size=8, max_iterations=4)
    evaluate = make_ghw_evaluator(h)

    def batch(population):
        return [evaluate(individual) for individual in population]

    serial = run_ga(vertices, evaluate, params, random.Random(3))
    batched = run_ga(
        vertices, evaluate, params, random.Random(3), batch_evaluate=batch
    )
    assert serial.best_fitness == batched.best_fitness
    assert serial.history == batched.history


def test_ga_ghw_backends_and_jobs_agree():
    h = small_hypergraph()
    params = GAParameters(population_size=8, max_iterations=3)
    bitset = ga_ghw(h, parameters=params, seed=5, backend="bitset")
    parallel = ga_ghw(h, parameters=params, seed=5, backend="bitset", jobs=2)
    assert bitset.best_fitness == parallel.best_fitness
    assert bitset.history == parallel.history


def test_ga_tw_and_saiga_accept_backend():
    g = small_graph()
    params = GAParameters(population_size=6, max_iterations=2)
    assert (
        ga_treewidth(g, parameters=params, seed=1, backend="bitset").best_fitness
        == ga_treewidth(g, parameters=params, seed=1).best_fitness
    )
    result = saiga_ghw(
        small_hypergraph(),
        islands=2,
        island_population=4,
        epochs=1,
        epoch_generations=1,
        seed=1,
        backend="bitset",
    )
    assert result.best_fitness >= 1


def test_experiment_runner_backend_jobs_meta():
    from repro.experiments.runner import ExperimentSpec, run_experiment

    spec = ExperimentSpec(
        instances=["adder_3"],
        measure="ghw",
        algorithms=["ga"],
        backend="bitset",
        jobs=1,
        ga_parameters=GAParameters(population_size=4, max_iterations=2),
    )
    table = run_experiment(spec, collect_reports=True)
    assert table.reports[0].meta["backend"] == "bitset"
    assert table.reports[0].meta["jobs"] == 1
    with pytest.raises(ValueError, match="unknown backend"):
        ExperimentSpec(instances=["adder_3"], backend="simd").validated()
    with pytest.raises(ValueError, match="jobs"):
        ExperimentSpec(instances=["adder_3"], jobs=0).validated()


def test_cli_backend_flags_recorded(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "runs.jsonl"
    code = main(
        [
            "--instance",
            "adder_3",
            "--measure",
            "ghw",
            "--algorithm",
            "ga",
            "--backend",
            "bitset",
            "--jobs",
            "1",
            "--cover-cache-size",
            "4096",
            "--telemetry-out",
            str(out),
        ]
    )
    assert code == 0
    report = json.loads(out.read_text().strip())
    assert report["meta"]["backend"] == "bitset"
    assert report["meta"]["jobs"] == 1
    assert report["meta"]["cover_cache_size"] == 4096
    assert "hits" in report["meta"]["cover_cache"]
    # restore the default so later tests see the stock capacity
    from repro.kernels.cache import DEFAULT_MAXSIZE, configure_cover_cache

    configure_cover_cache(DEFAULT_MAXSIZE)


def test_cli_rejects_bad_knobs(capsys):
    from repro.cli import main

    assert main(["--instance", "adder_3", "--jobs", "0"]) == 2
    assert main(["--instance", "adder_3", "--cover-cache-size", "0"]) == 2
