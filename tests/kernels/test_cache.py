"""Unit tests for the shared cover cache and its integration points."""

from __future__ import annotations

import pytest

from repro.decompositions.elimination import ordering_ghw, ordering_to_ghd
from repro.hypergraphs.hypergraph import Hypergraph
from repro.kernels.cache import (
    CoverCache,
    configure_cover_cache,
    cover_cache,
    edges_token,
    family_token,
)
from repro.setcover.exact import ExactSetCoverSolver


@pytest.fixture(autouse=True)
def clean_cache():
    cover_cache().clear()
    yield
    cover_cache().clear()


def test_lru_eviction_order():
    cache = CoverCache(maxsize=2)
    cache.put(0, "greedy", "a", ("e1",))
    cache.put(0, "greedy", "b", ("e2",))
    assert cache.get(0, "greedy", "a") == ("e1",)  # refreshes "a"
    cache.put(0, "greedy", "c", ("e3",))  # evicts LRU "b"
    assert cache.get(0, "greedy", "b") is None
    assert cache.get(0, "greedy", "a") == ("e1",)
    assert cache.evictions == 1


def test_modes_and_tokens_do_not_mix():
    cache = CoverCache()
    cache.put(0, "greedy", "bag", ("g",))
    cache.put(0, "exact", "bag", ("x",))
    cache.put(1, "greedy", "bag", ("other",))
    assert cache.get(0, "greedy", "bag") == ("g",)
    assert cache.get(0, "exact", "bag") == ("x",)
    assert cache.get(1, "greedy", "bag") == ("other",)


def test_resize_shrinks_and_rejects_nonpositive():
    cache = CoverCache(maxsize=4)
    for i in range(4):
        cache.put(0, "greedy", i, (i,))
    cache.resize(2)
    assert len(cache) == 2
    with pytest.raises(ValueError):
        cache.resize(0)


def test_stats_shape():
    cache = CoverCache()
    cache.put(0, "greedy", "bag", ("e",))
    cache.get(0, "greedy", "bag")
    cache.get(0, "greedy", "missing")
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["size"] == 1 and 0 < stats["hit_rate"] < 1


def test_configure_cover_cache_resizes_global():
    configure_cover_cache(77)
    assert cover_cache().maxsize == 77
    configure_cover_cache(262_144)


def test_family_token_interned_by_content():
    edges = {"a": frozenset({1, 2}), "b": frozenset({2, 3})}
    assert edges_token(edges) == edges_token(dict(edges))
    assert family_token("x") != family_token("y")


def test_exact_solver_shares_cache_across_instances():
    edges = {"a": {0, 1}, "b": {1, 2}, "c": {2, 3}}
    solver1 = ExactSetCoverSolver(edges)
    solver1.cover({0, 1, 2})
    misses_after_first = cover_cache().misses
    solver2 = ExactSetCoverSolver(edges)  # fresh solver, same family
    solver2.cover({0, 1, 2})
    assert cover_cache().misses == misses_after_first
    assert cover_cache().hits >= 1


def test_ordering_ghw_then_ghd_reuses_covers():
    h = Hypergraph({"a": {0, 1}, "b": {1, 2}, "c": {2, 3}, "d": {0, 3}})
    ordering = [0, 1, 2, 3]
    ordering_ghw(h, ordering, cover="greedy")
    misses = cover_cache().misses
    ghd = ordering_to_ghd(h, ordering, cover="greedy")
    # every bag the GHD needs was already covered by ordering_ghw
    assert cover_cache().misses == misses
    assert ghd.width() == ordering_ghw(h, ordering, cover="greedy")


def test_randomised_greedy_is_never_cached():
    import random

    h = Hypergraph({"a": {0, 1}, "b": {1, 2}, "c": {2, 3}, "d": {0, 3}})
    before = len(cover_cache())
    ordering_ghw(h, [0, 1, 2, 3], cover="greedy", rng=random.Random(0))
    assert len(cover_cache()) == before
