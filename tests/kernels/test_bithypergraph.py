"""Unit tests for the bitset graph/hypergraph representations."""

from __future__ import annotations

import pytest

from repro.hypergraphs.graph import Graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.kernels.bithypergraph import BitGraph, BitHypergraph, bits_of
from repro.kernels.elimination import (
    bit_elimination_bags,
    bit_ordering_ghw,
    bit_ordering_width,
)


def triangle_plus_tail():
    return Graph(vertices=range(4), edges=[(0, 1), (1, 2), (0, 2), (2, 3)])


def small_hypergraph():
    return Hypergraph({"a": {0, 1}, "b": {1, 2}, "c": {2, 3}, "d": {0, 3}})


def test_bits_of():
    assert bits_of(0) == []
    assert bits_of(0b1011) == [0, 1, 3]


def test_bitgraph_interning_is_sorted_and_total():
    bg = BitGraph.from_graph(triangle_plus_tail())
    assert bg.vertices == [0, 1, 2, 3]
    assert bg.full_mask == 0b1111
    assert bg.vertices_of(bg.nbr_masks[2]) == {0, 1, 3}
    assert bg.mask_of([0, 3]) == 0b1001


def test_order_of_rejects_unknown_vertex():
    bg = BitGraph.from_graph(triangle_plus_tail())
    with pytest.raises(ValueError, match="not a permutation"):
        bg.order_of([0, 1, 2, 99])


def test_bit_elimination_matches_known_widths():
    bg = BitGraph.from_graph(triangle_plus_tail())
    order = bg.order_of([3, 0, 1, 2])
    bags = bit_elimination_bags(bg, order)
    assert len(bags) == 4
    assert bit_ordering_width(bg, order) == 2  # the triangle forces 2


def test_bithypergraph_incidence_and_tie_rank():
    bh = BitHypergraph.from_hypergraph(small_hypergraph())
    # vertex 1 appears in edges "a" and "b" only
    i_a = bh.edge_names.index("a")
    i_b = bh.edge_names.index("b")
    assert bits_of(bh.incidence_masks[bh.index[1]]) == sorted([i_a, i_b])
    # tie_rank is rank in repr-sorted name order
    by_rank = sorted(range(len(bh.edge_names)), key=bh.tie_rank.__getitem__)
    assert [bh.edge_names[i] for i in by_rank] == ["a", "b", "c", "d"]


def test_bit_ordering_ghw_small_cycle():
    bh = BitHypergraph.from_hypergraph(small_hypergraph())
    order = bh.order_of([0, 1, 2, 3])
    assert bit_ordering_ghw(bh, order, cover="exact") == 2
    assert bit_ordering_ghw(bh, order, cover="greedy") >= 2


def test_tokens_shared_by_identical_families():
    bh1 = BitHypergraph.from_hypergraph(small_hypergraph())
    bh2 = BitHypergraph.from_hypergraph(small_hypergraph())
    assert bh1.token == bh2.token
    other = BitHypergraph.from_hypergraph(Hypergraph({"a": {0, 1}}))
    assert other.token != bh1.token
