"""CoverCache.counts(): the atomic snapshot read behind obs deltas."""

from repro import obs
from repro.hypergraphs.hypergraph import Hypergraph
from repro.kernels.cache import CoverCache
from repro.kernels.evaluators import make_bit_ghw_evaluator


class TestCounts:
    def test_tracks_hits_misses_evictions(self):
        cache = CoverCache(maxsize=2)
        assert cache.counts() == (0, 0, 0)
        cache.get(0, "greedy", 1)  # miss
        cache.put(0, "greedy", 1, ("a",))
        cache.get(0, "greedy", 1)  # hit
        cache.put(0, "greedy", 2, ("b",))
        cache.put(0, "greedy", 3, ("c",))  # evicts bag 1
        assert cache.counts() == (1, 1, 1)

    def test_counts_matches_stats(self):
        cache = CoverCache(maxsize=4)
        cache.get(0, "exact", 1)
        cache.put(0, "exact", 1, ("a",))
        cache.get(0, "exact", 1)
        hits, misses, evictions = cache.counts()
        stats = cache.stats()
        assert (hits, misses, evictions) == (
            stats["hits"], stats["misses"], stats["evictions"]
        )

    def test_clear_resets(self):
        cache = CoverCache(maxsize=2)
        cache.get(0, "greedy", 1)
        cache.clear()
        assert cache.counts() == (0, 0, 0)


class TestEvaluatorDeltas:
    def test_evaluator_publishes_cache_events(self, monkeypatch):
        """Hit/miss/eviction deltas land on the ambient metrics, computed
        from atomic snapshots rather than field-by-field reads."""
        small = CoverCache(maxsize=16)
        monkeypatch.setattr(
            "repro.kernels.evaluators.cover_cache", lambda: small
        )
        hypergraph = Hypergraph(
            {
                "e1": {"a", "b"},
                "e2": {"b", "c"},
                "e3": {"c", "d"},
                "e4": {"d", "a"},
            }
        )
        with obs.instrument() as ins:
            evaluate = make_bit_ghw_evaluator(hypergraph)
            evaluate(["a", "b", "c", "d"])  # cold: misses
            evaluate(["a", "b", "c", "d"])  # warm: hits
            small.resize(1)  # evicts; the next delta picks it up
            evaluate(["d", "c", "b", "a"])
            counters = ins.metrics.snapshot_by_kind()["counters"]
        hits, misses, evictions = small.counts()
        assert counters.get('cover_cache{event="miss"}', 0) == misses
        assert counters.get('cover_cache{event="hit"}', 0) == hits
        assert counters.get('cover_cache{event="eviction"}', 0) == evictions
        assert misses > 0 and hits > 0 and evictions > 0
