"""Tests for simulated annealing over orderings."""

import pytest

from repro.decompositions.elimination import ordering_ghw, ordering_width
from repro.hypergraphs.graph import Graph, cycle_graph, path_graph
from repro.instances.dimacs_like import grid_graph, queen_graph
from repro.instances.hypergraphs import adder, clique_hypergraph
from repro.localsearch.simulated_annealing import (
    AnnealingParameters,
    sa_ghw,
    sa_treewidth,
    simulated_annealing,
)
from repro.search.astar_tw import astar_treewidth

FAST = AnnealingParameters(
    initial_temperature=2.0, cooling_rate=0.9, steps_per_temperature=15
)


class TestParameters:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("initial_temperature", 0.0),
            ("cooling_rate", 1.0),
            ("steps_per_temperature", 0),
            ("minimum_temperature", 0.0),
            ("move", "NOPE"),
        ],
    )
    def test_invalid(self, field, value):
        with pytest.raises(ValueError):
            AnnealingParameters(**{field: value}).validated()


class TestCore:
    def sortedness(self, individual):
        return sum(1 for a, b in zip(individual, individual[1:]) if a > b)

    def test_optimises(self):
        result = simulated_annealing(
            list(range(8)), self.sortedness, parameters=FAST, seed=0
        )
        assert result.best_fitness <= 2

    def test_seeded_start(self):
        result = simulated_annealing(
            list(range(6)),
            self.sortedness,
            parameters=FAST,
            seed=0,
            initial=list(range(6)),
            target=0,
        )
        assert result.best_fitness == 0

    def test_bad_initial_rejected(self):
        with pytest.raises(ValueError):
            simulated_annealing(
                [1, 2, 3], self.sortedness, initial=[1, 2]
            )

    def test_reproducible(self):
        runs = [
            simulated_annealing(
                list(range(8)), self.sortedness, parameters=FAST, seed=4
            ).best_fitness
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_history_monotone(self):
        result = simulated_annealing(
            list(range(8)), self.sortedness, parameters=FAST, seed=1
        )
        assert result.history == sorted(result.history, reverse=True)


class TestWidthWrappers:
    def test_tw_easy_graphs(self):
        assert sa_treewidth(path_graph(8), parameters=FAST).best_fitness == 1
        assert sa_treewidth(cycle_graph(7), parameters=FAST).best_fitness == 2

    def test_tw_never_below_optimum(self):
        graph = queen_graph(4)
        truth = astar_treewidth(graph).value
        result = sa_treewidth(graph, parameters=FAST, seed=1)
        assert result.best_fitness >= truth
        assert (
            ordering_width(graph, result.best_individual)
            == result.best_fitness
        )

    def test_tw_grid(self):
        assert sa_treewidth(grid_graph(3), parameters=FAST).best_fitness == 3

    def test_tw_trivial(self):
        assert sa_treewidth(Graph(vertices=[1])).best_fitness == 0

    def test_ghw_adder(self):
        result = sa_ghw(adder(4), parameters=FAST, seed=0)
        assert result.best_fitness == 2

    def test_ghw_clique(self):
        result = sa_ghw(clique_hypergraph(6), parameters=FAST, seed=0)
        assert result.best_fitness == 3

    def test_ghw_is_upper_bound(self, example5):
        result = sa_ghw(example5, parameters=FAST, seed=0)
        assert result.best_fitness >= 2
        achieved = ordering_ghw(
            example5, result.best_individual, cover="exact"
        )
        assert achieved <= result.best_fitness
