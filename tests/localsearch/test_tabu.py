"""Tests for tabu search over orderings."""

import pytest

from repro.decompositions.elimination import ordering_width
from repro.hypergraphs.graph import Graph, cycle_graph, path_graph
from repro.instances.dimacs_like import grid_graph, queen_graph
from repro.instances.hypergraphs import adder, clique_hypergraph
from repro.localsearch.tabu import (
    TabuParameters,
    tabu_ghw,
    tabu_search,
    tabu_treewidth,
)
from repro.search.astar_tw import astar_treewidth

FAST = TabuParameters(iterations=40, neighbourhood_sample=20)


class TestParameters:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("iterations", 0),
            ("tenure", -1),
            ("neighbourhood_sample", 0),
            ("stall_restart", 0),
        ],
    )
    def test_invalid(self, field, value):
        with pytest.raises(ValueError):
            TabuParameters(**{field: value}).validated()


class TestCore:
    def sortedness(self, individual):
        return sum(1 for a, b in zip(individual, individual[1:]) if a > b)

    def test_optimises(self):
        result = tabu_search(
            list(range(8)), self.sortedness, parameters=FAST, seed=0
        )
        assert result.best_fitness <= 1

    def test_target_stops_early(self):
        result = tabu_search(
            list(range(6)),
            self.sortedness,
            parameters=TabuParameters(iterations=500),
            seed=0,
            initial=list(range(6)),
            target=0,
        )
        assert result.best_fitness == 0
        assert result.iterations == 0

    def test_bad_initial_rejected(self):
        with pytest.raises(ValueError):
            tabu_search([1, 2, 3], self.sortedness, initial=[3])

    def test_reproducible(self):
        runs = [
            tabu_search(
                list(range(8)), self.sortedness, parameters=FAST, seed=9
            ).best_fitness
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_history_monotone(self):
        result = tabu_search(
            list(range(10)), self.sortedness, parameters=FAST, seed=2
        )
        assert result.history == sorted(result.history, reverse=True)


class TestWidthWrappers:
    def test_tw_easy_graphs(self):
        assert tabu_treewidth(path_graph(8), parameters=FAST).best_fitness == 1
        assert tabu_treewidth(cycle_graph(7), parameters=FAST).best_fitness == 2

    def test_tw_never_below_optimum(self):
        graph = queen_graph(4)
        truth = astar_treewidth(graph).value
        result = tabu_treewidth(graph, parameters=FAST, seed=3)
        assert result.best_fitness >= truth
        assert (
            ordering_width(graph, result.best_individual)
            == result.best_fitness
        )

    def test_tw_grid(self):
        assert tabu_treewidth(grid_graph(3), parameters=FAST).best_fitness == 3

    def test_tw_trivial(self):
        assert tabu_treewidth(Graph(vertices=[1])).best_fitness == 0

    def test_ghw_adder(self):
        assert tabu_ghw(adder(4), parameters=FAST, seed=0).best_fitness == 2

    def test_ghw_clique(self):
        assert (
            tabu_ghw(clique_hypergraph(6), parameters=FAST, seed=0).best_fitness
            == 3
        )

    def test_ghw_is_upper_bound(self, example5):
        assert tabu_ghw(example5, parameters=FAST, seed=0).best_fitness >= 2
