"""Stateful property tests (hypothesis RuleBasedStateMachine).

The elimination graph's eliminate/restore/switch_to trio is the engine
under every exact search; a bookkeeping slip there silently corrupts
widths. The state machine below drives it through arbitrary interleaved
operation sequences against a trivially-correct model (rebuild from
scratch each time) and checks full graph equality after every step.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.hypergraphs.elimination_graph import EliminationGraph
from repro.hypergraphs.graph import Graph
from repro.instances.dimacs_like import random_gnp


def rebuild(graph: Graph, prefix: list) -> Graph:
    """The oracle: re-eliminate the prefix on a fresh copy."""
    fresh = graph.copy()
    for vertex in prefix:
        fresh.eliminate(vertex)
    return fresh


class EliminationMachine(RuleBasedStateMachine):
    @initialize(
        seed=st.integers(0, 200),
        n=st.integers(2, 9),
        density=st.floats(0.1, 0.9),
    )
    def setup(self, seed, n, density):
        self.base = random_gnp(n, density, seed=seed)
        self.working = EliminationGraph(self.base)
        self.prefix: list = []

    @rule(choice=st.integers(0, 10**6))
    def eliminate_some_vertex(self, choice):
        remaining = sorted(self.working.vertices())
        if not remaining:
            return
        vertex = remaining[choice % len(remaining)]
        self.working.eliminate(vertex)
        self.prefix.append(vertex)

    @rule()
    def restore_one(self):
        if not self.prefix:
            return
        restored = self.working.restore()
        expected = self.prefix.pop()
        assert restored == expected

    @rule(choice=st.integers(0, 10**6), length=st.integers(0, 9))
    def switch_to_random_prefix(self, choice, length):
        vertices = sorted(self.base.vertices())
        # deterministic pseudo-random prefix from the draw
        wanted: list = []
        state = choice
        pool = list(vertices)
        for _ in range(min(length, len(pool))):
            state = (state * 1103515245 + 12345) % (2**31)
            wanted.append(pool.pop(state % len(pool)))
        self.working.switch_to(wanted)
        self.prefix = list(wanted)

    @invariant()
    def graph_matches_oracle(self):
        if not hasattr(self, "working"):
            return
        assert self.working.graph() == rebuild(self.base, self.prefix)
        assert self.working.eliminated() == self.prefix


TestEliminationMachine = EliminationMachine.TestCase
TestEliminationMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
