"""Fuzzing the file-format parsers: they must never crash uncleanly.

Parsers face untrusted text; every outcome must be either a parsed
object or a :class:`FormatError`-family exception — no ``IndexError``,
``KeyError`` or silent corruption. Round-trip properties are fuzzed
with structured generators.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decompositions.io import (
    format_tree_decomposition,
    parse_ghd,
    parse_tree_decomposition,
)
from repro.decompositions.elimination import ordering_to_tree_decomposition
from repro.hypergraphs.io import (
    FormatError,
    parse_dimacs,
    parse_hypergraph,
    write_dimacs,
)
from repro.instances.dimacs_like import random_gnp

ACCEPTABLE = (FormatError, ValueError)


@given(st.text(max_size=300))
@settings(max_examples=150, deadline=None)
def test_dimacs_parser_never_crashes(text):
    try:
        parse_dimacs(text)
    except ACCEPTABLE:
        pass


@given(st.text(max_size=300))
@settings(max_examples=150, deadline=None)
def test_hypergraph_parser_never_crashes(text):
    try:
        parse_hypergraph(text)
    except ACCEPTABLE:
        pass


@given(st.text(max_size=300))
@settings(max_examples=150, deadline=None)
def test_td_parser_never_crashes(text):
    try:
        parse_tree_decomposition(text)
    except ACCEPTABLE:
        pass


@given(st.text(max_size=300))
@settings(max_examples=150, deadline=None)
def test_ghd_parser_never_crashes(text):
    try:
        parse_ghd(text)
    except ACCEPTABLE:
        pass


@given(
    st.integers(2, 12),
    st.floats(0.1, 0.9),
    st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_dimacs_roundtrip_random_graphs(n, p, seed):
    import tempfile
    from pathlib import Path

    graph = random_gnp(n, p, seed=seed)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "g.col"
        write_dimacs(graph, path)
        loaded = parse_dimacs(path.read_text())
    assert loaded.num_vertices() == graph.num_vertices()
    assert loaded.num_edges() == graph.num_edges()


@given(st.integers(2, 10), st.floats(0.2, 0.8), st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_td_roundtrip_random_decompositions(n, p, seed):
    graph = random_gnp(n, p, seed=seed)
    decomposition = ordering_to_tree_decomposition(
        graph, sorted(graph.vertices())
    )
    text = format_tree_decomposition(decomposition)
    loaded = parse_tree_decomposition(text)
    assert loaded.num_nodes() == decomposition.num_nodes()
    assert loaded.width() == decomposition.width()
    assert loaded.is_tree()
