"""Property-based tests (hypothesis) for the core invariants.

These encode the theorems and structural guarantees the whole system
rests on, checked on randomly generated graphs, hypergraphs and
permutations.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.ghw_lower import tw_ksc_width
from repro.bounds.lower import treewidth_lower_bound
from repro.bounds.upper import min_fill_ordering
from repro.decompositions.elimination import (
    ordering_ghw,
    ordering_to_ghd,
    ordering_to_tree_decomposition,
    ordering_width,
)
from repro.decompositions.leaf_normal_form import extract_ordering
from repro.genetic.crossover import CROSSOVER_OPERATORS
from repro.genetic.mutation import MUTATION_OPERATORS
from repro.hypergraphs.elimination_graph import EliminationGraph
from repro.hypergraphs.graph import Graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.search.astar_ghw import astar_ghw
from repro.search.astar_tw import astar_treewidth
from repro.search.bb_ghw import branch_and_bound_ghw
from repro.search.bb_tw import branch_and_bound_treewidth
from repro.setcover.exact import exact_cover_size
from repro.setcover.greedy import greedy_set_cover


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

@st.composite
def graphs(draw, max_vertices=9):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.append((u, v))
    return Graph(vertices=range(n), edges=edges)


@st.composite
def hypergraphs(draw, max_vertices=8, max_edges=6):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=1, max_value=max_edges))
    vertices = list(range(n))
    edges = {}
    covered = set()
    for i in range(m):
        size = draw(st.integers(min_value=1, max_value=min(4, n)))
        edge = draw(
            st.sets(
                st.sampled_from(vertices), min_size=size, max_size=size
            )
        )
        edges[f"e{i}"] = edge
        covered |= edge
    # ensure every vertex is covered (ghw undefined otherwise)
    missing = [v for v in vertices if v not in covered]
    if missing:
        edges["fill"] = set(missing)
    return Hypergraph(edges)


@st.composite
def graph_and_ordering(draw):
    graph = draw(graphs())
    ordering = draw(st.permutations(sorted(graph.vertices())))
    return graph, list(ordering)


# ----------------------------------------------------------------------
# graph / elimination invariants
# ----------------------------------------------------------------------

@given(graph_and_ordering())
@settings(max_examples=60, deadline=None)
def test_elimination_roundtrip_restores_graph(data):
    graph, ordering = data
    working = EliminationGraph(graph)
    for vertex in ordering:
        working.eliminate(vertex)
    working.restore_all()
    assert working.graph() == graph


@given(graph_and_ordering())
@settings(max_examples=60, deadline=None)
def test_bucket_elimination_yields_valid_tree_decomposition(data):
    graph, ordering = data
    decomposition = ordering_to_tree_decomposition(graph, ordering)
    decomposition.validate(graph)
    assert decomposition.width() == ordering_width(graph, ordering)


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_lower_bound_below_min_fill_upper_bound(graph):
    lower = treewidth_lower_bound(graph)
    ordering = min_fill_ordering(graph, None)
    assert lower <= ordering_width(graph, ordering)


@given(graphs(max_vertices=7))
@settings(max_examples=30, deadline=None)
def test_exact_algorithms_agree(graph):
    astar = astar_treewidth(graph)
    bb = branch_and_bound_treewidth(graph)
    assert astar.optimal and bb.optimal
    assert astar.value == bb.value
    assert ordering_width(graph, astar.ordering) == astar.value


# ----------------------------------------------------------------------
# hypergraph / ghw invariants
# ----------------------------------------------------------------------

@given(hypergraphs())
@settings(max_examples=40, deadline=None)
def test_ghd_from_any_ordering_is_valid(hypergraph):
    ordering = sorted(hypergraph.vertices())
    for cover in ("greedy", "exact"):
        ghd = ordering_to_ghd(hypergraph, ordering, cover=cover)
        ghd.validate(hypergraph)


@given(hypergraphs())
@settings(max_examples=40, deadline=None)
def test_greedy_cover_at_least_exact(hypergraph):
    ordering = sorted(hypergraph.vertices())
    assert ordering_ghw(hypergraph, ordering, cover="greedy") >= ordering_ghw(
        hypergraph, ordering, cover="exact"
    )


@given(hypergraphs(max_vertices=7, max_edges=5))
@settings(max_examples=25, deadline=None)
def test_ghw_exact_algorithms_agree_and_bound_is_sound(hypergraph):
    bb = branch_and_bound_ghw(hypergraph)
    astar = astar_ghw(hypergraph)
    assert bb.optimal and astar.optimal
    assert bb.value == astar.value
    assert tw_ksc_width(hypergraph) <= bb.value


@given(hypergraphs(max_vertices=7, max_edges=5))
@settings(max_examples=25, deadline=None)
def test_theorem_2_extraction_never_worse(hypergraph):
    """Chapter 3: extracting an ordering from any GHD's tree gives a
    cover width no worse than that GHD's width."""
    ordering = sorted(hypergraph.vertices())
    ghd = ordering_to_ghd(hypergraph, ordering, cover="exact")
    extracted = extract_ordering(ghd.tree, hypergraph)
    assert (
        ordering_ghw(hypergraph, extracted, cover="exact") <= ghd.width()
    )


# ----------------------------------------------------------------------
# set cover invariants
# ----------------------------------------------------------------------

@given(
    st.dictionaries(
        st.text(min_size=1, max_size=3),
        st.frozensets(st.integers(0, 8), min_size=1, max_size=5),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=60, deadline=None)
def test_exact_cover_never_larger_than_greedy(instance):
    universe = set()
    for edge in instance.values():
        universe |= edge
    greedy = len(greedy_set_cover(universe, instance))
    exact = exact_cover_size(universe, instance)
    assert 1 <= exact <= greedy


@given(
    st.data(),
    st.dictionaries(
        st.text(min_size=1, max_size=3),
        st.frozensets(st.integers(0, 8), min_size=1, max_size=5),
        min_size=1,
        max_size=8,
    ),
)
@settings(max_examples=80, deadline=None)
def test_exact_cover_of_subsets_never_larger_than_greedy(data, instance):
    """The bag-covering case: targets are arbitrary coverable subsets."""
    universe = set()
    for edge in instance.values():
        universe |= edge
    target = data.draw(st.sets(st.sampled_from(sorted(universe))))
    greedy = len(greedy_set_cover(target, instance))
    exact = exact_cover_size(target, instance)
    assert exact <= greedy


# ----------------------------------------------------------------------
# genetic operator invariants
# ----------------------------------------------------------------------

@given(
    st.permutations(list(range(8))),
    st.permutations(list(range(8))),
    st.sampled_from(sorted(CROSSOVER_OPERATORS)),
    st.integers(0, 2**16),
)
@settings(max_examples=120, deadline=None)
def test_crossover_produces_permutations(p1, p2, name, seed):
    operator = CROSSOVER_OPERATORS[name]
    c1, c2 = operator(list(p1), list(p2), random.Random(seed))
    assert sorted(c1) == sorted(p1)
    assert sorted(c2) == sorted(p1)


@given(
    st.permutations(list(range(8))),
    st.sampled_from(sorted(MUTATION_OPERATORS)),
    st.integers(0, 2**16),
)
@settings(max_examples=120, deadline=None)
def test_mutation_produces_permutations(individual, name, seed):
    operator = MUTATION_OPERATORS[name]
    mutated = operator(list(individual), random.Random(seed))
    assert sorted(mutated) == sorted(individual)
