"""The bitset kernel must agree with the pure-Python reference exactly.

The kernel (:mod:`repro.kernels`) re-implements bucket elimination and
set covering on interned bitmasks; the pure-Python implementations stay
in the tree as the oracle. On every deterministic path the two must
return *identical* values — not merely consistent bounds — because the
bitset greedy cover reproduces the python tie-break (smallest edge name
by ``repr``) and exact covers are canonical by definition.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decompositions.elimination import ordering_ghw, ordering_width
from repro.hypergraphs.graph import Graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.kernels.bithypergraph import BitGraph, BitHypergraph, bits_of


@st.composite
def graphs(draw, max_vertices=9):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.append((u, v))
    return Graph(vertices=range(n), edges=edges)


@st.composite
def hypergraphs(draw, max_vertices=8, max_edges=6):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=1, max_value=max_edges))
    vertices = list(range(n))
    edges = {}
    covered = set()
    for i in range(m):
        size = draw(st.integers(min_value=1, max_value=min(4, n)))
        edge = draw(
            st.sets(st.sampled_from(vertices), min_size=size, max_size=size)
        )
        edges[f"e{i}"] = edge
        covered |= edge
    missing = [v for v in vertices if v not in covered]
    if missing:
        edges["fill"] = set(missing)
    return Hypergraph(edges)


@st.composite
def graph_and_ordering(draw):
    graph = draw(graphs())
    ordering = draw(st.permutations(sorted(graph.vertices())))
    return graph, list(ordering)


@st.composite
def hypergraph_and_ordering(draw):
    hypergraph = draw(hypergraphs())
    ordering = draw(st.permutations(sorted(hypergraph.vertices())))
    return hypergraph, list(ordering)


@given(graph_and_ordering())
@settings(max_examples=120, deadline=None)
def test_ordering_width_backends_agree(case):
    graph, ordering = case
    assert ordering_width(graph, ordering, backend="bitset") == ordering_width(
        graph, ordering, backend="python"
    )


@given(hypergraph_and_ordering())
@settings(max_examples=120, deadline=None)
def test_ordering_ghw_greedy_backends_agree(case):
    hypergraph, ordering = case
    python = ordering_ghw(hypergraph, ordering, cover="greedy")
    bitset = ordering_ghw(hypergraph, ordering, cover="greedy", backend="bitset")
    assert python == bitset


@given(hypergraph_and_ordering())
@settings(max_examples=60, deadline=None)
def test_ordering_ghw_exact_backends_agree(case):
    hypergraph, ordering = case
    python = ordering_ghw(hypergraph, ordering, cover="exact")
    bitset = ordering_ghw(hypergraph, ordering, cover="exact", backend="bitset")
    assert python == bitset


@given(hypergraphs())
@settings(max_examples=80, deadline=None)
def test_bithypergraph_round_trip(hypergraph):
    bh = BitHypergraph.from_hypergraph(hypergraph)
    back = bh.to_hypergraph()
    assert back.edges() == hypergraph.edges()
    assert back.vertices() == hypergraph.vertices()
    # masks decode to exactly the original edge memberships
    for name, edge in hypergraph.edges().items():
        mask = bh.edge_masks[bh.edge_names.index(name)]
        assert set(bh.vertices_of(mask)) == set(edge)


@given(graphs())
@settings(max_examples=80, deadline=None)
def test_bitgraph_round_trip(graph):
    bg = BitGraph.from_graph(graph)
    back = bg.to_graph()
    assert back.vertices() == graph.vertices()
    for vertex in graph.vertices():
        assert set(back.neighbours(vertex)) == set(graph.neighbours(vertex))
    # neighbour masks are symmetric and irreflexive
    for i, mask in enumerate(bg.nbr_masks):
        assert not mask & (1 << i)
        for j in bits_of(mask):
            assert bg.nbr_masks[j] & (1 << i)
