"""Counter/gauge/histogram and registry semantics."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullMetricsRegistry,
    series_key,
)


class TestSeriesKey:
    def test_no_labels(self):
        assert series_key("nodes") == "nodes"

    def test_labels_sorted_by_key(self):
        assert (
            series_key("prunes", {"solver": "bb-tw", "rule": "pr2"})
            == 'prunes{rule="pr2",solver="bb-tw"}'
        )

    def test_label_order_does_not_matter(self):
        a = series_key("m", {"a": "1", "b": "2"})
        b = series_key("m", {"b": "2", "a": "1"})
        assert a == b


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("nodes")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_same_labels_same_series(self):
        registry = MetricsRegistry()
        first = registry.counter("prunes", rule="pr1")
        second = registry.counter("prunes", rule="pr1")
        first.inc()
        second.inc()
        assert first is second
        assert registry.snapshot()['prunes{rule="pr1"}'] == 2

    def test_different_labels_different_series(self):
        registry = MetricsRegistry()
        registry.counter("prunes", rule="pr1").inc()
        registry.counter("prunes", rule="pr2").inc(3)
        snapshot = registry.snapshot()
        assert snapshot['prunes{rule="pr1"}'] == 1
        assert snapshot['prunes{rule="pr2"}'] == 3


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("best")
        gauge.set(10)
        assert gauge.value == 10
        gauge.add(-3)
        assert gauge.value == 7


class TestHistogram:
    def test_summary_statistics(self):
        histogram = MetricsRegistry().histogram("seconds")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(6.0)
        assert summary["min"] == pytest.approx(1.0)
        assert summary["max"] == pytest.approx(3.0)
        assert summary["mean"] == pytest.approx(2.0)

    def test_empty_histogram(self):
        summary = MetricsRegistry().histogram("seconds").summary()
        assert summary["count"] == 0


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("nodes")
        with pytest.raises(ValueError):
            registry.gauge("nodes")
        with pytest.raises(ValueError):
            registry.histogram("nodes", solver="bb")

    def test_snapshot_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        assert list(registry.snapshot()) == ["alpha", "zeta"]

    def test_snapshot_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.25)
        by_kind = registry.snapshot_by_kind()
        assert by_kind["counters"] == {"c": 2}
        assert by_kind["gauges"] == {"g": 1.5}
        assert by_kind["histograms"]["h"]["count"] == 1

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled
        assert not NullMetricsRegistry().enabled


class TestNullRegistry:
    def test_noop_instruments_accept_all_operations(self):
        counter = NULL_REGISTRY.counter("nodes", solver="bb")
        counter.inc()
        counter.inc(100)
        NULL_REGISTRY.gauge("g").set(3)
        NULL_REGISTRY.histogram("h").observe(1.0)
        assert NULL_REGISTRY.snapshot() == {}

    def test_instruments_are_shared_singletons(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b", x="y")
