"""RunReport capture, JSONL round-tripping, and schema validation."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.report import (
    SCHEMA_VERSION,
    RunReport,
    append_jsonl,
    read_jsonl,
    validate_report,
)


def make_report(**overrides) -> RunReport:
    base = dict(
        instance="adder_3",
        solver="bb",
        measure="ghw",
        status="optimal",
        value=2,
        lower_bound=2,
        upper_bound=2,
        elapsed_s=0.5,
    )
    base.update(overrides)
    return RunReport(**base)


class TestCapture:
    def test_capture_collects_instruments(self):
        with obs.instrument() as ins:
            ins.metrics.counter("nodes", solver="bb-ghw").inc(7)
            ins.metrics.gauge("best").set(3)
            ins.metrics.histogram("seconds").observe(0.1)
            with ins.tracer.span("bb-ghw"):
                pass
            report = RunReport.capture(
                ins,
                instance="x",
                solver="bb",
                measure="ghw",
                status="optimal",
                value=3,
            )
        assert report.counters == {'nodes{solver="bb-ghw"}': 7}
        assert report.gauges == {"best": 3}
        assert report.histograms["seconds"]["count"] == 1
        assert report.spans[0]["name"] == "bb-ghw"
        assert report.peak_rss_kb is None or report.peak_rss_kb > 0
        validate_report(report.to_dict())

    def test_capture_disabled_instruments_is_empty(self):
        report = RunReport.capture(
            obs.DISABLED,
            instance="x",
            solver="bb",
            measure="tw",
            status="heuristic",
            upper_bound=4,
        )
        assert report.counters == {}
        assert report.spans == []
        validate_report(report.to_dict())


class TestRoundTrip:
    def test_json_round_trip(self):
        report = make_report(
            counters={"nodes": 12},
            spans=[{"name": "bb-ghw", "duration_s": 0.01}],
            meta={"seed": 0},
        )
        restored = RunReport.from_json(report.to_json())
        assert restored == report

    def test_jsonl_file_round_trip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        first = make_report()
        second = make_report(
            instance="grid_3x3", status="heuristic", value=None,
            lower_bound=None, upper_bound=3,
        )
        append_jsonl(path, first)
        append_jsonl(path, second)
        assert read_jsonl(path) == [first, second]

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text(make_report().to_json() + "\n\n\n")
        assert len(read_jsonl(path)) == 1


class TestValidate:
    def test_valid_report_passes(self):
        validate_report(make_report().to_dict())

    def test_missing_required_field(self):
        data = make_report().to_dict()
        del data["instance"]
        with pytest.raises(ValueError, match="instance"):
            validate_report(data)

    def test_unknown_field_rejected(self):
        data = make_report().to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown fields"):
            validate_report(data)

    def test_bad_status_rejected(self):
        data = make_report().to_dict()
        data["status"] = "finished"
        with pytest.raises(ValueError, match="status"):
            validate_report(data)

    def test_wrong_schema_version_rejected(self):
        data = make_report().to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            validate_report(data)

    def test_bool_is_not_an_int(self):
        data = make_report().to_dict()
        data["value"] = True
        with pytest.raises(ValueError, match="value"):
            validate_report(data)

    def test_non_integer_counter_rejected(self):
        data = make_report(counters={"nodes": 1.5}).to_dict()
        with pytest.raises(ValueError, match="nodes"):
            validate_report(data)

    def test_span_without_name_rejected(self):
        data = make_report(spans=[{"duration_s": 0.1}]).to_dict()
        with pytest.raises(ValueError, match="name"):
            validate_report(data)

    def test_all_problems_reported_at_once(self):
        data = make_report().to_dict()
        del data["solver"]
        data["status"] = "nope"
        data["extra"] = 1
        with pytest.raises(ValueError) as excinfo:
            validate_report(data)
        message = str(excinfo.value)
        assert "solver" in message
        assert "nope" in message
        assert "extra" in message

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_report([1, 2, 3])

    def test_emitted_line_is_one_json_object(self):
        line = make_report().to_json()
        assert "\n" not in line
        validate_report(json.loads(line))
