"""Nested worker reports in the RunReport schema."""

import pytest

from repro import obs
from repro.obs.report import RunReport, validate_report


def _worker_dict(solver="ga", **overrides):
    with obs.instrument() as ins:
        report = RunReport.capture(
            ins, instance="x", solver=solver, measure="ghw",
            status="heuristic", upper_bound=3,
        )
    data = report.to_dict()
    data.update(overrides)
    return data


class TestWorkersField:
    def test_default_is_empty_list(self):
        with obs.instrument() as ins:
            report = RunReport.capture(
                ins, instance="x", solver="bb", measure="tw", status="optimal"
            )
        assert report.workers == []
        validate_report(report.to_dict())

    def test_valid_nested_reports_pass(self):
        with obs.instrument() as ins:
            report = RunReport.capture(
                ins,
                instance="x",
                solver="portfolio",
                measure="ghw",
                status="optimal",
                workers=[_worker_dict("ga"), _worker_dict("bb")],
            )
        data = report.to_dict()
        validate_report(data)
        restored = RunReport.from_dict(data)
        assert [w["solver"] for w in restored.workers] == ["ga", "bb"]

    def test_invalid_nested_report_named_by_index(self):
        data = _worker_dict(
            "portfolio", workers=[_worker_dict("ga"), {"solver": "bb"}]
        )
        with pytest.raises(ValueError, match=r"workers\[1\]"):
            validate_report(data)

    def test_wrong_type_rejected(self):
        data = _worker_dict("portfolio", workers="not-a-list")
        with pytest.raises(ValueError, match="workers"):
            validate_report(data)

    def test_nested_status_violation_surfaces(self):
        bad = _worker_dict("ga", status="winning")
        data = _worker_dict("portfolio", workers=[bad])
        with pytest.raises(ValueError, match="status"):
            validate_report(data)
