"""Span tracer: nesting, timing monotonicity, and the no-op path."""

from __future__ import annotations

from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


class FakeClock:
    """Deterministic clock advancing a fixed step per call."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestTracer:
    def test_single_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root", vertices=5) as span:
            pass
        assert [s.name for s in tracer.roots] == ["root"]
        assert span.attrs == {"vertices": 5}
        assert span.duration == 1.0

    def test_nesting_builds_a_tree(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        (outer,) = tracer.roots
        assert [child.name for child in outer.children] == ["first", "second"]
        assert not outer.children[0].children

    def test_child_durations_within_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (outer,) = tracer.roots
        (inner,) = outer.children
        assert inner.start >= outer.start
        assert inner.duration <= outer.duration

    def test_sequential_spans_are_monotone(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.roots
        assert b.start >= a.start + a.duration

    def test_walk_is_depth_first(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root"):
            with tracer.span("left"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("right"):
                pass
        names = [span.name for span in tracer.walk()]
        assert names == ["root", "left", "leaf", "right"]

    def test_total_sums_same_named_spans(self):
        tracer = Tracer(clock=FakeClock())
        for _ in range(3):
            with tracer.span("phase"):
                pass
        assert tracer.total("phase") == 3.0
        assert tracer.total("absent") == 0.0

    def test_tree_serialises_to_plain_dicts(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root", n=2):
            with tracer.span("child"):
                pass
        (root,) = tracer.tree()
        assert root["name"] == "root"
        assert root["attrs"] == {"n": 2}
        assert root["children"][0]["name"] == "child"
        assert isinstance(root["duration_s"], float)


class TestNullTracer:
    def test_span_is_shared_noop(self):
        tracer = NullTracer()
        first = tracer.span("a", x=1)
        second = tracer.span("b")
        assert first is second
        with first:
            pass
        assert tracer.tree() == []
        assert list(tracer.walk()) == []

    def test_module_singleton_disabled(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything"):
            pass
        assert NULL_TRACER.roots == []
