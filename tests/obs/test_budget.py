"""The shared Budget and the ambient instrument()/current() runtime."""

from __future__ import annotations

from repro import obs
from repro.obs.budget import Budget
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.trace import NULL_TRACER


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestBudget:
    def test_unlimited_never_exhausts(self):
        budget = Budget()
        budget.charge(10**9)
        assert not budget.exhausted()
        assert budget.exhausted_reason() is None
        assert budget.remaining_time() is None

    def test_op_limit_inclusive(self):
        budget = Budget(op_limit=3)
        budget.charge(2)
        assert not budget.exhausted()
        budget.charge()
        assert budget.exhausted()
        assert budget.exhausted_reason() == "ops"

    def test_time_limit_inclusive(self):
        clock = FakeClock()
        budget = Budget(time_limit=5.0, clock=clock)
        clock.now = 4.9
        assert not budget.exhausted()
        clock.now = 5.0
        assert budget.exhausted()
        assert budget.exhausted_reason() == "time"

    def test_elapsed_and_remaining(self):
        clock = FakeClock()
        budget = Budget(time_limit=10.0, clock=clock)
        clock.now = 4.0
        assert budget.elapsed() == 4.0
        assert budget.remaining_time() == 6.0
        clock.now = 50.0
        assert budget.remaining_time() == 0.0

    def test_ops_reported_before_time(self):
        clock = FakeClock()
        budget = Budget(time_limit=1.0, op_limit=1, clock=clock)
        budget.charge()
        clock.now = 2.0
        assert budget.exhausted_reason() == "ops"


class TestRuntime:
    def test_default_is_disabled(self):
        ins = obs.current()
        assert not ins.enabled
        assert ins.metrics.snapshot() == {}

    def test_instrument_activates_and_restores(self):
        before = obs.current()
        with obs.instrument() as ins:
            assert obs.current() is ins
            assert ins.enabled
            ins.metrics.counter("nodes").inc()
        assert obs.current() is before
        assert ins.metrics.snapshot() == {"nodes": 1}

    def test_nested_blocks_shadow(self):
        with obs.instrument() as outer:
            outer.metrics.counter("nodes").inc()
            with obs.instrument() as inner:
                obs.current().metrics.counter("nodes").inc(5)
            assert obs.current() is outer
            assert inner.metrics.snapshot() == {"nodes": 5}
        assert outer.metrics.snapshot() == {"nodes": 1}

    def test_half_disabled_pair(self):
        with obs.instrument(tracer=NULL_TRACER) as ins:
            assert ins.metrics.enabled
            assert not ins.tracer.enabled
            assert ins.enabled
        with obs.instrument(metrics=NULL_REGISTRY, tracer=NULL_TRACER) as ins:
            assert not ins.enabled
