"""Tests for the repro-decompose command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.hypergraphs.io import write_dimacs, write_hypergraph
from repro.instances.dimacs_like import queen_graph


class TestParser:
    def test_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mutually_exclusive_sources(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--instance", "a", "--file", "b"]
            )


class TestRuns:
    def test_treewidth_of_named_instance(self, capsys):
        code = main(["--instance", "grid4", "--measure", "tw"])
        assert code == 0
        out = capsys.readouterr().out
        assert "width=4" in out and "optimal" in out

    def test_ghw_of_named_instance(self, capsys):
        code = main(
            ["--instance", "adder_3", "--measure", "ghw", "--algorithm", "bb"]
        )
        assert code == 0
        assert "width=2" in capsys.readouterr().out

    def test_heuristic_upper_bound(self, capsys):
        code = main(
            ["--instance", "grid4", "--measure", "tw", "--algorithm", "ga"]
        )
        assert code == 0
        assert "tw <=" in capsys.readouterr().out

    def test_ghw_ga(self, capsys, example5, tmp_path):
        path = tmp_path / "ex5.hg"
        write_hypergraph(example5, path)
        code = main(
            ["--file", str(path), "--measure", "ghw", "--algorithm", "ga"]
        )
        assert code == 0
        assert "ghw <=" in capsys.readouterr().out

    def test_dimacs_file(self, capsys, tmp_path):
        path = tmp_path / "queen.col"
        write_dimacs(queen_graph(4), path)
        code = main(["--file", str(path), "--measure", "tw"])
        assert code == 0
        assert "optimal" in capsys.readouterr().out

    def test_unknown_instance_fails_cleanly(self, capsys):
        code = main(["--instance", "zzz_404", "--measure", "tw"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_ghw_on_graph_instance_fails_cleanly(self, capsys):
        code = main(["--instance", "grid3", "--measure", "ghw"])
        assert code == 2

    def test_node_limit_flag(self, capsys):
        code = main(
            [
                "--instance", "queen5_5", "--measure", "tw",
                "--node-limit", "3",
            ]
        )
        assert code == 0

    def test_hw_measure(self, capsys):
        code = main(["--instance", "adder_3", "--measure", "hw"])
        assert code == 0
        assert "hw = 2" in capsys.readouterr().out

    def test_hw_on_graph_fails_cleanly(self, capsys):
        code = main(["--instance", "grid3", "--measure", "hw"])
        assert code == 2

    def test_sa_and_tabu_algorithms(self, capsys):
        for algorithm in ("sa", "tabu"):
            code = main(
                [
                    "--instance", "grid4", "--measure", "tw",
                    "--algorithm", algorithm,
                ]
            )
            assert code == 0
            assert "tw <=" in capsys.readouterr().out

    def test_output_td_file(self, capsys, tmp_path):
        out = tmp_path / "grid.td"
        code = main(
            [
                "--instance", "grid3", "--measure", "tw",
                "--output", str(out),
            ]
        )
        assert code == 0
        assert out.read_text().startswith("c")
        from repro.decompositions.io import read_tree_decomposition

        decomposition = read_tree_decomposition(out)
        assert decomposition.width() == 3

    def test_output_ghd_file(self, capsys, tmp_path):
        out = tmp_path / "adder.ghd"
        code = main(
            [
                "--instance", "adder_3", "--measure", "ghw",
                "--algorithm", "bb", "--output", str(out),
            ]
        )
        assert code == 0
        from repro.decompositions.io import read_ghd

        ghd = read_ghd(out)
        assert ghd.width() == 2

    def test_output_hw_file(self, capsys, tmp_path):
        out = tmp_path / "adder_hw.ghd"
        code = main(
            [
                "--instance", "adder_3", "--measure", "hw",
                "--output", str(out),
            ]
        )
        assert code == 0
        from repro.decompositions.io import read_ghd

        assert read_ghd(out).width() == 2
