"""Tests for Bayesian networks, moralization and junction trees."""

import pytest

from repro.bayes.network import (
    BayesianNetwork,
    CycleError,
    chain_network,
    junction_tree,
    naive_bayes_network,
    sprinkler_network,
)
from repro.search.astar_tw import astar_treewidth


class TestStructure:
    def test_duplicate_variable(self):
        network = BayesianNetwork()
        network.add_variable("a", 2)
        with pytest.raises(ValueError):
            network.add_variable("a", 3)

    def test_zero_states(self):
        network = BayesianNetwork()
        with pytest.raises(ValueError):
            network.add_variable("a", 0)

    def test_edge_to_unknown(self):
        network = BayesianNetwork()
        network.add_variable("a", 2)
        with pytest.raises(KeyError):
            network.add_edge("a", "b")

    def test_self_loop(self):
        network = BayesianNetwork()
        network.add_variable("a", 2)
        with pytest.raises(CycleError):
            network.add_edge("a", "a")

    def test_cycle_rejected_and_rolled_back(self):
        network = chain_network(3)
        with pytest.raises(CycleError):
            network.add_edge("X2", "X0")
        # rollback: the bad edge is not kept
        assert "X2" not in network.parents("X0")

    def test_family_table_size(self):
        network = sprinkler_network()
        assert network.family_table_size("wet") == 8  # 2 * 2 * 2
        assert network.family_table_size("cloudy") == 2


class TestMoralization:
    def test_sprinkler_moral_graph(self):
        moral = sprinkler_network().moral_graph()
        # moralization marries sprinkler and rain
        assert moral.has_edge("sprinkler", "rain")
        assert moral.num_edges() == 5
        assert astar_treewidth(moral).value == 2

    def test_chain_moral_graph_is_path(self):
        moral = chain_network(5).moral_graph()
        assert moral.num_edges() == 4
        assert astar_treewidth(moral).value == 1

    def test_naive_bayes_moral_graph_is_star(self):
        moral = naive_bayes_network(6).moral_graph()
        assert moral.degree("class") == 6
        assert astar_treewidth(moral).value == 1


class TestJunctionTree:
    def test_chain_cost(self):
        network = chain_network(4, states=2)
        jt = junction_tree(network, ordering=[f"X{i}" for i in range(4)])
        assert jt.width() == 1
        # bags {X0,X1},{X1,X2},{X2,X3},{X3}: 4+4+4+2 = 14
        assert jt.total_table_size == 14

    def test_default_ga_ordering(self):
        network = sprinkler_network()
        jt = junction_tree(network, seed=0)
        assert jt.width() == 2
        jt.tree.validate(network.moral_graph())

    def test_heavy_variables_avoided(self):
        """A huge class variable should not end up in big bags."""
        network = naive_bayes_network(5, class_states=50)
        jt = junction_tree(network, seed=0)
        # star moral graph: bags are pairs {class, f_i}; the naive
        # "features first" ordering costs 5*150 + 50 = 800, and the GA
        # may shave the tail by eliminating the class before the last
        # feature (4*150 + 150 + 3 = 753). Either way: width 1, <= 800.
        assert jt.width() == 1
        assert jt.total_table_size <= 800

    def test_log_cost_consistent(self):
        import math

        network = chain_network(3)
        jt = junction_tree(network, ordering=["X0", "X1", "X2"])
        assert jt.log2_cost == pytest.approx(
            math.log2(jt.total_table_size)
        )
