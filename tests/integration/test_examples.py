"""Smoke-run every example script: documentation that cannot rot.

Each example is executed in a subprocess; it must exit 0 and print the
landmark line asserted here. Kept cheap — the examples themselves bound
their own workloads.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

LANDMARKS = {
    "quickstart.py": "verified against the CSP's constraints: OK",
    "map_coloring.py": "total 3-colourings (by exhaustive search): 18",
    "sat_structure.py": "bounded width = polynomial-time SAT",
    "csp_from_decomposition.py": "Figure 2.9 solution via the GHD",
    "bounds_anatomy.py": "certified treewidth = 18",
    "width_hierarchy.py": "integrality gap",
    "bayesian_inference_cost.py": "40-state variable",
    "custom_experiment.py": "BB-ghw certified",
    "telemetry_tour.py": "validated reports in runs.jsonl",
}


@pytest.mark.parametrize("script", sorted(LANDMARKS))
def test_example_runs_and_prints_landmark(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert LANDMARKS[script] in completed.stdout


def test_every_example_has_a_landmark():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(LANDMARKS), (
        "examples/ and the landmark table drifted apart"
    )
