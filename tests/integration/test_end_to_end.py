"""End-to-end integration tests: the full thesis pipeline.

Each test tells one complete story the thesis tells: model a problem as
a CSP, derive its constraint hypergraph, find a decomposition with one
of the thesis's algorithms, solve the CSP from that decomposition, and
check the answer against direct search.
"""

import pytest

from repro.core.api import (
    decompose,
    decompose_graph,
    generalized_hypertree_width,
    ghw_upper_bound,
    treewidth,
    treewidth_upper_bound,
)
from repro.csp.backtracking import backtracking_solve, count_solutions
from repro.csp.builders import (
    australia_map_coloring,
    graph_coloring_csp,
    n_queens_csp,
    random_binary_csp,
    sat_csp,
)
from repro.csp.solve import solve_with_ghd, solve_with_tree_decomposition
from repro.genetic.engine import GAParameters
from repro.genetic.ga_ghw import ga_ghw
from repro.instances.dimacs_like import grid_graph, mycielski_graph
from repro.instances.hypergraphs import adder, random_csp_hypergraph


class TestFullPipelineStories:
    def test_map_coloring_via_tree_decomposition(self):
        """Example 1 solved exactly as Section 2.4 describes."""
        csp = australia_map_coloring()
        hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
        decomposition = decompose_graph(
            hypergraph.primal_graph(), algorithm="astar"
        )
        assert decomposition.width() <= 3
        solution = solve_with_tree_decomposition(csp, decomposition)
        assert csp.is_solution(solution)

    def test_sat_via_ghd(self):
        """Example 2's SAT instance through the GHD pipeline."""
        csp = sat_csp([[-1, 2, 3], [1, -4], [-3, -5]])
        hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
        ghd = decompose(hypergraph, algorithm="bb")
        assert ghd.width() <= 2
        solution = solve_with_ghd(csp, ghd)
        assert csp.is_solution(solution)

    def test_queens_structure_and_solving(self):
        """n-queens: dense binary CSP; decomposition still solves it."""
        csp = n_queens_csp(5)
        hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
        ghd = decompose(hypergraph, algorithm="min-fill", cover="greedy")
        solution = solve_with_ghd(csp, ghd)
        assert csp.is_solution(solution)
        assert count_solutions(csp, limit=1) == 1

    @pytest.mark.parametrize("seed", range(3))
    def test_random_csp_all_three_solvers_agree(self, seed):
        csp = random_binary_csp(
            7, 3, density=0.45, tightness=0.45, seed=seed
        )
        hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
        direct = backtracking_solve(csp)
        td = decompose_graph(hypergraph.primal_graph(), algorithm="min-fill")
        via_td = solve_with_tree_decomposition(csp, td)
        ghd = decompose(hypergraph, algorithm="ga", cover="greedy")
        via_ghd = solve_with_ghd(csp, ghd)
        assert (direct is None) == (via_td is None) == (via_ghd is None)

    def test_unsatisfiable_detected_through_every_pipeline(self):
        csp = graph_coloring_csp(mycielski_graph(3), colors=3)
        # myciel3 has chromatic number 4: 3-colouring is unsatisfiable
        hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
        td = decompose_graph(hypergraph.primal_graph(), algorithm="min-fill")
        ghd = decompose(hypergraph, algorithm="min-fill", cover="greedy")
        assert backtracking_solve(csp) is None
        assert solve_with_tree_decomposition(csp, td) is None
        assert solve_with_ghd(csp, ghd) is None


class TestWidthHierarchy:
    """ghw <= tw + 1-ish relationships the thesis states."""

    @pytest.mark.parametrize("seed", range(4))
    def test_ghw_never_exceeds_treewidth_plus_one_bags(self, seed):
        hypergraph = random_csp_hypergraph(7, 6, arity=3, seed=seed)
        tw = treewidth(hypergraph).value
        ghw = generalized_hypertree_width(hypergraph).value
        # covering a (tw+1)-vertex bag takes at most tw+1 edges
        assert ghw <= tw + 1

    def test_heuristics_bracket_exact_values(self):
        hypergraph = adder(4)
        exact = generalized_hypertree_width(hypergraph).value
        ga = ghw_upper_bound(
            hypergraph,
            "ga",
            parameters=GAParameters(population_size=15, max_iterations=20),
        )
        assert exact <= ga

    def test_tw_heuristic_vs_exact(self):
        graph = grid_graph(3)
        exact = treewidth(graph).value
        heuristic = treewidth_upper_bound(graph, "min-fill")
        assert exact <= heuristic


class TestAnytimeWorkflow:
    def test_budgeted_run_then_full_run(self):
        """The workflow Table 5.1 implies: try with a budget, read off
        bounds, re-run with more budget for the certificate."""
        graph = grid_graph(4)
        quick = treewidth(graph, node_limit=3)
        assert quick.lower_bound <= 4 <= quick.upper_bound
        full = treewidth(graph)
        assert full.optimal and full.value == 4
        assert quick.lower_bound <= full.value <= quick.upper_bound

    def test_ga_warm_start_quality(self, example5):
        """GA quickly matches what BB certifies on a small instance."""
        certified = generalized_hypertree_width(example5).value
        ga = ga_ghw(
            example5,
            parameters=GAParameters(population_size=20, max_iterations=20),
            seed=0,
        )
        assert ga.best_fitness == certified
