"""Registry-wide smoke sweep: every named instance must work end to end.

One cheap operation per instance family keeps the whole registry honest:
graphs get heuristic bounds (lb <= ub always), small hypergraphs get a
validated greedy GHD, and simulated instances must regenerate
deterministically.
"""

import pytest

from repro.bounds.lower import treewidth_lower_bound
from repro.bounds.upper import upper_bound_ordering
from repro.core.api import decompose, validate_hypergraph
from repro.instances.registry import (
    SIMULATED_CIRCUITS,
    SIMULATED_DIMACS,
    graph_instance,
    hypergraph_instance,
)

GRAPH_NAMES = (
    ["queen4_4", "queen5_5", "queen6_6", "myciel3", "myciel4", "myciel5",
     "grid3", "grid5", "grid7", "DSJC125.1"]
    + list(SIMULATED_DIMACS)[:6]
)

HYPERGRAPH_NAMES = [
    "adder_4", "adder_20", "bridge_6", "clique_9",
    "grid2d_5", "grid3d_2", "b06", "b08",
]


class TestGraphSweep:
    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_bounds_are_consistent(self, name):
        graph = graph_instance(name)
        assert graph.num_vertices() > 0
        lower = treewidth_lower_bound(graph)
        upper, ordering = upper_bound_ordering(graph, "min-degree")
        assert 0 <= lower <= upper <= graph.num_vertices() - 1
        assert sorted(ordering, key=repr) == sorted(
            graph.vertices(), key=repr
        )

    @pytest.mark.parametrize("name", GRAPH_NAMES[:6])
    def test_regeneration_is_deterministic(self, name):
        assert graph_instance(name) == graph_instance(name)


class TestHypergraphSweep:
    @pytest.mark.parametrize("name", HYPERGRAPH_NAMES)
    def test_instances_are_well_formed(self, name):
        hypergraph = hypergraph_instance(name)
        validate_hypergraph(hypergraph)
        assert hypergraph.is_connected()

    @pytest.mark.parametrize(
        "name", ["adder_4", "bridge_6", "clique_9", "grid2d_5", "b06"]
    )
    def test_greedy_ghd_validates(self, name):
        hypergraph = hypergraph_instance(name)
        ghd = decompose(hypergraph, algorithm="min-fill", cover="greedy")
        ghd.validate(hypergraph)
        assert ghd.is_complete(hypergraph)
        assert ghd.width() >= 1

    @pytest.mark.parametrize("name", list(SIMULATED_CIRCUITS))
    def test_circuits_regenerate_identically(self, name):
        assert hypergraph_instance(name) == hypergraph_instance(name)
