"""End-to-end instrumentation: solvers, runner telemetry, CLI flags.

The unit suites in ``tests/obs`` prove the registry/tracer/report pieces
in isolation; this module proves the *wiring* — that real solver runs
under ``obs.instrument()`` emit the documented series, that the
experiment runner's telemetry file validates, and that the CLI surfaces
the same data.
"""

from __future__ import annotations

from repro import obs
from repro.cli import main
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.instances.dimacs_like import queen_graph
from repro.instances.hypergraphs import grid2d
from repro.obs.report import read_jsonl, validate_report
from repro.search.bb_ghw import branch_and_bound_ghw
from repro.search.bb_tw import branch_and_bound_treewidth
from repro.search.components import treewidth_by_components


class TestSolverCounters:
    def test_bb_ghw_emits_prune_and_cache_counters(self):
        """On the 3x3 grid both PR1 and PR2 fire, and the exact set-cover
        cache sees both hits and misses (cold cache: the cover cache is
        process-wide, so earlier tests may have warmed this family)."""
        from repro.kernels.cache import cover_cache

        cover_cache().clear()
        with obs.instrument() as ins:
            result = branch_and_bound_ghw(grid2d(3, 3))
        snapshot = ins.metrics.snapshot()
        assert result.optimal and result.value == 2
        assert snapshot['nodes{solver="bb-ghw"}'] > 0
        assert snapshot['prunes{rule="pr1",solver="bb-ghw"}'] > 0
        assert snapshot['prunes{rule="pr2",solver="bb-ghw"}'] > 0
        assert snapshot['setcover_cache{event="hit"}'] > 0
        assert snapshot['setcover_cache{event="miss"}'] > 0
        assert snapshot['setcover{algo="greedy",event="call"}'] > 0

    def test_result_carries_metrics_snapshot(self):
        with obs.instrument():
            result = branch_and_bound_ghw(grid2d(3, 3))
        assert result.metrics['nodes{solver="bb-ghw"}'] == result.nodes_expanded

    def test_uninstrumented_run_carries_no_metrics(self):
        result = branch_and_bound_ghw(grid2d(3, 3))
        assert result.metrics == {}

    def test_span_tree_has_solver_phases(self):
        with obs.instrument() as ins:
            branch_and_bound_ghw(grid2d(3, 3))
        (root,) = ins.tracer.tree()
        assert root["name"] == "bb-ghw"
        child_names = [child["name"] for child in root.get("children", [])]
        assert "root_bounds" in child_names
        assert "search" in child_names

    def test_bb_tw_counts_every_expansion(self):
        with obs.instrument() as ins:
            result = branch_and_bound_treewidth(grid2d(3, 3).primal_graph())
        assert (
            ins.metrics.snapshot()['nodes{solver="bb-tw"}']
            == result.nodes_expanded
        )


class TestComponentBudget:
    @staticmethod
    def two_component_graph() -> Graph:
        """A queen4 board plus a disjoint triangle: two components, the
        first hard enough that one search node never finishes it."""
        graph = queen_graph(4)
        graph.add_edge("x", "y")
        graph.add_edge("y", "z")
        graph.add_edge("x", "z")
        return graph

    def test_tiny_node_budget_sets_exhausted_flag(self):
        graph = self.two_component_graph()
        with obs.instrument() as ins:
            result = treewidth_by_components(
                graph, branch_and_bound_treewidth, node_limit=1
            )
        assert result.budget_exhausted
        assert (
            ins.metrics.snapshot()['budget_exhausted{scope="components"}'] >= 1
        )
        assert not result.optimal
        assert result.upper_bound >= result.lower_bound

    def test_ample_budget_leaves_flag_unset(self):
        graph = self.two_component_graph()
        result = treewidth_by_components(
            graph, branch_and_bound_treewidth, node_limit=10**6
        )
        assert result.optimal
        assert not result.budget_exhausted


class TestRunnerTelemetry:
    def test_telemetry_out_writes_valid_jsonl(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        spec = ExperimentSpec(
            instances=["adder_3"],
            measure="ghw",
            algorithms=["bb", "sa"],
            time_limit=5.0,
        )
        table = run_experiment(spec, telemetry_out=str(path))
        reports = read_jsonl(path)
        assert [r.solver for r in reports] == ["bb", "sa"]
        assert reports == table.reports
        for report in reports:
            validate_report(report.to_dict())
        exact, heuristic = reports
        assert exact.status == "optimal" and exact.value == 2
        assert heuristic.status == "heuristic"
        assert heuristic.upper_bound is not None

    def test_collect_reports_without_file(self):
        spec = ExperimentSpec(
            instances=["adder_3"], measure="ghw", algorithms=["bb"]
        )
        table = run_experiment(spec, collect_reports=True)
        (report,) = table.reports
        assert report.counters  # the bb run recorded real series

    def test_no_telemetry_by_default(self):
        spec = ExperimentSpec(
            instances=["adder_3"], measure="ghw", algorithms=["bb"]
        )
        assert run_experiment(spec).reports == []


class TestCliTelemetry:
    def test_metrics_flag_prints_series_to_stderr(self, capsys):
        code = main(
            ["--instance", "adder_3", "--measure", "ghw",
             "--algorithm", "bb", "--metrics"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "width=2" in captured.out
        assert 'nodes{solver="bb-ghw"}' in captured.err

    def test_trace_flag_prints_span_tree_to_stderr(self, capsys):
        code = main(
            ["--instance", "adder_3", "--measure", "ghw",
             "--algorithm", "bb", "--trace"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "bb-ghw" in captured.err
        assert "root_bounds" in captured.err

    def test_telemetry_out_appends_valid_report(self, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        for algorithm in ("bb", "sa"):
            code = main(
                ["--instance", "adder_3", "--measure", "ghw",
                 "--algorithm", algorithm, "--telemetry-out", str(path)]
            )
            assert code == 0
        reports = read_jsonl(path)
        assert [r.solver for r in reports] == ["bb", "sa"]
        for report in reports:
            validate_report(report.to_dict())
        assert reports[0].meta["seed"] == 0
        assert reports[0].meta["backend"] == "python"
        assert reports[0].meta["jobs"] == 1
        assert "hits" in reports[0].meta["cover_cache"]

    def test_unwritable_telemetry_path_is_a_clean_error(self, tmp_path, capsys):
        code = main(
            ["--instance", "adder_3", "--measure", "ghw",
             "--algorithm", "bb", "--telemetry-out", str(tmp_path)]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot write telemetry" in captured.err

    def test_plain_run_prints_nothing_extra(self, capsys):
        code = main(
            ["--instance", "adder_3", "--measure", "ghw", "--algorithm", "bb"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.err == ""
