"""Failure-injection and robustness tests.

A production library must fail loudly and recover cleanly: these tests
drive the system through misuse (mismatched decompositions, corrupted
structures, budget exhaustion at awkward moments) and assert the errors
are the documented ones, with no state corruption afterwards.
"""

import pytest

from repro.core.api import decompose, treewidth, validate_hypergraph
from repro.csp.builders import example_5_csp
from repro.csp.solve import solve_with_ghd
from repro.decompositions.ghd import GeneralizedHypertreeDecomposition
from repro.decompositions.tree_decomposition import DecompositionError
from repro.hypergraphs.hypergraph import Hypergraph
from repro.instances.dimacs_like import queen_graph
from repro.instances.hypergraphs import adder
from repro.search.astar_tw import astar_treewidth
from repro.search.bb_ghw import branch_and_bound_ghw


class TestMismatchedInputs:
    def test_ghd_of_wrong_hypergraph_rejected(self, example5):
        other = adder(2)
        ghd = decompose(other, algorithm="min-fill", cover="greedy")
        with pytest.raises(DecompositionError):
            ghd.validate(example5)

    def test_solving_with_foreign_ghd_rejected(self):
        csp = example_5_csp()
        foreign = decompose(adder(2), algorithm="min-fill", cover="greedy")
        with pytest.raises(DecompositionError):
            solve_with_ghd(csp, foreign)

    def test_ghd_with_stale_lambda_rejected(self, example5):
        ghd = decompose(example5)
        some_node = ghd.nodes()[0]
        ghd.covers[some_node] = {"no_such_edge"}
        with pytest.raises(DecompositionError):
            ghd.validate(example5)

    def test_empty_ghd_is_not_valid_for_nonempty_hypergraph(self, example5):
        with pytest.raises(DecompositionError):
            GeneralizedHypertreeDecomposition().validate(example5)


class TestBudgetEdges:
    def test_zero_node_budget_still_sound(self):
        graph = queen_graph(5)
        result = astar_treewidth(graph, node_limit=0)
        assert result.lower_bound <= 18 <= result.upper_bound

    def test_one_node_budget(self):
        result = branch_and_bound_ghw(adder(6), node_limit=1)
        assert result.lower_bound <= 2 <= result.upper_bound

    def test_repeated_budgeted_calls_are_independent(self):
        """No cross-call state: identical budgets give identical answers."""
        graph = queen_graph(4)
        first = treewidth(graph, node_limit=10, seed=5)
        second = treewidth(graph, node_limit=10, seed=5)
        assert (first.lower_bound, first.upper_bound) == (
            second.lower_bound,
            second.upper_bound,
        )


class TestValidation:
    def test_isolated_vertex_names_reported(self):
        bad = Hypergraph({"e": {1}}, vertices=["ghost"])
        with pytest.raises(ValueError, match="ghost"):
            validate_hypergraph(bad)

    def test_validate_accepts_clean_instance(self, example5):
        validate_hypergraph(example5)  # no raise

    def test_bad_algorithm_names_listed(self, example5):
        from repro.core.api import generalized_hypertree_width

        with pytest.raises(ValueError, match="unknown ghw algorithm"):
            generalized_hypertree_width(example5, algorithm="dfs")


class TestStateIsolationAfterErrors:
    def test_search_usable_after_validation_error(self, example5):
        bad = Hypergraph({"e": {1, 2}}, vertices=[99])
        with pytest.raises(ValueError):
            validate_hypergraph(bad)
        # the failed call must not poison subsequent good calls
        assert branch_and_bound_ghw(example5).value == 2

    def test_decompose_after_failed_decompose(self):
        with pytest.raises(ValueError):
            decompose(Hypergraph())  # empty: rejected
        ghd = decompose(adder(2))
        assert ghd.width() == 2
