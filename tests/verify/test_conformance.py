"""The conformance matrix: cells certify and cross-cell relations hold
— and violated relations are actually detected."""

from repro.verify.conformance import (
    CellResult,
    CellSpec,
    _cross_check,
    _parity_check,
    check_hypergraph,
    default_matrix,
    run_cell,
    run_conformance,
    run_portfolio_cells,
)
from repro.verify.generators import generate_instance


def _cell_result(
    name,
    measure="tw",
    kind="bb",
    status="optimal",
    lower=None,
    upper=None,
    witness=None,
    certified=True,
    backend="python",
    jobs=1,
):
    return CellResult(
        cell=CellSpec(
            name=name, measure=measure, kind=kind, backend=backend, jobs=jobs
        ),
        status=status,
        lower_bound=lower,
        upper_bound=upper,
        witness_width=witness if witness is not None else upper,
        certified=certified,
    )


class TestDefaultMatrix:
    def test_covers_families_backends_and_jobs(self):
        matrix = default_matrix()
        kinds = {(c.measure, c.kind) for c in matrix}
        assert ("tw", "bb") in kinds and ("ghw", "astar") in kinds
        assert ("ghw", "saiga") in kinds and ("tw", "saiga") not in kinds
        assert any(c.backend == "bitset" for c in matrix)
        assert any(c.jobs > 1 for c in matrix)

    def test_tw_cells_all_strict(self):
        assert all(
            c.strict for c in default_matrix() if c.measure == "tw"
        )

    def test_ghw_strictness_tracks_evaluator(self):
        ghw = [c for c in default_matrix() if c.measure == "ghw"]
        assert all(c.strict == (c.kind in ("bb", "astar")) for c in ghw)


class TestRunCell:
    def test_exact_cell_certifies(self):
        instance = generate_instance(0)
        result = run_cell(
            CellSpec(name="bb-tw", measure="tw", kind="bb", strict=True),
            instance,
        )
        assert result.status == "optimal"
        assert result.certified
        assert result.witness_width == result.upper_bound

    def test_unknown_kind_is_error_not_crash(self):
        instance = generate_instance(0)
        result = run_cell(
            CellSpec(name="bogus", measure="tw", kind="bogus"), instance
        )
        assert result.status == "error"
        assert not result.certified


class TestCrossChecks:
    def test_clean_results_no_divergence(self):
        instance = generate_instance(0)
        results = [
            _cell_result("bb-tw", upper=3, lower=3),
            _cell_result("ga-tw", kind="ga", status="heuristic", upper=3),
        ]
        assert _cross_check(instance, results, "tw") == []

    def test_uncertified_cell_flagged(self):
        instance = generate_instance(0)
        results = [
            _cell_result(
                "ga-tw", kind="ga", status="heuristic", upper=3,
                certified=False,
            )
        ]
        kinds = [d.kind for d in _cross_check(instance, results, "tw")]
        assert kinds == ["uncertified"]

    def test_exact_disagreement_flagged(self):
        instance = generate_instance(0)
        results = [
            _cell_result("bb-tw", upper=3),
            _cell_result("astar-tw", kind="astar", upper=4),
        ]
        kinds = [d.kind for d in _cross_check(instance, results, "tw")]
        assert "exact-disagreement" in kinds

    def test_certified_width_below_proven_optimum_flagged(self):
        instance = generate_instance(0)
        results = [
            _cell_result("bb-tw", upper=4, lower=4),
            _cell_result(
                "ga-tw", kind="ga", status="heuristic", upper=2, witness=2
            ),
        ]
        kinds = [d.kind for d in _cross_check(instance, results, "tw")]
        assert "impossible-width" in kinds

    def test_lower_bound_crossing_certified_upper_flagged(self):
        instance = generate_instance(0)
        results = [
            _cell_result(
                "bb-tw", status="interrupted", lower=5, upper=None,
                witness=None,
            ),
            _cell_result(
                "ga-tw", kind="ga", status="heuristic", upper=3, witness=3
            ),
        ]
        kinds = [d.kind for d in _cross_check(instance, results, "tw")]
        assert "bound-crossing" in kinds

    def test_backend_parity_violation_flagged(self):
        instance = generate_instance(0)
        results = [
            _cell_result("ga-python", kind="ga", status="heuristic", upper=3),
            _cell_result(
                "ga-bitset", kind="ga", status="heuristic", upper=4,
                backend="bitset",
            ),
        ]
        divergences = _parity_check(instance, results, seed=0)
        assert [d.kind for d in divergences] == ["parity"]

    def test_parity_skips_ghw(self):
        # ghw fitness is randomised-greedy on the python backend, so
        # backend disagreement there is not a bug.
        instance = generate_instance(0)
        results = [
            _cell_result(
                "ga-python", measure="ghw", kind="ga", status="heuristic",
                upper=2,
            ),
            _cell_result(
                "ga-bitset", measure="ghw", kind="ga", status="heuristic",
                upper=3, backend="bitset",
            ),
        ]
        assert _parity_check(instance, results, seed=0) == []


class TestEndToEnd:
    def test_check_hypergraph_clean(self):
        verdict = check_hypergraph(generate_instance(1), portfolio=False)
        assert verdict.ok
        assert all(cell.certified for cell in verdict.cells)

    def test_portfolio_cells_clean(self):
        instance = generate_instance(2)
        cells, divergences = run_portfolio_cells(
            instance, "ghw", seed=2, time_limit=5.0
        )
        assert divergences == []
        names = [cell.cell.name for cell in cells]
        assert names == [
            "portfolio-ghw", "portfolio-killed-ghw", "portfolio-resumed-ghw"
        ]
        assert cells[0].certified and cells[2].certified

    def test_run_conformance_report(self):
        seen = []
        report = run_conformance(
            seeds=2, portfolio=False, progress=seen.append
        )
        assert report.ok
        assert len(report.verdicts) == 2
        assert len(seen) == 2
        assert report.cells_certified == report.cells_run
        assert "0 divergences" in report.summary()
        payload = report.to_dict()
        assert payload["ok"] and payload["instances"] == 2
