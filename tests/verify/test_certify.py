"""Witness certification: claims are only as good as their witnesses."""

from repro.hypergraphs.graph import path_graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.verify.certify import certify_ghw_witness, certify_tw_witness

TRIANGLE = Hypergraph({"ab": {"a", "b"}, "bc": {"b", "c"}, "ca": {"c", "a"}})


class TestTreewidthWitness:
    def test_exact_claim_certifies(self):
        certification = certify_tw_witness(path_graph(4), [0, 1, 2, 3], 1)
        assert certification.ok
        assert bool(certification)
        assert certification.witness_width == 1

    def test_strict_rejects_overclaim(self):
        # The solver said 2 but its own ordering achieves 1: with
        # deterministic tw evaluators that means a reporting bug.
        certification = certify_tw_witness(path_graph(4), [0, 1, 2, 3], 2)
        assert not certification.ok
        assert "must agree exactly" in certification.reason

    def test_lenient_accepts_better_witness(self):
        certification = certify_tw_witness(
            path_graph(4), [0, 1, 2, 3], 2, strict=False
        )
        assert certification.ok

    def test_underclaim_always_rejected(self):
        certification = certify_tw_witness(
            path_graph(4), [0, 1, 2, 3], 0, strict=False
        )
        assert not certification.ok
        assert "worse than the claimed" in certification.reason

    def test_missing_ordering_rejected(self):
        assert not certify_tw_witness(path_graph(4), [], 1).ok

    def test_incomplete_ordering_rejected(self):
        certification = certify_tw_witness(path_graph(4), [0, 1], 1)
        assert not certification.ok


class TestGhwWitness:
    def test_exact_claim_certifies_strict(self):
        certification = certify_ghw_witness(
            TRIANGLE, ["a", "b", "c"], 2, strict=True
        )
        assert certification.ok
        assert certification.witness_width == 2

    def test_heuristic_overclaim_allowed_lenient(self):
        # Python-backend heuristics score orderings with randomised
        # greedy covers, so a claim above the exact-cover width of the
        # same ordering is legitimate.
        assert certify_ghw_witness(TRIANGLE, ["a", "b", "c"], 3).ok
        assert not certify_ghw_witness(
            TRIANGLE, ["a", "b", "c"], 3, strict=True
        ).ok

    def test_underclaim_rejected(self):
        certification = certify_ghw_witness(TRIANGLE, ["a", "b", "c"], 1)
        assert not certification.ok
        assert "worse than the claimed" in certification.reason

    def test_acyclic_width_one(self):
        chain = Hypergraph({"e1": {0, 1, 2}, "e2": {2, 3}})
        certification = certify_ghw_witness(
            chain, [0, 1, 2, 3], 1, strict=True
        )
        assert certification.ok
        assert certification.witness_width == 1

    def test_unknown_vertex_in_ordering_rejected(self):
        assert not certify_ghw_witness(TRIANGLE, ["a", "b", "zzz"], 2).ok
