"""Delta-debugging shrinker: minimal, predicate-preserving, emittable."""

import pytest

from repro.hypergraphs.hypergraph import Hypergraph
from repro.verify.conformance import Divergence
from repro.verify.shrink import (
    shrink_hypergraph,
    subhypergraph,
    write_regression,
)


def big_instance() -> Hypergraph:
    edges = {f"noise{i}": {10 * i + 1, 10 * i + 2, 10 * i + 3} for i in range(6)}
    edges["bad"] = {0, 1, 2, 3}
    edges["link"] = {3, 11}
    return Hypergraph(edges)


class TestShrink:
    def test_minimises_to_the_interesting_core(self):
        # Interesting = "some hyperedge still contains both 0 and 1".
        shrunk = shrink_hypergraph(
            big_instance(),
            lambda h: any(edge >= {0, 1} for edge in h.edge_sets()),
        )
        assert shrunk.num_edges() == 1
        assert shrunk.vertices() == {0, 1}

    def test_result_always_satisfies_predicate(self):
        predicate = lambda h: "bad" in h.edges() and h.num_vertices() >= 3
        shrunk = shrink_hypergraph(big_instance(), predicate)
        assert predicate(shrunk)
        assert shrunk.num_vertices() == 3

    def test_false_on_input_rejected(self):
        with pytest.raises(ValueError, match="false on the unshrunk"):
            shrink_hypergraph(big_instance(), lambda h: False)

    def test_crashing_predicate_treated_as_uninteresting(self):
        def predicate(h: Hypergraph) -> bool:
            if h.num_edges() < 3:
                raise RuntimeError("degenerate candidate")
            return True

        shrunk = shrink_hypergraph(big_instance(), predicate)
        assert shrunk.num_edges() >= 3

    def test_budget_caps_evaluations(self):
        calls = []

        def predicate(h: Hypergraph) -> bool:
            calls.append(1)
            return any(edge >= {0, 1} for edge in h.edge_sets())

        shrink_hypergraph(big_instance(), predicate, max_checks=5)
        assert len(calls) <= 5

    def test_subhypergraph_drops_uncovered_vertices(self):
        sub = subhypergraph(big_instance(), ["bad"])
        assert sub.vertices() == {0, 1, 2, 3}
        assert sub.edge_names() == ["bad"]


class TestWriteRegression:
    def test_emitted_file_is_a_passing_pytest(self, tmp_path):
        divergence = Divergence(
            instance="verify-acyclic-2",
            family="acyclic",
            seed=2,
            measure="ghw",
            kind="uncertified",
            cells=["ga-python-ghw"],
            detail="example divergence",
        )
        hypergraph = Hypergraph({"e0": {0, 1}, "e1": {1, 2}})
        path = write_regression(hypergraph, divergence, tmp_path)
        assert path.name == "test_shrunk_uncertified_acyclic_2.py"
        source = path.read_text()
        assert "check_hypergraph" in source
        namespace: dict = {}
        exec(compile(source, str(path), "exec"), namespace)
        assert namespace["HYPERGRAPH"] == hypergraph
        namespace["test_shrunk_uncertified_acyclic_2"]()

    def test_resume_divergences_keep_portfolio_cells(self, tmp_path):
        divergence = Divergence(
            instance="i", family="primal", seed=0, measure="tw",
            kind="resume-regression", cells=["portfolio-resumed-tw"],
        )
        path = write_regression(
            Hypergraph({"e": {0, 1}}), divergence, tmp_path
        )
        assert "portfolio=True" in path.read_text()
