"""The ``repro-decompose verify`` subcommand."""

import json

from repro.cli import main
from repro.verify.cli import main_verify


class TestVerifyCli:
    def test_clean_sweep_exits_zero(self, capsys):
        code = main_verify(
            ["--seeds", "2", "--no-portfolio", "--measures", "tw"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verify-primal-0" in out
        assert "0 divergences" in out

    def test_quiet_only_prints_summary(self, capsys):
        code = main_verify(
            ["--seeds", "1", "--quiet", "--no-portfolio", "--measures", "tw"]
        )
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        assert out[0].startswith("conformance:")

    def test_json_report_written(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main_verify(
            [
                "--seeds", "1", "--quiet", "--no-portfolio",
                "--measures", "tw", "--json-out", str(report_path),
            ]
        )
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["instances"] == 1
        capsys.readouterr()

    def test_bad_family_rejected(self, capsys):
        assert main_verify(["--families", "nope"]) == 2
        assert "unknown families" in capsys.readouterr().err

    def test_bad_measure_rejected(self, capsys):
        assert main_verify(["--measures", "hw"]) == 2
        assert "unknown measures" in capsys.readouterr().err

    def test_bad_seeds_rejected(self, capsys):
        assert main_verify(["--seeds", "0"]) == 2
        assert "--seeds" in capsys.readouterr().err

    def test_dispatch_from_main(self, capsys):
        code = main(
            [
                "verify", "--seeds", "1", "--quiet", "--no-portfolio",
                "--measures", "tw",
            ]
        )
        assert code == 0
        capsys.readouterr()
