"""Seeded instance generators: deterministic, covered, well-formed."""

from repro.search.bb_ghw import branch_and_bound_ghw
from repro.verify.generators import (
    FAMILIES,
    generate_instance,
    random_acyclic_hypergraph,
)


class TestGenerateInstance:
    def test_same_seed_same_instance(self):
        for seed in range(8):
            assert (
                generate_instance(seed).hypergraph
                == generate_instance(seed).hypergraph
            )

    def test_families_cycle_with_seed(self):
        names = {generate_instance(seed).family for seed in range(len(FAMILIES))}
        assert names == set(FAMILIES)

    def test_single_family_restriction(self):
        instance = generate_instance(7, families=("acyclic",))
        assert instance.family == "acyclic"
        assert instance.name == "verify-acyclic-7"

    def test_unknown_family_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="unknown families"):
            generate_instance(0, families=("nope",))

    def test_every_vertex_covered(self):
        # ghw is undefined for edge-less vertices, so no generator may
        # emit one.
        for seed in range(15):
            hypergraph = generate_instance(seed).hypergraph
            covered = set()
            for edge in hypergraph.edge_sets():
                covered |= edge
            assert covered == hypergraph.vertices()

    def test_primal_graph_property(self):
        instance = generate_instance(0)
        assert instance.graph.vertices() == instance.hypergraph.vertices()


class TestAcyclicFamily:
    def test_acyclic_instances_have_ghw_one(self):
        # Join-tree growth makes the family alpha-acyclic, and acyclic
        # hypergraphs have ghw exactly 1 — a sharp oracle for the
        # conformance matrix.
        for seed in (0, 3, 9):
            hypergraph = random_acyclic_hypergraph(seed)
            result = branch_and_bound_ghw(hypergraph)
            assert result.optimal
            assert result.value == 1
