"""Tests for A*-tw (Chapter 5)."""

import random
from itertools import permutations

import pytest

from repro.decompositions.elimination import ordering_width
from repro.hypergraphs.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
)
from repro.instances.dimacs_like import (
    grid_graph,
    mycielski_graph,
    queen_graph,
    random_gnp,
)
from repro.search.astar_tw import astar_treewidth


class TestKnownWidths:
    def test_trivial_graphs(self):
        assert astar_treewidth(Graph(vertices=[1])).value == 0
        assert astar_treewidth(path_graph(2)).value == 1

    def test_path(self):
        assert astar_treewidth(path_graph(8)).value == 1

    def test_cycle(self):
        assert astar_treewidth(cycle_graph(9)).value == 2

    def test_complete(self):
        assert astar_treewidth(complete_graph(6)).value == 5

    def test_tree(self):
        graph = Graph(edges=[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)])
        assert astar_treewidth(graph).value == 1

    @pytest.mark.parametrize("n,expected", [(2, 2), (3, 3), (4, 4), (5, 5)])
    def test_grids_table_5_2(self, n, expected):
        """Table 5.2: the n x n grid has treewidth n."""
        result = astar_treewidth(grid_graph(n))
        assert result.optimal
        assert result.value == expected

    def test_queen5_table_5_1(self):
        """Table 5.1: queen5_5 treewidth = 18."""
        result = astar_treewidth(queen_graph(5))
        assert result.value == 18

    def test_myciel3_table_5_1(self):
        """Table 5.1: myciel3 treewidth = 5."""
        assert astar_treewidth(mycielski_graph(3)).value == 5


class TestOptimalityAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 7)
        graph = random_gnp(n, rng.uniform(0.25, 0.8), seed=seed + 100)
        brute = min(
            ordering_width(graph, list(perm))
            for perm in permutations(sorted(graph.vertices()))
        )
        result = astar_treewidth(graph)
        assert result.optimal
        assert result.value == brute

    @pytest.mark.parametrize("use_pr2", [True, False])
    @pytest.mark.parametrize("use_reductions", [True, False])
    def test_feature_flags_do_not_change_answer(
        self, use_pr2, use_reductions
    ):
        graph = random_gnp(8, 0.45, seed=17)
        baseline = astar_treewidth(
            graph, use_pr2=False, use_reductions=False
        ).value
        result = astar_treewidth(
            graph, use_pr2=use_pr2, use_reductions=use_reductions
        )
        assert result.value == baseline


class TestReturnedOrdering:
    def test_ordering_achieves_value(self):
        graph = random_gnp(9, 0.4, seed=3)
        result = astar_treewidth(graph)
        assert ordering_width(graph, result.ordering) == result.value

    def test_ordering_is_permutation(self):
        graph = queen_graph(4)
        result = astar_treewidth(graph)
        assert sorted(result.ordering, key=repr) == sorted(
            graph.vertices(), key=repr
        )


class TestAnytimeBehaviour:
    def test_node_limit_yields_bounds(self):
        graph = queen_graph(5)
        result = astar_treewidth(graph, node_limit=5)
        if not result.optimal:
            assert result.lower_bound <= 18 <= result.upper_bound
        else:
            assert result.value == 18

    def test_interrupted_lower_bound_sound(self):
        graph = grid_graph(5)
        result = astar_treewidth(graph, node_limit=10)
        assert result.lower_bound <= 5
        assert result.upper_bound >= 5

    def test_zero_time_limit(self):
        graph = queen_graph(4)
        result = astar_treewidth(graph, time_limit=0.0)
        assert result.lower_bound <= result.upper_bound

    def test_pruning_reduces_nodes(self):
        graph = queen_graph(4)
        with_pruning = astar_treewidth(graph)
        without = astar_treewidth(
            graph, use_pr2=False, use_reductions=False
        )
        assert with_pruning.value == without.value
        assert with_pruning.nodes_expanded <= without.nodes_expanded
