"""Tests for search infrastructure (budgets and results)."""

import pytest

from repro.search.common import (
    SearchBudget,
    SearchResult,
    certified,
    interrupted,
)


class TestBudget:
    def test_node_limit(self):
        budget = SearchBudget(node_limit=3)
        assert not budget.exhausted()
        for _ in range(3):
            budget.charge()
        assert budget.exhausted()

    def test_time_limit(self):
        budget = SearchBudget(time_limit=0.0)
        assert budget.exhausted()

    def test_unlimited(self):
        budget = SearchBudget()
        for _ in range(1000):
            budget.charge()
        assert not budget.exhausted()

    def test_elapsed_nonnegative(self):
        assert SearchBudget().elapsed() >= 0.0


class TestResult:
    def test_certified(self):
        budget = SearchBudget()
        result = certified(5, [1, 2, 3], budget, "test")
        assert result.optimal
        assert result.value == 5
        assert result.lower_bound == result.upper_bound == 5
        assert result.gap == 0

    def test_interrupted(self):
        budget = SearchBudget()
        result = interrupted(3, 7, [1], budget, "test")
        assert not result.optimal
        assert result.value is None
        assert result.gap == 4

    def test_interrupted_with_met_bounds_is_certified(self):
        budget = SearchBudget()
        result = interrupted(7, 7, [1], budget, "test")
        assert result.optimal
        assert result.value == 7

    def test_invalid_optimal_combinations(self):
        with pytest.raises(ValueError):
            SearchResult(
                value=None, lower_bound=1, upper_bound=1, optimal=True
            )
        with pytest.raises(ValueError):
            SearchResult(value=2, lower_bound=1, upper_bound=3, optimal=True)

    def test_summary_mentions_status(self):
        budget = SearchBudget()
        assert "optimal" in certified(5, [], budget, "x").summary()
        assert "interrupted" in interrupted(1, 2, [], budget, "x").summary()
