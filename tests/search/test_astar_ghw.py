"""Tests for A*-ghw (Chapter 9)."""

import random
from itertools import permutations
from math import ceil

import pytest

from repro.decompositions.elimination import ordering_ghw
from repro.hypergraphs.hypergraph import Hypergraph
from repro.instances.hypergraphs import (
    adder,
    clique_hypergraph,
    grid2d,
    random_csp_hypergraph,
)
from repro.search.astar_ghw import astar_ghw
from repro.search.bb_ghw import branch_and_bound_ghw


class TestKnownWidths:
    def test_example5(self, example5):
        result = astar_ghw(example5)
        assert result.optimal and result.value == 2

    def test_adder(self):
        assert astar_ghw(adder(3)).value == 2

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_cliques(self, n):
        assert astar_ghw(clique_hypergraph(n)).value == ceil(n / 2)

    def test_grid(self):
        assert astar_ghw(grid2d(3)).value == 2

    def test_acyclic_is_1(self):
        hypergraph = Hypergraph({"a": {1, 2}, "b": {2, 3}, "c": {3, 4}})
        assert astar_ghw(hypergraph).value == 1

    def test_empty(self):
        assert astar_ghw(Hypergraph()).value == 0


class TestAgreementWithBB:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed):
        hypergraph = random_csp_hypergraph(6, 5, arity=3, seed=seed + 200)
        astar = astar_ghw(hypergraph)
        bb = branch_and_bound_ghw(hypergraph)
        assert astar.optimal and bb.optimal
        assert astar.value == bb.value

    def test_against_brute_force(self):
        for seed in range(5):
            hypergraph = random_csp_hypergraph(6, 4, arity=3, seed=seed)
            brute = min(
                ordering_ghw(hypergraph, list(perm), cover="exact")
                for perm in permutations(sorted(hypergraph.vertices()))
            )
            assert astar_ghw(hypergraph).value == brute

    @pytest.mark.parametrize("use_pr2", [True, False])
    def test_pr2_flag_safe(self, use_pr2):
        hypergraph = random_csp_hypergraph(7, 6, arity=3, seed=31)
        assert (
            astar_ghw(hypergraph, use_pr2=use_pr2).value
            == branch_and_bound_ghw(hypergraph).value
        )


class TestAnytimeLowerBounds:
    def test_interrupted_run_reports_sound_bounds(self):
        hypergraph = clique_hypergraph(9)  # ghw = 5
        result = astar_ghw(hypergraph, node_limit=3)
        assert result.lower_bound <= 5
        assert result.upper_bound >= 5

    def test_frontier_lower_bound_nondecreasing(self):
        """Interrupting later can only raise the anytime lower bound."""
        hypergraph = random_csp_hypergraph(9, 8, arity=3, seed=8)
        early = astar_ghw(hypergraph, node_limit=2)
        late = astar_ghw(hypergraph, node_limit=30)
        assert late.lower_bound >= early.lower_bound

    def test_ordering_achieves_value(self, example5):
        result = astar_ghw(example5)
        assert (
            ordering_ghw(example5, result.ordering, cover="exact")
            == result.value
        )
