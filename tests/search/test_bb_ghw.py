"""Tests for BB-ghw (Chapter 8)."""

import random
from itertools import permutations
from math import ceil

import pytest

from repro.decompositions.elimination import ordering_ghw
from repro.hypergraphs.hypergraph import Hypergraph
from repro.instances.hypergraphs import (
    adder,
    bridge,
    clique_hypergraph,
    grid2d,
    random_csp_hypergraph,
)
from repro.search.bb_ghw import branch_and_bound_ghw


def brute_force_ghw(hypergraph) -> int:
    vertices = sorted(hypergraph.vertices())
    return min(
        ordering_ghw(hypergraph, list(perm), cover="exact")
        for perm in permutations(vertices)
    )


class TestKnownWidths:
    def test_example5(self, example5):
        result = branch_and_bound_ghw(example5)
        assert result.optimal and result.value == 2

    def test_single_edge(self):
        hypergraph = Hypergraph({"e": {1, 2, 3}})
        assert branch_and_bound_ghw(hypergraph).value == 1

    def test_acyclic_chain_is_width_1(self):
        hypergraph = Hypergraph(
            {"a": {1, 2, 3}, "b": {3, 4, 5}, "c": {5, 6, 7}}
        )
        assert branch_and_bound_ghw(hypergraph).value == 1

    def test_adder_is_2(self):
        """The adder family has ghw 2 (thesis Table 7.1 upper bounds)."""
        result = branch_and_bound_ghw(adder(3))
        assert result.optimal and result.value == 2

    def test_bridge(self):
        result = branch_and_bound_ghw(bridge(3))
        assert result.optimal
        assert result.value == 2

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_clique_is_half_n(self, n):
        """ghw(clique_n) = ceil(n/2) — cover a K_n bag with pair edges."""
        result = branch_and_bound_ghw(clique_hypergraph(n))
        assert result.value == ceil(n / 2)

    def test_grid2d_3(self):
        result = branch_and_bound_ghw(grid2d(3))
        assert result.optimal and result.value == 2

    def test_empty_hypergraph(self):
        assert branch_and_bound_ghw(Hypergraph()).value == 0


class TestOptimality:
    @pytest.mark.parametrize("seed", range(8))
    def test_against_brute_force(self, seed):
        hypergraph = random_csp_hypergraph(6, 5, arity=3, seed=seed)
        brute = brute_force_ghw(hypergraph)
        result = branch_and_bound_ghw(hypergraph)
        assert result.optimal
        assert result.value == brute

    @pytest.mark.parametrize("use_pr2", [True, False])
    @pytest.mark.parametrize("use_reductions", [True, False])
    def test_flags_do_not_change_answer(self, use_pr2, use_reductions):
        hypergraph = random_csp_hypergraph(7, 5, arity=3, seed=42)
        baseline = branch_and_bound_ghw(
            hypergraph, use_pr2=False, use_reductions=False
        ).value
        assert (
            branch_and_bound_ghw(
                hypergraph,
                use_pr2=use_pr2,
                use_reductions=use_reductions,
            ).value
            == baseline
        )

    def test_returned_ordering_achieves_value(self, example5):
        result = branch_and_bound_ghw(example5)
        assert (
            ordering_ghw(example5, result.ordering, cover="exact")
            == result.value
        )


class TestAnytime:
    def test_node_limited_bounds_bracket_truth(self):
        hypergraph = clique_hypergraph(8)
        result = branch_and_bound_ghw(hypergraph, node_limit=5)
        assert result.lower_bound <= 4 <= result.upper_bound

    def test_incumbent_is_feasible(self):
        hypergraph = random_csp_hypergraph(9, 7, arity=3, seed=5)
        result = branch_and_bound_ghw(hypergraph, node_limit=10)
        achieved = ordering_ghw(hypergraph, result.ordering, cover="exact")
        assert achieved <= result.upper_bound
