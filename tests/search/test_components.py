"""Tests for component-wise width computation."""

import pytest

from repro.decompositions.elimination import ordering_ghw, ordering_width
from repro.hypergraphs.graph import Graph, complete_graph, cycle_graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.instances.dimacs_like import random_gnp
from repro.search.astar_ghw import astar_ghw
from repro.search.astar_tw import astar_treewidth
from repro.search.bb_tw import branch_and_bound_treewidth
from repro.search.components import ghw_by_components, treewidth_by_components


def disconnected_graph() -> Graph:
    graph = Graph()
    clique = complete_graph(5)  # tw 4
    for edge in clique.edges():
        u, v = sorted(edge)
        graph.add_edge(f"a{u}", f"a{v}")
    cycle = cycle_graph(6)  # tw 2
    for edge in cycle.edges():
        u, v = sorted(edge)
        graph.add_edge(f"b{u}", f"b{v}")
    graph.add_vertex("lonely")
    return graph


class TestTreewidth:
    def test_max_over_components(self):
        graph = disconnected_graph()
        result = treewidth_by_components(graph, astar_treewidth)
        assert result.optimal
        assert result.value == 4

    def test_ordering_spans_whole_graph(self):
        graph = disconnected_graph()
        result = treewidth_by_components(graph, astar_treewidth)
        assert sorted(result.ordering, key=repr) == sorted(
            graph.vertices(), key=repr
        )
        assert ordering_width(graph, result.ordering) == result.value

    def test_agrees_with_monolithic_search(self):
        for seed in range(4):
            graph = random_gnp(6, 0.4, seed=seed)
            other = random_gnp(5, 0.6, seed=seed + 100)
            merged = Graph()
            for edge in graph.edges():
                u, v = sorted(edge)
                merged.add_edge(("g", u), ("g", v))
            for vertex in graph.vertices():
                merged.add_vertex(("g", vertex))
            for edge in other.edges():
                u, v = sorted(edge)
                merged.add_edge(("h", u), ("h", v))
            for vertex in other.vertices():
                merged.add_vertex(("h", vertex))
            split = treewidth_by_components(merged, astar_treewidth)
            whole = astar_treewidth(merged)
            assert split.value == whole.value

    def test_budget_shared(self):
        graph = disconnected_graph()
        result = treewidth_by_components(
            graph, branch_and_bound_treewidth, node_limit=2
        )
        assert result.lower_bound <= 4 <= result.upper_bound

    def test_empty_graph(self):
        result = treewidth_by_components(Graph(), astar_treewidth)
        assert result.value == 0 and result.optimal


class TestGhw:
    def test_max_over_components(self):
        hypergraph = Hypergraph(
            {
                # triangle (ghw 2) plus an isolated acyclic pair (ghw 1)
                "ab": {"a", "b"},
                "bc": {"b", "c"},
                "ca": {"c", "a"},
                "far": {"x", "y"},
            }
        )
        result = ghw_by_components(hypergraph, astar_ghw)
        assert result.optimal
        assert result.value == 2

    def test_ordering_valid_for_whole_hypergraph(self):
        hypergraph = Hypergraph(
            {"ab": {"a", "b"}, "bc": {"b", "c"}, "ca": {"c", "a"},
             "pq": {"p", "q"}}
        )
        result = ghw_by_components(hypergraph, astar_ghw)
        assert (
            ordering_ghw(hypergraph, result.ordering, cover="exact")
            == result.value
        )

    def test_agrees_with_monolithic(self):
        hypergraph = Hypergraph(
            {
                "e1": {1, 2, 3},
                "e2": {2, 3, 4},
                "e3": {1, 4},
                "f1": {10, 11},
                "f2": {11, 12},
            }
        )
        split = ghw_by_components(hypergraph, astar_ghw)
        whole = astar_ghw(hypergraph)
        assert split.value == whole.value
