"""Tests for the BB-tw baseline (Section 4.4)."""

import random
from itertools import permutations

import pytest

from repro.decompositions.elimination import ordering_width
from repro.hypergraphs.graph import Graph, complete_graph, cycle_graph, path_graph
from repro.instances.dimacs_like import grid_graph, mycielski_graph, queen_graph, random_gnp
from repro.search.astar_tw import astar_treewidth
from repro.search.bb_tw import branch_and_bound_treewidth


class TestKnownWidths:
    def test_trivial(self):
        assert branch_and_bound_treewidth(Graph(vertices=["a"])).value == 0
        assert branch_and_bound_treewidth(Graph()).value == 0

    def test_path_cycle_clique(self):
        assert branch_and_bound_treewidth(path_graph(7)).value == 1
        assert branch_and_bound_treewidth(cycle_graph(7)).value == 2
        assert branch_and_bound_treewidth(complete_graph(5)).value == 4

    def test_grid4(self):
        result = branch_and_bound_treewidth(grid_graph(4))
        assert result.optimal and result.value == 4

    def test_myciel3(self):
        assert branch_and_bound_treewidth(mycielski_graph(3)).value == 5


class TestAgreementWithAstar:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        graph = random_gnp(8, 0.4, seed=seed)
        bb = branch_and_bound_treewidth(graph)
        astar = astar_treewidth(graph)
        assert bb.optimal and astar.optimal
        assert bb.value == astar.value

    def test_against_brute_force(self):
        for seed in range(6):
            graph = random_gnp(6, 0.5, seed=seed + 50)
            brute = min(
                ordering_width(graph, list(perm))
                for perm in permutations(sorted(graph.vertices()))
            )
            assert branch_and_bound_treewidth(graph).value == brute

    @pytest.mark.parametrize("use_pr2", [True, False])
    def test_pr2_flag_safe(self, use_pr2):
        graph = random_gnp(7, 0.5, seed=23)
        assert (
            branch_and_bound_treewidth(graph, use_pr2=use_pr2).value
            == astar_treewidth(graph).value
        )


class TestAnytime:
    def test_node_limit_gives_bounds(self):
        graph = queen_graph(5)
        result = branch_and_bound_treewidth(graph, node_limit=20)
        assert result.lower_bound <= 18 <= result.upper_bound

    def test_incumbent_ordering_achieves_upper_bound(self):
        graph = queen_graph(4)
        result = branch_and_bound_treewidth(graph, node_limit=50)
        assert ordering_width(graph, result.ordering) == result.upper_bound

    def test_certified_result_has_matching_ordering(self):
        graph = random_gnp(9, 0.35, seed=77)
        result = branch_and_bound_treewidth(graph)
        assert result.optimal
        assert ordering_width(graph, result.ordering) == result.value
