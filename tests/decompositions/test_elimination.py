"""Tests for bucket/vertex elimination and ordering evaluation (Sec. 2.5)."""

import random
from itertools import permutations

import pytest

from repro.decompositions.elimination import (
    cliques_of_ordering,
    elimination_bags,
    ordering_ghw,
    ordering_to_ghd,
    ordering_to_tree_decomposition,
    ordering_width,
)
from repro.hypergraphs.elimination_graph import eliminate_sequence
from repro.hypergraphs.graph import complete_graph, cycle_graph, path_graph
from repro.instances.dimacs_like import grid_graph, random_gnp
from repro.instances.hypergraphs import random_csp_hypergraph


class TestEliminationBags:
    def test_matches_explicit_elimination(self):
        graph = random_gnp(10, 0.4, seed=11)
        ordering = sorted(graph.vertices())
        random.Random(0).shuffle(ordering)
        bags = elimination_bags(graph, ordering)
        explicit = eliminate_sequence(graph, ordering)
        assert [bags[v] for v in ordering] == explicit

    def test_rejects_non_permutation(self):
        graph = path_graph(3)
        with pytest.raises(ValueError):
            elimination_bags(graph, [0, 1])
        with pytest.raises(ValueError):
            elimination_bags(graph, [0, 1, 1])

    def test_figure_2_11_ordering(self, figure_2_11):
        """The thesis's sigma = (x6, x5, ..., x1) eliminated back-to-front
        means elimination order x6 first in our convention? No — the
        thesis eliminates v_n (= x1) first; our ordering lists x1 first."""
        primal = figure_2_11.primal_graph()
        ordering = ["x1", "x2", "x3", "x4", "x5", "x6"]
        bags = elimination_bags(primal, ordering)
        assert bags["x1"] == {"x1", "x2", "x3"}
        assert ordering_width(primal, ordering) == 2


class TestOrderingWidth:
    def test_path(self):
        graph = path_graph(5)
        assert ordering_width(graph, [0, 1, 2, 3, 4]) == 1

    def test_bad_ordering_on_cycle(self):
        graph = cycle_graph(4)
        # eliminating opposite vertices first creates K3 bags: width 2
        assert ordering_width(graph, [0, 2, 1, 3]) == 2
        assert ordering_width(graph, [0, 1, 2, 3]) == 2

    def test_complete_graph_any_order(self):
        graph = complete_graph(5)
        for perm in permutations(range(5)):
            assert ordering_width(graph, list(perm)) == 4

    def test_matches_full_bag_computation(self):
        graph = random_gnp(12, 0.3, seed=5)
        rng = random.Random(3)
        for _ in range(10):
            ordering = sorted(graph.vertices())
            rng.shuffle(ordering)
            bags = elimination_bags(graph, ordering)
            expected = max(len(bag) for bag in bags.values()) - 1
            assert ordering_width(graph, ordering) == expected

    def test_grid_optimal_ordering(self):
        """Sweeping a 3 x 5 grid column by column keeps the frontier at
        the short side: width 3. Sweeping row by row pays the long side."""
        graph = grid_graph(3, 5)
        column_major = sorted(graph.vertices(), key=lambda v: (v[1], v[0]))
        assert ordering_width(graph, column_major) == 3
        row_major = sorted(graph.vertices())
        assert ordering_width(graph, row_major) == 5


class TestOrderingToTreeDecomposition:
    def test_valid_and_width_consistent(self):
        graph = random_gnp(12, 0.35, seed=21)
        rng = random.Random(1)
        ordering = sorted(graph.vertices())
        rng.shuffle(ordering)
        decomposition = ordering_to_tree_decomposition(graph, ordering)
        decomposition.validate(graph)
        assert decomposition.width() == ordering_width(graph, ordering)

    def test_disconnected_graph_still_a_tree(self):
        graph = path_graph(3)
        graph.add_vertex(99)
        graph.add_edge(99, 100)
        ordering = [0, 1, 2, 99, 100]
        decomposition = ordering_to_tree_decomposition(graph, ordering)
        decomposition.validate(graph)

    def test_single_vertex(self):
        graph = path_graph(1)
        decomposition = ordering_to_tree_decomposition(graph, [0])
        decomposition.validate(graph)
        assert decomposition.width() == 0


class TestOrderingGhw:
    def test_example5_optimal_ordering(self, example5):
        ordering = ["x2", "x6", "x4", "x1", "x3", "x5"]
        assert ordering_ghw(example5, ordering, cover="exact") == 2

    def test_greedy_never_below_exact(self, example5):
        rng = random.Random(9)
        vertices = sorted(example5.vertices())
        for _ in range(20):
            ordering = vertices[:]
            rng.shuffle(ordering)
            exact = ordering_ghw(example5, ordering, cover="exact")
            greedy = ordering_ghw(example5, ordering, cover="greedy")
            assert greedy >= exact

    def test_unknown_cover_mode(self, example5):
        with pytest.raises(ValueError):
            ordering_ghw(example5, sorted(example5.vertices()), cover="magic")

    def test_ghd_construction_matches_width(self):
        hypergraph = random_csp_hypergraph(8, 6, arity=3, seed=4)
        ordering = sorted(hypergraph.vertices())
        for cover in ("greedy", "exact"):
            ghd = ordering_to_ghd(hypergraph, ordering, cover=cover)
            ghd.validate(hypergraph)
            assert ghd.width() == ordering_ghw(
                hypergraph, ordering, cover=cover
            )

    def test_cliques_of_ordering(self, figure_2_11):
        cliques = cliques_of_ordering(
            figure_2_11, ["x1", "x2", "x3", "x4", "x5", "x6"]
        )
        assert cliques[0] == {"x1", "x2", "x3"}
        assert len(cliques) == 6
