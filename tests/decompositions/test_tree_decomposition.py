"""Tests for tree decompositions (Definition 11)."""

import pytest

from repro.decompositions.tree_decomposition import (
    DecompositionError,
    TreeDecomposition,
    trivial_decomposition,
)
from repro.hypergraphs.graph import complete_graph, path_graph
from repro.hypergraphs.hypergraph import Hypergraph


def path_decomposition() -> TreeDecomposition:
    """Bags {0,1},{1,2},{2,3} in a path — valid for P4."""
    decomposition = TreeDecomposition()
    a = decomposition.add_node({0, 1})
    b = decomposition.add_node({1, 2})
    c = decomposition.add_node({2, 3})
    decomposition.add_edge(a, b)
    decomposition.add_edge(b, c)
    return decomposition


class TestStructure:
    def test_add_node_assigns_ids(self):
        decomposition = TreeDecomposition()
        assert decomposition.add_node({1}) == 0
        assert decomposition.add_node({2}) == 1

    def test_first_node_becomes_root(self):
        decomposition = TreeDecomposition()
        node = decomposition.add_node({1})
        assert decomposition.root == node

    def test_duplicate_node_id_rejected(self):
        decomposition = TreeDecomposition()
        decomposition.add_node({1}, node=7)
        with pytest.raises(ValueError):
            decomposition.add_node({2}, node=7)

    def test_edge_to_unknown_node(self):
        decomposition = TreeDecomposition()
        decomposition.add_node({1})
        with pytest.raises(KeyError):
            decomposition.add_edge(0, 99)

    def test_width(self):
        decomposition = path_decomposition()
        assert decomposition.width() == 1
        assert trivial_decomposition(complete_graph(5)).width() == 4

    def test_leaves(self):
        decomposition = path_decomposition()
        assert sorted(decomposition.leaves()) == [0, 2]

    def test_single_node_is_leaf(self):
        decomposition = TreeDecomposition()
        node = decomposition.add_node({1})
        assert decomposition.leaves() == [node]

    def test_remove_leaf(self):
        decomposition = path_decomposition()
        decomposition.remove_node(2)
        assert decomposition.num_nodes() == 2
        assert decomposition.is_tree()

    def test_remove_root_reassigns(self):
        decomposition = path_decomposition()
        root = decomposition.root
        decomposition.remove_node(root)
        assert decomposition.root is not None
        assert decomposition.root != root

    def test_path_between(self):
        decomposition = path_decomposition()
        assert decomposition.path_between(0, 2) == [0, 1, 2]
        assert decomposition.path_between(1, 1) == [1]

    def test_parent_map_and_depths(self):
        decomposition = path_decomposition()
        decomposition.root = 0
        parents = decomposition.parent_map()
        assert parents[0] is None
        assert parents[1] == 0
        assert parents[2] == 1
        assert decomposition.depths() == {0: 0, 1: 1, 2: 2}

    def test_copy_independent(self):
        decomposition = path_decomposition()
        clone = decomposition.copy()
        clone.bags[0].add(99)
        assert 99 not in decomposition.bags[0]


class TestValidation:
    def test_valid_for_path_graph(self):
        path_decomposition().validate(path_graph(4))

    def test_is_tree_rejects_cycle(self):
        decomposition = path_decomposition()
        decomposition.add_edge(0, 2)
        assert not decomposition.is_tree()

    def test_is_tree_rejects_forest(self):
        decomposition = TreeDecomposition()
        decomposition.add_node({1})
        decomposition.add_node({2})
        assert not decomposition.is_tree()

    def test_missing_edge_cover(self):
        decomposition = path_decomposition()
        graph = path_graph(4)
        graph.add_edge(0, 3)  # no bag contains {0, 3}
        with pytest.raises(DecompositionError):
            decomposition.validate(graph)

    def test_connectedness_violation(self):
        decomposition = TreeDecomposition()
        a = decomposition.add_node({0, 1})
        b = decomposition.add_node({1, 2})
        c = decomposition.add_node({0, 2})  # 0 reappears disconnectedly
        decomposition.add_edge(a, b)
        decomposition.add_edge(b, c)
        assert not decomposition.satisfies_connectedness()

    def test_hypergraph_validation(self, example5):
        decomposition = TreeDecomposition()
        a = decomposition.add_node({"x1", "x2", "x3"})
        b = decomposition.add_node({"x1", "x3", "x5"})
        c = decomposition.add_node({"x3", "x4", "x5"})
        d = decomposition.add_node({"x1", "x5", "x6"})
        decomposition.add_edge(a, b)
        decomposition.add_edge(b, c)
        decomposition.add_edge(b, d)
        decomposition.validate(example5)
        assert decomposition.width() == 2

    def test_vertex_missing_from_all_bags(self):
        decomposition = TreeDecomposition()
        decomposition.add_node({1, 2})
        hypergraph = Hypergraph({"e": {1, 2}}, vertices=[3])
        with pytest.raises(DecompositionError):
            decomposition.validate(hypergraph)

    def test_trivial_decomposition_always_valid(self, example5):
        trivial_decomposition(example5).validate(example5)
