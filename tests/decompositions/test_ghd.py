"""Tests for generalized hypertree decompositions (Definitions 12-14)."""

import pytest

from repro.decompositions.ghd import (
    GeneralizedHypertreeDecomposition,
    exact_cover_width,
    make_complete,
)
from repro.decompositions.tree_decomposition import DecompositionError


def example5_ghd() -> GeneralizedHypertreeDecomposition:
    """The width-2 GHD of Figure 2.7 (up to node naming)."""
    ghd = GeneralizedHypertreeDecomposition()
    top = ghd.add_node({"x1", "x2", "x3"}, {"C1"})
    middle = ghd.add_node({"x1", "x3", "x5"}, {"C2", "C3"})
    left = ghd.add_node({"x3", "x4", "x5"}, {"C3"})
    right = ghd.add_node({"x1", "x5", "x6"}, {"C2"})
    ghd.add_edge(top, middle)
    ghd.add_edge(middle, left)
    ghd.add_edge(middle, right)
    return ghd


class TestValidation:
    def test_figure_2_7_is_valid(self, example5):
        ghd = example5_ghd()
        ghd.validate(example5)
        assert ghd.width() == 2

    def test_unknown_cover_edge(self, example5):
        ghd = example5_ghd()
        ghd.covers[0].add("nonexistent")
        with pytest.raises(DecompositionError):
            ghd.validate(example5)

    def test_bag_not_covered(self, example5):
        ghd = example5_ghd()
        ghd.covers[1] = {"C2"}  # x3 is not in C2
        with pytest.raises(DecompositionError):
            ghd.validate(example5)

    def test_missing_lambda_label(self, example5):
        ghd = example5_ghd()
        del ghd.covers[0]
        with pytest.raises(DecompositionError):
            ghd.validate(example5)

    def test_underlying_tree_still_checked(self, example5):
        ghd = example5_ghd()
        ghd.tree.bags[0] = {"x2"}  # C1 no longer fits in any bag
        with pytest.raises(DecompositionError):
            ghd.validate(example5)


class TestCompleteness:
    def test_figure_2_7_is_complete(self, example5):
        assert example5_ghd().is_complete(example5)

    def test_one_bag_with_all_lambdas_is_complete(self, example5):
        ghd = GeneralizedHypertreeDecomposition()
        ghd.add_node(
            {"x1", "x2", "x3", "x4", "x5", "x6"}, {"C1", "C2", "C3"}
        )
        assert ghd.is_complete(example5)

    def test_incomplete_detected(self, example5):
        ghd = GeneralizedHypertreeDecomposition()
        ghd.add_node({"x1", "x2", "x3", "x4", "x5", "x6"}, {"C1", "C2"})
        # C3 fits the bag but appears in no lambda label.
        assert not ghd.is_complete(example5)

    def test_make_complete_adds_leaves(self, example5):
        ghd = GeneralizedHypertreeDecomposition()
        ghd.add_node({"x1", "x2", "x3", "x4", "x5", "x6"}, {"C1", "C2", "C3"})
        ghd.covers[0] = {"C1", "C2", "C3"}
        # width-3 one-node GHD is valid but we strip completeness by
        # rebuilding with covers only:
        complete = make_complete(ghd, example5)
        complete.validate(example5)
        assert complete.is_complete(example5)

    def test_make_complete_preserves_width(self):
        from repro.hypergraphs.hypergraph import Hypergraph

        # "small" fits inside "big"'s bag but is realised nowhere.
        hypergraph = Hypergraph({"big": {1, 2, 3}, "small": {1, 2}})
        ghd = GeneralizedHypertreeDecomposition()
        ghd.add_node({1, 2, 3}, {"big"})
        ghd.validate(hypergraph)
        assert not ghd.is_complete(hypergraph)
        complete = make_complete(ghd, hypergraph)
        complete.validate(hypergraph)
        assert complete.is_complete(hypergraph)
        assert complete.width() == ghd.width() == 1
        assert complete.tree.num_nodes() == 2

    def test_make_complete_idempotent(self, example5):
        ghd = example5_ghd()
        once = make_complete(ghd, example5)
        twice = make_complete(once, example5)
        assert twice.tree.num_nodes() == once.tree.num_nodes()


class TestWidth:
    def test_width_is_max_lambda(self, example5):
        assert example5_ghd().width() == 2

    def test_empty_ghd_width(self):
        assert GeneralizedHypertreeDecomposition().width() == 0

    def test_exact_cover_width_recovers_optimum(self, example5):
        ghd = example5_ghd()
        # bloat a cover; exact recomputation should shrink it back
        ghd.covers[0] = {"C1", "C2", "C3"}
        assert ghd.width() == 3
        assert exact_cover_width(ghd, example5) == 2

    def test_copy_independent(self, example5):
        ghd = example5_ghd()
        clone = ghd.copy()
        clone.covers[0].add("C2")
        assert "C2" not in ghd.covers[0]
