"""Tests for decomposition serialisation (PACE .td and the GHD format)."""

import pytest

from repro.core.api import decompose, decompose_graph
from repro.decompositions.io import (
    format_ghd,
    format_tree_decomposition,
    parse_ghd,
    parse_tree_decomposition,
    read_ghd,
    read_tree_decomposition,
    write_ghd,
    write_tree_decomposition,
)
from repro.hypergraphs.io import FormatError
from repro.instances.dimacs_like import grid_graph
from repro.instances.hypergraphs import adder


class TestTreeDecompositionFormat:
    def test_roundtrip_structure(self, tmp_path):
        graph = grid_graph(3)
        decomposition = decompose_graph(graph, algorithm="min-fill")
        path = tmp_path / "grid.td"
        write_tree_decomposition(decomposition, path)
        loaded = read_tree_decomposition(path)
        assert loaded.num_nodes() == decomposition.num_nodes()
        assert loaded.width() == decomposition.width()
        assert loaded.is_tree()

    def test_header_counts(self):
        graph = grid_graph(2)
        decomposition = decompose_graph(graph, algorithm="min-fill")
        text = format_tree_decomposition(decomposition)
        solution = next(
            line for line in text.splitlines() if line.startswith("s td")
        )
        _s, _td, bags, max_bag, vertices = solution.split()
        assert int(bags) == decomposition.num_nodes()
        assert int(max_bag) == decomposition.width() + 1
        assert int(vertices) == graph.num_vertices()

    def test_parse_minimal(self):
        text = "s td 2 2 3\nb 1 1 2\nb 2 2 3\n1 2\n"
        decomposition = parse_tree_decomposition(text)
        assert decomposition.num_nodes() == 2
        assert decomposition.bags[1] == {1, 2}
        assert decomposition.is_tree()

    def test_bag_count_mismatch(self):
        with pytest.raises(FormatError):
            parse_tree_decomposition("s td 3 2 2\nb 1 1 2\n")

    def test_bag_before_header(self):
        with pytest.raises(FormatError):
            parse_tree_decomposition("b 1 1 2\ns td 1 2 2\n")

    def test_comments_ignored(self):
        text = "c hello\ns td 1 2 2\nb 1 1 2\n"
        assert parse_tree_decomposition(text).num_nodes() == 1


class TestGhdFormat:
    def test_roundtrip(self, tmp_path, example5):
        ghd = decompose(example5, algorithm="bb")
        path = tmp_path / "ex5.ghd"
        write_ghd(ghd, path)
        loaded = read_ghd(path)
        assert loaded.width() == ghd.width()
        assert loaded.tree.num_nodes() == ghd.tree.num_nodes()
        # vertices come back as strings; example5 vertices already are
        loaded.validate(example5)

    def test_header_records_width(self, example5):
        ghd = decompose(example5, algorithm="bb")
        text = format_ghd(ghd)
        header = next(
            line for line in text.splitlines() if line.startswith("s ghd")
        )
        assert header.split()[-1] == str(ghd.width())

    def test_adder_roundtrip(self, tmp_path):
        hypergraph = adder(3)
        ghd = decompose(hypergraph, algorithm="min-fill", cover="greedy")
        path = tmp_path / "adder.ghd"
        write_ghd(ghd, path)
        loaded = read_ghd(path)
        loaded.validate(hypergraph)
        assert loaded.width() == ghd.width()

    def test_missing_lambda_rejected(self):
        text = "s ghd 1 2 2 1\nb 1 a b\n"
        with pytest.raises(FormatError):
            parse_ghd(text)

    def test_parse_minimal(self):
        text = "s ghd 2 2 3 1\nb 1 a b\nl 1 e1\nb 2 b c\nl 2 e2\n1 2\n"
        ghd = parse_ghd(text)
        assert ghd.width() == 1
        assert ghd.covers[2] == {"e2"}
