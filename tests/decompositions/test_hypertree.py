"""Tests for hypertree decompositions and det-k-decomp (Section 2.3.2)."""

import pytest

from repro.decompositions.ghd import GeneralizedHypertreeDecomposition
from repro.decompositions.hypertree import (
    HypertreeDecomposition,
    det_k_decomp,
    hypertree_width,
)
from repro.decompositions.tree_decomposition import DecompositionError
from repro.hypergraphs.hypergraph import Hypergraph
from repro.instances.hypergraphs import (
    adder,
    bridge,
    clique_hypergraph,
    grid2d,
    random_csp_hypergraph,
)
from repro.search.bb_ghw import branch_and_bound_ghw


class TestValidator:
    def test_descendant_condition_violation_detected(self):
        """A GHD that is not an HD: a lambda edge smuggles a subtree
        vertex past its own bag."""
        hypergraph = Hypergraph(
            {"big": {1, 2, 3}, "left": {1, 4}, "right": {3, 4}}
        )
        ghd = GeneralizedHypertreeDecomposition()
        # root covers with "big" but keeps vertex 3 out of its bag;
        # 3 reappears below -> descendant condition broken at the root.
        root = ghd.add_node({1, 2}, {"big"})
        middle = ghd.add_node({1, 2, 3}, {"big"})
        leaf = ghd.add_node({1, 3, 4}, {"left", "right"})
        ghd.add_edge(root, middle)
        ghd.add_edge(middle, leaf)
        ghd.tree.root = root
        ghd.validate(hypergraph)  # fine as a GHD
        with pytest.raises(DecompositionError):
            HypertreeDecomposition(ghd=ghd).validate(hypergraph)

    def test_subtree_vertices(self):
        ghd = GeneralizedHypertreeDecomposition()
        root = ghd.add_node({1}, set())
        child = ghd.add_node({2}, set())
        ghd.add_edge(root, child)
        ghd.tree.root = root
        hd = HypertreeDecomposition(ghd=ghd)
        assert hd.subtree_vertices(root) == {1, 2}
        assert hd.subtree_vertices(child) == {2}


class TestDetKDecomp:
    def test_acyclic_is_width_1(self):
        hypergraph = Hypergraph({"a": {1, 2, 3}, "b": {3, 4}, "c": {4, 5}})
        decomposition = det_k_decomp(hypergraph, 1)
        assert decomposition is not None
        assert decomposition.width() <= 1

    def test_triangle_needs_2(self):
        triangle = Hypergraph({"ab": {1, 2}, "bc": {2, 3}, "ca": {1, 3}})
        assert det_k_decomp(triangle, 1) is None
        decomposition = det_k_decomp(triangle, 2)
        assert decomposition is not None
        assert decomposition.width() == 2

    def test_monotone_in_k(self):
        hypergraph = grid2d(3)
        succeeded = [
            det_k_decomp(hypergraph, k) is not None for k in (1, 2, 3, 4)
        ]
        # once feasible, stays feasible
        first_true = succeeded.index(True)
        assert all(succeeded[first_true:])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            det_k_decomp(adder(2), 0)

    def test_result_is_validated_hd(self):
        hypergraph = adder(3)
        decomposition = det_k_decomp(hypergraph, 2)
        assert decomposition is not None
        decomposition.validate(hypergraph)  # all four conditions


class TestHypertreeWidth:
    @pytest.mark.parametrize(
        "build,expected",
        [
            (lambda: adder(3), 2),
            (lambda: clique_hypergraph(6), 3),
            (lambda: grid2d(3), 2),
            (lambda: bridge(3), 2),
        ],
    )
    def test_known_values(self, build, expected):
        k, decomposition = hypertree_width(build())
        assert k == expected
        assert decomposition.width() <= k

    def test_edgeless(self):
        k, decomposition = hypertree_width(Hypergraph(vertices=[1, 2]))
        assert k == 0

    def test_ceiling_respected(self):
        triangle = Hypergraph({"ab": {1, 2}, "bc": {2, 3}, "ca": {1, 3}})
        with pytest.raises(ValueError):
            hypertree_width(triangle, max_k=1)

    @pytest.mark.parametrize("seed", range(6))
    def test_hierarchy_ghw_le_hw(self, seed):
        """ghw <= hw <= 3 ghw + 1 on random instances."""
        hypergraph = random_csp_hypergraph(6, 5, arity=3, seed=seed + 10)
        hw, decomposition = hypertree_width(hypergraph)
        decomposition.validate(hypergraph)
        ghw = branch_and_bound_ghw(hypergraph).value
        assert ghw <= hw <= 3 * ghw + 1

    def test_hd_is_also_a_ghd(self):
        """Every HD validates as a GHD of the same width."""
        hypergraph = grid2d(3)
        hw, decomposition = hypertree_width(hypergraph)
        decomposition.ghd.validate(hypergraph)
        assert decomposition.ghd.width() == hw
