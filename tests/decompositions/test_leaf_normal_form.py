"""Tests for the chapter-3 theory: leaf normal form and ordering extraction.

The load-bearing claims (Theorems 1-3) are checked constructively:

* the transformation output is a valid tree decomposition in leaf normal
  form whose bags embed into the original's bags (Theorem 1),
* the extracted ordering's bags embed into the normal form's bags
  (Lemma 13),
* consequently the exact-cover width of the extracted ordering never
  exceeds the width of the GHD we started from (Theorem 2) — i.e.
  elimination orderings are a complete search space for ghw.
"""

import random

import pytest

from repro.decompositions.elimination import (
    elimination_bags,
    ordering_ghw,
    ordering_to_ghd,
)
from repro.decompositions.leaf_normal_form import (
    extract_ordering,
    is_leaf_normal_form,
    ordering_from_leaf_normal_form,
    transform_leaf_normal_form,
)
from repro.decompositions.tree_decomposition import (
    DecompositionError,
    TreeDecomposition,
    trivial_decomposition,
)
from repro.instances.hypergraphs import random_csp_hypergraph


def bags_embed(inner: TreeDecomposition, outer: TreeDecomposition) -> bool:
    """Every bag of ``inner`` fits inside some bag of ``outer``."""
    outer_bags = list(outer.bags.values())
    return all(
        any(bag <= candidate for candidate in outer_bags)
        for bag in inner.bags.values()
    )


class TestTransform:
    def test_trivial_decomposition(self, example5):
        decomposition = trivial_decomposition(example5)
        normal, leaf_of = transform_leaf_normal_form(decomposition, example5)
        normal.validate(example5)
        assert is_leaf_normal_form(normal, example5, leaf_of)
        assert bags_embed(normal, decomposition)

    def test_figure_3_2_style(self, figure_2_11):
        decomposition = trivial_decomposition(figure_2_11)
        normal, leaf_of = transform_leaf_normal_form(
            decomposition, figure_2_11
        )
        # one leaf per hyperedge with chi(leaf) = the hyperedge
        assert len(leaf_of) == figure_2_11.num_edges()
        for name, leaf in leaf_of.items():
            assert normal.bags[leaf] == set(figure_2_11.edge(name))

    def test_real_decomposition(self, example5):
        decomposition = TreeDecomposition()
        a = decomposition.add_node({"x1", "x2", "x3"})
        b = decomposition.add_node({"x1", "x3", "x5"})
        c = decomposition.add_node({"x3", "x4", "x5"})
        d = decomposition.add_node({"x1", "x5", "x6"})
        decomposition.add_edge(a, b)
        decomposition.add_edge(b, c)
        decomposition.add_edge(b, d)
        normal, leaf_of = transform_leaf_normal_form(decomposition, example5)
        normal.validate(example5)
        assert is_leaf_normal_form(normal, example5, leaf_of)
        assert bags_embed(normal, decomposition)

    def test_invalid_decomposition_rejected(self, example5):
        bad = TreeDecomposition()
        bad.add_node({"x1", "x2"})  # C1 fits nowhere
        with pytest.raises(DecompositionError):
            transform_leaf_normal_form(bad, example5)

    def test_random_instances(self):
        for seed in range(8):
            hypergraph = random_csp_hypergraph(
                7, 5, arity=3, seed=seed
            )
            ordering = sorted(hypergraph.vertices())
            ghd = ordering_to_ghd(hypergraph, ordering, cover="greedy")
            normal, leaf_of = transform_leaf_normal_form(
                ghd.tree, hypergraph
            )
            normal.validate(hypergraph)
            assert is_leaf_normal_form(normal, hypergraph, leaf_of)
            assert bags_embed(normal, ghd.tree)


class TestOrderingExtraction:
    def test_lemma_13_bag_embedding(self, example5):
        decomposition = trivial_decomposition(example5)
        normal, _ = transform_leaf_normal_form(decomposition, example5)
        ordering = ordering_from_leaf_normal_form(normal, example5)
        bags = elimination_bags(example5.primal_graph(), ordering)
        normal_bags = list(normal.bags.values())
        for bag in bags.values():
            assert any(bag <= candidate for candidate in normal_bags)

    def test_theorem_2_width_never_worse(self):
        """Extracted ordering's exact-cover width <= source GHD width."""
        rng = random.Random(0)
        for seed in range(10):
            hypergraph = random_csp_hypergraph(8, 6, arity=3, seed=seed)
            scrambled = sorted(hypergraph.vertices())
            rng.shuffle(scrambled)
            ghd = ordering_to_ghd(hypergraph, scrambled, cover="exact")
            extracted = extract_ordering(ghd.tree, hypergraph)
            assert set(extracted) == hypergraph.vertices()
            assert (
                ordering_ghw(hypergraph, extracted, cover="exact")
                <= ghd.width()
            )

    def test_extracted_is_permutation(self, example5):
        ordering = extract_ordering(
            trivial_decomposition(example5), example5
        )
        assert sorted(ordering) == sorted(example5.vertices())

    def test_depth_ordering_property(self, example5):
        """Deeper dca vertices must be eliminated earlier."""
        decomposition = trivial_decomposition(example5)
        normal, _ = transform_leaf_normal_form(decomposition, example5)
        ordering = ordering_from_leaf_normal_form(normal, example5)
        depths = normal.depths()
        leaves = set(normal.leaves())

        def dca_depth(vertex):
            holders = [
                leaf for leaf in leaves if vertex in normal.bags[leaf]
            ]
            parents = normal.parent_map()

            def up(node):
                return parents[node]

            current = set(holders)
            # climb all to equal depth then together
            nodes = list(holders)
            while len(set(nodes)) > 1:
                deepest = max(nodes, key=lambda n: depths[n])
                nodes[nodes.index(deepest)] = up(deepest)
            return depths[nodes[0]]

        observed = [dca_depth(v) for v in ordering]
        assert observed == sorted(observed, reverse=True)
