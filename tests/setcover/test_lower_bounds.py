"""Tests for k-set-cover lower bounds (Section 8.1.1)."""

import random
from itertools import combinations

import pytest

from repro.setcover.lower_bounds import (
    ceiling_lower_bound,
    k_set_cover_lower_bound,
    size_profile_lower_bound,
)


class TestCeilingBound:
    def test_basic(self):
        assert ceiling_lower_bound(7, [3, 3, 3]) == 3
        assert ceiling_lower_bound(6, [3, 3]) == 2
        assert ceiling_lower_bound(1, [5]) == 1

    def test_zero_k(self):
        assert ceiling_lower_bound(0, [3]) == 0
        assert ceiling_lower_bound(-2, [3]) == 0

    def test_no_edges_raises(self):
        with pytest.raises(ValueError):
            ceiling_lower_bound(1, [])


class TestSizeProfileBound:
    def test_uses_largest_edges(self):
        # sizes 5, 3, 1: covering 7 needs at least 2 (5 + 3 >= 7)
        assert size_profile_lower_bound(7, [1, 5, 3]) == 2
        # covering 9 needs all three
        assert size_profile_lower_bound(9, [1, 5, 3]) == 3

    def test_dominates_ceiling(self):
        rng = random.Random(1)
        for _ in range(50):
            sizes = [rng.randint(1, 6) for _ in range(rng.randint(1, 8))]
            k = rng.randint(1, sum(sizes))
            assert size_profile_lower_bound(k, sizes) >= ceiling_lower_bound(
                k, sizes
            )

    def test_insufficient_capacity_raises(self):
        with pytest.raises(ValueError):
            size_profile_lower_bound(10, [2, 3])

    def test_zero_k(self):
        assert size_profile_lower_bound(0, [3]) == 0


class TestCombinedBound:
    def edges(self, *sizes):
        return {
            f"e{i}": frozenset(range(100 * i, 100 * i + size))
            for i, size in enumerate(sizes)
        }

    def test_combined_is_max(self):
        instance = self.edges(4, 2, 2)
        assert k_set_cover_lower_bound(5, instance) == 2

    def test_monotone_in_k(self):
        instance = self.edges(3, 3, 2, 1)
        bounds = [k_set_cover_lower_bound(k, instance) for k in range(1, 10)]
        assert bounds == sorted(bounds)

    def test_sound_against_all_k_subsets(self):
        """The bound must hold for EVERY k-subset's true cover number."""
        rng = random.Random(3)
        universe = list(range(8))
        instance = {
            f"e{i}": frozenset(rng.sample(universe, rng.randint(1, 4)))
            for i in range(6)
        }
        coverable = set()
        for edge in instance.values():
            coverable |= edge

        def true_cover(target):
            names = list(instance)
            for size in range(0, len(names) + 1):
                for subset in combinations(names, size):
                    union = set()
                    for name in subset:
                        union |= instance[name]
                    if set(target) <= union:
                        return size
            raise AssertionError

        for k in range(1, len(coverable) + 1):
            bound = k_set_cover_lower_bound(k, instance)
            # the bound must not exceed the cover number of ANY k-subset,
            # i.e. it must be <= the cheapest one.
            cheapest = min(
                true_cover(subset)
                for subset in combinations(sorted(coverable), k)
            )
            assert bound <= cheapest
