"""Tests for fractional covers and fractional width (LP extension)."""

import pytest

from repro.instances.hypergraphs import (
    adder,
    clique_hypergraph,
    random_csp_hypergraph,
)
from repro.decompositions.elimination import ordering_ghw
from repro.setcover.fractional import (
    fractional_cover_value,
    ordering_fractional_width,
)
from repro.setcover.exact import exact_cover_size
from repro.setcover.greedy import UncoverableError


def edges(**named):
    return {name: frozenset(edge) for name, edge in named.items()}


class TestFractionalCover:
    def test_empty_target(self):
        assert fractional_cover_value(set(), edges(a={1})) == 0.0

    def test_single_edge(self):
        assert fractional_cover_value({1, 2}, edges(a={1, 2})) == pytest.approx(1.0)

    def test_disjoint_edges(self):
        value = fractional_cover_value(
            {1, 2, 3, 4}, edges(a={1, 2}, b={3, 4})
        )
        assert value == pytest.approx(2.0)

    def test_fractional_beats_integral_on_triangle(self):
        """The classic gap instance: covering a triangle's vertices with
        its edges costs 2 integrally but only 1.5 fractionally."""
        instance = edges(ab={1, 2}, bc={2, 3}, ca={3, 1})
        assert exact_cover_size({1, 2, 3}, instance) == 2
        assert fractional_cover_value({1, 2, 3}, instance) == pytest.approx(1.5)

    def test_never_exceeds_integral(self):
        for seed in range(10):
            hypergraph = random_csp_hypergraph(8, 6, arity=3, seed=seed)
            target = hypergraph.vertices()
            integral = exact_cover_size(target, hypergraph.edges())
            fractional = fractional_cover_value(target, hypergraph.edges())
            assert fractional <= integral + 1e-9

    def test_uncoverable(self):
        with pytest.raises(UncoverableError):
            fractional_cover_value({1, 99}, edges(a={1}))


class TestFractionalWidth:
    def test_clique_gap(self):
        """fhw(K_n as pair edges) = n/2 exactly (not ceil(n/2))."""
        hypergraph = clique_hypergraph(5)
        ordering = sorted(hypergraph.vertices())
        assert ordering_fractional_width(hypergraph, ordering) == pytest.approx(2.5)
        assert ordering_ghw(hypergraph, ordering, cover="exact") == 3

    def test_adder(self):
        hypergraph = adder(3)
        ordering = sorted(hypergraph.vertices())
        fractional = ordering_fractional_width(hypergraph, ordering)
        integral = ordering_ghw(hypergraph, ordering, cover="exact")
        assert fractional <= integral + 1e-9
        assert fractional >= 1.0

    def test_fractional_at_most_integral_everywhere(self):
        import random

        rng = random.Random(0)
        for seed in range(6):
            hypergraph = random_csp_hypergraph(7, 5, arity=3, seed=seed)
            ordering = sorted(hypergraph.vertices())
            rng.shuffle(ordering)
            fractional = ordering_fractional_width(hypergraph, ordering)
            integral = ordering_ghw(hypergraph, ordering, cover="exact")
            assert fractional <= integral + 1e-9
