"""Tests for the exact set-cover branch and bound."""

import random
from itertools import combinations

import pytest

from repro.setcover.exact import (
    ExactSetCoverSolver,
    exact_cover_size,
    exact_set_cover,
)
from repro.setcover.greedy import UncoverableError, greedy_set_cover


def edges(**named):
    return {name: frozenset(edge) for name, edge in named.items()}


def brute_force_cover_size(target, instance) -> int:
    """Smallest cover by exhaustive subset enumeration."""
    target = set(target)
    if not target:
        return 0
    names = list(instance)
    for size in range(1, len(names) + 1):
        for subset in combinations(names, size):
            union = set()
            for name in subset:
                union |= instance[name]
            if target <= union:
                return size
    raise AssertionError("uncoverable in brute force")


class TestExact:
    def test_empty_target(self):
        assert exact_set_cover(set(), edges(a={1})) == []

    def test_beats_greedy_on_classic_instance(self):
        instance = edges(
            top={1, 2, 3, 4},
            bottom={5, 6, 7, 8},
            middle={2, 3, 4, 5, 6, 7},
        )
        target = set(range(1, 9))
        assert len(greedy_set_cover(target, instance)) == 3
        assert exact_cover_size(target, instance) == 2

    def test_uncoverable(self):
        with pytest.raises(UncoverableError):
            exact_set_cover({1, 2}, edges(a={1}))

    def test_cover_is_valid(self):
        instance = edges(a={1, 2}, b={2, 3}, c={3, 4}, d={1, 4})
        cover = exact_set_cover({1, 2, 3, 4}, instance)
        union = set()
        for name in cover:
            union |= instance[name]
        assert {1, 2, 3, 4} <= union
        assert len(cover) == 2

    def test_matches_brute_force_random(self):
        rng = random.Random(7)
        for seed in range(25):
            universe = list(range(10))
            instance = {
                f"e{i}": frozenset(
                    rng.sample(universe, rng.randint(1, 4))
                )
                for i in range(7)
            }
            coverable = set()
            for edge in instance.values():
                coverable |= edge
            target = set(rng.sample(sorted(coverable), min(6, len(coverable))))
            expected = brute_force_cover_size(target, instance)
            assert exact_cover_size(target, instance) == expected

    def test_solver_memoisation_consistent(self):
        instance = edges(a={1, 2, 3}, b={3, 4}, c={1, 4}, d={2})
        solver = ExactSetCoverSolver(instance)
        first = solver.cover_size({1, 2, 3, 4})
        second = solver.cover_size({1, 2, 3, 4})
        assert first == second == 2

    def test_solver_handles_many_overlapping_targets(self):
        instance = edges(
            a={1, 2}, b={2, 3}, c={3, 4}, d={4, 5}, e={5, 1}
        )
        solver = ExactSetCoverSolver(instance)
        for target in ({1, 2}, {1, 2, 3}, {1, 2, 3, 4}, {2, 4}, set()):
            size = solver.cover_size(target)
            assert size == brute_force_cover_size(target, instance)

    def test_dominated_edges_do_not_break_optimality(self):
        instance = edges(big={1, 2, 3}, sub1={1, 2}, sub2={2, 3}, other={4})
        assert exact_cover_size({1, 2, 3, 4}, instance) == 2

    def test_duplicate_edges(self):
        instance = edges(a={1, 2}, b={1, 2})
        assert exact_cover_size({1, 2}, instance) == 1

    def test_regression_search_must_respect_budget(self):
        """Regression: the branch and bound once returned a *complete but
        worse-than-greedy* cover because a finished branch was accepted
        without checking its size against the incumbent. Extracted from
        an elimination bag of the b08 circuit instance (greedy found 4,
        the buggy search returned 6; the optimum is 4)."""
        instance = edges(
            gate_109={"g101", "g109", "g97", "g99"},
            gate_112={"g108", "g109", "g112"},
            gate_113={"g103", "g108", "g112", "g113"},
            gate_116={"g105", "g113", "g116"},
            gate_118={"g108", "g109", "g117", "g118"},
            gate_119={"g108", "g112", "g119"},
            gate_120={"g109", "g119", "g120"},
            gate_121={"g113", "g115", "g119", "g121"},
            gate_122={"g113", "g118", "g119", "g122"},
            gate_123={"g117", "g121", "g123"},
            gate_124={"g112", "g120", "g123", "g124"},
            gate_125={"g116", "g119", "g124", "g125"},
            gate_126={"g116", "g123", "g126"},
            gate_127={"g120", "g123", "g127"},
            gate_128={"g116", "g118", "g121", "g128"},
            gate_129={"g120", "g125", "g127", "g129"},
            gate_130={"g120", "g122", "g123", "g130"},
            gate_131={"g121", "g123", "g131"},
            gate_132={"g123", "g129", "g132"},
            gate_134={"g123", "g125", "g126", "g134"},
        )
        bag = {
            "g109", "g112", "g113", "g116", "g118",
            "g119", "g120", "g121", "g123",
        }
        greedy = len(greedy_set_cover(bag, instance))
        exact = exact_cover_size(bag, instance)
        assert exact <= greedy
        assert exact == brute_force_cover_size(bag, instance)
