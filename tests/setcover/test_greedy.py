"""Tests for the greedy set-cover heuristic (Figure 7.2)."""

import random

import pytest

from repro.setcover.greedy import (
    UncoverableError,
    greedy_cover_size,
    greedy_set_cover,
)


def edges(**named):
    return {name: frozenset(edge) for name, edge in named.items()}


class TestGreedy:
    def test_empty_target(self):
        assert greedy_set_cover(set(), edges(a={1, 2})) == []

    def test_single_edge_cover(self):
        cover = greedy_set_cover({1, 2}, edges(a={1, 2, 3}, b={1}))
        assert cover == ["a"]

    def test_takes_largest_gain_first(self):
        cover = greedy_set_cover(
            {1, 2, 3, 4},
            edges(big={1, 2, 3}, small1={1, 4}, small2={4}),
        )
        assert cover[0] == "big"
        assert set(cover) == {"big", "small1"}

    def test_classic_greedy_suboptimality(self):
        """The textbook instance where greedy picks one more set than
        optimal: optimal = {top, bottom}, greedy starts with the big
        middle set."""
        instance = edges(
            top={1, 2, 3, 4},
            bottom={5, 6, 7, 8},
            middle={2, 3, 4, 5, 6, 7},
        )
        cover = greedy_set_cover(set(range(1, 9)), instance)
        assert len(cover) == 3
        assert cover[0] == "middle"

    def test_uncoverable_raises(self):
        with pytest.raises(UncoverableError):
            greedy_set_cover({1, 99}, edges(a={1}))

    def test_deterministic_without_rng(self):
        instance = edges(a={1, 2}, b={1, 2}, c={3})
        first = greedy_set_cover({1, 2, 3}, instance)
        second = greedy_set_cover({1, 2, 3}, instance)
        assert first == second

    def test_rng_tie_breaking_varies(self):
        instance = edges(**{f"e{i}": {1, 2} for i in range(10)})
        seen = {
            tuple(greedy_set_cover({1, 2}, instance, rng=random.Random(s)))
            for s in range(20)
        }
        assert len(seen) > 1

    def test_cover_size_helper(self):
        assert greedy_cover_size({1, 2, 3}, edges(a={1, 2}, b={3})) == 2

    def test_cover_is_actually_a_cover(self):
        rng = random.Random(0)
        for seed in range(20):
            universe = set(range(12))
            instance = {
                f"e{i}": frozenset(rng.sample(sorted(universe), rng.randint(1, 5)))
                for i in range(8)
            }
            covered = set()
            for edge in instance.values():
                covered |= edge
            target = covered
            cover = greedy_set_cover(target, instance)
            union = set()
            for name in cover:
                union |= instance[name]
            assert target <= union
