"""Tests for simplicial reductions (Section 4.4.3)."""

from repro.hypergraphs.graph import Graph, complete_graph, cycle_graph, path_graph
from repro.reductions.simplicial import (
    find_reduction_vertex,
    find_simplicial,
    find_strongly_almost_simplicial,
    simplicial_preprocess,
)
from repro.search.astar_tw import astar_treewidth


class TestFindSimplicial:
    def test_path_endpoints(self):
        assert find_simplicial(path_graph(4)) in (0, 3)

    def test_complete_graph_all_simplicial(self):
        assert find_simplicial(complete_graph(4)) is not None

    def test_cycle_has_none(self):
        assert find_simplicial(cycle_graph(5)) is None

    def test_empty_graph(self):
        assert find_simplicial(Graph()) is None


class TestFindStronglyAlmostSimplicial:
    def test_cycle_vertices_with_good_bound(self):
        # C5 vertices are almost simplicial with degree 2; lb >= 2 allows
        assert find_strongly_almost_simplicial(cycle_graph(5), 2) is not None

    def test_bound_too_low(self):
        assert find_strongly_almost_simplicial(cycle_graph(5), 1) is None

    def test_excludes_outright_simplicial(self):
        graph = path_graph(3)
        vertex = find_strongly_almost_simplicial(graph, 5)
        if vertex is not None:
            assert not graph.is_simplicial(vertex)


class TestReductionVertex:
    def test_prefers_simplicial(self):
        graph = path_graph(4)
        vertex = find_reduction_vertex(graph, 0)
        assert graph.is_simplicial(vertex)

    def test_almost_simplicial_disabled(self):
        graph = cycle_graph(5)
        assert (
            find_reduction_vertex(graph, 2, allow_almost_simplicial=False)
            is None
        )


class TestPreprocess:
    def test_path_reduces_completely(self):
        reduced, prefix, bound = simplicial_preprocess(path_graph(6), 0)
        assert reduced.num_vertices() == 0
        assert len(prefix) == 6
        assert bound == 1  # treewidth of a path

    def test_treewidth_preserved(self):
        """tw(G) == max(bound, tw(reduced)) — verified with the exact
        solver on a graph with a simplicial fringe."""
        graph = cycle_graph(6)  # tw 2
        # attach pendant triangles (simplicial vertices of degree 2)
        graph.add_clique([0, 1, 100])
        graph.add_clique([3, 4, 101])
        truth = astar_treewidth(graph).value
        reduced, prefix, bound = simplicial_preprocess(graph, 0)
        rest = astar_treewidth(reduced).value if len(reduced) else 0
        assert max(bound, rest) == truth

    def test_no_reduction_possible(self):
        graph = cycle_graph(5)
        reduced, prefix, bound = simplicial_preprocess(
            graph, 0, allow_almost_simplicial=False
        )
        assert prefix == []
        assert reduced == graph

    def test_source_unchanged(self):
        graph = path_graph(5)
        before = graph.copy()
        simplicial_preprocess(graph, 0)
        assert graph == before
