"""Tests for pruning rules PR1 and PR2 (Sections 4.4.4-4.4.5)."""

import random
from itertools import permutations

from repro.decompositions.elimination import ordering_ghw, ordering_width
from repro.hypergraphs.graph import Graph, cycle_graph, path_graph
from repro.instances.dimacs_like import random_gnp
from repro.instances.hypergraphs import random_csp_hypergraph
from repro.reductions.pruning import (
    pr1_ghw,
    pr1_treewidth,
    pr2_prune_children,
    swap_safe_ghw,
    swap_safe_treewidth,
)


class TestPR1:
    def test_treewidth_certificate(self):
        achievable, close = pr1_treewidth(g=3, remaining=4)
        assert achievable == 3
        assert close

    def test_treewidth_open(self):
        achievable, close = pr1_treewidth(g=2, remaining=6)
        assert achievable == 5
        assert not close

    def test_ghw_certificate(self):
        achievable, close = pr1_ghw(g=3, remainder_cover=2)
        assert achievable == 3
        assert close

    def test_ghw_open(self):
        achievable, close = pr1_ghw(g=1, remainder_cover=4)
        assert achievable == 4
        assert not close


class TestSwapSafety:
    def test_non_adjacent_always_safe(self):
        graph = path_graph(4)
        assert swap_safe_treewidth(graph, 0, 2)
        assert swap_safe_ghw(graph, 0, 2)

    def test_adjacent_unsafe_for_ghw(self):
        graph = path_graph(4)
        assert not swap_safe_ghw(graph, 0, 1)

    def test_adjacent_with_private_neighbours_safe_for_tw(self):
        # 0 - 1 - 2 - 3: the middle edge (1,2) has private neighbours
        # 0 (of 1) and 3 (of 2)
        graph = path_graph(4)
        assert swap_safe_treewidth(graph, 1, 2)

    def test_adjacent_without_private_neighbour_unsafe(self):
        # In a triangle, 0 and 1 share their only other neighbour 2.
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        assert not swap_safe_treewidth(graph, 0, 1)

    def test_swap_preserves_width_when_declared_safe(self):
        """Semantic check of the PR2 claim on random graphs."""
        rng = random.Random(0)
        for seed in range(20):
            graph = random_gnp(7, 0.5, seed=seed)
            vertices = sorted(graph.vertices())
            ordering = vertices[:]
            rng.shuffle(ordering)
            v, w = ordering[0], ordering[1]
            if swap_safe_treewidth(graph, v, w):
                swapped = [w, v] + ordering[2:]
                assert ordering_width(graph, ordering) == ordering_width(
                    graph, swapped
                )

    def test_swap_preserves_ghw_when_declared_safe(self):
        rng = random.Random(1)
        for seed in range(15):
            hypergraph = random_csp_hypergraph(7, 5, arity=3, seed=seed)
            primal = hypergraph.primal_graph()
            ordering = sorted(hypergraph.vertices())
            rng.shuffle(ordering)
            v, w = ordering[0], ordering[1]
            if swap_safe_ghw(primal, v, w):
                swapped = [w, v] + ordering[2:]
                assert ordering_ghw(
                    hypergraph, ordering, cover="exact"
                ) == ordering_ghw(hypergraph, swapped, cover="exact")


class TestPruneChildren:
    def test_keeps_unsafe_pairs(self):
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        kept = pr2_prune_children(graph, 1, [0, 2])
        assert kept == [0, 2]  # both adjacent, no private neighbours

    def test_drops_canonically_smaller_safe_sibling(self):
        graph = path_graph(4)
        kept = pr2_prune_children(graph, 2, [0, 1, 3])
        # 0 is non-adjacent to 2 (safe) and canonically smaller: dropped.
        # 1 is adjacent to 2 but both have private neighbours (0 and 3),
        # so the pair is swap-safe too and 1 < 2: dropped as well.
        # 3 is adjacent to 2 with no private neighbour for 3: kept.
        assert kept == [3]

    def test_ghw_safety_keeps_adjacent_siblings(self):
        graph = path_graph(4)
        kept = pr2_prune_children(
            graph, 2, [0, 1, 3], swap_safe=swap_safe_ghw
        )
        # Under the ghw rule only non-adjacency is safe: 1 and 3 survive.
        assert kept == [1, 3]

    def test_keeps_canonically_larger(self):
        graph = path_graph(4)
        kept = pr2_prune_children(graph, 0, [2, 3])
        assert kept == [2, 3]

    def test_pruned_search_space_still_contains_optimum(self):
        """Exhaustively enumerate the PR2-pruned ordering tree and check
        it still reaches the optimal width."""
        for seed in range(8):
            graph = random_gnp(6, 0.5, seed=seed)
            vertices = sorted(graph.vertices())
            optimum = min(
                ordering_width(graph, list(perm))
                for perm in permutations(vertices)
            )

            best = [len(vertices)]

            def explore(working: Graph, prefix, g, children):
                if not children and working.num_vertices() == 0:
                    best[0] = min(best[0], g)
                    return
                for child in children:
                    degree = working.degree(child)
                    rest = [v for v in working.vertices() if v != child]
                    filtered = pr2_prune_children(working, child, rest)
                    after = working.copy()
                    after.eliminate(child)
                    explore(
                        after, prefix + [child], max(g, degree), filtered
                    )

            explore(graph.copy(), [], 0, vertices)
            assert best[0] == optimum
