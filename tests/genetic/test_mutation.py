"""Tests for the six mutation operators (Section 4.3.3)."""

import random

import pytest

from repro.genetic.mutation import (
    MUTATION_OPERATORS,
    exchange,
    get_mutation,
    insertion,
    simple_inversion,
)

ALL = sorted(MUTATION_OPERATORS)


class TestAllOperators:
    @pytest.mark.parametrize("name", ALL)
    @pytest.mark.parametrize("seed", range(10))
    def test_result_is_permutation(self, name, seed):
        operator = MUTATION_OPERATORS[name]
        individual = list(range(9))
        random.Random(seed).shuffle(individual)
        mutated = operator(individual, random.Random(seed + 100))
        assert sorted(mutated) == sorted(individual)

    @pytest.mark.parametrize("name", ALL)
    def test_input_not_mutated(self, name):
        operator = MUTATION_OPERATORS[name]
        individual = list(range(8))
        before = list(individual)
        operator(individual, random.Random(0))
        assert individual == before

    @pytest.mark.parametrize("name", ALL)
    def test_tiny_inputs(self, name):
        operator = MUTATION_OPERATORS[name]
        assert operator([1], random.Random(0)) == [1]
        assert operator([], random.Random(0)) == []

    @pytest.mark.parametrize("name", ALL)
    def test_usually_changes_something(self, name):
        """Over many seeds, at least one mutation must differ."""
        operator = MUTATION_OPERATORS[name]
        individual = list(range(10))
        changed = any(
            operator(individual, random.Random(seed)) != individual
            for seed in range(30)
        )
        assert changed

    @pytest.mark.parametrize("name", ALL)
    def test_deterministic_given_seed(self, name):
        operator = MUTATION_OPERATORS[name]
        individual = list(range(12))
        assert operator(individual, random.Random(5)) == operator(
            individual, random.Random(5)
        )


class TestSpecificBehaviour:
    def test_exchange_swaps_exactly_two(self):
        individual = list(range(10))
        mutated = exchange(individual, random.Random(1))
        diffs = [i for i in range(10) if mutated[i] != individual[i]]
        assert len(diffs) == 2

    def test_insertion_moves_one(self):
        individual = list(range(10))
        mutated = insertion(individual, random.Random(2))
        assert sorted(mutated) == individual

    def test_simple_inversion_reverses_segment(self):
        individual = list(range(10))
        mutated = simple_inversion(individual, random.Random(3))
        # find the changed window and check it is reversed
        diffs = [i for i in range(10) if mutated[i] != individual[i]]
        if diffs:
            lo, hi = diffs[0], diffs[-1] + 1
            assert mutated[lo:hi] == individual[lo:hi][::-1]


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_mutation("ism") is insertion

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_mutation("QQ")
