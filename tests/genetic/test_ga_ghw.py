"""Tests for GA-ghw (Chapter 7, Section 7.1)."""

from repro.decompositions.elimination import ordering_ghw
from repro.genetic.engine import GAParameters
from repro.genetic.ga_ghw import ga_ghw, ga_ghw_upper_bound, make_ghw_evaluator
from repro.hypergraphs.hypergraph import Hypergraph
from repro.instances.hypergraphs import adder, clique_hypergraph, grid2d
from repro.search.bb_ghw import branch_and_bound_ghw

FAST = GAParameters(population_size=20, max_iterations=30)


class TestEvaluator:
    def test_matches_ordering_ghw(self, example5):
        evaluate = make_ghw_evaluator(example5)
        ordering = sorted(example5.vertices())
        assert evaluate(ordering) == ordering_ghw(
            example5, ordering, cover="greedy"
        )

    def test_greedy_at_least_exact(self, example5):
        evaluate = make_ghw_evaluator(example5)
        ordering = sorted(example5.vertices())
        assert evaluate(ordering) >= ordering_ghw(
            example5, ordering, cover="exact"
        )


class TestUpperBounds:
    def test_example5_reaches_optimum(self, example5):
        result = ga_ghw(example5, parameters=FAST, seed=0)
        assert result.best_fitness == 2

    def test_adder_reaches_2(self):
        result = ga_ghw(adder(4), parameters=FAST, seed=0)
        assert result.best_fitness == 2

    def test_never_below_true_ghw(self):
        hypergraph = grid2d(3)
        truth = branch_and_bound_ghw(hypergraph).value
        result = ga_ghw(hypergraph, parameters=FAST, seed=1)
        assert result.best_fitness >= truth

    def test_clique(self):
        result = ga_ghw(clique_hypergraph(6), parameters=FAST, seed=0)
        assert result.best_fitness == 3

    def test_fitness_achieved_by_individual(self, example5):
        result = ga_ghw(example5, parameters=FAST, seed=4)
        achieved = ordering_ghw(
            example5, result.best_individual, cover="greedy"
        )
        # greedy tie-breaks are randomised inside the GA; without an rng
        # the deterministic greedy can only do as well or better
        assert achieved <= result.best_fitness

    def test_edgeless_hypergraph(self):
        result = ga_ghw(Hypergraph(vertices=[1, 2]))
        assert result.best_fitness == 0

    def test_reproducible(self, example5):
        a = ga_ghw(example5, parameters=FAST, seed=9).best_fitness
        b = ga_ghw(example5, parameters=FAST, seed=9).best_fitness
        assert a == b

    def test_multi_run_helper(self, example5):
        assert (
            ga_ghw_upper_bound(example5, parameters=FAST, seed=0, runs=2)
            == 2
        )
