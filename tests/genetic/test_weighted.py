"""Tests for the weighted triangulation objective (Section 4.5)."""

import math

import pytest

from repro.decompositions.elimination import ordering_width
from repro.genetic.engine import GAParameters
from repro.genetic.weighted import (
    ga_weighted_triangulation,
    triangulation_weight,
)
from repro.hypergraphs.graph import Graph, complete_graph, path_graph
from repro.instances.dimacs_like import grid_graph

FAST = GAParameters(population_size=15, max_iterations=20)


class TestWeight:
    def test_uniform_states_count_tables(self):
        graph = path_graph(3)
        states = {v: 2 for v in graph}
        # bags along 0,1,2: {0,1}, {1,2}, {2} -> 4 + 4 + 2 = 10
        weight = triangulation_weight(graph, [0, 1, 2], states)
        assert weight == pytest.approx(math.log2(10))

    def test_bigger_bags_cost_more(self):
        graph = complete_graph(4)
        states = {v: 3 for v in graph}
        small = triangulation_weight(path_graph(4), [0, 1, 2, 3], {v: 3 for v in range(4)})
        big = triangulation_weight(graph, [0, 1, 2, 3], states)
        assert big > small

    def test_nonuniform_states_steer_the_objective(self):
        """A huge-state vertex should be eliminated where its bag is
        smallest; the weight tells those orderings apart while the width
        cannot."""
        graph = path_graph(3)
        states = {0: 2, 1: 2, 2: 100}
        # both orderings have width 1, but eliminating the heavy end
        # last leaves it alone in its final bag
        costly = triangulation_weight(graph, [0, 1, 2], states)
        cheap = triangulation_weight(graph, [2, 1, 0], states)
        assert ordering_width(graph, [0, 1, 2]) == ordering_width(
            graph, [2, 1, 0]
        )
        assert cheap < costly

    def test_invalid_state_count(self):
        graph = path_graph(2)
        with pytest.raises(ValueError):
            triangulation_weight(graph, [0, 1], {0: 0, 1: 2})


class TestGa:
    def test_runs_and_is_reproducible(self):
        graph = grid_graph(3)
        states = {v: 2 for v in graph}
        first = ga_weighted_triangulation(
            graph, states, parameters=FAST, seed=3
        )
        second = ga_weighted_triangulation(
            graph, states, parameters=FAST, seed=3
        )
        assert first.best_fitness == second.best_fitness

    def test_best_individual_achieves_fitness(self):
        graph = grid_graph(3)
        states = {v: 2 for v in graph}
        result = ga_weighted_triangulation(
            graph, states, parameters=FAST, seed=0
        )
        weight = triangulation_weight(graph, result.best_individual, states)
        assert round(1000 * weight) == result.best_fitness

    def test_missing_states_rejected(self):
        graph = path_graph(3)
        with pytest.raises(ValueError):
            ga_weighted_triangulation(graph, {0: 2}, parameters=FAST)

    def test_avoids_heavy_vertex_bags(self):
        """With one enormous variable, the GA finds an ordering whose
        weight matches the best ordering's weight for a small graph."""
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        states = {0: 2, 1: 2, 2: 50, 3: 2}
        result = ga_weighted_triangulation(
            graph, states, parameters=FAST, seed=1
        )
        from itertools import permutations

        best = min(
            triangulation_weight(graph, list(perm), states)
            for perm in permutations(range(4))
        )
        assert result.best_fitness == round(1000 * best)
