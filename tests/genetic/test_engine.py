"""Tests for the generic GA engine and selection (Figures 4.4 and 6.1)."""

import random

import pytest

from repro.genetic.engine import GAParameters, run_ga
from repro.genetic.selection import best_individual, tournament_selection


class TestSelection:
    def test_tournament_prefers_fitter(self):
        rng = random.Random(0)
        population = [[1], [2], [3]]
        fitnesses = [10, 1, 5]
        selected = tournament_selection(
            population, fitnesses, group_size=3, count=20, rng=rng
        )
        # with full-population tournaments the best always wins
        assert all(individual == [2] for individual in selected)

    def test_group_size_one_is_uniform(self):
        rng = random.Random(1)
        population = [[1], [2]]
        selected = tournament_selection(
            population, [5, 1], group_size=1, count=200, rng=rng
        )
        ones = sum(1 for ind in selected if ind == [1])
        assert 50 < ones < 150  # roughly uniform despite fitness gap

    def test_selected_are_copies(self):
        rng = random.Random(2)
        population = [[1, 2]]
        selected = tournament_selection(
            population, [0], group_size=1, count=1, rng=rng
        )
        selected[0].append(99)
        assert population[0] == [1, 2]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            tournament_selection([[1]], [1, 2], 2, 1, random.Random(0))

    def test_empty_population(self):
        with pytest.raises(ValueError):
            tournament_selection([], [], 2, 1, random.Random(0))

    def test_best_individual(self):
        individual, fitness = best_individual([[1], [2], [3]], [4, 1, 9])
        assert individual == [2] and fitness == 1


class TestParameters:
    def test_defaults_valid(self):
        GAParameters().validated()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("population_size", 1),
            ("crossover_rate", 1.5),
            ("mutation_rate", -0.1),
            ("group_size", 0),
            ("max_iterations", -1),
            ("crossover", "NOPE"),
            ("mutation", "NOPE"),
        ],
    )
    def test_invalid_rejected(self, field, value):
        parameters = GAParameters(**{field: value})
        with pytest.raises(ValueError):
            parameters.validated()


class TestEngine:
    def sort_distance(self, individual):
        """Fitness: number of adjacent inversions (0 = sorted)."""
        return sum(
            1
            for a, b in zip(individual, individual[1:])
            if a > b
        )

    def test_optimises_simple_objective(self):
        rng = random.Random(0)
        result = run_ga(
            list(range(8)),
            self.sort_distance,
            GAParameters(population_size=30, max_iterations=60),
            rng,
        )
        assert result.best_fitness <= 1

    def test_target_stops_early(self):
        rng = random.Random(0)
        result = run_ga(
            list(range(6)),
            self.sort_distance,
            GAParameters(population_size=20, max_iterations=500),
            rng,
            seeds=[list(range(6))],
            target=0,
        )
        assert result.best_fitness == 0
        assert result.generations == 0  # seeded with the optimum

    def test_history_is_monotone_nonincreasing(self):
        rng = random.Random(3)
        result = run_ga(
            list(range(7)),
            self.sort_distance,
            GAParameters(population_size=10, max_iterations=25),
            rng,
        )
        assert result.history == sorted(result.history, reverse=True)

    def test_deterministic_given_seed(self):
        results = [
            run_ga(
                list(range(7)),
                self.sort_distance,
                GAParameters(population_size=10, max_iterations=10),
                random.Random(42),
            ).best_fitness
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_time_limit_respected(self):
        rng = random.Random(0)
        result = run_ga(
            list(range(10)),
            self.sort_distance,
            GAParameters(population_size=10, max_iterations=10_000),
            rng,
            time_limit=0.05,
        )
        assert result.generations < 10_000

    def test_best_individual_matches_best_fitness(self):
        rng = random.Random(5)
        result = run_ga(
            list(range(8)),
            self.sort_distance,
            GAParameters(population_size=15, max_iterations=15),
            rng,
        )
        assert self.sort_distance(result.best_individual) == result.best_fitness

    def test_zero_iterations_returns_initial_best(self):
        rng = random.Random(1)
        result = run_ga(
            list(range(5)),
            self.sort_distance,
            GAParameters(population_size=5, max_iterations=0),
            rng,
        )
        assert result.generations == 0
        assert result.evaluations == 5
