"""Tests for the six crossover operators (Section 4.3.2)."""

import random

import pytest

from repro.genetic.crossover import (
    CROSSOVER_OPERATORS,
    ap,
    cx,
    get_crossover,
    ox1,
    ox2,
    pmx,
    pos,
)

ALL = sorted(CROSSOVER_OPERATORS)


def random_parents(n, seed):
    rng = random.Random(seed)
    p1 = list(range(n))
    p2 = list(range(n))
    rng.shuffle(p1)
    rng.shuffle(p2)
    return p1, p2


class TestAllOperators:
    @pytest.mark.parametrize("name", ALL)
    @pytest.mark.parametrize("seed", range(10))
    def test_children_are_permutations(self, name, seed):
        operator = CROSSOVER_OPERATORS[name]
        p1, p2 = random_parents(9, seed)
        rng = random.Random(seed + 999)
        c1, c2 = operator(p1, p2, rng)
        assert sorted(c1) == sorted(p1)
        assert sorted(c2) == sorted(p1)

    @pytest.mark.parametrize("name", ALL)
    def test_parents_not_mutated(self, name):
        operator = CROSSOVER_OPERATORS[name]
        p1, p2 = random_parents(8, 3)
        before1, before2 = list(p1), list(p2)
        operator(p1, p2, random.Random(0))
        assert p1 == before1 and p2 == before2

    @pytest.mark.parametrize("name", ALL)
    def test_tiny_inputs(self, name):
        operator = CROSSOVER_OPERATORS[name]
        c1, c2 = operator([1], [1], random.Random(0))
        assert c1 == [1] and c2 == [1]
        c1, c2 = operator([], [], random.Random(0))
        assert c1 == [] and c2 == []

    @pytest.mark.parametrize("name", ALL)
    def test_identical_parents_reproduce(self, name):
        operator = CROSSOVER_OPERATORS[name]
        parent = list(range(7))
        c1, c2 = operator(parent, parent, random.Random(5))
        assert c1 == parent and c2 == parent

    @pytest.mark.parametrize("name", ALL)
    def test_deterministic_given_seed(self, name):
        operator = CROSSOVER_OPERATORS[name]
        p1, p2 = random_parents(10, 7)
        first = operator(p1, p2, random.Random(11))
        second = operator(p1, p2, random.Random(11))
        assert first == second


class TestSpecificBehaviour:
    def test_cx_positions_preserved(self):
        """Every CX child gene sits at that gene's position in one parent."""
        p1, p2 = random_parents(8, 1)
        c1, c2 = cx(p1, p2, random.Random(0))
        for i in range(8):
            assert c1[i] in (p1[i], p2[i])
            assert c2[i] in (p1[i], p2[i])

    def test_pmx_keeps_a_segment(self):
        rng = random.Random(2)
        p1, p2 = random_parents(10, 2)
        c1, _c2 = pmx(p1, p2, rng)
        # child1 carries a contiguous segment of parent2
        matches = [i for i in range(10) if c1[i] == p2[i]]
        assert matches, "PMX child should inherit the donor segment"

    def test_ap_alternates(self):
        p1 = [1, 2, 3, 4]
        p2 = [4, 3, 2, 1]
        c1, c2 = ap(p1, p2, random.Random(0))
        assert c1 == [1, 4, 2, 3]
        assert c2 == [4, 1, 3, 2]

    def test_ox1_keeps_segment_in_place(self):
        rng = random.Random(4)
        p1, p2 = random_parents(10, 4)
        c1, _ = ox1(p1, p2, rng)
        segment = [i for i in range(10) if c1[i] == p1[i]]
        assert segment, "OX1 must keep the chosen segment of parent 1"

    def test_pos_inherits_selected_positions(self):
        # POS children mix both parents and stay permutations (already
        # covered); here: with all-same parents nothing changes
        parent = list(range(6))
        c1, c2 = pos(parent, parent[::-1], random.Random(9))
        assert sorted(c1) == parent
        assert sorted(c2) == parent

    def test_ox2_reorders_to_other_parent(self):
        p1 = [1, 2, 3, 4, 5]
        p2 = [5, 4, 3, 2, 1]
        c1, _ = ox2(p1, p2, random.Random(1))
        assert sorted(c1) == sorted(p1)


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_crossover("pos") is pos
        assert get_crossover("PMX") is pmx

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_crossover("XYZ")
