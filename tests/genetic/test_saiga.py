"""Tests for SAIGA-ghw (Section 7.2)."""

import random

from repro.genetic.saiga import ParameterVector, saiga_ghw
from repro.hypergraphs.hypergraph import Hypergraph
from repro.instances.hypergraphs import adder, clique_hypergraph
from repro.search.bb_ghw import branch_and_bound_ghw


class TestParameterVector:
    def test_random_in_ranges(self):
        for seed in range(20):
            vector = ParameterVector.random(random.Random(seed))
            assert (
                ParameterVector.RATE_MIN
                <= vector.crossover_rate
                <= ParameterVector.RATE_MAX
            )
            assert (
                ParameterVector.RATE_MIN
                <= vector.mutation_rate
                <= ParameterVector.RATE_MAX
            )
            assert (
                ParameterVector.GROUP_MIN
                <= vector.group_size
                <= ParameterVector.GROUP_MAX
            )

    def test_mutation_stays_in_ranges(self):
        rng = random.Random(0)
        vector = ParameterVector.random(rng)
        for _ in range(50):
            vector = vector.mutated(rng)
            assert (
                ParameterVector.RATE_MIN
                <= vector.mutation_rate
                <= ParameterVector.RATE_MAX
            )
            assert (
                ParameterVector.GROUP_MIN
                <= vector.group_size
                <= ParameterVector.GROUP_MAX
            )

    def test_orientation_moves_rates_toward_target(self):
        rng = random.Random(1)
        low = ParameterVector(0.1, 0.1, 2, "POS", "ISM")
        high = ParameterVector(0.9, 0.9, 4, "PMX", "EM")
        pulled = low.oriented_toward(high, rng, pull=0.5)
        assert 0.1 < pulled.crossover_rate < 0.9
        assert 0.1 < pulled.mutation_rate < 0.9

    def test_as_ga_parameters_valid(self):
        vector = ParameterVector.random(random.Random(2))
        vector.as_ga_parameters(10, 5).validated()


class TestSaiga:
    def test_example5_reaches_optimum(self, example5):
        result = saiga_ghw(
            example5,
            islands=3,
            island_population=10,
            epochs=4,
            epoch_generations=5,
            seed=0,
        )
        assert result.best_fitness == 2

    def test_adder(self):
        result = saiga_ghw(
            adder(3),
            islands=2,
            island_population=10,
            epochs=3,
            epoch_generations=4,
            seed=0,
        )
        assert result.best_fitness == 2

    def test_never_below_true_ghw(self):
        hypergraph = clique_hypergraph(6)
        truth = branch_and_bound_ghw(hypergraph).value
        result = saiga_ghw(
            hypergraph,
            islands=2,
            island_population=8,
            epochs=3,
            epoch_generations=3,
            seed=3,
        )
        assert result.best_fitness >= truth

    def test_history_monotone(self, example5):
        result = saiga_ghw(
            example5, islands=2, island_population=8, epochs=5,
            epoch_generations=3, seed=1,
        )
        assert result.history == sorted(result.history, reverse=True)

    def test_reports_final_parameters(self, example5):
        result = saiga_ghw(
            example5, islands=3, island_population=6, epochs=2,
            epoch_generations=2, seed=2,
        )
        assert len(result.final_parameters) == 3

    def test_reproducible(self, example5):
        runs = [
            saiga_ghw(
                example5, islands=2, island_population=6, epochs=3,
                epoch_generations=3, seed=11,
            ).best_fitness
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_edgeless(self):
        result = saiga_ghw(Hypergraph(vertices=[1]))
        assert result.best_fitness == 0

    def test_target_stops_early(self, example5):
        result = saiga_ghw(
            example5, islands=2, island_population=8, epochs=50,
            epoch_generations=3, seed=0, target=2,
        )
        assert result.best_fitness == 2
