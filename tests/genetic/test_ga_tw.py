"""Tests for GA-tw (Chapter 6)."""

from repro.decompositions.elimination import ordering_width
from repro.genetic.engine import GAParameters
from repro.genetic.ga_tw import ga_treewidth, ga_treewidth_upper_bound
from repro.hypergraphs.graph import Graph, cycle_graph, path_graph
from repro.instances.dimacs_like import grid_graph, queen_graph
from repro.search.astar_tw import astar_treewidth

FAST = GAParameters(population_size=20, max_iterations=30)


class TestUpperBoundValidity:
    def test_result_is_achievable(self):
        graph = grid_graph(3)
        result = ga_treewidth(graph, parameters=FAST, seed=1)
        assert (
            ordering_width(graph, result.best_individual)
            == result.best_fitness
        )

    def test_never_below_treewidth(self):
        graph = queen_graph(4)
        truth = astar_treewidth(graph).value
        result = ga_treewidth(graph, parameters=FAST, seed=2)
        assert result.best_fitness >= truth

    def test_finds_optimum_on_easy_graphs(self):
        assert ga_treewidth(path_graph(10), parameters=FAST).best_fitness == 1
        assert ga_treewidth(cycle_graph(8), parameters=FAST).best_fitness == 2

    def test_grid3_optimal(self):
        result = ga_treewidth(grid_graph(3), parameters=FAST, seed=0)
        assert result.best_fitness == 3


class TestBehaviour:
    def test_accepts_hypergraph(self, example5):
        result = ga_treewidth(example5, parameters=FAST, seed=0)
        assert result.best_fitness >= 1

    def test_single_vertex_graph(self):
        result = ga_treewidth(Graph(vertices=[1]))
        assert result.best_fitness == 0

    def test_heuristic_seeding_never_hurts(self):
        graph = queen_graph(4)
        seeded = ga_treewidth(
            graph, parameters=FAST, seed=3, seed_heuristics=True
        )
        unseeded = ga_treewidth(
            graph, parameters=FAST, seed=3, seed_heuristics=False
        )
        # min-fill is strong on queen graphs; the seeded run starts at
        # least as good and the engine keeps the champion
        assert seeded.best_fitness <= unseeded.history[0]

    def test_reproducible(self):
        graph = grid_graph(3)
        a = ga_treewidth(graph, parameters=FAST, seed=7).best_fitness
        b = ga_treewidth(graph, parameters=FAST, seed=7).best_fitness
        assert a == b

    def test_target_early_stop(self):
        graph = path_graph(12)
        result = ga_treewidth(graph, parameters=FAST, seed=0, target=1)
        assert result.best_fitness == 1

    def test_multi_run_helper_takes_best(self):
        graph = grid_graph(3)
        bound = ga_treewidth_upper_bound(
            graph, parameters=FAST, seed=0, runs=3
        )
        assert bound == 3
