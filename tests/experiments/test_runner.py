"""Tests for the experiment runner."""

import pytest

from repro.experiments.runner import (
    ExperimentSpec,
    run_experiment,
)


class TestSpecValidation:
    def test_bad_measure(self):
        with pytest.raises(ValueError):
            ExperimentSpec(instances=["grid3"], measure="zzz").validated()

    def test_bad_algorithm(self):
        with pytest.raises(ValueError):
            ExperimentSpec(
                instances=["grid3"], algorithms=["quantum"]
            ).validated()

    def test_empty_instances(self):
        with pytest.raises(ValueError):
            ExperimentSpec(instances=[]).validated()

    def test_ghw_algorithm_names_differ(self):
        # min-fill is a tw heuristic, not a ghw one
        with pytest.raises(ValueError):
            ExperimentSpec(
                instances=["adder_3"],
                measure="ghw",
                algorithms=["min-fill"],
            ).validated()


class TestRun:
    def test_tw_exact_and_heuristics(self):
        spec = ExperimentSpec(
            instances=["grid3", "myciel3"],
            measure="tw",
            algorithms=["astar", "min-fill", "sa"],
            time_limit=10.0,
        )
        table = run_experiment(spec)
        assert len(table.rows) == 2
        grid_row = table.rows[0]
        assert grid_row["astar"] == 3
        assert grid_row["min-fill"] >= 3
        assert grid_row["sa"] >= 3
        assert "astar_s" in grid_row

    def test_ghw_run(self):
        spec = ExperimentSpec(
            instances=["adder_3"],
            measure="ghw",
            algorithms=["bb", "sa"],
            time_limit=10.0,
        )
        table = run_experiment(spec)
        assert table.rows[0]["bb"] == 2
        assert table.rows[0]["sa"] >= 2

    def test_budgeted_exact_reports_bracket(self):
        spec = ExperimentSpec(
            instances=["queen5_5"],
            measure="tw",
            algorithms=["bb"],
            node_limit=3,
        )
        table = run_experiment(spec)
        cell = str(table.rows[0]["bb"])
        assert cell == "18" or "*[" in cell

    def test_graph_instance_rejected_for_ghw(self):
        spec = ExperimentSpec(
            instances=["grid3"], measure="ghw", algorithms=["bb"]
        )
        with pytest.raises(ValueError):
            run_experiment(spec)

    def test_to_text_renders_all_rows(self):
        spec = ExperimentSpec(
            instances=["grid2", "grid3"],
            measure="tw",
            algorithms=["astar"],
        )
        table = run_experiment(spec)
        text = table.to_text()
        assert "grid2" in text and "grid3" in text
        assert "instance" in text

    def test_column_accessor(self):
        spec = ExperimentSpec(
            instances=["grid2", "grid3"],
            measure="tw",
            algorithms=["astar"],
        )
        table = run_experiment(spec)
        assert table.column("astar") == [2, 3]


class TestPortfolioColumn:
    def test_portfolio_cell_certifies(self):
        spec = ExperimentSpec(
            instances=["bridge_3"],
            measure="ghw",
            algorithms=["portfolio", "sa"],
            time_limit=10.0,
        )
        table = run_experiment(spec, collect_reports=True)
        row = table.rows[0]
        assert row["portfolio"] == 2
        assert row["sa"] >= 2
        cell_report = next(
            r for r in table.reports if r.solver == "portfolio"
        )
        assert cell_report.status == "optimal"
        assert cell_report.value == 2
        # the cell's report nests one report per racing worker
        assert len(cell_report.workers) >= 2
        from repro.obs.report import validate_report

        validate_report(cell_report.to_dict())

    def test_portfolio_accepted_for_both_measures(self):
        for measure, instance in (("tw", "grid3"), ("ghw", "adder_3")):
            ExperimentSpec(
                instances=[instance],
                measure=measure,
                algorithms=["portfolio"],
            ).validated()
