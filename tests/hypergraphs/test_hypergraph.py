"""Tests for hypergraphs, primal and dual graphs (Definitions 2-4)."""

import pytest

from repro.hypergraphs.graph import Graph, complete_graph
from repro.hypergraphs.hypergraph import Hypergraph, from_graph


class TestConstruction:
    def test_named_edges(self, example5):
        assert example5.num_vertices() == 6
        assert example5.num_edges() == 3
        assert example5.edge("C1") == {"x1", "x2", "x3"}

    def test_auto_named_edges(self):
        hypergraph = Hypergraph([{1, 2}, {2, 3}])
        assert set(hypergraph.edge_names()) == {"e0", "e1"}

    def test_empty_edge_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph({"bad": set()})

    def test_duplicate_name_rejected(self):
        hypergraph = Hypergraph({"e": {1, 2}})
        with pytest.raises(ValueError):
            hypergraph.add_edge("e", {3, 4})

    def test_isolated_vertices_allowed(self):
        hypergraph = Hypergraph({"e": {1, 2}}, vertices=[99])
        assert 99 in hypergraph
        assert hypergraph.num_vertices() == 3


class TestQueries:
    def test_edges_containing(self, example5):
        assert set(example5.edges_containing("x1")) == {"C1", "C2"}
        assert example5.edges_containing("x4") == ["C3"]

    def test_incidence(self, example5):
        incidence = example5.incidence()
        assert incidence["x5"] == {"C2", "C3"}
        assert incidence["x2"] == {"C1"}

    def test_max_edge_size(self, example5):
        assert example5.max_edge_size() == 3
        assert Hypergraph().max_edge_size() == 0

    def test_edges_returns_copy(self, example5):
        edges = example5.edges()
        edges["X"] = frozenset({"x1"})
        assert "X" not in example5.edge_names()

    def test_equality_and_copy(self, example5):
        clone = example5.copy()
        assert clone == example5
        clone.add_edge("extra", {"x1"})
        assert clone != example5


class TestPrimalGraph:
    def test_example5_primal(self, example5):
        primal = example5.primal_graph()
        assert primal.num_vertices() == 6
        # each ternary edge is a triangle; they overlap in x1, x3, x5
        assert primal.has_edge("x1", "x2")
        assert primal.has_edge("x1", "x6")
        assert primal.has_edge("x4", "x5")
        assert not primal.has_edge("x2", "x4")
        assert primal.num_edges() == 9

    def test_single_edge_is_clique(self):
        hypergraph = Hypergraph({"h": {1, 2, 3, 4}})
        primal = hypergraph.primal_graph()
        assert primal.is_clique([1, 2, 3, 4])
        assert primal.num_edges() == complete_graph(4).num_edges()

    def test_binary_hypergraph_primal_is_itself(self):
        graph = complete_graph(5)
        assert from_graph(graph).primal_graph() == graph


class TestDualGraph:
    def test_example5_dual(self, example5):
        dual = example5.dual_graph()
        assert dual.vertices() == {"C1", "C2", "C3"}
        # C1 and C2 share x1; C1 and C3 share x3; C2 and C3 share x5
        assert dual.num_edges() == 3

    def test_disjoint_edges_disconnected(self):
        hypergraph = Hypergraph({"a": {1, 2}, "b": {3, 4}})
        assert hypergraph.dual_graph().num_edges() == 0


class TestEliminate:
    def test_definition_16_merge(self, figure_2_11):
        """Eliminating a vertex merges all edges containing it."""
        result = figure_2_11.eliminate("x6")
        assert "x6" not in result
        merged = [
            edge for edge in result.edge_sets() if edge == {"x4", "x5"}
        ]
        assert merged, "h4 should have been reduced to {x4, x5}"

    def test_eliminate_matches_primal_elimination(self, figure_2_11):
        """Definition 16 adjacency == vertex elimination adjacency."""
        hypergraph = figure_2_11
        primal = hypergraph.primal_graph()
        for vertex in sorted(hypergraph.vertices()):
            reduced = hypergraph.eliminate(vertex)
            eliminated_primal = primal.copy()
            eliminated_primal.eliminate(vertex)
            assert reduced.primal_graph() == eliminated_primal

    def test_eliminate_unknown_vertex(self, example5):
        with pytest.raises(KeyError):
            example5.eliminate("nope")


class TestRestrict:
    def test_restrict_drops_empty_edges(self, example5):
        restricted = example5.restrict({"x2", "x3"})
        # C2 = {x1, x5, x6} is disjoint from the kept set and vanishes;
        # C1 and C3 survive with their intersections.
        assert set(restricted.edge_names()) == {"C1", "C3"}
        assert restricted.edge("C1") == {"x2", "x3"}
        assert restricted.edge("C3") == {"x3"}

    def test_restrict_to_disjoint_set_is_empty(self, example5):
        restricted = example5.restrict({"zzz"})
        assert restricted.num_edges() == 0
        assert restricted.num_vertices() == 0

    def test_restrict_keeps_names(self, example5):
        restricted = example5.restrict(example5.vertices())
        assert restricted == example5


class TestFromGraph:
    def test_edges_are_pairs(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        hypergraph = from_graph(graph)
        assert hypergraph.num_edges() == 2
        assert all(len(edge) == 2 for edge in hypergraph.edge_sets())

    def test_is_connected(self, example5):
        assert example5.is_connected()
        assert not Hypergraph({"a": {1}, "b": {2}}).is_connected()
        assert not Hypergraph().is_connected()
