"""Tests for chordality and perfect elimination orderings."""

import pytest

from repro.hypergraphs.chordal import (
    fill_in_graph,
    is_chordal,
    is_perfect_elimination_ordering,
    maximum_clique_of_chordal,
    treewidth_of_chordal,
)
from repro.hypergraphs.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
)
from repro.instances.dimacs_like import random_gnp
from repro.search.astar_tw import astar_treewidth


def clique_chain(cliques: int) -> Graph:
    """Overlapping triangles 0-1-2, 1-2-3, ...: chordal, treewidth 2."""
    graph = Graph()
    for i in range(cliques):
        graph.add_clique([i, i + 1, i + 2])
    return graph


class TestPerfectEliminationOrdering:
    def test_path_any_end_first(self):
        graph = path_graph(5)
        assert is_perfect_elimination_ordering(graph, [0, 1, 2, 3, 4])
        assert is_perfect_elimination_ordering(graph, [4, 3, 2, 1, 0])

    def test_cycle_has_none(self):
        graph = cycle_graph(5)
        assert not is_perfect_elimination_ordering(graph, [0, 1, 2, 3, 4])

    def test_complete_graph_everything_works(self):
        graph = complete_graph(4)
        assert is_perfect_elimination_ordering(graph, [2, 0, 3, 1])

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError):
            is_perfect_elimination_ordering(path_graph(3), [0, 1])

    def test_peo_iff_no_fill(self):
        """Cross-check against explicit fill-in computation."""
        import random

        rng = random.Random(0)
        for seed in range(15):
            graph = random_gnp(7, 0.5, seed=seed)
            ordering = sorted(graph.vertices())
            rng.shuffle(ordering)
            filled = fill_in_graph(graph, ordering)
            no_fill = filled.num_edges() == graph.num_edges()
            assert is_perfect_elimination_ordering(graph, ordering) == no_fill


class TestChordality:
    def test_trees_are_chordal(self):
        assert is_chordal(path_graph(6))

    def test_cliques_are_chordal(self):
        assert is_chordal(complete_graph(5))

    def test_cycles_are_not(self):
        assert not is_chordal(cycle_graph(4))
        assert not is_chordal(cycle_graph(6))

    def test_triangle_is_chordal(self):
        assert is_chordal(cycle_graph(3))

    def test_clique_chain(self):
        assert is_chordal(clique_chain(4))

    def test_empty(self):
        assert is_chordal(Graph())

    def test_fill_in_makes_chordal(self):
        for seed in range(8):
            graph = random_gnp(8, 0.4, seed=seed)
            filled = fill_in_graph(graph, sorted(graph.vertices()))
            assert is_chordal(filled)
            assert is_perfect_elimination_ordering(
                filled, sorted(graph.vertices())
            )


class TestCliqueAndWidth:
    def test_maximum_clique(self):
        graph = clique_chain(3)
        clique = maximum_clique_of_chordal(graph)
        assert len(clique) == 3
        assert graph.is_clique(clique)

    def test_non_chordal_rejected(self):
        with pytest.raises(ValueError):
            maximum_clique_of_chordal(cycle_graph(5))

    def test_treewidth_matches_exact_search(self):
        for build in (
            lambda: path_graph(7),
            lambda: complete_graph(5),
            lambda: clique_chain(4),
        ):
            graph = build()
            assert (
                treewidth_of_chordal(graph)
                == astar_treewidth(graph).value
            )

    def test_random_triangulations(self):
        """tw(chordal fill-in) from the clique number equals the search."""
        for seed in range(5):
            graph = random_gnp(7, 0.35, seed=seed + 30)
            filled = fill_in_graph(graph, sorted(graph.vertices()))
            assert (
                treewidth_of_chordal(filled)
                == astar_treewidth(filled).value
            )
