"""Tests for DIMACS and hypergraph file formats."""

import pytest

from repro.hypergraphs.io import (
    FormatError,
    parse_dimacs,
    parse_hypergraph,
    read_dimacs,
    read_hypergraph,
    write_dimacs,
    write_hypergraph,
)
from repro.instances.dimacs_like import queen_graph


class TestDimacsParsing:
    def test_basic(self):
        text = """c a comment
p edge 3 2
e 1 2
e 2 3
"""
        graph = parse_dimacs(text)
        assert graph.num_vertices() == 3
        assert graph.num_edges() == 2
        assert graph.has_edge(1, 2)

    def test_duplicate_edges_collapse(self):
        graph = parse_dimacs("p edge 2 2\ne 1 2\ne 2 1\n")
        assert graph.num_edges() == 1

    def test_isolated_vertices_from_header(self):
        graph = parse_dimacs("p edge 5 1\ne 1 2\n")
        assert graph.num_vertices() == 5
        assert graph.degree(5) == 0

    def test_bad_problem_line(self):
        with pytest.raises(FormatError):
            parse_dimacs("p something 3\n")

    def test_bad_edge_line(self):
        with pytest.raises(FormatError):
            parse_dimacs("p edge 2 1\ne 1\n")

    def test_unknown_record(self):
        with pytest.raises(FormatError):
            parse_dimacs("p edge 1 0\nx nonsense\n")

    def test_node_lines_ignored(self):
        graph = parse_dimacs("p edge 2 1\nn 1 3\ne 1 2\n")
        assert graph.num_edges() == 1


class TestDimacsRoundtrip:
    def test_roundtrip(self, tmp_path):
        original = queen_graph(4)
        path = tmp_path / "queen.col"
        write_dimacs(original, path)
        loaded = read_dimacs(path)
        assert loaded.num_vertices() == original.num_vertices()
        assert loaded.num_edges() == original.num_edges()

    def test_written_header_consistent(self, tmp_path):
        graph = queen_graph(3)
        path = tmp_path / "g.col"
        write_dimacs(graph, path)
        first = path.read_text().splitlines()[0].split()
        assert first == ["p", "edge", "9", str(graph.num_edges())]


class TestHypergraphParsing:
    def test_named_edges(self):
        text = """% comment
C1(x1, x2, x3)
C2(x1,x5,x6),
C3(x3, x4, x5).
"""
        hypergraph = parse_hypergraph(text)
        assert hypergraph.num_edges() == 3
        assert hypergraph.edge("C2") == {"x1", "x5", "x6"}

    def test_bare_lines_auto_named(self):
        hypergraph = parse_hypergraph("a b c\nc d\n")
        assert hypergraph.num_edges() == 2
        assert hypergraph.num_vertices() == 4

    def test_hash_comments(self):
        hypergraph = parse_hypergraph("# header\ne1(a,b)\n")
        assert hypergraph.num_edges() == 1

    def test_empty_edge_rejected(self):
        with pytest.raises(FormatError):
            parse_hypergraph("empty()\n")


class TestHypergraphRoundtrip:
    def test_roundtrip(self, tmp_path, example5):
        path = tmp_path / "example5.hg"
        write_hypergraph(example5, path)
        loaded = read_hypergraph(path)
        assert loaded.num_edges() == example5.num_edges()
        assert set(loaded.edge_names()) == set(example5.edge_names())
        for name in example5.edge_names():
            assert loaded.edge(name) == example5.edge(name)
