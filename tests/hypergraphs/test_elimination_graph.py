"""Tests for the eliminate/restore graph (Section 5.2.1 machinery)."""

import random

import pytest

from repro.hypergraphs.elimination_graph import (
    EliminationGraph,
    eliminate_sequence,
)
from repro.hypergraphs.graph import Graph, complete_graph, cycle_graph, path_graph
from repro.instances.dimacs_like import random_gnp


class TestEliminateRestore:
    def test_restore_is_exact_inverse(self):
        original = cycle_graph(5)
        working = EliminationGraph(original)
        working.eliminate(0)
        assert working.graph() != original
        restored = working.restore()
        assert restored == 0
        assert working.graph() == original

    def test_restore_without_elimination_raises(self):
        working = EliminationGraph(path_graph(3))
        with pytest.raises(IndexError):
            working.restore()

    def test_restore_all(self):
        original = random_gnp(12, 0.4, seed=7)
        working = EliminationGraph(original)
        for vertex in sorted(original.vertices())[:8]:
            working.eliminate(vertex)
        working.restore_all()
        assert working.graph() == original
        assert working.eliminated() == []

    def test_fill_edges_tracked(self):
        star = Graph(edges=[(0, 1), (0, 2), (0, 3)])
        working = EliminationGraph(star)
        working.eliminate(0)
        assert working.graph().is_clique([1, 2, 3])
        working.restore()
        assert working.graph() == star

    def test_deep_random_roundtrip(self):
        rng = random.Random(42)
        original = random_gnp(15, 0.3, seed=1)
        working = EliminationGraph(original)
        order = sorted(original.vertices())
        rng.shuffle(order)
        for vertex in order:
            working.eliminate(vertex)
        assert working.num_vertices() == 0
        working.restore_all()
        assert working.graph() == original

    def test_eliminated_prefix_order(self):
        working = EliminationGraph(complete_graph(4))
        working.eliminate(2)
        working.eliminate(0)
        assert working.eliminated() == [2, 0]


class TestSwitchTo:
    def test_switch_forward(self):
        graph = random_gnp(10, 0.4, seed=3)
        working = EliminationGraph(graph)
        working.switch_to([0, 1, 2])
        assert working.eliminated() == [0, 1, 2]

    def test_switch_shares_prefix(self):
        graph = random_gnp(10, 0.4, seed=3)
        working = EliminationGraph(graph)
        working.switch_to([0, 1, 2, 3])
        working.switch_to([0, 1, 5])
        assert working.eliminated() == [0, 1, 5]

    def test_switch_matches_fresh_elimination(self):
        graph = random_gnp(10, 0.5, seed=9)
        meandering = EliminationGraph(graph)
        meandering.switch_to([0, 1, 2, 3, 4])
        meandering.switch_to([5, 6])
        meandering.switch_to([5, 6, 7, 0])

        fresh = EliminationGraph(graph)
        for vertex in [5, 6, 7, 0]:
            fresh.eliminate(vertex)
        assert meandering.graph() == fresh.graph()

    def test_switch_to_empty_restores_original(self):
        graph = random_gnp(8, 0.5, seed=2)
        working = EliminationGraph(graph)
        working.switch_to([0, 1, 2])
        working.switch_to([])
        assert working.graph() == graph


class TestEliminateSequence:
    def test_bags_of_path(self):
        bags = eliminate_sequence(path_graph(4), [0, 1, 2, 3])
        assert bags == [{0, 1}, {1, 2}, {2, 3}, {3}]

    def test_bags_contain_self(self):
        graph = random_gnp(8, 0.5, seed=5)
        order = sorted(graph.vertices())
        bags = eliminate_sequence(graph, order)
        for vertex, bag in zip(order, bags):
            assert vertex in bag

    def test_source_graph_unchanged(self):
        graph = cycle_graph(5)
        before = graph.copy()
        eliminate_sequence(graph, sorted(graph.vertices()))
        assert graph == before
